//! Property-based tests (proptest) over random graphs, random seeds and
//! random attack interleavings.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use selfheal_core::invariants;
use selfheal_core::scenario::{AuditLevel, ScenarioEngine};
use selfheal_core::state::HealingNetwork;
use selfheal_core::strategy::Healer;
use selfheal_experiments::config::{AttackKind, HealerKind};
use selfheal_graph::components::{connected_components, UnionFind};
use selfheal_graph::forest::is_forest;
use selfheal_graph::generators;
use selfheal_graph::{Csr, NodeId};
use selfheal_metrics::StretchBaseline;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Connectivity and the G' forest invariant survive arbitrary-seed BA
    /// graphs, any component-aware healer, any attack, to empty.
    #[test]
    fn healing_invariants_hold(
        n in 8usize..48,
        graph_seed in 0u64..1000,
        attack_seed in 0u64..1000,
        healer_idx in 0usize..4,
        attack_idx in 0usize..4,
    ) {
        let healers = [
            HealerKind::Dash,
            HealerKind::Sdash,
            HealerKind::BinaryTreeHeal,
            HealerKind::LineHeal,
        ];
        let attacks = [
            AttackKind::MaxNode,
            AttackKind::NeighborOfMax,
            AttackKind::Random,
            AttackKind::MinDegree,
        ];
        let g = generators::barabasi_albert(n, 2, &mut StdRng::seed_from_u64(graph_seed));
        let net = HealingNetwork::new(g, graph_seed);
        let mut engine = ScenarioEngine::new(
            net,
            healers[healer_idx].build(),
            attacks[attack_idx].build(attack_seed),
        ).with_audit(AuditLevel::Cheap);
        let report = engine.run_to_empty();
        prop_assert_eq!(report.rounds, n as u64);
        prop_assert!(report.violations.is_empty(), "{:?}", report.violations);
    }

    /// DASH's degree bound holds for every (graph, attack) seed pair.
    #[test]
    fn dash_degree_bound(graph_seed in 0u64..500, attack_seed in 0u64..500) {
        let n = 64;
        let g = generators::barabasi_albert(n, 3, &mut StdRng::seed_from_u64(graph_seed));
        let net = HealingNetwork::new(g, graph_seed);
        let mut engine = ScenarioEngine::new(
            net,
            selfheal_core::dash::Dash,
            selfheal_core::attack::NeighborOfMax::new(attack_seed),
        );
        let report = engine.run_to_empty();
        prop_assert!((report.max_delta_ever as f64) <= 2.0 * (n as f64).log2());
    }

    /// The rem potential (Lemmas 4 & 5) holds at every prefix of a sweep.
    #[test]
    fn rem_potential_at_random_prefix(seed in 0u64..200, kills in 1usize..24) {
        let n = 24;
        let g = generators::barabasi_albert(n, 2, &mut StdRng::seed_from_u64(seed));
        let net = HealingNetwork::new(g, seed);
        let mut engine = ScenarioEngine::new(
            net,
            selfheal_core::dash::Dash,
            selfheal_core::attack::RandomAttack::new(seed),
        );
        for _ in 0..kills {
            if engine.step().is_none() {
                break;
            }
        }
        prop_assert!(invariants::rem_potential_ok(&engine.net));
        prop_assert!(invariants::weight_conservation_ok(&engine.net));
    }

    /// Union-find agrees with BFS component labeling on random graphs.
    #[test]
    fn dsu_matches_bfs_components(n in 2usize..40, p in 0.0f64..0.3, seed in 0u64..1000) {
        let g = generators::erdos_renyi_gnp(n, p, &mut StdRng::seed_from_u64(seed));
        let mut uf = UnionFind::new(g.node_bound());
        for e in g.edges() {
            uf.union(e.lo().index(), e.hi().index());
        }
        let cc = connected_components(&g);
        for u in g.live_nodes() {
            for v in g.live_nodes() {
                prop_assert_eq!(
                    uf.same(u.index(), v.index()),
                    cc.same_component(u, v),
                    "{} vs {}", u, v
                );
            }
        }
        prop_assert_eq!(uf.set_count(), cc.count);
    }

    /// Healing graphs are always subgraphs of the real graph: E' ⊆ E.
    #[test]
    fn gprime_subset_of_g(seed in 0u64..300, kills in 1usize..32) {
        let n = 32;
        let g = generators::barabasi_albert(n, 2, &mut StdRng::seed_from_u64(seed));
        let net = HealingNetwork::new(g, seed);
        let mut engine = ScenarioEngine::new(
            net,
            selfheal_core::sdash::Sdash,
            selfheal_core::attack::RandomAttack::new(seed),
        );
        for _ in 0..kills {
            if engine.step().is_none() {
                break;
            }
        }
        for e in engine.net.healing_graph().edges() {
            prop_assert!(
                engine.net.graph().has_edge(e.lo(), e.hi()),
                "G' edge {:?} missing from G", e
            );
        }
    }

    /// Stretch is always >= 1 and finite for connectivity-preserving heals.
    #[test]
    fn stretch_at_least_one(seed in 0u64..100, kills in 1usize..20) {
        let n = 24;
        let g = generators::barabasi_albert(n, 2, &mut StdRng::seed_from_u64(seed));
        let baseline = StretchBaseline::new(&g, 1);
        let net = HealingNetwork::new(g, seed);
        let mut engine = ScenarioEngine::new(
            net,
            selfheal_core::dash::Dash,
            selfheal_core::attack::RandomAttack::new(seed),
        );
        for _ in 0..kills {
            if engine.step().is_none() {
                break;
            }
        }
        if engine.net.graph().live_node_count() >= 2 {
            let r = baseline.stretch_of(engine.net.graph(), 1);
            let r = r.expect("DASH preserves connectivity");
            prop_assert!(r.stretch >= 1.0);
            prop_assert!(r.stretch.is_finite());
        }
    }

    /// BA generator: connected, right node/edge counts, min degree >= m.
    #[test]
    fn ba_generator_structure(n in 5usize..80, m in 1usize..4, seed in 0u64..1000) {
        prop_assume!(n > m + 1);
        let g = generators::barabasi_albert(n, m, &mut StdRng::seed_from_u64(seed));
        prop_assert_eq!(g.live_node_count(), n);
        prop_assert_eq!(g.edge_count(), m * (m + 1) / 2 + (n - m - 1) * m);
        prop_assert!(selfheal_graph::components::is_connected(&g));
        let stats = selfheal_graph::properties::degree_stats(&g).unwrap();
        prop_assert!(stats.min >= m);
    }

    /// Complete-binary-tree wiring always yields a tree with max degree 3
    /// in G', whatever the member multiset.
    #[test]
    fn binary_tree_shape(k in 1usize..64) {
        let mut net = HealingNetwork::new(selfheal_graph::Graph::new(k), 0);
        let nodes: Vec<NodeId> = (0..k).map(NodeId::from_index).collect();
        selfheal_core::rt::connect_binary_tree(&mut net, &nodes);
        prop_assert!(is_forest(net.healing_graph()));
        prop_assert_eq!(net.healing_graph().edge_count(), k - 1);
        for &v in &nodes {
            prop_assert!(net.healing_graph().degree(v) <= 3);
        }
    }

    /// Component IDs only ever decrease (they adopt minima).
    #[test]
    fn comp_ids_monotone_nonincreasing(seed in 0u64..200) {
        let n = 24;
        let g = generators::barabasi_albert(n, 2, &mut StdRng::seed_from_u64(seed));
        let net = HealingNetwork::new(g, seed);
        let mut engine = ScenarioEngine::new(
            net,
            selfheal_core::dash::Dash,
            selfheal_core::attack::MaxNode,
        );
        let mut last: Vec<u64> = (0..n as u32).map(|v| engine.net.comp_id(NodeId(v))).collect();
        while engine.step().is_some() {
            for v in 0..n as u32 {
                let now = engine.net.comp_id(NodeId(v));
                prop_assert!(now <= last[v as usize], "id of {v} increased");
                last[v as usize] = now;
            }
        }
    }

    /// Articulation points match their definition: removing an AP splits
    /// its component; removing a non-AP does not.
    #[test]
    fn articulation_points_match_bruteforce(n in 3usize..22, p in 0.08f64..0.5, seed in 0u64..500) {
        let g = generators::erdos_renyi_gnp(n, p, &mut StdRng::seed_from_u64(seed));
        let aps = selfheal_graph::cuts::articulation_points(&g);
        let base = connected_components(&g).count;
        for v in g.live_nodes() {
            let mut h = g.clone();
            h.remove_node(v).unwrap();
            let after = connected_components(&h).count;
            // v's component splits into k parts: after = base - 1 + k,
            // so v is an AP (k >= 2) exactly when after > base. An
            // isolated v gives after = base - 1, correctly not an AP.
            let splits = after > base;
            prop_assert_eq!(
                aps.contains(&v),
                splits,
                "node {} (degree {}): base {} after {}",
                v, g.degree(v), base, after
            );
        }
    }

    /// Bridges match their definition: removing a bridge splits a
    /// component, removing a non-bridge edge does not.
    #[test]
    fn bridges_match_bruteforce(n in 3usize..20, p in 0.1f64..0.5, seed in 0u64..300) {
        let g = generators::erdos_renyi_gnp(n, p, &mut StdRng::seed_from_u64(seed));
        let bridges = selfheal_graph::cuts::bridges(&g);
        let base = connected_components(&g).count;
        for e in g.edges() {
            let mut h = g.clone();
            h.remove_edge(e.lo(), e.hi()).unwrap();
            let splits = connected_components(&h).count > base;
            prop_assert_eq!(bridges.contains(&e), splits, "edge {:?}", e);
        }
    }

    /// Complete k-ary trees have the advertised size and level structure.
    #[test]
    fn kary_tree_structure(arity in 1usize..5, depth in 0u32..5) {
        let t = generators::KaryTree::new(arity, depth);
        prop_assert_eq!(t.node_count(), generators::KaryTree::size_for(arity, depth));
        prop_assert!(selfheal_graph::forest::is_tree(&t.graph));
        // Level populations: arity^level.
        let mut expected = 1usize;
        for level in 0..=depth {
            prop_assert_eq!(t.nodes_at_level(level).len(), expected);
            expected *= arity;
        }
        // Every non-root's parent is one level up.
        for i in 1..t.node_count() {
            let v = NodeId::from_index(i);
            let p = t.parent(v).unwrap();
            prop_assert_eq!(t.level(p) + 1, t.level(v));
            prop_assert!(t.graph.has_edge(p, v));
        }
    }

    /// Largest-component extraction returns a connected subgraph of
    /// maximum size.
    #[test]
    fn largest_component_is_maximal(n in 2usize..40, p in 0.0f64..0.25, seed in 0u64..300) {
        let g = generators::erdos_renyi_gnp(n, p, &mut StdRng::seed_from_u64(seed));
        let sub = selfheal_graph::subgraph::largest_component_subgraph(&g);
        prop_assert!(selfheal_graph::components::is_connected(&sub.graph));
        let cc = connected_components(&g);
        let biggest = cc.sizes().into_iter().max().unwrap_or(0);
        prop_assert_eq!(sub.graph.live_node_count(), biggest);
    }

    /// The pooled-adjacency `Graph` is observationally identical to a
    /// naive `Vec<Vec<NodeId>>` reference model under arbitrary
    /// interleavings of edge insertions/removals, node deaths and node
    /// births — same neighbor slices (sorted), same degree extremes
    /// (lowest-id tie-break), same live-rank order, same NoN sets.
    #[test]
    fn pooled_graph_matches_reference_model(
        n in 1usize..20,
        ops in prop::collection::vec((0u8..6, 0usize..64, 0usize..64), 1..120),
    ) {
        let mut g = selfheal_graph::Graph::new(n);
        let mut model = ReferenceGraph::new(n);
        for (op, a, b) in ops {
            let bound = g.node_bound();
            let (u, v) = (NodeId::from_index(a % bound), NodeId::from_index(b % bound));
            match op {
                0 | 1 => {
                    let model_added = model.ensure_edge(u, v);
                    match g.ensure_edge(u, v) {
                        Ok(added) => prop_assert_eq!(Some(added), model_added, "ensure {u}-{v}"),
                        Err(_) => prop_assert_eq!(None, model_added, "ensure {u}-{v} errored"),
                    }
                }
                2 => {
                    let model_ok = model.remove_edge(u, v);
                    prop_assert_eq!(g.remove_edge(u, v).is_ok(), model_ok, "remove {u}-{v}");
                }
                3 => {
                    let model_nbrs = model.remove_node(u);
                    match g.remove_node(u) {
                        Ok(nbrs) => prop_assert_eq!(Some(nbrs), model_nbrs, "kill {u}"),
                        Err(_) => prop_assert_eq!(None, model_nbrs, "kill {u} errored"),
                    }
                }
                4 => {
                    prop_assert_eq!(g.add_node(), model.add_node());
                }
                _ => {
                    // Churn: kill then immediately re-add, the join pattern
                    // the million-node experiment leans on.
                    if model.remove_node(u).is_some() {
                        g.remove_node(u).unwrap();
                        prop_assert_eq!(g.add_node(), model.add_node());
                    }
                }
            }
            model.assert_matches(&g)?;
        }
        g.validate().unwrap();
    }

    /// Satellite: every ForgivingTree heal, under a random deletion
    /// schedule on random BA graphs, is byte-identical to the naive
    /// reference — [`order_heir_first`] over the reconstruction set plus
    /// the `(i-1)/2` complete-binary-tree parent rule — and keeps the
    /// family's promises per event: the reconnection touches only the
    /// victim's former neighbors, is acyclic on its own edges, and no
    /// survivor gains more than 3 edges.
    #[test]
    fn ftree_heals_match_heir_first_reference(
        n in 8usize..40,
        seed in 0u64..1_000,
        picks in prop::collection::vec(0usize..64, 1..16),
    ) {
        let g = generators::barabasi_albert(n, 2, &mut StdRng::seed_from_u64(seed));
        let mut net = HealingNetwork::new(g, seed);
        let mut healer = selfheal_core::ftree::ForgivingTree;
        for pick in picks {
            let live = net.graph().live_node_count();
            if live <= 1 {
                break;
            }
            let victim = net.graph().nth_live(pick % live).unwrap();
            let former: Vec<NodeId> = net.graph().neighbors(victim).to_vec();
            let before: Vec<usize> = (0..net.graph().node_bound())
                .map(|i| net.graph().degree(NodeId::from_index(i)))
                .collect();
            let ctx = net.delete_node(victim).unwrap();

            // Naive reference, computed on the same post-deletion,
            // pre-heal state the strategy sees.
            let mut members = Vec::new();
            selfheal_core::rt::reconstruction_set_into(
                &net, &ctx, &mut Vec::new(), &mut members,
            );
            let mut order = Vec::new();
            selfheal_core::ftree::order_heir_first(&net, &members, &mut order);
            let mut expect: Vec<(NodeId, NodeId)> = (1..order.len())
                .map(|i| (order[(i - 1) / 2], order[i]))
                .filter(|&(p, c)| !net.healing_graph().has_edge(p, c))
                .map(|(p, c)| (p.min(c), p.max(c)))
                .collect();
            expect.sort_unstable();

            let outcome = healer.heal(&mut net, &ctx);
            net.propagate_min_id(&outcome.rt_members);
            prop_assert_eq!(&outcome.rt_members, &members);
            let mut got: Vec<(NodeId, NodeId)> = outcome
                .edges_added
                .iter()
                .map(|&(a, b)| (a.min(b), a.max(b)))
                .collect();
            got.sort_unstable();
            prop_assert_eq!(&got, &expect, "victim {}", victim);

            // Locality + acyclicity of the reconnection itself.
            let mut uf = UnionFind::new(net.graph().node_bound());
            for &(a, b) in &got {
                prop_assert!(
                    former.contains(&a) && former.contains(&b),
                    "edge {a}-{b} leaves the victim's former neighborhood"
                );
                prop_assert!(!uf.same(a.index(), b.index()), "reconnection cycles at {a}-{b}");
                uf.union(a.index(), b.index());
            }
            // O(1) degree gain: ≤ 3 per member per adjacent deletion.
            for &m in &outcome.rt_members {
                let lost = usize::from(former.contains(&m));
                let gained = (net.graph().degree(m) + lost).saturating_sub(before[m.index()]);
                prop_assert!(gained <= 3, "member {m} gained {gained}");
            }
        }
    }

    /// Satellite: every RingForgiving heal matches its exposed naive
    /// reference plan ([`ring_plan`]) exactly — members in initial-ID
    /// order, a single cycle, then the halving-stride chord rounds — and
    /// each survivor gains at most `2 + budget` edges per adjacent
    /// deletion.
    #[test]
    fn ring_heals_match_ring_plan_reference(
        n in 8usize..40,
        seed in 0u64..1_000,
        budget in 0usize..4,
        picks in prop::collection::vec(0usize..64, 1..16),
    ) {
        use selfheal_core::ring::{ring_plan, RingForgiving};
        let g = generators::barabasi_albert(n, 2, &mut StdRng::seed_from_u64(seed));
        let mut net = HealingNetwork::new(g, seed);
        let mut healer = RingForgiving { budget };
        for pick in picks {
            let live = net.graph().live_node_count();
            if live <= 1 {
                break;
            }
            let victim = net.graph().nth_live(pick % live).unwrap();
            let former: Vec<NodeId> = net.graph().neighbors(victim).to_vec();
            let before: Vec<usize> = (0..net.graph().node_bound())
                .map(|i| net.graph().degree(NodeId::from_index(i)))
                .collect();
            let ctx = net.delete_node(victim).unwrap();

            let mut members = Vec::new();
            selfheal_core::rt::reconstruction_set_into(
                &net, &ctx, &mut Vec::new(), &mut members,
            );
            let mut order = members.clone();
            order.sort_unstable_by_key(|&v| net.initial_id(v));
            let mut expect: Vec<(NodeId, NodeId)> = ring_plan(order.len(), budget)
                .into_iter()
                .map(|(i, j)| (order[i], order[j]))
                .filter(|&(a, b)| !net.healing_graph().has_edge(a, b))
                .map(|(a, b)| (a.min(b), a.max(b)))
                .collect();
            expect.sort_unstable();
            expect.dedup();

            let outcome = healer.heal(&mut net, &ctx);
            net.propagate_min_id(&outcome.rt_members);
            prop_assert_eq!(&outcome.rt_members, &members);
            let mut got: Vec<(NodeId, NodeId)> = outcome
                .edges_added
                .iter()
                .map(|&(a, b)| (a.min(b), a.max(b)))
                .collect();
            got.sort_unstable();
            prop_assert_eq!(&got, &expect, "victim {}", victim);

            // The single cycle is present in G' after the heal…
            let m = order.len();
            if m >= 2 {
                for i in 0..m {
                    let (a, b) = (order[i], order[(i + 1) % m]);
                    if a != b {
                        prop_assert!(
                            net.healing_graph().has_edge(a, b),
                            "cycle edge {a}-{b} missing"
                        );
                    }
                }
            }
            // …and the budget caps every survivor's gain.
            for &mem in &outcome.rt_members {
                let lost = usize::from(former.contains(&mem));
                let gained =
                    (net.graph().degree(mem) + lost).saturating_sub(before[mem.index()]);
                prop_assert!(
                    gained <= 2 + budget,
                    "member {mem} gained {gained} with budget {budget}"
                );
            }
        }
    }

    /// CSR snapshots preserve BFS distances from the dynamic graph.
    #[test]
    fn csr_distances_match_graph(n in 2usize..40, p in 0.05f64..0.4, seed in 0u64..500) {
        let g = generators::erdos_renyi_gnp(n, p, &mut StdRng::seed_from_u64(seed));
        let csr = Csr::from_graph(&g);
        let src = NodeId(0);
        let gd = selfheal_graph::paths::bfs_distances(&g, src);
        let cd = csr.bfs(csr.dense_index(src).unwrap());
        for v in g.live_nodes() {
            let dense = csr.dense_index(v).unwrap();
            prop_assert_eq!(gd[v.index()], cd[dense]);
        }
    }
}

/// Naive `Vec<Vec<NodeId>>` adjacency model the pooled `Graph` is judged
/// against in `pooled_graph_matches_reference_model`. Mutators return
/// `None`/`false` exactly when the real API reports an error, so the
/// proptest also locks the error surface.
struct ReferenceGraph {
    adj: Vec<Vec<NodeId>>,
    alive: Vec<bool>,
}

impl ReferenceGraph {
    fn new(n: usize) -> Self {
        Self {
            adj: vec![Vec::new(); n],
            alive: vec![true; n],
        }
    }

    fn live(&self, v: NodeId) -> bool {
        self.alive.get(v.index()).copied().unwrap_or(false)
    }

    /// `Some(added)` when the edge insert is legal, `None` when it errors.
    fn ensure_edge(&mut self, u: NodeId, v: NodeId) -> Option<bool> {
        if u == v || !self.live(u) || !self.live(v) {
            return None;
        }
        if self.adj[u.index()].contains(&v) {
            return Some(false);
        }
        for (a, b) in [(u, v), (v, u)] {
            let pos = self.adj[a.index()].partition_point(|&w| w < b);
            self.adj[a.index()].insert(pos, b);
        }
        Some(true)
    }

    fn remove_edge(&mut self, u: NodeId, v: NodeId) -> bool {
        if !self.live(u) || !self.live(v) || !self.adj[u.index()].contains(&v) {
            return false;
        }
        self.adj[u.index()].retain(|&w| w != v);
        self.adj[v.index()].retain(|&w| w != u);
        true
    }

    fn remove_node(&mut self, v: NodeId) -> Option<Vec<NodeId>> {
        if !self.live(v) {
            return None;
        }
        let nbrs = std::mem::take(&mut self.adj[v.index()]);
        for &u in &nbrs {
            self.adj[u.index()].retain(|&w| w != v);
        }
        self.alive[v.index()] = false;
        Some(nbrs)
    }

    fn add_node(&mut self) -> NodeId {
        self.adj.push(Vec::new());
        self.alive.push(true);
        NodeId::from_index(self.adj.len() - 1)
    }

    fn assert_matches(&self, g: &selfheal_graph::Graph) -> Result<(), TestCaseError> {
        prop_assert_eq!(g.node_bound(), self.adj.len());
        let live: Vec<NodeId> = (0..self.adj.len())
            .map(NodeId::from_index)
            .filter(|&v| self.live(v))
            .collect();
        prop_assert_eq!(g.live_node_count(), live.len());
        let degree_sum: usize = live.iter().map(|&v| self.adj[v.index()].len()).sum();
        prop_assert_eq!(g.edge_count(), degree_sum / 2);
        prop_assert_eq!(g.live_nodes().collect::<Vec<_>>(), live.clone());
        let mut non = Vec::new();
        for (i, &v) in live.iter().enumerate() {
            prop_assert_eq!(g.nth_live(i), Some(v), "live rank {}", i);
            prop_assert_eq!(g.degree(v), self.adj[v.index()].len(), "degree {}", v);
            prop_assert_eq!(g.neighbors(v), &self.adj[v.index()][..], "adjacency {}", v);
            g.neighbors_of_neighbors_into(v, &mut non);
            let mut expect: Vec<NodeId> = self.adj[v.index()]
                .iter()
                .flat_map(|&u| {
                    std::iter::once(u)
                        .chain(self.adj[u.index()].iter().copied().filter(|&w| w != v))
                })
                .collect();
            expect.sort_unstable();
            expect.dedup();
            prop_assert_eq!(&non, &expect, "NoN set of {}", v);
        }
        prop_assert_eq!(g.nth_live(live.len()), None);
        // Degree extremes: lowest-id winner of an ascending scan.
        let max = live
            .iter()
            .copied()
            .max_by_key(|&v| (self.adj[v.index()].len(), std::cmp::Reverse(v)));
        let min = live
            .iter()
            .copied()
            .min_by_key(|&v| (self.adj[v.index()].len(), v));
        prop_assert_eq!(g.max_degree_node(), max);
        prop_assert_eq!(g.min_degree_node(), min);
        Ok(())
    }
}

/// Non-proptest regression: a healer driven manually matches the engine.
#[test]
fn manual_rounds_match_engine() {
    let n = 32;
    let g = generators::barabasi_albert(n, 3, &mut StdRng::seed_from_u64(4));
    // Engine path.
    let mut engine = ScenarioEngine::new(
        HealingNetwork::new(g.clone(), 4),
        selfheal_core::dash::Dash,
        selfheal_core::attack::MaxNode,
    );
    engine.run_to_empty();
    // Manual path.
    let mut net = HealingNetwork::new(g, 4);
    let mut dash = selfheal_core::dash::Dash;
    while let Some(v) = net.graph().max_degree_node() {
        let ctx = net.delete_node(v).unwrap();
        let outcome = dash.heal(&mut net, &ctx);
        net.propagate_min_id(&outcome.rt_members);
    }
    for v in 0..n as u32 {
        assert_eq!(engine.net.id_changes(NodeId(v)), net.id_changes(NodeId(v)));
        assert_eq!(
            engine.net.messages_sent(NodeId(v)),
            net.messages_sent(NodeId(v))
        );
    }
}

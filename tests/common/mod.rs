//! Shared comparator for the distributed-vs-centralized parity suites
//! (`tests/distributed_parity.rs` curated schedules,
//! `tests/scenarios.rs` randomized proptests): one definition of "byte
//! identical", so neither suite can silently check less than the other.

use selfheal_core::distributed_runner::{DistEventRecord, DistributedScenarioRunner};
use selfheal_core::scenario::EventRecord;
use selfheal_core::state::HealingNetwork;
use selfheal_graph::NodeId;

/// Compare one event's outcome on both sides: kind, effective victim
/// count, the joined node, and the Lemma 8 message count.
pub fn compare_event(central: &EventRecord, dist: &DistEventRecord) -> Result<(), String> {
    if central.kind != dist.kind {
        return Err(format!(
            "event {}: kind {:?} vs {:?}",
            central.event, central.kind, dist.kind
        ));
    }
    if central.victims != dist.victims {
        return Err(format!(
            "event {}: victim count {} vs {}",
            central.event, central.victims, dist.victims
        ));
    }
    if central.joined.map(|v| v.0) != dist.joined {
        return Err(format!(
            "event {}: joined {:?} vs {:?}",
            central.event, central.joined, dist.joined
        ));
    }
    if central.propagation.messages != dist.messages {
        return Err(format!(
            "event {}: ID messages {} vs {}",
            central.event, central.propagation.messages, dist.messages
        ));
    }
    Ok(())
}

/// Compare every observable fixed-point state: per-slot liveness; for
/// live nodes the `G` and `G'` adjacency, component ID, initial ID and
/// ID-change count; and for *every* slot ever created (dead or alive)
/// the per-node sent/received message counters.
pub fn compare_final_state(
    net: &HealingNetwork,
    runner: &DistributedScenarioRunner,
) -> Result<(), String> {
    if net.graph().node_bound() != runner.topology().len() {
        return Err(format!(
            "slot counts: {} vs {}",
            net.graph().node_bound(),
            runner.topology().len()
        ));
    }
    for i in 0..net.graph().node_bound() {
        let v = NodeId(i as u32);
        let u = i as u32;
        if net.is_alive(v) != runner.topology().is_alive(u) {
            return Err(format!("liveness of {v} diverged"));
        }
        if net.is_alive(v) {
            let central_adj: Vec<u32> = net.graph().neighbors(v).iter().map(|x| x.0).collect();
            if central_adj != runner.topology().neighbors(u) {
                return Err(format!(
                    "G adjacency of {v}: {central_adj:?} vs {:?}",
                    runner.topology().neighbors(u)
                ));
            }
            let central_gp: Vec<u32> = net
                .healing_graph()
                .neighbors(v)
                .iter()
                .map(|x| x.0)
                .collect();
            let dist_gp: Vec<u32> = runner
                .protocol()
                .gprime_neighbors(u)
                .iter()
                .copied()
                .collect();
            if central_gp != dist_gp {
                return Err(format!(
                    "G' adjacency of {v}: {central_gp:?} vs {dist_gp:?}"
                ));
            }
            if net.comp_id(v) != runner.protocol().comp_id(u) {
                return Err(format!(
                    "component id of {v}: {} vs {}",
                    net.comp_id(v),
                    runner.protocol().comp_id(u)
                ));
            }
            if net.initial_id(v) != runner.protocol().initial_id(u) {
                return Err(format!("initial id of {v} diverged"));
            }
            if net.id_changes(v) != runner.protocol().id_changes(u) {
                return Err(format!(
                    "id changes of {v}: {} vs {}",
                    net.id_changes(v),
                    runner.protocol().id_changes(u)
                ));
            }
        }
        if net.messages_sent(v) != runner.metrics().sent(u) {
            return Err(format!(
                "sent count of {v}: {} vs {}",
                net.messages_sent(v),
                runner.metrics().sent(u)
            ));
        }
        if net.messages_received(v) != runner.metrics().received(u) {
            return Err(format!(
                "received count of {v}: {} vs {}",
                net.messages_received(v),
                runner.metrics().received(u)
            ));
        }
    }
    Ok(())
}

//! Shared comparator for the distributed-vs-centralized parity suites
//! (`tests/distributed_parity.rs` curated schedules,
//! `tests/scenarios.rs` randomized proptests).
//!
//! The *definition* of "byte identical" lives in `core::sweep`
//! ([`selfheal_core::sweep::parity_event`] / `parity_final`), where the
//! sweep fleet's `--parity` mode uses it on every run; these wrappers
//! delegate so the test suites and the fleet can never silently check
//! different things.

use selfheal_core::distributed_runner::{DistEventRecord, DistributedScenarioRunner};
use selfheal_core::scenario::EventRecord;
use selfheal_core::state::HealingNetwork;
use selfheal_core::sweep;

/// Compare one event's outcome on both sides: kind, effective victim
/// count, the joined node, and the Lemma 8 message count.
pub fn compare_event(central: &EventRecord, dist: &DistEventRecord) -> Result<(), String> {
    sweep::parity_event(central, dist)
}

/// Compare every observable fixed-point state: per-slot liveness; for
/// live nodes the `G` and `G'` adjacency, component ID, initial ID and
/// ID-change count; and for *every* slot ever created (dead or alive)
/// the per-node sent/received message counters.
pub fn compare_final_state(
    net: &HealingNetwork,
    runner: &DistributedScenarioRunner,
) -> Result<(), String> {
    sweep::parity_final(net, runner)
}

//! Centralized `ScenarioEngine` vs. distributed `DistributedScenarioRunner`
//! parity over the **full event model**.
//!
//! `tests/equivalence.rs` pins the single-deletion slice: one victim per
//! round, centralized modeled accounting == real message passing. This
//! suite extends the claim to the whole reconfiguration stream the paper
//! frames (adversarial sequences of deletions, simultaneous batches per
//! footnote 1, and joins): for *arbitrary mixed schedules* — including
//! stale references that the sanitization rules must resolve identically
//! on both sides — the distributed protocol reproduces the centralized
//! engine's final topology, healing forest, component IDs, ID-change
//! counts, per-node message counters, and per-event message counts
//! **exactly**, under DASH, SDASH, and the ForgivingTree family (whose
//! fabric twin must elect the same heir from neighborhood-local views).

mod common;

use rand::rngs::StdRng;
use rand::SeedableRng;
use selfheal_core::dash::Dash;
use selfheal_core::distributed::HealMode;
use selfheal_core::distributed_runner::DistributedScenarioRunner;
use selfheal_core::ftree::ForgivingTree;
use selfheal_core::scenario::{NetworkEvent, ScenarioEngine, ScriptedEvents};
use selfheal_core::sdash::Sdash;
use selfheal_core::spec::CuratedSchedule;
use selfheal_core::state::HealingNetwork;
use selfheal_core::strategy::Healer;
use selfheal_graph::generators::{barabasi_albert, cycle_graph, star_graph};
use selfheal_graph::Graph;

/// Replay `schedule` through both implementations and compare everything
/// observable — per event and at the fixed point — with the shared
/// comparator in `tests/common/mod.rs`.
fn assert_schedule_parity<H: Healer>(g: &Graph, seed: u64, schedule: &[NetworkEvent], healer: H) {
    let mode = match healer.name() {
        "sdash" => HealMode::Sdash,
        "ftree" => HealMode::ForgivingTree,
        _ => HealMode::Dash,
    };
    let net = HealingNetwork::new(g.clone(), seed);
    let mut engine = ScenarioEngine::new(net, healer, ScriptedEvents::new(schedule.to_vec()));
    let mut runner = DistributedScenarioRunner::with_mode(mode, g, seed);

    for event in schedule {
        let central = engine.step().expect("schedule not exhausted");
        let dist = runner.apply(event);
        if let Err(e) = common::compare_event(&central, &dist) {
            panic!("{mode:?}: {e}");
        }
    }
    if let Err(e) = common::compare_final_state(&engine.net, &runner) {
        panic!("{mode:?}: {e}");
    }
}

fn ba(n: usize, seed: u64) -> Graph {
    barabasi_albert(n, 3, &mut StdRng::seed_from_u64(seed))
}

/// The curated schedules now live in the spec layer's registry
/// ([`CuratedSchedule`]) so `.scn` specs replay exactly what this suite
/// pins; the tests below consume them from there.
#[test]
fn mixed_schedule_parity_dash() {
    let schedule = CuratedSchedule::MixedAcceptance.events();
    assert_schedule_parity(&ba(32, 5), 5, &schedule, Dash);
}

#[test]
fn mixed_schedule_parity_sdash() {
    let schedule = CuratedSchedule::MixedAcceptance.events();
    assert_schedule_parity(&ba(32, 5), 5, &schedule, Sdash);
}

#[test]
fn mixed_schedule_parity_ftree() {
    let schedule = CuratedSchedule::MixedAcceptance.events();
    assert_schedule_parity(&ba(32, 5), 5, &schedule, ForgivingTree);
}

/// Batches on a cycle: maximal independent sets, then churn.
#[test]
fn cycle_batch_parity() {
    let schedule = CuratedSchedule::CycleBatches.events();
    assert_schedule_parity(&cycle_graph(12), 17, &schedule, Dash);
    assert_schedule_parity(&cycle_graph(12), 17, &schedule, Sdash);
    assert_schedule_parity(&cycle_graph(12), 17, &schedule, ForgivingTree);
}

/// Star hubs stress surrogation (large δ spread) under batches. For the
/// heir-rooted family the hub deletion is the canonical case: every
/// spoke is in the reconstruction set and the elected heir becomes the
/// tree root, so any divergence in heir election shows up here first.
#[test]
fn star_batch_parity_sdash() {
    let schedule = CuratedSchedule::StarBatches.events();
    assert_schedule_parity(&star_graph(16), 29, &schedule, Sdash);
    assert_schedule_parity(&star_graph(16), 29, &schedule, ForgivingTree);
}

/// Joined nodes get deleted again, re-joined, and batch-killed — the
/// slot-growth paths on both sides must stay in lockstep.
#[test]
fn join_heavy_churn_parity() {
    let schedule = CuratedSchedule::JoinChurn.events();
    assert_schedule_parity(&ba(24, 3), 3, &schedule, Dash);
    assert_schedule_parity(&ba(24, 3), 3, &schedule, Sdash);
    assert_schedule_parity(&ba(24, 3), 3, &schedule, ForgivingTree);
}

/// Satellite: parity under *randomly permuted* notification
/// interleavings, at sizes the exhaustive schedule explorer cannot
/// reach. Each batch's victim parking order is a seeded shuffle
/// ([`BatchSchedule::VictimOrder`] via
/// [`selfheal_core::explore::check_seeded_orders`]); the centralized
/// engine heals the same victims in the same order, and everything
/// observable must still match byte for byte.
mod seeded_interleavings {
    use super::*;
    use proptest::prelude::*;
    use selfheal_core::explore::check_seeded_orders;
    use selfheal_core::spec::HealerSpec;
    use selfheal_graph::NodeId;
    use selfheal_sim::SplitMix64;

    /// Random mixed schedule with several multi-victim batches. Stale or
    /// adjacent references are fine — both sides sanitize identically.
    fn random_batch_schedule(n: usize, seed: u64) -> Vec<NetworkEvent> {
        let mut rng = SplitMix64::new(seed);
        let mut events = Vec::new();
        for i in 0..6u64 {
            match i % 3 {
                0 | 1 => {
                    let k = 2 + rng.gen_range(3) as usize;
                    let victims: Vec<NodeId> = (0..k)
                        .map(|_| NodeId(rng.gen_range(n as u64) as u32))
                        .collect();
                    events.push(NetworkEvent::DeleteBatch(victims));
                }
                _ => {
                    let a = NodeId(rng.gen_range(n as u64) as u32);
                    let b = NodeId(rng.gen_range(n as u64) as u32);
                    events.push(NetworkEvent::Join {
                        neighbors: vec![a, b],
                    });
                }
            }
        }
        events
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        #[test]
        fn parity_holds_under_random_victim_orders(
            graph_seed in 1u64..1_000,
            order_seed in 0u64..u64::MAX,
            n in 32usize..=64,
            healer_i in 0usize..3,
        ) {
            let healer =
                [HealerSpec::Dash, HealerSpec::Sdash, HealerSpec::ForgivingTree][healer_i];
            let g = ba(n, graph_seed);
            let events = random_batch_schedule(n, graph_seed ^ 0xfeed);
            let outcome = check_seeded_orders(&g, healer, graph_seed, &events, order_seed);
            prop_assert!(outcome.is_ok(), "{}: {:?}", healer.name(), outcome);
            // The schedule builder always emits multi-victim batches, so
            // a run that never reordered anything would be vacuous.
            prop_assert!(outcome.unwrap() >= 1, "no batch was actually reordered");
        }
    }
}

//! Centralized `ScenarioEngine` vs. distributed `DistributedScenarioRunner`
//! parity over the **full event model**.
//!
//! `tests/equivalence.rs` pins the single-deletion slice: one victim per
//! round, centralized modeled accounting == real message passing. This
//! suite extends the claim to the whole reconfiguration stream the paper
//! frames (adversarial sequences of deletions, simultaneous batches per
//! footnote 1, and joins): for *arbitrary mixed schedules* — including
//! stale references that the sanitization rules must resolve identically
//! on both sides — the distributed protocol reproduces the centralized
//! engine's final topology, healing forest, component IDs, ID-change
//! counts, per-node message counters, and per-event message counts
//! **exactly**, under both DASH and SDASH.

mod common;

use rand::rngs::StdRng;
use rand::SeedableRng;
use selfheal_core::dash::Dash;
use selfheal_core::distributed::HealMode;
use selfheal_core::distributed_runner::DistributedScenarioRunner;
use selfheal_core::scenario::{NetworkEvent, ScenarioEngine, ScriptedEvents};
use selfheal_core::sdash::Sdash;
use selfheal_core::state::HealingNetwork;
use selfheal_core::strategy::Healer;
use selfheal_graph::generators::{barabasi_albert, cycle_graph, star_graph};
use selfheal_graph::{Graph, NodeId};

/// Replay `schedule` through both implementations and compare everything
/// observable — per event and at the fixed point — with the shared
/// comparator in `tests/common/mod.rs`.
fn assert_schedule_parity<H: Healer>(g: &Graph, seed: u64, schedule: &[NetworkEvent], healer: H) {
    let mode = if healer.name() == "sdash" {
        HealMode::Sdash
    } else {
        HealMode::Dash
    };
    let net = HealingNetwork::new(g.clone(), seed);
    let mut engine = ScenarioEngine::new(net, healer, ScriptedEvents::new(schedule.to_vec()));
    let mut runner = DistributedScenarioRunner::with_mode(mode, g, seed);

    for event in schedule {
        let central = engine.step().expect("schedule not exhausted");
        let dist = runner.apply(event);
        if let Err(e) = common::compare_event(&central, &dist) {
            panic!("{mode:?}: {e}");
        }
    }
    if let Err(e) = common::compare_final_state(&engine.net, &runner) {
        panic!("{mode:?}: {e}");
    }
}

fn ba(n: usize, seed: u64) -> Graph {
    barabasi_albert(n, 3, &mut StdRng::seed_from_u64(seed))
}

/// The acceptance schedule: two simultaneous batches (their interleaved
/// notifications exercise per-victim coordination), a join between them,
/// stale references throughout.
fn mixed_acceptance_schedule() -> Vec<NetworkEvent> {
    vec![
        NetworkEvent::DeleteBatch(vec![NodeId(0), NodeId(4), NodeId(9), NodeId(4)]),
        NetworkEvent::Join {
            neighbors: vec![NodeId(2), NodeId(7), NodeId(0)], // 0 is dead by now
        },
        NetworkEvent::Delete(NodeId(11)),
        NetworkEvent::DeleteBatch(vec![NodeId(2), NodeId(6), NodeId(13), NodeId(9)]),
        NetworkEvent::Delete(NodeId(0)), // stale: no-op on both sides
        NetworkEvent::Join {
            neighbors: vec![NodeId(3)],
        },
        NetworkEvent::DeleteBatch(vec![NodeId(1), NodeId(8)]),
    ]
}

#[test]
fn mixed_schedule_parity_dash() {
    assert_schedule_parity(&ba(32, 5), 5, &mixed_acceptance_schedule(), Dash);
}

#[test]
fn mixed_schedule_parity_sdash() {
    assert_schedule_parity(&ba(32, 5), 5, &mixed_acceptance_schedule(), Sdash);
}

/// Batches on a cycle: maximal independent sets, then churn.
#[test]
fn cycle_batch_parity() {
    let schedule = vec![
        NetworkEvent::DeleteBatch((0..12).step_by(2).map(NodeId).collect()),
        NetworkEvent::Join {
            neighbors: vec![NodeId(1), NodeId(7)],
        },
        NetworkEvent::DeleteBatch(vec![NodeId(1), NodeId(5), NodeId(9)]),
    ];
    assert_schedule_parity(&cycle_graph(12), 17, &schedule, Dash);
    assert_schedule_parity(&cycle_graph(12), 17, &schedule, Sdash);
}

/// Star hubs stress surrogation (large δ spread) under batches.
#[test]
fn star_batch_parity_sdash() {
    let schedule = vec![
        NetworkEvent::Delete(NodeId(0)),
        NetworkEvent::DeleteBatch(vec![NodeId(3), NodeId(5), NodeId(11)]),
        NetworkEvent::Join {
            neighbors: vec![NodeId(1), NodeId(2)],
        },
        NetworkEvent::DeleteBatch(vec![NodeId(1), NodeId(7)]),
    ];
    assert_schedule_parity(&star_graph(16), 29, &schedule, Sdash);
}

/// Joined nodes get deleted again, re-joined, and batch-killed — the
/// slot-growth paths on both sides must stay in lockstep.
#[test]
fn join_heavy_churn_parity() {
    let mut schedule = Vec::new();
    for i in 0..8u32 {
        schedule.push(NetworkEvent::Join {
            neighbors: vec![NodeId(i), NodeId(i + 2), NodeId(i + 20)],
        });
        schedule.push(NetworkEvent::Delete(NodeId(2 * i)));
    }
    schedule.push(NetworkEvent::DeleteBatch((24..36).map(NodeId).collect()));
    assert_schedule_parity(&ba(24, 3), 3, &schedule, Dash);
    assert_schedule_parity(&ba(24, 3), 3, &schedule, Sdash);
}

//! Exhaustive kill-sweeps: every healing strategy × every attack ×
//! several topologies, auditing connectivity and the forest invariant
//! after every single deletion.

use rand::rngs::StdRng;
use rand::SeedableRng;
use selfheal_core::scenario::{AuditLevel, ScenarioEngine};
use selfheal_core::state::HealingNetwork;
use selfheal_experiments::config::{AttackKind, HealerKind};
use selfheal_graph::generators;
use selfheal_graph::Graph;

fn topologies(seed: u64) -> Vec<(&'static str, Graph)> {
    let mut rng = StdRng::seed_from_u64(seed);
    vec![
        ("ba", generators::barabasi_albert(48, 3, &mut rng)),
        ("ws", generators::watts_strogatz(48, 4, 0.2, &mut rng)),
        ("tree", generators::random_recursive_tree(48, &mut rng)),
        ("kary", generators::KaryTree::new(3, 3).graph),
        ("star", generators::star_graph(48)),
        ("path", generators::path_graph(48)),
        ("cycle", generators::cycle_graph(48)),
        ("grid", generators::grid_graph(6, 8)),
        ("complete", generators::complete_graph(16)),
    ]
}

#[test]
fn every_healer_and_attack_on_every_topology() {
    let attacks = [
        AttackKind::MaxNode,
        AttackKind::NeighborOfMax,
        AttackKind::Random,
        AttackKind::MinDegree,
    ];
    for (name, g) in topologies(42) {
        for healer in HealerKind::figure_set() {
            for attack in attacks {
                let net = HealingNetwork::new(g.clone(), 42);
                let mut engine = ScenarioEngine::new(net, healer.build(), attack.build(7))
                    .with_audit(AuditLevel::Cheap);
                let report = engine.run_to_empty();
                assert_eq!(
                    report.rounds,
                    g.live_node_count() as u64,
                    "{name}/{}/{}: did not run to empty",
                    healer.name(),
                    attack.name()
                );
                assert!(
                    report.violations.is_empty(),
                    "{name}/{}/{}: {:?}",
                    healer.name(),
                    attack.name(),
                    report.violations
                );
            }
        }
    }
}

#[test]
fn full_audit_including_rem_potential_on_small_graphs() {
    // The O(n^2)-per-round Lemma 4/5 potential check, on DASH only (the
    // potential argument is DASH's proof; other healers have no claim).
    for (name, g) in topologies(7) {
        if g.live_node_count() > 30 {
            continue;
        }
        let net = HealingNetwork::new(g, 7);
        let mut engine =
            ScenarioEngine::new(net, HealerKind::Dash.build(), AttackKind::MaxNode.build(1))
                .with_audit(AuditLevel::Full);
        let report = engine.run_to_empty();
        assert!(
            report.violations.is_empty(),
            "{name}: {:?}",
            report.violations
        );
    }
}

#[test]
fn dash_rem_potential_on_ba_graph() {
    let g = generators::barabasi_albert(28, 3, &mut StdRng::seed_from_u64(5));
    let net = HealingNetwork::new(g, 5);
    let mut engine = ScenarioEngine::new(
        net,
        HealerKind::Dash.build(),
        AttackKind::NeighborOfMax.build(5),
    )
    .with_audit(AuditLevel::Full);
    let report = engine.run_to_empty();
    assert!(report.violations.is_empty(), "{:?}", report.violations);
}

#[test]
fn isolated_and_tiny_graphs_are_handled() {
    for n in 1..=4 {
        let g = Graph::new(n); // all isolated
        let net = HealingNetwork::new(g, 1);
        let mut engine =
            ScenarioEngine::new(net, HealerKind::Dash.build(), AttackKind::Random.build(3));
        let report = engine.run_to_empty();
        assert_eq!(report.rounds, n as u64);
        assert_eq!(report.max_delta_ever, 0);
    }
}

#[test]
fn sdash_surrogates_at_least_once_on_big_star_sweep() {
    // A star forces an early binary tree; later deletions leave RT sets
    // with large delta spread, where surrogation should fire.
    let net = HealingNetwork::new(generators::star_graph(64), 9);
    let mut engine =
        ScenarioEngine::new(net, HealerKind::Sdash.build(), AttackKind::MaxNode.build(1));
    let mut surrogated = 0;
    while let Some(rec) = engine.step() {
        if rec.surrogate.is_some() {
            surrogated += 1;
        }
    }
    assert!(
        surrogated > 0,
        "SDASH never surrogated over a 64-node star sweep"
    );
}

#[test]
fn healing_edges_are_local_to_deleted_neighborhood() {
    // Audit the locality contract: every healing edge must connect two
    // former neighbors of the deleted node.
    let g = generators::barabasi_albert(40, 3, &mut StdRng::seed_from_u64(21));
    let net = HealingNetwork::new(g, 21);
    let mut engine = ScenarioEngine::new(
        net,
        HealerKind::Dash.build(),
        AttackKind::NeighborOfMax.build(2),
    );
    // Drive manually so we can see each round's context.
    loop {
        let before = engine.net.clone();
        let Some(rec) = engine.step() else { break };
        let deleted = rec.deleted.expect("adversary events are single deletions");
        let former = before.graph().neighbors(deleted).to_vec();
        // Edges added this round exist in the new G' but not the old one.
        for v in engine.net.graph().live_nodes() {
            for &u in engine.net.healing_graph().neighbors(v) {
                if u < v {
                    continue;
                }
                if !before.healing_graph().has_edge(v, u) {
                    assert!(
                        former.contains(&v) && former.contains(&u),
                        "non-local healing edge ({v}, {u}) after deleting {deleted}"
                    );
                }
            }
        }
    }
}

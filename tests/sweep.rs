//! The sweep fleet's contracts, pinned: worker-count-independent
//! aggregation, golden accounting, seeded event-stream stability, and
//! worst-seed replay.
//!
//! Three different guarantees stack here:
//!
//! 1. **Determinism across parallelism** — the same configuration must
//!    produce a byte-identical canonical aggregate at 1, 2 and 8 worker
//!    threads (runs land on workers nondeterministically; every
//!    aggregation primitive is commutative, so the fold order cannot
//!    show).
//! 2. **Golden accounting** — one small sweep's aggregate is pinned
//!    exactly, so a refactor that silently shifts message or ID-change
//!    accounting (or the RNG streams feeding the adversaries) fails
//!    loudly here.
//! 3. **Stream locking** — every stochastic event source derives its
//!    private RNG from `(seed, source tag)`; the exact event prefixes
//!    are pinned so schedules stay replayable from the seed alone.

use selfheal::prelude::*;
use selfheal_core::scenario::EventSource;

fn small_cfg(adversary: SweepAdversary) -> SweepConfig {
    let mut cfg = SweepConfig::sized(adversary, HealerSpec::Dash, 24);
    cfg.runs = 16;
    cfg.spec.seed = 2008;
    cfg
}

/// Satellite: same seed ⇒ byte-identical aggregate regardless of worker
/// count — for every adversary in the library.
#[test]
fn aggregate_bytes_are_worker_count_independent() {
    for adversary in SweepAdversary::ALL {
        let mut cfg = small_cfg(adversary);
        cfg.threads = 1;
        let reference = run_sweep(&cfg).render_canonical();
        for threads in [2usize, 8] {
            cfg.threads = threads;
            let got = run_sweep(&cfg).render_canonical();
            assert_eq!(
                got,
                reference,
                "{}: aggregate diverged at {threads} threads",
                adversary.name()
            );
        }
    }
}

/// Golden: exact aggregate accounting for one small epidemic sweep. If a
/// deliberate change moves these values, re-pin them and note it in the
/// commit (the RNG-stream dependencies are: BA generation, healing
/// tie-breaks, the epidemic's tagged stream, and ID propagation).
#[test]
fn golden_epidemic_sweep_aggregate() {
    let agg = run_sweep(&small_cfg(SweepAdversary::Epidemic));
    assert_eq!(agg.runs, 16);
    assert_eq!(agg.violations.len(), 0, "{:?}", agg.violations);
    assert_eq!(
        (agg.events, agg.rounds, agg.deletions, agg.joins),
        golden_epidemic_counts(),
        "event accounting changed"
    );
    assert_eq!(
        (
            agg.messages.total(),
            agg.messages.max().unwrap(),
            agg.id_changes.max().unwrap(),
            agg.degree_delta.max().unwrap(),
        ),
        golden_epidemic_histograms(),
        "histogram accounting changed"
    );
    assert_eq!(
        (agg.worst_messages.value, agg.worst_messages.seed),
        golden_epidemic_worst(),
        "worst-seed capture changed"
    );
}

fn golden_epidemic_counts() -> (u64, u64, u64, u64) {
    // Captured from the initial verified sweep implementation.
    (384, 384, 384, 0)
}

fn golden_epidemic_histograms() -> (u64, usize, usize, usize) {
    (16, 240, 3, 2)
}

fn golden_epidemic_worst() -> (u64, u64) {
    (240, 37_124_678_926_523_292)
}

/// Satellite: `RandomChurn` draws from its own tag-derived stream — the
/// exact schedule prefix for a fixed seed and a static network is pinned,
/// so no refactor can silently re-entangle it with another generator or
/// with evaluation order.
#[test]
fn random_churn_stream_is_locked() {
    let net = HealingNetwork::new(generators::path_graph(6), 3);
    let mut churn = RandomChurn::new(42);
    // Against a *static* network the stream depends only on the seed.
    let prefix: Vec<NetworkEvent> = (0..6).map(|_| churn.next_event(&net).unwrap()).collect();
    let mut churn2 = RandomChurn::new(42);
    let again: Vec<NetworkEvent> = (0..6).map(|_| churn2.next_event(&net).unwrap()).collect();
    assert_eq!(prefix, again, "same seed must replay the same schedule");
    let mut other = RandomChurn::new(43);
    let different: Vec<NetworkEvent> = (0..6).map(|_| other.next_event(&net).unwrap()).collect();
    assert_ne!(prefix, different, "different seeds must diverge");
    // Pin the exact prefix (path_graph(6) is static here, so the picks
    // depend only on the tagged stream).
    let expected: Vec<NetworkEvent> = vec![
        NetworkEvent::Delete(NodeId(2)),
        NetworkEvent::Delete(NodeId(0)),
        NetworkEvent::Delete(NodeId(2)),
        NetworkEvent::Delete(NodeId(0)),
        NetworkEvent::Delete(NodeId(2)),
        NetworkEvent::Delete(NodeId(2)),
    ];
    assert_eq!(
        prefix, expected,
        "RandomChurn stream changed — re-pin deliberately"
    );
}

/// The new sources' streams are locked the same way: identical seeds
/// replay, distinct seeds diverge, and sources sharing one seed stay
/// uncorrelated.
#[test]
fn new_source_streams_replay_from_seed_alone() {
    let net = HealingNetwork::new(generators::star_graph(8), 5);
    let first = |mut s: EpidemicChurn| {
        (0..4)
            .map(|_| s.next_event(&net).unwrap())
            .collect::<Vec<_>>()
    };
    assert_eq!(
        first(EpidemicChurn::new(9, 0.4)),
        first(EpidemicChurn::new(9, 0.4))
    );
    assert_ne!(
        first(EpidemicChurn::new(9, 0.4)),
        first(EpidemicChurn::new(10, 0.4))
    );

    let flash = |mut s: FlashCrowd| {
        (0..4)
            .map(|_| s.next_event(&net).unwrap())
            .collect::<Vec<_>>()
    };
    assert_eq!(
        flash(FlashCrowd::new(9, 8, 2)),
        flash(FlashCrowd::new(9, 8, 2))
    );

    let rack = |mut s: RackPartition| {
        (0..2)
            .map(|_| s.next_event(&net).unwrap())
            .collect::<Vec<_>>()
    };
    assert_eq!(
        rack(RackPartition::new(9, 3)),
        rack(RackPartition::new(9, 3))
    );
    assert_ne!(
        rack(RackPartition::new(9, 3)),
        rack(RackPartition::new(11, 3))
    );
}

/// Worst-seed capture is an exact replay handle: rebuilding the run from
/// the captured seed reproduces the captured statistic and yields the
/// full event log.
#[test]
fn worst_seed_replays_exactly() {
    let cfg = small_cfg(SweepAdversary::RackPartition);
    let agg = run_sweep(&cfg);
    assert!(agg.worst_messages.is_observed());
    let (report, log, violations) = replay(&cfg, agg.worst_messages.seed);
    assert_eq!(report.total_messages, agg.worst_messages.value);
    assert_eq!(log.records.len(), report.events as usize);
    assert!(violations.is_empty(), "{violations:?}");
    assert!(log
        .records
        .iter()
        .any(|r| r.kind == EventKind::DeleteBatch && r.victims > 1));
}

/// The fleet's parity mode holds the fabric twin byte-identical on a
/// mixed sweep slice (joins included via flash crowd).
#[test]
fn sweep_parity_mode_is_clean() {
    for adversary in [SweepAdversary::Epidemic, SweepAdversary::FlashCrowd] {
        let mut cfg = SweepConfig::sized(adversary, HealerSpec::Dash, 16);
        cfg.spec.seed = 2008;
        cfg.spec.backend = BackendSpec::Parity;
        cfg.runs = 4;
        cfg.threads = 2;
        let agg = run_sweep(&cfg);
        assert!(
            agg.violations.is_empty(),
            "{}: {:?}",
            adversary.name(),
            agg.violations
        );
    }
}

/// Auditors actually bite inside the fleet: an impossibly tight bound
/// must surface as a violation tagged with a replayable seed.
#[test]
fn fleet_reports_violations_with_seeds() {
    use selfheal_core::invariants::{TheoremAuditor, TheoremBounds};
    use selfheal_core::scenario::{ScenarioEngine, ScriptedEvents};

    // Reproduce one fleet run by hand with a zero degree budget.
    let cfg = small_cfg(SweepAdversary::HighestDegree);
    let seed = selfheal_core::sweep::run_seed(cfg.spec.seed, 0);
    let g = selfheal_core::sweep::initial_graph(&cfg, seed);
    let bounds = TheoremBounds {
        delta_factor: 0.0,
        ..TheoremBounds::default()
    };
    let mut auditor = TheoremAuditor::new(true).with_bounds(bounds);
    let mut engine = ScenarioEngine::new(
        HealingNetwork::new(g, seed),
        Dash,
        ScriptedEvents::default(),
    );
    let mut adversary = MaxNode;
    while let Some(v) = Adversary::pick(&mut adversary, &engine.net) {
        engine.apply_with(NetworkEvent::Delete(v), &mut auditor);
    }
    assert!(!auditor.ok());
    assert!(auditor.violations[0].contains("theorem 1.1"));
}

//! Integration tiers of the verification layer: the exhaustive
//! small-world prover ([`run_universe`]) and the interleaving schedule
//! explorer ([`explore_events`]), at debug-affordable sizes. The full
//! n ≤ 6 (and `--full` n ≤ 7) tiers run release-built via
//! `run-experiments verify` / `make verify-exhaustive`.

use selfheal::prelude::*;
use selfheal_core::exhaustive::{connected_graphs, CONNECTED_COUNTS};
use selfheal_core::scenario::NetworkEvent;
use selfheal_experiments::specrun::run_spec_text;
use selfheal_graph::generators::cycle_graph;

/// OEIS A001349: the enumeration is only a proof if it is the whole
/// universe, so the census is the anchor everything else trusts.
#[test]
fn connected_graph_census_matches_oeis() {
    for (i, &expected) in CONNECTED_COUNTS.iter().enumerate().take(6) {
        assert_eq!(
            connected_graphs(i + 1).len() as u64,
            expected,
            "n = {}",
            i + 1
        );
    }
}

/// Every healer's theorem profile holds over the whole n ≤ 5 universe —
/// every connected graph, every deletion order, representative batch
/// partitions.
#[test]
fn universe_up_to_five_is_clean_for_every_healer() {
    let cfg = UniverseConfig {
        max_n: 5,
        ..UniverseConfig::default()
    };
    let report = run_universe(&cfg).unwrap();
    assert_eq!(report.graphs, 31, "1+1+2+6+21 connected graphs");
    assert_eq!(report.healers, 8);
    // Σ n! over graphs: 1 + 2 + 12 + 144 + 21·120 = 2679 per healer.
    assert_eq!(report.order_runs, 2679 * 8);
    assert_eq!(report.batch_runs, 31 * 2 * 8);
    assert!(report.is_clean(), "{:#?}", report.violations);
}

/// Tentpole attribution: the two new families alone, over the whole
/// n ≤ 5 universe, with exact run accounting — their per-family bounds
/// (ftree: ≤ 3 edges gained per adjacent deletion and 2 log₂ n stretch;
/// ring: ≤ 2 + budget edges per adjacent deletion) plus connectivity
/// hold on every connected graph under every deletion order and the
/// representative batch partitions. This is the proof the ISSUE's
/// family profiles exist to make possible: the full-registry test above
/// would pass even if the new families were silently skipped; the pins
/// here cannot.
#[test]
fn new_families_alone_are_clean_over_the_whole_small_universe() {
    let cfg = UniverseConfig {
        max_n: 5,
        healers: vec![
            HealerSpec::ForgivingTree,
            HealerSpec::RingForgiving { budget: 2 },
        ],
        ..UniverseConfig::default()
    };
    let report = run_universe(&cfg).unwrap();
    assert_eq!(report.graphs, 31);
    assert_eq!(report.healers, 2);
    assert_eq!(report.order_runs, 2679 * 2);
    assert_eq!(report.batch_runs, 31 * 2 * 2);
    assert!(report.is_clean(), "{:#?}", report.violations);
}

/// The explorer proves centralized/distributed parity over *every* DPOR
/// schedule class of a mixed two-batch scenario, for all three
/// fabric-capable healers, and the prune accounting is exact: 6!·4! raw
/// interleavings collapse to 3!·2! classes, each checked twice
/// (canonical + maximally different representative).
#[test]
fn explorer_proves_two_batch_parity_with_exact_prune_accounting() {
    let g = cycle_graph(16);
    let events = vec![
        NetworkEvent::DeleteBatch(vec![NodeId(0), NodeId(2), NodeId(4)]),
        NetworkEvent::Delete(NodeId(8)),
        NetworkEvent::DeleteBatch(vec![NodeId(11), NodeId(13)]),
        NetworkEvent::Join {
            neighbors: vec![NodeId(5), NodeId(6)],
        },
    ];
    for healer in [
        HealerSpec::Dash,
        HealerSpec::Sdash,
        HealerSpec::ForgivingTree,
    ] {
        let report = explore_events(&g, healer, 17, &events, &ExplorerConfig::default()).unwrap();
        assert_eq!(report.batches, 2);
        assert_eq!(report.interleavings, 720 * 24, "6! x 4! notifications");
        assert_eq!(report.classes, 12, "3! x 2! parking orders");
        assert_eq!(report.checked, 24);
        assert_eq!(report.pruned(), 720 * 24 - 12);
        assert!(report.prune_ratio() > 0.999);
        assert!(
            report.is_clean(),
            "{}: {:#?}",
            healer.name(),
            report.violations
        );
    }
}

/// The checked-in `.scn` entries drive the same machinery through the
/// declarative registry (downscaled to n ≤ 5 here so the debug-profile
/// suite stays fast; `make spec-check` runs the checked-in files
/// verbatim, release-built).
#[test]
fn spec_registry_entries_drive_prover_and_explorer() {
    let exhaustive = std::fs::read_to_string("specs/exhaustive_n6.scn")
        .unwrap()
        .replace("complete(6)", "complete(5)");
    let summary = run_spec_text(&exhaustive, None).unwrap();
    assert!(summary.clean(), "{:?}", summary.outcome.violations);
    let u = summary.outcome.universe.as_ref().unwrap();
    assert_eq!(u.graphs, 31);
    assert!(summary.render().contains("universe: graphs 31"));

    let explorer = std::fs::read_to_string("specs/explorer_batch.scn").unwrap();
    let summary = run_spec_text(&explorer, None).unwrap();
    assert!(summary.clean(), "{:?}", summary.outcome.violations);
    let x = summary.outcome.explorer.as_ref().unwrap();
    assert_eq!(x.batches, 2);
    assert_eq!(x.checked, 2 * x.classes);
    assert!(summary.render().contains("explorer: batches 2"));
}

/// Deterministic replay: the universe report is byte-identical across
/// thread counts — the whole aggregate, not just a few fields, pinned
/// via the Debug rendering so any new field is covered automatically.
#[test]
fn universe_report_is_thread_count_invariant() {
    let base = UniverseConfig {
        max_n: 4,
        ..UniverseConfig::default()
    };
    let one = run_universe(&UniverseConfig {
        threads: 1,
        ..base.clone()
    })
    .unwrap();
    let reference = format!("{one:?}");
    for threads in [2, 8] {
        let multi = run_universe(&UniverseConfig {
            threads,
            ..base.clone()
        })
        .unwrap();
        assert_eq!(
            reference,
            format!("{multi:?}"),
            "universe report diverged at {threads} threads"
        );
    }
}

//! The paper's theorems and lemmas as cross-crate integration tests.
//!
//! Theorem 1's four bullets are enforced by the reusable
//! [`TheoremAuditor`] — the same observer every sweep-fleet run carries —
//! so these tests both validate the theorem *and* pin the auditor to the
//! strict per-bullet assertions this file used to hand-roll.

use rand::rngs::StdRng;
use rand::SeedableRng;
use selfheal_core::attack::{Adversary, MaxNode, NeighborOfMax};
use selfheal_core::dash::Dash;
use selfheal_core::invariants::TheoremAuditor;
use selfheal_core::levelattack::run_level_attack;
use selfheal_core::naive::LineHeal;
use selfheal_core::scenario::ScenarioEngine;
use selfheal_core::state::HealingNetwork;
use selfheal_core::strategy::Healer;
use selfheal_graph::generators;
use selfheal_graph::NodeId;

/// Run DASH against `adversary` to empty under the full auditor and
/// return (auditor, final max-delta) for bullet-specific assertions.
fn audited_sweep<A: Adversary>(n: usize, seed: u64, adversary: A) -> (TheoremAuditor, i64) {
    let g = generators::barabasi_albert(n, 3, &mut StdRng::seed_from_u64(seed));
    let mut auditor = TheoremAuditor::new(Dash.preserves_forest());
    let mut engine = ScenarioEngine::new(HealingNetwork::new(g, seed), Dash, adversary);
    let report = engine.run_to_empty_with(&mut auditor);
    auditor.finish(&engine.net, &report);
    (auditor, report.max_delta_ever)
}

/// Theorem 1, bullet 1: degree increase at most 2 log₂ n — across sizes
/// and seeds, under the strongest attack. The auditor enforces the bound
/// after *every* event, strictly stronger than the old end-of-run check.
#[test]
fn theorem1_degree_bound_across_sizes() {
    for n in [32usize, 64, 128, 256] {
        for seed in [1u64, 2, 3] {
            let (auditor, max_delta) = audited_sweep(n, seed, NeighborOfMax::new(seed));
            assert!(auditor.ok(), "n={n} seed={seed}: {:?}", auditor.violations);
            assert!((max_delta as f64) <= 2.0 * (n as f64).log2());
        }
    }
}

/// Theorem 1, bullet 2 (record-breaking): no node changes ID more than
/// 2 ln n times, w.h.p. — tested over many seeds, after every event.
#[test]
fn theorem1_id_changes_bound() {
    for seed in 0..10u64 {
        let (auditor, _) = audited_sweep(128, seed, MaxNode);
        assert!(auditor.ok(), "seed={seed}: {:?}", auditor.violations);
    }
}

/// Theorem 1, bullet 3: messages per node ≤ 2 (d + 2 log n) ln n, where d
/// is the node's initial degree. The *sent* side of the claim is rigorous
/// per node (each of ≤ 2 ln n ID changes broadcasts to ≤ d + 2 log n
/// current neighbors) and is checked strictly by the auditor; the
/// received side is amortized in the paper (neighbor turnover), so the
/// auditor's traffic bound carries a 2x allowance.
#[test]
fn theorem1_message_bound_per_node() {
    for seed in [5u64, 6, 7] {
        let n = 128;
        let g = generators::barabasi_albert(n, 3, &mut StdRng::seed_from_u64(seed));
        let initial_degrees: Vec<usize> = (0..n).map(|i| g.degree(NodeId::from_index(i))).collect();
        let mut auditor = TheoremAuditor::new(true);
        let mut engine =
            ScenarioEngine::new(HealingNetwork::new(g, seed), Dash, NeighborOfMax::new(seed));
        engine.run_to_empty_with(&mut auditor);
        assert!(auditor.ok(), "seed={seed}: {:?}", auditor.violations);
        // Spot-check the raw quantities against the bound the auditor
        // applied, so the auditor itself stays honest.
        let logn = (n as f64).log2();
        let lnn = (n as f64).ln();
        for (i, &d) in initial_degrees.iter().enumerate() {
            let v = NodeId::from_index(i);
            let bound = 2.0 * (d as f64 + 2.0 * logn) * lnn;
            assert!((engine.net.messages_sent(v) as f64) <= bound);
            assert!((engine.net.traffic(v) as f64) <= 2.0 * bound);
        }
    }
}

/// Theorem 1, bullet 4: amortized ID-propagation latency O(log n) over
/// Θ(n) deletions — the auditor's `finish` check.
#[test]
fn theorem1_amortized_latency() {
    for seed in [1u64, 4] {
        let (auditor, _) = audited_sweep(256, seed, MaxNode);
        assert!(auditor.ok(), "seed={seed}: {:?}", auditor.violations);
    }
}

/// Theorem 2: LEVELATTACK forces ≥ D degree increase on M-bounded
/// healers; combined with Theorem 1 the damage is squeezed into
/// [D, 2 log₂ n].
#[test]
fn theorem2_squeeze() {
    for depth in 2..=5u32 {
        let r = run_level_attack(Dash, 2, depth, 99);
        assert!(
            r.max_delta_ever >= depth as i64,
            "depth {depth}: {}",
            r.max_delta_ever
        );
        assert!(
            (r.max_delta_ever as f64) <= 2.0 * (r.n as f64).log2(),
            "depth {depth}: exceeded upper bound"
        );
    }
}

/// Lemma 10: on a tree, the *first* deletion of a degree-d node raises
/// the neighbors' total degree by exactly d - 2 (all neighbors are
/// singleton G' components, so the reconstruction tree spans all d).
#[test]
fn lemma10_degree_sum_on_trees() {
    let mut rng = StdRng::seed_from_u64(31);
    for _ in 0..10 {
        let g = generators::random_recursive_tree(40, &mut rng);
        // Find an internal node (degree >= 2).
        let v = g
            .live_nodes()
            .find(|&v| g.degree(v) >= 2)
            .expect("tree of 40 nodes has an internal node");
        let d = g.degree(v);
        let neighbors: Vec<NodeId> = g.neighbors(v).to_vec();
        let before: usize = neighbors.iter().map(|&u| g.degree(u)).sum();
        let mut net = HealingNetwork::new(g, 1);
        let ctx = net.delete_node(v).unwrap();
        Dash.heal(&mut net, &ctx);
        let after: usize = neighbors.iter().map(|&u| net.graph().degree(u)).sum();
        assert_eq!(
            after as i64 - before as i64,
            d as i64 - 2,
            "degree-{d} node"
        );
    }
}

/// Lemma 11: deleting a node of degree ≥ 3 increases some node's degree,
/// no matter which healing strategy runs.
#[test]
fn lemma11_degree_three_forces_increase() {
    let healers: Vec<Box<dyn Healer>> = vec![
        Box::new(Dash),
        Box::new(selfheal_core::sdash::Sdash),
        Box::new(selfheal_core::naive::BinaryTreeHeal),
        Box::new(LineHeal),
    ];
    for mut healer in healers {
        // Fresh star with 3 spokes: deleting the hub leaves 3 singletons.
        let g = generators::star_graph(4);
        let mut net = HealingNetwork::new(g, 2);
        let before: Vec<i64> = (1..4).map(|v| net.delta(NodeId(v))).collect();
        let ctx = net.delete_node(NodeId(0)).unwrap();
        healer.heal(&mut net, &ctx);
        let gained = (1..4).any(|v| {
            // Degree delta relative to pre-deletion state: the node lost
            // its hub edge (-1), so a net gain means healing added >= 2.
            net.delta(NodeId(v)) > before[(v - 1) as usize]
        });
        assert!(gained, "{}: no node's degree increased", healer.name());
    }
}

/// The Lemma 9 claim in aggregate: total ID-propagation work over a full
/// sweep is O(n log n) messages.
#[test]
fn total_messages_are_quasilinear() {
    let n = 512;
    let g = generators::barabasi_albert(n, 3, &mut StdRng::seed_from_u64(3));
    let net = HealingNetwork::new(g, 3);
    let mut engine = ScenarioEngine::new(net, Dash, MaxNode);
    let report = engine.run_to_empty();
    // Generous constant: the paper's analysis gives O(n log n) message
    // *transmissions*; each transmission is sent once and received once.
    let bound = 16.0 * (n as f64) * (n as f64).ln();
    assert!(
        (report.total_messages as f64) <= bound,
        "{} messages > {bound}",
        report.total_messages
    );
}

//! Churn: interleaved joins and adversarial deletions.
//!
//! "Reconfigurable" networks gain members as well as losing them. This
//! suite drives mixed join/delete workloads — the [`RandomChurn`] event
//! source through the unified [`ScenarioEngine`] — against DASH and SDASH
//! and checks that every invariant the paper proves for the delete-only
//! model extends to the churn setting (with `n` read as "nodes ever
//! created").

use rand::rngs::StdRng;
use rand::SeedableRng;
use selfheal_core::dash::Dash;
use selfheal_core::invariants;
use selfheal_core::scenario::{RandomChurn, ScenarioEngine};
use selfheal_core::sdash::Sdash;
use selfheal_core::state::HealingNetwork;
use selfheal_core::strategy::Healer;
use selfheal_graph::components::is_connected;
use selfheal_graph::forest::is_forest;
use selfheal_graph::generators::barabasi_albert;
use selfheal_graph::NodeId;

fn run_churn<H: Healer>(healer: H, seed: u64, rounds: u64) {
    let g = barabasi_albert(48, 3, &mut StdRng::seed_from_u64(seed));
    let net = HealingNetwork::new(g, seed);
    let mut engine = ScenarioEngine::new(net, healer, RandomChurn::new(seed ^ 0xC0FFEE));
    let name = engine.healer_name();
    for round in 0..rounds {
        if engine.step().is_none() {
            break;
        }
        let net = &engine.net;
        assert!(
            is_connected(net.graph()),
            "{name}: disconnected at churn round {round} (seed {seed})"
        );
        assert!(
            is_forest(net.healing_graph()),
            "{name}: G' cycle at churn round {round} (seed {seed})"
        );
        assert!(
            invariants::weight_conservation_ok(net),
            "{name}: weight leak at churn round {round}"
        );
        let bound = 2.0 * (net.total_created() as f64).log2();
        assert!(
            (net.max_delta_alive() as f64) <= bound,
            "{name}: delta bound broke under churn at round {round}"
        );
    }
    let report = engine.report();
    assert!(report.joins > 0, "{name}: churn produced no joins");
    assert!(report.deletions > 0, "{name}: churn produced no deletions");
}

#[test]
fn dash_survives_churn() {
    for seed in [1u64, 2, 3] {
        run_churn(Dash, seed, 150);
    }
}

#[test]
fn sdash_survives_churn() {
    for seed in [4u64, 5] {
        run_churn(Sdash, seed, 150);
    }
}

#[test]
fn joins_alone_never_affect_healing_state() {
    let g = barabasi_albert(16, 2, &mut StdRng::seed_from_u64(9));
    let mut net = HealingNetwork::new(g, 9);
    for i in 0..20 {
        let target = NodeId(i % 16);
        net.join_node(&[target]).unwrap();
    }
    assert_eq!(net.total_created(), 36);
    assert_eq!(net.healing_graph().edge_count(), 0);
    assert!(is_connected(net.graph()));
    assert!(invariants::weight_conservation_ok(&net));
}

/// A joiner that later dies is healed like any original node.
#[test]
fn joined_nodes_are_healable_victims() {
    let g = barabasi_albert(12, 2, &mut StdRng::seed_from_u64(11));
    let mut net = HealingNetwork::new(g, 11);
    let v = net.join_node(&[NodeId(0), NodeId(5), NodeId(9)]).unwrap();
    let ctx = net.delete_node(v).unwrap();
    let mut dash = Dash;
    let outcome = dash.heal(&mut net, &ctx);
    net.propagate_min_id(&outcome.rt_members);
    assert!(is_connected(net.graph()));
    // All three former attachment points were singleton G' components, so
    // the reconstruction set spans them all.
    assert_eq!(outcome.rt_members.len(), 3);
}

//! Churn: interleaved joins and adversarial deletions.
//!
//! "Reconfigurable" networks gain members as well as losing them. This
//! suite drives mixed join/delete workloads through DASH and SDASH and
//! checks that every invariant the paper proves for the delete-only
//! model extends to the churn setting (with `n` read as "nodes ever
//! created").

use rand::rngs::StdRng;
use rand::SeedableRng;
use selfheal_core::dash::Dash;
use selfheal_core::invariants;
use selfheal_core::sdash::Sdash;
use selfheal_core::state::HealingNetwork;
use selfheal_core::strategy::Healer;
use selfheal_graph::components::is_connected;
use selfheal_graph::forest::is_forest;
use selfheal_graph::generators::barabasi_albert;
use selfheal_graph::NodeId;
use selfheal_sim::SplitMix64;

/// One deterministic churn round: with probability ~1/3 a join (to 1-3
/// random live nodes), otherwise an attack on a random neighbor of the
/// busiest node, healed by `healer`.
fn churn_round<H: Healer>(net: &mut HealingNetwork, healer: &mut H, rng: &mut SplitMix64) {
    let live: Vec<NodeId> = net.graph().live_nodes().collect();
    if live.is_empty() {
        return;
    }
    if rng.gen_range(3) == 0 {
        let k = 1 + rng.gen_range(3) as usize;
        let mut targets: Vec<NodeId> = Vec::with_capacity(k);
        for _ in 0..k.min(live.len()) {
            let cand = *rng.choose(&live);
            if !targets.contains(&cand) {
                targets.push(cand);
            }
        }
        net.join_node(&targets).unwrap();
    } else {
        let hub = net.graph().max_degree_node().unwrap();
        let victim = match net.graph().neighbors(hub) {
            [] => hub,
            nbrs => *rng.choose(nbrs),
        };
        let ctx = net.delete_node(victim).unwrap();
        let outcome = healer.heal(net, &ctx);
        net.propagate_min_id(&outcome.rt_members);
    }
}

fn run_churn<H: Healer>(mut healer: H, seed: u64, rounds: usize) {
    let g = barabasi_albert(48, 3, &mut StdRng::seed_from_u64(seed));
    let mut net = HealingNetwork::new(g, seed);
    let mut rng = SplitMix64::new(seed ^ 0xC0FFEE);
    for round in 0..rounds {
        churn_round(&mut net, &mut healer, &mut rng);
        assert!(
            is_connected(net.graph()),
            "{}: disconnected at churn round {round} (seed {seed})",
            healer.name()
        );
        assert!(
            is_forest(net.healing_graph()),
            "{}: G' cycle at churn round {round} (seed {seed})",
            healer.name()
        );
        assert!(
            invariants::weight_conservation_ok(&net),
            "{}: weight leak at churn round {round}",
            healer.name()
        );
        let bound = 2.0 * (net.total_created() as f64).log2();
        assert!(
            (net.max_delta_alive() as f64) <= bound,
            "{}: delta bound broke under churn at round {round}",
            healer.name()
        );
    }
}

#[test]
fn dash_survives_churn() {
    for seed in [1u64, 2, 3] {
        run_churn(Dash, seed, 150);
    }
}

#[test]
fn sdash_survives_churn() {
    for seed in [4u64, 5] {
        run_churn(Sdash, seed, 150);
    }
}

#[test]
fn joins_alone_never_affect_healing_state() {
    let g = barabasi_albert(16, 2, &mut StdRng::seed_from_u64(9));
    let mut net = HealingNetwork::new(g, 9);
    for i in 0..20 {
        let target = NodeId(i % 16);
        net.join_node(&[target]).unwrap();
    }
    assert_eq!(net.total_created(), 36);
    assert_eq!(net.healing_graph().edge_count(), 0);
    assert!(is_connected(net.graph()));
    assert!(invariants::weight_conservation_ok(&net));
}

/// A joiner that later dies is healed like any original node.
#[test]
fn joined_nodes_are_healable_victims() {
    let g = barabasi_albert(12, 2, &mut StdRng::seed_from_u64(11));
    let mut net = HealingNetwork::new(g, 11);
    let v = net.join_node(&[NodeId(0), NodeId(5), NodeId(9)]).unwrap();
    let ctx = net.delete_node(v).unwrap();
    let mut dash = Dash;
    let outcome = dash.heal(&mut net, &ctx);
    net.propagate_min_id(&outcome.rt_members);
    assert!(is_connected(net.graph()));
    // All three former attachment points were singleton G' components, so
    // the reconstruction set spans them all.
    assert_eq!(outcome.rt_members.len(), 3);
}

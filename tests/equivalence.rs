//! Centralized engine vs. distributed simulator equivalence.
//!
//! The figures are produced by the centralized engine, whose message
//! accounting is *modeled* (Lemma 8 accounting). Here the same DASH
//! algorithm runs as a real message-passing protocol on the discrete
//! event simulator, against the same victim sequence, and we assert the
//! two implementations agree **exactly**: topology, healing forest,
//! component IDs, ID-change counts, and per-node message counts.

use rand::rngs::StdRng;
use rand::SeedableRng;
use selfheal_core::dash::Dash;
use selfheal_core::distributed::DistributedDash;
use selfheal_core::sdash::Sdash;
use selfheal_core::state::HealingNetwork;
use selfheal_core::strategy::Healer;
use selfheal_graph::generators::{barabasi_albert, star_graph};
use selfheal_graph::{Graph, NodeId};
use selfheal_sim::{Simulator, Topology};

fn mirror_topology(g: &Graph) -> Topology {
    let edges: Vec<(u32, u32)> = g.edges().map(|e| (e.lo().0, e.hi().0)).collect();
    Topology::from_edges(g.node_bound(), &edges)
}

/// Drive both implementations with the same (max-degree) victim sequence
/// and compare all observable state after every round.
fn assert_equivalent_run(g: Graph, seed: u64, kills: usize) {
    assert_equivalent_run_with(g, seed, kills, false)
}

fn assert_equivalent_run_with(g: Graph, seed: u64, kills: usize, sdash: bool) {
    let n = g.node_bound();
    let topo = mirror_topology(&g);
    let degrees: Vec<u32> = (0..n as u32)
        .map(|v| topo.neighbors(v).len() as u32)
        .collect();
    let mut net = HealingNetwork::new(g, seed);
    let protocol = if sdash {
        DistributedDash::sdash(degrees, seed)
    } else {
        DistributedDash::new(degrees, seed)
    };
    let mut sim = Simulator::new(topo, protocol);
    let mut dash_healer = Dash;
    let mut sdash_healer = Sdash;

    // Sanity: both assigned the same initial IDs.
    for v in 0..n as u32 {
        assert_eq!(
            net.initial_id(NodeId(v)),
            sim.protocol.initial_id(v),
            "initial id of {v}"
        );
    }

    for round in 0..kills {
        let Some(victim) = net.graph().max_degree_node() else {
            break;
        };
        // Both sides see the same topology, so the same victim.
        let sim_victim = sim
            .topology
            .live_nodes()
            .max_by_key(|&v| (sim.topology.neighbors(v).len(), std::cmp::Reverse(v)))
            .unwrap();
        assert_eq!(victim.0, sim_victim, "round {round}: victim mismatch");

        // Centralized round.
        let ctx = net.delete_node(victim).unwrap();
        let outcome = if sdash {
            sdash_healer.heal(&mut net, &ctx)
        } else {
            dash_healer.heal(&mut net, &ctx)
        };
        net.propagate_min_id(&outcome.rt_members);

        // Distributed round.
        sim.delete_node(victim.0);
        sim.run_to_quiescence();

        // Compare every live node's observable state.
        let live: Vec<u32> = sim.topology.live_nodes().collect();
        assert_eq!(
            live,
            net.graph().live_nodes().map(|v| v.0).collect::<Vec<_>>(),
            "round {round}: live sets differ"
        );
        for &v in &live {
            let nv = NodeId(v);
            assert_eq!(
                net.graph()
                    .neighbors(nv)
                    .iter()
                    .map(|u| u.0)
                    .collect::<Vec<_>>(),
                sim.topology.neighbors(v),
                "round {round}: G adjacency of {v}"
            );
            assert_eq!(
                net.healing_graph()
                    .neighbors(nv)
                    .iter()
                    .map(|u| u.0)
                    .collect::<Vec<_>>(),
                sim.protocol
                    .gprime_neighbors(v)
                    .iter()
                    .copied()
                    .collect::<Vec<_>>(),
                "round {round}: G' adjacency of {v}"
            );
            assert_eq!(
                net.comp_id(nv),
                sim.protocol.comp_id(v),
                "round {round}: component id of {v}"
            );
            assert_eq!(
                net.id_changes(nv) as u64,
                sim.protocol.id_changes(v) as u64,
                "round {round}: id-change count of {v}"
            );
            assert_eq!(
                net.messages_sent(nv),
                sim.metrics.sent(v),
                "round {round}: sent count of {v}"
            );
            assert_eq!(
                net.messages_received(nv),
                sim.metrics.received(v),
                "round {round}: received count of {v}"
            );
        }
    }
}

#[test]
fn star_equivalence() {
    assert_equivalent_run(star_graph(12), 3, 12);
}

#[test]
fn ba_equivalence_full_sweep() {
    let g = barabasi_albert(64, 3, &mut StdRng::seed_from_u64(11));
    assert_equivalent_run(g, 11, 64);
}

#[test]
fn ba_equivalence_across_seeds() {
    for seed in [1u64, 2, 5, 9] {
        let g = barabasi_albert(40, 2, &mut StdRng::seed_from_u64(seed));
        assert_equivalent_run(g, seed, 40);
    }
}

#[test]
fn path_equivalence() {
    assert_equivalent_run(selfheal_graph::generators::path_graph(20), 7, 20);
}

#[test]
fn kary_tree_equivalence() {
    let tree = selfheal_graph::generators::KaryTree::new(3, 3);
    assert_equivalent_run(tree.graph, 13, 40);
}

#[test]
fn sdash_equivalence_full_sweep() {
    let g = barabasi_albert(64, 3, &mut StdRng::seed_from_u64(23));
    assert_equivalent_run_with(g, 23, 64, true);
}

#[test]
fn sdash_equivalence_on_star() {
    // Stars exercise the surrogation branch heavily (large δ spread
    // develops after the first hub deletion).
    assert_equivalent_run_with(star_graph(16), 29, 16, true);
}

/// Asynchrony robustness: under adversarial per-message jitter the ID
/// broadcast may take different routes (and more adoptions), but the
/// *fixed point* — topology, healing forest and final component IDs — is
/// identical to the synchronous run. Message counts may legitimately
/// differ, so only state is compared.
#[test]
fn async_delivery_reaches_the_same_fixed_point() {
    let n = 48;
    let seed = 17u64;
    let g = barabasi_albert(n, 3, &mut StdRng::seed_from_u64(seed));
    let topo_sync = mirror_topology(&g);
    let degrees: Vec<u32> = (0..n as u32)
        .map(|v| topo_sync.neighbors(v).len() as u32)
        .collect();

    let mut sync = Simulator::new(topo_sync, DistributedDash::new(degrees.clone(), seed));
    let mut jittered = Simulator::new(mirror_topology(&g), DistributedDash::new(degrees, seed));
    jittered.set_latency_jitter(777, 5);

    for _ in 0..n / 2 {
        let victim = sync
            .topology
            .live_nodes()
            .max_by_key(|&v| (sync.topology.neighbors(v).len(), std::cmp::Reverse(v)))
            .unwrap();
        sync.delete_node(victim);
        sync.run_to_quiescence();
        jittered.delete_node(victim);
        jittered.run_to_quiescence();

        for v in sync.topology.live_nodes() {
            assert_eq!(
                sync.topology.neighbors(v),
                jittered.topology.neighbors(v),
                "topology diverged at {v}"
            );
            assert_eq!(
                sync.protocol.comp_id(v),
                jittered.protocol.comp_id(v),
                "component id diverged at {v}"
            );
            assert_eq!(
                sync.protocol.gprime_neighbors(v),
                jittered.protocol.gprime_neighbors(v),
                "healing forest diverged at {v}"
            );
        }
    }
}

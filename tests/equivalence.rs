//! Centralized engine vs. distributed simulator equivalence.
//!
//! The figures are produced by the centralized engine, whose message
//! accounting is *modeled* (Lemma 8 accounting). Here the same DASH
//! algorithm runs as a real message-passing protocol on the discrete
//! event simulator, against the same victim sequence, and we assert the
//! two implementations agree **exactly**: topology, healing forest,
//! component IDs, ID-change counts, and per-node message counts.

use rand::rngs::StdRng;
use rand::SeedableRng;
use selfheal_core::dash::Dash;
use selfheal_core::distributed::DistributedDash;
use selfheal_core::sdash::Sdash;
use selfheal_core::state::HealingNetwork;
use selfheal_core::strategy::Healer;
use selfheal_graph::generators::{barabasi_albert, star_graph};
use selfheal_graph::{Graph, NodeId};
use selfheal_sim::{Simulator, Topology};

fn mirror_topology(g: &Graph) -> Topology {
    let edges: Vec<(u32, u32)> = g.edges().map(|e| (e.lo().0, e.hi().0)).collect();
    Topology::from_edges(g.node_bound(), &edges)
}

/// Drive both implementations with the same (max-degree) victim sequence
/// and compare all observable state after every round.
fn assert_equivalent_run(g: Graph, seed: u64, kills: usize) {
    assert_equivalent_run_with(g, seed, kills, false)
}

fn assert_equivalent_run_with(g: Graph, seed: u64, kills: usize, sdash: bool) {
    let n = g.node_bound();
    let topo = mirror_topology(&g);
    let degrees: Vec<u32> = (0..n as u32)
        .map(|v| topo.neighbors(v).len() as u32)
        .collect();
    let mut net = HealingNetwork::new(g, seed);
    let protocol = if sdash {
        DistributedDash::sdash(degrees, seed)
    } else {
        DistributedDash::new(degrees, seed)
    };
    let mut sim = Simulator::new(topo, protocol);
    let mut dash_healer = Dash;
    let mut sdash_healer = Sdash;

    // Sanity: both assigned the same initial IDs.
    for v in 0..n as u32 {
        assert_eq!(
            net.initial_id(NodeId(v)),
            sim.protocol.initial_id(v),
            "initial id of {v}"
        );
    }

    for round in 0..kills {
        let Some(victim) = net.graph().max_degree_node() else {
            break;
        };
        // Both sides see the same topology, so the same victim.
        let sim_victim = sim
            .topology
            .live_nodes()
            .max_by_key(|&v| (sim.topology.neighbors(v).len(), std::cmp::Reverse(v)))
            .unwrap();
        assert_eq!(victim.0, sim_victim, "round {round}: victim mismatch");

        // Centralized round.
        let ctx = net.delete_node(victim).unwrap();
        let outcome = if sdash {
            sdash_healer.heal(&mut net, &ctx)
        } else {
            dash_healer.heal(&mut net, &ctx)
        };
        net.propagate_min_id(&outcome.rt_members);

        // Distributed round.
        sim.delete_node(victim.0);
        sim.run_to_quiescence();

        // Compare every live node's observable state.
        let live: Vec<u32> = sim.topology.live_nodes().collect();
        assert_eq!(
            live,
            net.graph().live_nodes().map(|v| v.0).collect::<Vec<_>>(),
            "round {round}: live sets differ"
        );
        for &v in &live {
            let nv = NodeId(v);
            assert_eq!(
                net.graph()
                    .neighbors(nv)
                    .iter()
                    .map(|u| u.0)
                    .collect::<Vec<_>>(),
                sim.topology.neighbors(v),
                "round {round}: G adjacency of {v}"
            );
            assert_eq!(
                net.healing_graph()
                    .neighbors(nv)
                    .iter()
                    .map(|u| u.0)
                    .collect::<Vec<_>>(),
                sim.protocol
                    .gprime_neighbors(v)
                    .iter()
                    .copied()
                    .collect::<Vec<_>>(),
                "round {round}: G' adjacency of {v}"
            );
            assert_eq!(
                net.comp_id(nv),
                sim.protocol.comp_id(v),
                "round {round}: component id of {v}"
            );
            assert_eq!(
                net.id_changes(nv) as u64,
                sim.protocol.id_changes(v) as u64,
                "round {round}: id-change count of {v}"
            );
            assert_eq!(
                net.messages_sent(nv),
                sim.metrics.sent(v),
                "round {round}: sent count of {v}"
            );
            assert_eq!(
                net.messages_received(nv),
                sim.metrics.received(v),
                "round {round}: received count of {v}"
            );
        }
    }
}

#[test]
fn star_equivalence() {
    assert_equivalent_run(star_graph(12), 3, 12);
}

#[test]
fn ba_equivalence_full_sweep() {
    let g = barabasi_albert(64, 3, &mut StdRng::seed_from_u64(11));
    assert_equivalent_run(g, 11, 64);
}

#[test]
fn ba_equivalence_across_seeds() {
    for seed in [1u64, 2, 5, 9] {
        let g = barabasi_albert(40, 2, &mut StdRng::seed_from_u64(seed));
        assert_equivalent_run(g, seed, 40);
    }
}

#[test]
fn path_equivalence() {
    assert_equivalent_run(selfheal_graph::generators::path_graph(20), 7, 20);
}

#[test]
fn kary_tree_equivalence() {
    let tree = selfheal_graph::generators::KaryTree::new(3, 3);
    assert_equivalent_run(tree.graph, 13, 40);
}

#[test]
fn sdash_equivalence_full_sweep() {
    let g = barabasi_albert(64, 3, &mut StdRng::seed_from_u64(23));
    assert_equivalent_run_with(g, 23, 64, true);
}

#[test]
fn sdash_equivalence_on_star() {
    // Stars exercise the surrogation branch heavily (large δ spread
    // develops after the first hub deletion).
    assert_equivalent_run_with(star_graph(16), 29, 16, true);
}

/// Uniform-component broadcast vs. the exact BFS. The engine and
/// `heal_batch` route every post-heal broadcast through
/// [`HealingNetwork::propagate_min_id_uniform`], which is exact only
/// under the invariant that every `G'` component is ID-uniform when the
/// broadcast starts. These sweeps drive twin networks — one broadcasting
/// exactly, one through the restricted fast path — across healers, victim
/// policies and seeds, and require *identical* reports and identical
/// per-node observable state after every round.
fn assert_uniform_propagation_equivalent(
    g: Graph,
    seed: u64,
    sdash: bool,
    pick: impl Fn(&HealingNetwork, usize) -> Option<NodeId>,
) {
    let mut exact = HealingNetwork::new(g.clone(), seed);
    let mut fast = HealingNetwork::new(g, seed);
    let mut dash = Dash;
    let mut sd = Sdash;
    for round in 0.. {
        let Some(victim) = pick(&exact, round) else {
            break;
        };
        let ctx_e = exact.delete_node(victim).unwrap();
        let ctx_f = fast.delete_node(victim).unwrap();
        let (out_e, out_f) = if sdash {
            (sd.heal(&mut exact, &ctx_e), sd.heal(&mut fast, &ctx_f))
        } else {
            (dash.heal(&mut exact, &ctx_e), dash.heal(&mut fast, &ctx_f))
        };
        assert_eq!(out_e.rt_members, out_f.rt_members, "round {round}: RT");
        assert_eq!(out_e.edges_added, out_f.edges_added, "round {round}: edges");
        let rep_e = exact.propagate_min_id(&out_e.rt_members);
        let rep_f = fast.propagate_min_id_uniform(&out_f.rt_members);
        assert_eq!(rep_e, rep_f, "round {round}: propagation reports differ");
        for v in exact.graph().live_nodes() {
            assert_eq!(
                exact.comp_id(v),
                fast.comp_id(v),
                "round {round}: comp of {v}"
            );
            assert_eq!(
                exact.id_changes(v),
                fast.id_changes(v),
                "round {round}: id changes of {v}"
            );
            assert_eq!(
                exact.messages_sent(v),
                fast.messages_sent(v),
                "round {round}: messages of {v}"
            );
        }
    }
}

fn max_degree_pick(net: &HealingNetwork, _round: usize) -> Option<NodeId> {
    net.graph().max_degree_node()
}

#[test]
fn uniform_propagation_equivalent_on_max_degree_sweeps() {
    for seed in [3u64, 11, 41] {
        let g = barabasi_albert(72, 3, &mut StdRng::seed_from_u64(seed));
        assert_uniform_propagation_equivalent(g, seed, false, max_degree_pick);
    }
}

#[test]
fn uniform_propagation_equivalent_for_sdash() {
    for seed in [5u64, 19] {
        let g = barabasi_albert(64, 3, &mut StdRng::seed_from_u64(seed));
        assert_uniform_propagation_equivalent(g, seed, true, max_degree_pick);
    }
    assert_uniform_propagation_equivalent(star_graph(24), 7, true, max_degree_pick);
}

#[test]
fn uniform_propagation_equivalent_under_random_victims() {
    // Pseudo-random victim order (deterministic hash of the round), which
    // exercises mid-graph merges rather than hub-first cascades.
    for seed in [2u64, 13] {
        let g = barabasi_albert(56, 2, &mut StdRng::seed_from_u64(seed));
        assert_uniform_propagation_equivalent(g, seed, false, |net, round| {
            let live: Vec<NodeId> = net.graph().live_nodes().collect();
            if live.is_empty() {
                None
            } else {
                let idx = (round.wrapping_mul(2654435761) ^ round >> 3) % live.len();
                Some(live[idx])
            }
        });
    }
}

#[test]
fn uniform_propagation_equivalent_on_paths_and_trees() {
    assert_uniform_propagation_equivalent(
        selfheal_graph::generators::path_graph(30),
        9,
        false,
        max_degree_pick,
    );
    let tree = selfheal_graph::generators::KaryTree::new(3, 4);
    assert_uniform_propagation_equivalent(tree.graph, 15, false, max_degree_pick);
}

/// Asynchrony robustness: under adversarial per-message jitter the ID
/// broadcast may take different routes (and more adoptions), but the
/// *fixed point* — topology, healing forest and final component IDs — is
/// identical to the synchronous run. Message counts may legitimately
/// differ, so only state is compared.
#[test]
fn async_delivery_reaches_the_same_fixed_point() {
    let n = 48;
    let seed = 17u64;
    let g = barabasi_albert(n, 3, &mut StdRng::seed_from_u64(seed));
    let topo_sync = mirror_topology(&g);
    let degrees: Vec<u32> = (0..n as u32)
        .map(|v| topo_sync.neighbors(v).len() as u32)
        .collect();

    let mut sync = Simulator::new(topo_sync, DistributedDash::new(degrees.clone(), seed));
    let mut jittered = Simulator::new(mirror_topology(&g), DistributedDash::new(degrees, seed));
    jittered.set_latency_jitter(777, 5);

    for _ in 0..n / 2 {
        let victim = sync
            .topology
            .live_nodes()
            .max_by_key(|&v| (sync.topology.neighbors(v).len(), std::cmp::Reverse(v)))
            .unwrap();
        sync.delete_node(victim);
        sync.run_to_quiescence();
        jittered.delete_node(victim);
        jittered.run_to_quiescence();

        for v in sync.topology.live_nodes() {
            assert_eq!(
                sync.topology.neighbors(v),
                jittered.topology.neighbors(v),
                "topology diverged at {v}"
            );
            assert_eq!(
                sync.protocol.comp_id(v),
                jittered.protocol.comp_id(v),
                "component id diverged at {v}"
            );
            assert_eq!(
                sync.protocol.gprime_neighbors(v),
                jittered.protocol.gprime_neighbors(v),
                "healing forest diverged at {v}"
            );
        }
    }
}

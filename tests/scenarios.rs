//! Property tests for the unified event-driven engine: arbitrary
//! interleavings of `Delete`, `DeleteBatch` and `Join` events — including
//! stale references to nodes that died earlier in the schedule — must
//! keep the paper's invariants (connectivity of survivors, `G'` forest,
//! the `δ ≤ 2 log₂ n` bound over nodes-ever-created, and weight
//! conservation) under both DASH and SDASH, after every single event.
//!
//! Schedules are generated blindly from a seeded RNG *without* tracking
//! liveness, which deliberately exercises the engine's sanitization: dead
//! victims become no-ops, dependent batches are thinned to independent
//! sets, and joins whose targets all died are skipped.

mod common;

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use selfheal_core::attack::{CutVertex, EpidemicChurn, FlashCrowd, RackPartition};
use selfheal_core::dash::Dash;
use selfheal_core::distributed::HealMode;
use selfheal_core::distributed_runner::DistributedScenarioRunner;
use selfheal_core::invariants::{self, TheoremAuditor};
use selfheal_core::scenario::{
    EventRecord, EventSource, NetworkEvent, ScenarioEngine, ScriptedEvents,
};
use selfheal_core::sdash::Sdash;
use selfheal_core::state::HealingNetwork;
use selfheal_core::strategy::Healer;
use selfheal_graph::components::is_connected;
use selfheal_graph::forest::is_forest;
use selfheal_graph::generators::barabasi_albert;
use selfheal_graph::NodeId;
use selfheal_sim::SplitMix64;

/// Build a blind random schedule: ids are drawn from the range of nodes
/// that *could* exist by that point (initial + joins so far), whether or
/// not they are still alive.
fn random_schedule(n: usize, events: usize, seed: u64) -> Vec<NetworkEvent> {
    let mut rng = SplitMix64::new(seed);
    let mut created = n as u64;
    let mut schedule = Vec::with_capacity(events);
    for _ in 0..events {
        let any_node = |rng: &mut SplitMix64, created: u64| NodeId(rng.gen_range(created) as u32);
        match rng.gen_range(6) {
            0..=2 => schedule.push(NetworkEvent::Delete(any_node(&mut rng, created))),
            3 | 4 => {
                let k = 2 + rng.gen_range(5) as usize;
                let victims = (0..k).map(|_| any_node(&mut rng, created)).collect();
                schedule.push(NetworkEvent::DeleteBatch(victims));
            }
            _ => {
                let k = 1 + rng.gen_range(3) as usize;
                let neighbors = (0..k).map(|_| any_node(&mut rng, created)).collect();
                schedule.push(NetworkEvent::Join { neighbors });
                created += 1;
            }
        }
    }
    schedule
}

fn check_schedule<H: Healer>(healer: H, n: usize, events: usize, seed: u64) -> Result<(), String> {
    let g = barabasi_albert(n, 2, &mut StdRng::seed_from_u64(seed));
    let net = HealingNetwork::new(g, seed);
    let schedule = random_schedule(n, events, seed ^ 0x5EED);
    let mut engine = ScenarioEngine::new(net, healer, ScriptedEvents::new(schedule));
    let mut failure: Option<String> = None;
    let mut audit = |net: &HealingNetwork, rec: &EventRecord| {
        if failure.is_some() {
            return;
        }
        if !is_connected(net.graph()) {
            failure = Some(format!("event {}: survivors disconnected", rec.event));
        } else if !is_forest(net.healing_graph()) {
            failure = Some(format!("event {}: G' is not a forest", rec.event));
        } else if !invariants::weight_conservation_ok(net) {
            failure = Some(format!("event {}: weight leaked", rec.event));
        } else {
            let bound = 2.0 * (net.total_created() as f64).log2();
            let max_delta = net.max_delta_alive();
            if (max_delta as f64) > bound {
                failure = Some(format!(
                    "event {}: delta {max_delta} exceeds 2 log2 n = {bound}",
                    rec.event
                ));
            }
        }
    };
    let report = engine.run_to_empty_with(&mut audit);
    if let Some(f) = failure {
        return Err(f);
    }
    // Node conservation: everything ever created is either deleted or live.
    let live = engine.net.graph().live_node_count() as u64;
    if report.deletions + live != engine.net.total_created() as u64 {
        return Err(format!(
            "node conservation broke: {} deleted + {live} live != {} created",
            report.deletions,
            engine.net.total_created()
        ));
    }
    Ok(())
}

/// Distributed-vs-centralized parity on a blind random schedule: the
/// real message-passing protocol (batch kills with interleaved
/// notifications, joins, quiescence-barrier healing) must reproduce the
/// engine's topology, healing forest, component IDs and message counts
/// exactly. The curated-schedule version of this check lives in
/// `tests/distributed_parity.rs`; this one fuzzes the schedule space.
fn check_distributed_parity<H: Healer>(
    healer: H,
    mode: HealMode,
    n: usize,
    events: usize,
    seed: u64,
) -> Result<(), String> {
    let g = barabasi_albert(n, 2, &mut StdRng::seed_from_u64(seed));
    let schedule = random_schedule(n, events, seed ^ 0xD157);
    let net = HealingNetwork::new(g.clone(), seed);
    let mut engine = ScenarioEngine::new(net, healer, ScriptedEvents::new(schedule.clone()));
    let mut runner = DistributedScenarioRunner::with_mode(mode, &g, seed);
    for event in &schedule {
        let central = engine.step().expect("schedule not exhausted");
        let dist = runner.apply(event);
        common::compare_event(&central, &dist)?;
    }
    common::compare_final_state(&engine.net, &runner)
}

/// Drive one of the structural adversaries against a healer under the
/// full [`TheoremAuditor`] — the library sources generate their own
/// schedules against the evolving network, so this fuzzes the adversary
/// logic itself, not just blind event lists.
fn check_adversary_source<H: Healer, S: EventSource>(
    healer: H,
    mut source: S,
    n: usize,
    max_events: usize,
    seed: u64,
) -> Result<(), String> {
    let g = barabasi_albert(n, 2, &mut StdRng::seed_from_u64(seed));
    let mut auditor = TheoremAuditor::new(healer.preserves_forest());
    let mut engine = ScenarioEngine::new(
        HealingNetwork::new(g, seed),
        healer,
        ScriptedEvents::default(),
    );
    for _ in 0..max_events {
        let Some(event) = source.next_event(&engine.net) else {
            break;
        };
        engine.apply_with(event, &mut auditor);
    }
    let report = engine.finish();
    auditor.finish(&engine.net, &report);
    if !auditor.ok() {
        return Err(format!("{}: {:?}", source.name(), auditor.violations));
    }
    Ok(())
}

/// Distributed-vs-centralized parity with a *live* event source: the
/// source consults the engine's evolving state, each event is applied to
/// both sides in lockstep, and the shared comparator enforces the same
/// byte-identity as the curated and blind-schedule parity suites.
fn check_source_parity<H: Healer, S: EventSource>(
    healer: H,
    mode: HealMode,
    mut source: S,
    n: usize,
    max_events: usize,
    seed: u64,
) -> Result<(), String> {
    let g = barabasi_albert(n, 2, &mut StdRng::seed_from_u64(seed));
    let mut runner = DistributedScenarioRunner::with_mode(mode, &g, seed);
    let mut engine = ScenarioEngine::new(
        HealingNetwork::new(g, seed),
        healer,
        ScriptedEvents::default(),
    );
    for _ in 0..max_events {
        let Some(event) = source.next_event(&engine.net) else {
            break;
        };
        let central = engine.apply(event.clone());
        let dist = runner.apply(&event);
        common::compare_event(&central, &dist)?;
    }
    common::compare_final_state(&engine.net, &runner)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// DASH holds every invariant for every interleaving.
    #[test]
    fn dash_survives_mixed_event_schedules(
        n in 8usize..40,
        events in 10usize..80,
        seed in 0u64..10_000,
    ) {
        let result = check_schedule(Dash, n, events, seed);
        prop_assert!(result.is_ok(), "{:?}", result);
    }

    /// SDASH (surrogation) holds the same invariants.
    #[test]
    fn sdash_survives_mixed_event_schedules(
        n in 8usize..40,
        events in 10usize..80,
        seed in 0u64..10_000,
    ) {
        let result = check_schedule(Sdash, n, events, seed);
        prop_assert!(result.is_ok(), "{:?}", result);
    }

    /// The distributed protocol reproduces the engine exactly on random
    /// mixed schedules under DASH.
    #[test]
    fn dash_distributed_parity_on_mixed_schedules(
        n in 8usize..32,
        events in 10usize..60,
        seed in 0u64..10_000,
    ) {
        let result = check_distributed_parity(Dash, HealMode::Dash, n, events, seed);
        prop_assert!(result.is_ok(), "{:?}", result);
    }

    /// Same parity under SDASH (surrogation under interleaved batches).
    #[test]
    fn sdash_distributed_parity_on_mixed_schedules(
        n in 8usize..32,
        events in 10usize..60,
        seed in 0u64..10_000,
    ) {
        let result = check_distributed_parity(Sdash, HealMode::Sdash, n, events, seed);
        prop_assert!(result.is_ok(), "{:?}", result);
    }

    /// Epidemic churn keeps Theorem 1 under both healers (the failure
    /// front clusters in already-damaged regions — the hardest locality
    /// pattern for the degree bound).
    #[test]
    fn epidemic_churn_keeps_theorem1(
        n in 8usize..40,
        seed in 0u64..10_000,
        p in 0u64..=100,
    ) {
        let source = EpidemicChurn::new(seed, p as f64 / 100.0);
        let result = check_adversary_source(Dash, source, n, 200, seed);
        prop_assert!(result.is_ok(), "{:?}", result);
        let source = EpidemicChurn::new(seed, p as f64 / 100.0);
        let result = check_adversary_source(Sdash, source, n, 200, seed);
        prop_assert!(result.is_ok(), "{:?}", result);
    }

    /// Flash crowds (join bursts onto the hub + hub failures) keep
    /// Theorem 1 with n read as nodes-ever-created.
    #[test]
    fn flash_crowd_keeps_theorem1(
        n in 8usize..40,
        seed in 0u64..10_000,
        joins in 1usize..24,
        burst in 1usize..6,
    ) {
        let source = FlashCrowd::new(seed, joins, burst);
        let result = check_adversary_source(Dash, source, n, 300, seed);
        prop_assert!(result.is_ok(), "{:?}", result);
    }

    /// Rack-batch partitions keep Theorem 1 (the auditor waives only the
    /// forest claim, which the paper makes for sequential deletions).
    #[test]
    fn rack_partition_keeps_theorem1(
        n in 8usize..40,
        seed in 0u64..10_000,
        rack in 2usize..8,
    ) {
        let source = RackPartition::new(seed, rack);
        let result = check_adversary_source(Dash, source, n, 200, seed);
        prop_assert!(result.is_ok(), "{:?}", result);
        let source = RackPartition::new(seed, rack);
        let result = check_adversary_source(Sdash, source, n, 200, seed);
        prop_assert!(result.is_ok(), "{:?}", result);
    }

    /// Cut-vertex targeting keeps Theorem 1 (every deletion would
    /// disconnect the graph if healing failed to respond).
    #[test]
    fn cut_vertex_keeps_theorem1(n in 8usize..40, seed in 0u64..10_000) {
        let result = check_adversary_source(Dash, CutVertex, n, 200, seed);
        prop_assert!(result.is_ok(), "{:?}", result);
    }

    /// Distributed parity on live cut-vertex schedules: the most
    /// structurally damaging single-victim adversary, reproduced
    /// byte-for-byte by the fabric.
    #[test]
    fn cut_vertex_distributed_parity(n in 8usize..28, seed in 0u64..10_000) {
        let result = check_source_parity(Dash, HealMode::Dash, CutVertex, n, 100, seed);
        prop_assert!(result.is_ok(), "{:?}", result);
    }

    /// Distributed parity on live epidemic schedules, under both heal
    /// modes (the satellite's shared-comparator requirement).
    #[test]
    fn epidemic_distributed_parity(
        n in 8usize..28,
        seed in 0u64..10_000,
        p in 0u64..=100,
    ) {
        let source = EpidemicChurn::new(seed, p as f64 / 100.0);
        let result = check_source_parity(Dash, HealMode::Dash, source, n, 100, seed);
        prop_assert!(result.is_ok(), "{:?}", result);
        let source = EpidemicChurn::new(seed, p as f64 / 100.0);
        let result = check_source_parity(Sdash, HealMode::Sdash, source, n, 100, seed);
        prop_assert!(result.is_ok(), "{:?}", result);
    }

    /// Replaying the same schedule twice is bit-for-bit reproducible.
    #[test]
    fn mixed_schedules_are_reproducible(n in 8usize..32, seed in 0u64..5_000) {
        let run = || {
            let g = barabasi_albert(n, 2, &mut StdRng::seed_from_u64(seed));
            let net = HealingNetwork::new(g, seed);
            let schedule = random_schedule(n, 40, seed);
            let mut engine = ScenarioEngine::new(net, Dash, ScriptedEvents::new(schedule));
            let r = engine.run_to_empty();
            (r.events, r.rounds, r.deletions, r.joins, r.total_messages, r.total_edges_added)
        };
        prop_assert_eq!(run(), run());
    }
}

//! The spec layer's contracts, pinned:
//!
//! 1. **Round-trip** — `parse(to_string(spec)) == spec`, property-tested
//!    over the full registry product (every graph generator × healer ×
//!    adversary × audit level × backend, with randomized parameters).
//! 2. **Golden equivalence** — for every healer × {random-churn,
//!    epidemic-churn, rack-partition}, the spec-built run is
//!    byte-identical (full `Debug` report) to the pre-redesign
//!    hand-built construction (`ScenarioEngine` wired by hand), on the
//!    centralized backend always and on the distributed backend for the
//!    three fabric-capable healers.
//! 3. **Checked-in specs** — every `specs/*.scn` parses, validates, and
//!    round-trips through the text format.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use selfheal::prelude::*;
use selfheal_core::attack::{EpidemicChurn as RawEpidemic, RackPartition as RawRack};
use selfheal_core::scenario::{RandomChurn as RawChurn, ScenarioEngine, ScriptedEvents};
use selfheal_graph::generators::barabasi_albert;

const N: usize = 24;
const CAP: u64 = 60;

fn graph_variant(idx: usize, a: usize, b: usize, p: f64) -> GraphSpec {
    match idx % 8 {
        0 => GraphSpec::BarabasiAlbert { n: a + b, m: b },
        1 => GraphSpec::ErdosRenyiGnm { n: a, m: b },
        2 => GraphSpec::WattsStrogatz {
            n: a,
            k: b,
            beta: p,
        },
        3 => GraphSpec::Path { n: a },
        4 => GraphSpec::Cycle { n: a },
        5 => GraphSpec::Star { n: a },
        6 => GraphSpec::Complete { n: a },
        _ => GraphSpec::Grid { rows: a, cols: b },
    }
}

fn healer_variant(idx: usize, b: usize) -> HealerSpec {
    match idx % 8 {
        // The ring family is the registry's only parameterized healer —
        // exercise randomized budgets, not just the default.
        0 => HealerSpec::RingForgiving { budget: b },
        i => HealerSpec::ALL[i],
    }
}

fn adversary_variant(idx: usize, a: usize, b: usize, p: f64) -> AdversarySpec {
    match idx % 11 {
        0 => AdversarySpec::MaxNode,
        1 => AdversarySpec::NeighborOfMax,
        2 => AdversarySpec::Random,
        3 => AdversarySpec::MinDegree,
        4 => AdversarySpec::CutVertex,
        5 => AdversarySpec::RandomChurn,
        6 => AdversarySpec::EpidemicChurn { p },
        7 => AdversarySpec::FlashCrowd { joins: a, burst: b },
        8 => AdversarySpec::RackPartition { rack_size: b },
        9 => AdversarySpec::DegreeBatches { k: b },
        _ => AdversarySpec::Curated(CuratedSchedule::ALL[a % CuratedSchedule::ALL.len()]),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Satellite: the text format round-trips exactly over the whole
    /// registry product — any spec the API can express can be saved to a
    /// `.scn` file and read back unchanged.
    #[test]
    fn parse_display_round_trip(
        gi in 0usize..8,
        ai in 0usize..11,
        hi in 0usize..8,
        audit_i in 0usize..5,
        backend_i in 0usize..4,
        a in 1usize..200,
        b in 1usize..16,
        p in 0.0f64..1.0,
        seed in 0u64..u64::MAX,
        max_events in 0u64..10_000,
    ) {
        let mut spec = ScenarioSpec::new(
            graph_variant(gi, a, b, p),
            healer_variant(hi, b),
            adversary_variant(ai, a, b, p),
            seed,
        );
        spec.audit = AuditSpec::ALL[audit_i];
        spec.backend = BackendSpec::ALL[backend_i];
        spec.max_events = max_events;
        let text = spec.to_string();
        prop_assert_eq!(text.parse::<ScenarioSpec>().unwrap(), spec);
    }
}

/// The three adversaries the golden matrix drives, as specs and as the
/// exact hand-built sources the pre-redesign call sites constructed.
fn golden_adversaries() -> [AdversarySpec; 3] {
    [
        AdversarySpec::RandomChurn,
        AdversarySpec::EpidemicChurn { p: 0.25 },
        AdversarySpec::RackPartition { rack_size: 4 },
    ]
}

fn hand_source(adversary: AdversarySpec, seed: u64) -> Box<dyn EventSource> {
    match adversary {
        AdversarySpec::RandomChurn => Box::new(RawChurn::new(seed)),
        AdversarySpec::EpidemicChurn { p } => Box::new(RawEpidemic::new(seed, p)),
        AdversarySpec::RackPartition { rack_size } => Box::new(RawRack::new(seed, rack_size)),
        other => unreachable!("not in the golden matrix: {other:?}"),
    }
}

fn hand_healer(healer: HealerSpec) -> Box<dyn Healer> {
    match healer {
        HealerSpec::Dash => Box::new(Dash),
        HealerSpec::Sdash => Box::new(Sdash),
        HealerSpec::GraphHeal => Box::new(GraphHeal),
        HealerSpec::BinaryTreeHeal => Box::new(BinaryTreeHeal),
        HealerSpec::LineHeal => Box::new(LineHeal),
        HealerSpec::NoHeal => Box::new(NoHeal),
        HealerSpec::ForgivingTree => Box::new(ForgivingTree),
        HealerSpec::RingForgiving { budget } => Box::new(RingForgiving { budget }),
    }
}

fn golden_spec(healer: HealerSpec, adversary: AdversarySpec, seed: u64) -> ScenarioSpec {
    let mut spec = ScenarioSpec::new(
        GraphSpec::BarabasiAlbert { n: N, m: 3 },
        healer,
        adversary,
        seed,
    );
    spec.audit = AuditSpec::Off;
    spec.max_events = CAP;
    spec
}

/// Golden equivalence, centralized backend: the spec-built run's full
/// report is byte-identical (Debug form) to the hand-wired
/// `ScenarioEngine` construction every call site used before the
/// redesign — for all eight healers against all three adversaries.
#[test]
fn spec_runs_match_hand_built_centralized_runs() {
    for healer in HealerSpec::ALL {
        for adversary in golden_adversaries() {
            let seed = 2008;
            let spec_report = golden_spec(healer, adversary, seed)
                .run()
                .unwrap_or_else(|e| panic!("{healer} vs {adversary:?}: {e}"))
                .report;

            let g = barabasi_albert(N, 3, &mut StdRng::seed_from_u64(seed));
            let mut engine = ScenarioEngine::new(
                HealingNetwork::new(g, seed),
                hand_healer(healer),
                hand_source(adversary, seed),
            );
            let hand_report = engine.run_events(CAP);

            assert_eq!(
                format!("{spec_report:?}"),
                format!("{hand_report:?}"),
                "{healer} vs {adversary:?}: spec-built run diverged from hand-built"
            );
        }
    }
}

/// Golden equivalence, distributed backend: for the three fabric-capable
/// healers the spec-built fabric report is byte-identical to a hand-run
/// `DistributedScenarioRunner` twin; the other five healers are rejected
/// with `FabricUnsupported` instead of panicking or silently degrading.
#[test]
fn spec_runs_match_hand_built_distributed_runs() {
    for healer in HealerSpec::ALL {
        for adversary in golden_adversaries() {
            let seed = 5;
            let mut spec = golden_spec(healer, adversary, seed);
            spec.backend = BackendSpec::Parity;
            let outcome = spec.run();

            let Ok(mode) = healer.heal_mode(BackendSpec::Parity) else {
                assert!(
                    matches!(outcome, Err(SpecError::FabricUnsupported { .. })),
                    "{healer} must be rejected on the fabric"
                );
                continue;
            };
            let outcome = outcome.unwrap();
            assert!(
                outcome.violations.is_empty(),
                "{healer} vs {adversary:?}: {:?}",
                outcome.violations
            );

            let g = barabasi_albert(N, 3, &mut StdRng::seed_from_u64(seed));
            let mut runner = DistributedScenarioRunner::with_mode(mode, &g, seed);
            let mut engine = ScenarioEngine::new(
                HealingNetwork::new(g, seed),
                hand_healer(healer),
                ScriptedEvents::default(),
            );
            let mut source = hand_source(adversary, seed);
            for _ in 0..CAP {
                let Some(event) = source.next_event(&engine.net) else {
                    break;
                };
                engine.apply(event.clone());
                runner.apply(&event);
            }
            engine.finish();

            assert_eq!(
                format!("{:?}", outcome.dist.unwrap()),
                format!("{:?}", runner.report()),
                "{healer} vs {adversary:?}: fabric twin diverged from hand-built"
            );
        }
    }
}

/// Every checked-in spec parses, validates, and survives the round-trip.
#[test]
fn checked_in_specs_parse_validate_and_round_trip() {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("specs");
    let mut seen = 0;
    for entry in std::fs::read_dir(&dir).expect("specs/ directory exists") {
        let path = entry.unwrap().path();
        if path.extension().and_then(|e| e.to_str()) != Some("scn") {
            continue;
        }
        seen += 1;
        let text = std::fs::read_to_string(&path).unwrap();
        let spec = text
            .parse::<ScenarioSpec>()
            .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        spec.validate()
            .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        assert_eq!(
            spec.to_string().parse::<ScenarioSpec>().unwrap(),
            spec,
            "{} does not round-trip",
            path.display()
        );
    }
    assert!(seen >= 5, "expected checked-in specs, found {seen}");
}

/// The curated-schedule registry is the parity suite's schedule set: a
/// curated spec on the parity backend replays byte-identically.
#[test]
fn curated_specs_hold_parity() {
    for schedule in CuratedSchedule::ALL {
        for healer in [
            HealerSpec::Dash,
            HealerSpec::Sdash,
            HealerSpec::ForgivingTree,
        ] {
            let mut spec = ScenarioSpec::new(
                GraphSpec::BarabasiAlbert { n: 32, m: 3 },
                healer,
                AdversarySpec::Curated(schedule),
                5,
            );
            spec.audit = AuditSpec::Off;
            spec.backend = BackendSpec::Parity;
            let outcome = spec.run().unwrap();
            assert!(
                outcome.is_clean(),
                "{healer} / {schedule}: {:?}",
                outcome.violations
            );
        }
    }
}

//! Golden regression values: exact outputs for fixed seeds.
//!
//! The whole workspace is seed-deterministic, so any change to the
//! healing logic, ID propagation, RNG streams or tie-breaking shows up
//! here first. If a change is *intentional* (e.g. a different ordering
//! rule), update the constants and note it in the commit.
//!
//! Current constants are captured against the vendored deterministic
//! `StdRng` (xoshiro256++; see `vendor/rand`) — the offline build cannot
//! use upstream rand's ChaCha12 stream, so the seed-era values were
//! re-pinned when the workspace first built. Structural assertions
//! (round counts, edge counts, violation-free reports) are unchanged.

use rand::rngs::StdRng;
use rand::SeedableRng;
use selfheal_core::attack::{MaxNode, NeighborOfMax};
use selfheal_core::dash::Dash;
use selfheal_core::engine::Engine;
use selfheal_core::levelattack::run_level_attack;
use selfheal_core::scenario::ScenarioEngine;
use selfheal_core::sdash::Sdash;
use selfheal_core::state::HealingNetwork;
use selfheal_graph::generators::barabasi_albert;

#[test]
fn golden_dash_maxnode_sweep() {
    let g = barabasi_albert(100, 3, &mut StdRng::seed_from_u64(2008));
    let mut engine = Engine::new(HealingNetwork::new(g, 2008), Dash, MaxNode);
    let r = engine.run_to_empty();
    assert_eq!(r.rounds, 100);
    assert_eq!(
        (
            r.max_delta_ever,
            r.max_id_changes,
            r.total_edges_added,
            r.total_messages
        ),
        golden_dash_expected(),
        "DASH/MaxNode golden values changed: {r:?}"
    );
}

#[test]
fn golden_sdash_nms_sweep() {
    let g = barabasi_albert(100, 3, &mut StdRng::seed_from_u64(2008));
    let mut engine = Engine::new(
        HealingNetwork::new(g, 2008),
        Sdash,
        NeighborOfMax::new(2008),
    );
    let r = engine.run_to_empty();
    assert_eq!(r.rounds, 100);
    assert_eq!(
        (
            r.max_delta_ever,
            r.max_id_changes,
            r.total_edges_added,
            r.total_messages
        ),
        golden_sdash_expected(),
        "SDASH/NMS golden values changed: {r:?}"
    );
}

fn golden_dash_expected() -> (i64, u32, u64, u64) {
    // Captured from the initial verified implementation (vendored RNG).
    (2, 3, 270, 1206)
}

fn golden_sdash_expected() -> (i64, u32, u64, u64) {
    // Captured from the initial verified implementation (vendored RNG).
    (2, 3, 163, 1205)
}

#[test]
fn golden_levelattack() {
    let r = run_level_attack(Dash, 2, 4, 2008);
    assert_eq!(
        (r.n, r.rounds, r.max_delta_ever, r.max_leaf_delta_ever),
        (341, 118, 5, 5)
    );
}

#[test]
fn golden_graph_generation() {
    let g = barabasi_albert(64, 3, &mut StdRng::seed_from_u64(2008));
    // Fingerprint the edge set without storing it: sum of lo*31+hi.
    let fp: u64 = g
        .edges()
        .map(|e| e.lo().0 as u64 * 31 + e.hi().0 as u64)
        .sum();
    assert_eq!(g.edge_count(), 186);
    assert_eq!(fp, golden_ba_fingerprint(), "BA generator stream changed");
}

fn golden_ba_fingerprint() -> u64 {
    79_390
}

/// Byte-identity of the full healing *trajectory*, not just the final
/// aggregates: every round's victim, reconstruction set, added edges and
/// propagation accounting is folded into one FNV-1a fingerprint. The
/// pooled-adjacency store, the degree-bucket extremes, the Fenwick live
/// sampler and the restricted broadcast all sit under this hash — any
/// deviation in any round of either healer moves it.
#[test]
fn golden_trajectory_fingerprint_is_byte_identical() {
    fn fnv(h: &mut u64, x: u64) {
        *h ^= x;
        *h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    let fingerprint = |sdash: bool| -> u64 {
        let g = barabasi_albert(100, 3, &mut StdRng::seed_from_u64(2008));
        let mut net = HealingNetwork::new(g, 2008);
        let mut dash = Dash;
        let mut sd = Sdash;
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        while let Some(v) = net.graph().max_degree_node() {
            let ctx = net.delete_node(v).unwrap();
            let outcome = if sdash {
                selfheal_core::strategy::Healer::heal(&mut sd, &mut net, &ctx)
            } else {
                selfheal_core::strategy::Healer::heal(&mut dash, &mut net, &ctx)
            };
            let rep = net.propagate_min_id_uniform(&outcome.rt_members);
            fnv(&mut h, v.0 as u64);
            for &m in &outcome.rt_members {
                fnv(&mut h, m.0 as u64 + 1);
            }
            for &(a, b) in &outcome.edges_added {
                fnv(&mut h, (a.0 as u64) << 32 | b.0 as u64);
            }
            fnv(&mut h, rep.changed);
            fnv(&mut h, rep.messages);
            fnv(&mut h, rep.latency);
        }
        h
    };
    assert_eq!(
        (fingerprint(false), fingerprint(true)),
        golden_trajectory_expected(),
        "healing trajectory diverged from the pre-refactor stream"
    );
}

fn golden_trajectory_expected() -> (u64, u64) {
    // Captured from the Vec<Vec<_>> adjacency era; the pooled store must
    // reproduce it bit for bit.
    (3_217_964_881_233_481_011, 224_464_964_141_436_817)
}

/// The unified event-driven engine must reproduce the legacy goldens
/// *exactly* — same RNG streams, tie-breaking, and accounting — proving
/// the refactor changed structure, not behavior.
#[test]
fn golden_scenario_engine_matches_legacy_goldens() {
    let g = barabasi_albert(100, 3, &mut StdRng::seed_from_u64(2008));
    let mut engine = ScenarioEngine::new(HealingNetwork::new(g, 2008), Dash, MaxNode);
    let r = engine.run_to_empty();
    assert_eq!(r.rounds, 100);
    assert_eq!(r.deletions, 100);
    assert_eq!(
        (
            r.max_delta_ever,
            r.max_id_changes,
            r.total_edges_added,
            r.total_messages
        ),
        golden_dash_expected(),
        "ScenarioEngine diverged from the DASH/MaxNode golden: {r:?}"
    );

    let g = barabasi_albert(100, 3, &mut StdRng::seed_from_u64(2008));
    let mut engine = ScenarioEngine::new(
        HealingNetwork::new(g, 2008),
        Sdash,
        NeighborOfMax::new(2008),
    );
    let r = engine.run_to_empty();
    assert_eq!(
        (
            r.max_delta_ever,
            r.max_id_changes,
            r.total_edges_added,
            r.total_messages
        ),
        golden_sdash_expected(),
        "ScenarioEngine diverged from the SDASH/NMS golden: {r:?}"
    );
}

//! Stress: deletions arriving *before* the previous round's ID broadcast
//! has quiesced.
//!
//! The paper's model gives the healing algorithm "a small amount of time
//! to react" between deletions — reconnection is assumed to finish, but
//! ID propagation is only guaranteed *amortized* latency, so a fast
//! adversary can strike while broadcasts are still in flight. Stale
//! component IDs can then over-split the reconstruction set (an
//! unconverged component presents several distinct IDs). The key safety
//! property that must survive: over-splitting only adds *extra* edges —
//! connectivity is never lost, because `N(v, G')` membership (the part
//! that re-merges a deleted node's own tree) is tracked by adjacency, not
//! by IDs.

use rand::rngs::StdRng;
use rand::SeedableRng;
use selfheal_core::distributed::DistributedDash;
use selfheal_graph::generators::barabasi_albert;
use selfheal_sim::{Simulator, SplitMix64, Topology};

fn build_sim(n: usize, seed: u64) -> Simulator<DistributedDash> {
    let g = barabasi_albert(n, 3, &mut StdRng::seed_from_u64(seed));
    let edges: Vec<(u32, u32)> = g.edges().map(|e| (e.lo().0, e.hi().0)).collect();
    let topo = Topology::from_edges(n, &edges);
    let degrees: Vec<u32> = (0..n as u32)
        .map(|v| topo.neighbors(v).len() as u32)
        .collect();
    Simulator::new(topo, DistributedDash::new(degrees, seed))
}

fn survivors_connected(sim: &Simulator<DistributedDash>) -> bool {
    let live: Vec<u32> = sim.topology.live_nodes().collect();
    let Some(&start) = live.first() else {
        return true;
    };
    let mut seen = vec![false; sim.topology.len()];
    let mut stack = vec![start];
    seen[start as usize] = true;
    let mut reached = 0;
    while let Some(v) = stack.pop() {
        reached += 1;
        for &u in sim.topology.neighbors(v) {
            if !seen[u as usize] {
                seen[u as usize] = true;
                stack.push(u);
            }
        }
    }
    reached == live.len()
}

/// Delete many nodes without ever waiting for quiescence, then drain.
/// Connectivity must hold at every step regardless of broadcast state.
#[test]
fn rapid_fire_deletions_never_disconnect() {
    for seed in [3u64, 7, 11] {
        let n = 64;
        let mut sim = build_sim(n, seed);
        let mut rng = SplitMix64::new(seed);
        for round in 0..n as u32 - 1 {
            let live: Vec<u32> = sim.topology.live_nodes().collect();
            let victim = *rng.choose(&live);
            sim.delete_node(victim);
            // NO run_to_quiescence here: broadcasts pile up across rounds.
            assert!(
                survivors_connected(&sim),
                "seed {seed}: disconnected at rapid round {round}"
            );
        }
        // Drain whatever is still flying; state must settle cleanly.
        let report = sim.run_to_quiescence();
        assert!(survivors_connected(&sim));
        // Many messages chased dead nodes — that's expected, not an error.
        let _ = report.dropped;
    }
}

/// Partial drains: let only part of each broadcast through before the
/// next deletion. IDs are stale mid-flood, but safety holds and the
/// final drain converges every surviving component to a single ID.
#[test]
fn partially_drained_broadcasts_still_converge() {
    let n = 48;
    let seed = 5u64;
    let mut sim = build_sim(n, seed);
    let mut rng = SplitMix64::new(seed ^ 1);
    for _ in 0..n as u32 / 2 {
        let live: Vec<u32> = sim.topology.live_nodes().collect();
        let victim = *rng.choose(&live);
        sim.delete_node(victim);
        // Partial progress: broadcasts only fully drain every ~4th round,
        // so most deletions observe stale, mid-flood component IDs.
        if rng.gen_range(4) == 0 {
            sim.run_to_quiescence();
        }
        assert!(survivors_connected(&sim), "disconnected mid-flood");
    }
    sim.run_to_quiescence();
    assert!(survivors_connected(&sim));
    // After the final drain, every G'-connected pair agrees on its ID.
    let live: Vec<u32> = sim.topology.live_nodes().collect();
    for &v in &live {
        for &u in sim.protocol.gprime_neighbors(v).iter() {
            if sim.topology.is_alive(u) {
                assert_eq!(
                    sim.protocol.comp_id(v),
                    sim.protocol.comp_id(u),
                    "G' neighbors {v},{u} disagree after drain"
                );
            }
        }
    }
}

/// Degree damage under rapid fire stays within the DASH envelope: stale
/// IDs can only over-split (more edges spread over more nodes), and the
/// binary-tree shape still caps per-round growth.
#[test]
fn rapid_fire_degree_growth_stays_bounded() {
    let n = 96;
    let seed = 13u64;
    let mut sim = build_sim(n, seed);
    let initial: Vec<usize> = (0..n as u32)
        .map(|v| sim.topology.neighbors(v).len())
        .collect();
    let mut rng = SplitMix64::new(seed);
    let mut max_delta = 0i64;
    for _ in 0..n as u32 - 1 {
        let live: Vec<u32> = sim.topology.live_nodes().collect();
        let victim = *rng.choose(&live);
        sim.delete_node(victim);
        if rng.gen_range(3) == 0 {
            sim.run_to_quiescence();
        }
        for v in sim.topology.live_nodes() {
            let d = sim.topology.neighbors(v).len() as i64 - initial[v as usize] as i64;
            max_delta = max_delta.max(d);
        }
    }
    // Allow 2x the synchronous bound for the stale-ID over-splitting.
    let bound = 4.0 * (n as f64).log2();
    assert!(
        (max_delta as f64) <= bound,
        "rapid-fire delta {max_delta} exceeded relaxed bound {bound}"
    );
}

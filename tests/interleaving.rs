//! Stress: notification and broadcast interleavings the fabric does not
//! get to choose.
//!
//! The paper's model gives the healing algorithm "a small amount of time
//! to react" between deletions — reconnection is assumed to finish, but
//! ID propagation is only guaranteed *amortized* latency, so a fast
//! adversary can strike while broadcasts are still in flight, and a
//! simultaneous batch leaves the delivery order of its death
//! notifications to the network. Both freedoms are driven here through
//! the fabric's first-class [`BatchSchedule`] hook: every named schedule
//! (and, explorer-style, *every* victim parking order of a small batch)
//! must preserve the key safety property — over-splitting from stale
//! IDs or unlucky delivery orders only adds extra edges; connectivity is
//! never lost, because `N(v, G')` membership is tracked by adjacency,
//! not by IDs.

use rand::rngs::StdRng;
use rand::SeedableRng;
use selfheal_core::distributed::DistributedDash;
use selfheal_core::exhaustive::permutations;
use selfheal_graph::generators::barabasi_albert;
use selfheal_sim::{BatchSchedule, Simulator, SplitMix64, Topology};

fn build_sim(n: usize, seed: u64) -> Simulator<DistributedDash> {
    let g = barabasi_albert(n, 3, &mut StdRng::seed_from_u64(seed));
    let edges: Vec<(u32, u32)> = g.edges().map(|e| (e.lo().0, e.hi().0)).collect();
    let topo = Topology::from_edges(n, &edges);
    let degrees: Vec<u32> = (0..n as u32)
        .map(|v| topo.neighbors(v).len() as u32)
        .collect();
    Simulator::new(topo, DistributedDash::new(degrees, seed))
}

fn survivors_connected(sim: &Simulator<DistributedDash>) -> bool {
    let live: Vec<u32> = sim.topology.live_nodes().collect();
    let Some(&start) = live.first() else {
        return true;
    };
    let mut seen = vec![false; sim.topology.len()];
    let mut stack = vec![start];
    seen[start as usize] = true;
    let mut reached = 0;
    while let Some(v) = stack.pop() {
        reached += 1;
        for &u in sim.topology.neighbors(v) {
            if !seen[u as usize] {
                seen[u as usize] = true;
                stack.push(u);
            }
        }
    }
    reached == live.len()
}

/// After a full drain, every G'-connected live pair must agree on its
/// component ID.
fn assert_ids_converged(sim: &Simulator<DistributedDash>, label: &str) {
    for v in sim.topology.live_nodes() {
        for &u in sim.protocol.gprime_neighbors(v).iter() {
            if sim.topology.is_alive(u) {
                assert_eq!(
                    sim.protocol.comp_id(v),
                    sim.protocol.comp_id(u),
                    "{label}: G' neighbors {v},{u} disagree after drain"
                );
            }
        }
    }
}

/// Greedily pick up to `k` live, pairwise non-adjacent victims (the
/// fabric's `delete_batch` requires an independent set), shuffled so
/// different seeds exercise different batches.
fn independent_victims(
    sim: &Simulator<DistributedDash>,
    k: usize,
    rng: &mut SplitMix64,
) -> Vec<u32> {
    let mut live: Vec<u32> = sim.topology.live_nodes().collect();
    rng.shuffle(&mut live);
    let mut picked: Vec<u32> = Vec::with_capacity(k);
    for v in live {
        if picked.len() == k {
            break;
        }
        if picked.iter().all(|&u| !sim.topology.has_edge(u, v)) {
            picked.push(v);
        }
    }
    picked
}

/// The named schedule registry this suite sweeps. `rapid-fire` is the
/// legacy stress case — batches of one, never waiting for quiescence —
/// kept as a named schedule alongside the batch-reordering ones.
fn named_schedules() -> Vec<(&'static str, BatchSchedule)> {
    vec![
        ("round-robin", BatchSchedule::RoundRobin),
        ("victim-major", BatchSchedule::VictimMajor),
        ("shuffled(3)", BatchSchedule::Shuffled(3)),
        ("shuffled(7)", BatchSchedule::Shuffled(7)),
    ]
}

/// Storm of independent batches under one schedule: delete, drain (batch
/// heals defer to the quiescence barrier), check connectivity each time.
fn run_batch_storm(name: &str, schedule: BatchSchedule, n: usize, batch: usize, seed: u64) {
    let mut sim = build_sim(n, seed);
    sim.set_batch_schedule(schedule);
    let mut rng = SplitMix64::new(seed ^ 0x5eed);
    let mut storms = 0;
    while sim.topology.live_count() > batch + 1 {
        let victims = independent_victims(&sim, batch, &mut rng);
        if victims.len() < 2 {
            break;
        }
        sim.delete_batch(&victims);
        sim.run_to_quiescence();
        storms += 1;
        assert!(
            survivors_connected(&sim),
            "{name}: disconnected after storm {storms} (victims {victims:?})"
        );
    }
    assert!(storms > 5, "{name}: storm loop barely ran ({storms})");
    assert_ids_converged(&sim, name);
}

/// Every named schedule survives a full storm of three-victim batches.
#[test]
fn batch_storms_stay_connected_under_every_named_schedule() {
    for (name, schedule) in named_schedules() {
        run_batch_storm(name, schedule, 48, 3, 11);
    }
}

/// Explorer-driven sweep: **every** victim parking order (all `k!` of
/// them, the DPOR class representatives the schedule explorer
/// enumerates) of one four-victim batch heals safely and converges.
#[test]
fn every_victim_parking_order_of_a_batch_heals_safely() {
    let n = 32;
    let seed = 9u64;
    let mut rng = SplitMix64::new(seed);
    let victims = {
        let sim = build_sim(n, seed);
        independent_victims(&sim, 4, &mut rng)
    };
    assert_eq!(victims.len(), 4, "fixture must yield a full batch");
    for order in permutations(victims.len()) {
        let mut sim = build_sim(n, seed);
        sim.set_batch_schedule(BatchSchedule::VictimOrder(order.clone()));
        sim.delete_batch(&victims);
        sim.run_to_quiescence();
        let label = format!("order {order:?}");
        assert!(survivors_connected(&sim), "{label}: disconnected");
        assert_ids_converged(&sim, &label);
    }
}

/// The legacy rapid-fire stress, now expressed as the `rapid-fire`
/// named case: single deletions arriving *before* the previous round's
/// ID broadcast has quiesced. Connectivity must hold at every step
/// regardless of broadcast state.
#[test]
fn rapid_fire_deletions_never_disconnect() {
    for seed in [3u64, 7, 11] {
        let n = 64;
        let mut sim = build_sim(n, seed);
        let mut rng = SplitMix64::new(seed);
        for round in 0..n as u32 - 1 {
            let live: Vec<u32> = sim.topology.live_nodes().collect();
            let victim = *rng.choose(&live);
            sim.delete_node(victim);
            // NO run_to_quiescence here: broadcasts pile up across rounds.
            assert!(
                survivors_connected(&sim),
                "seed {seed}: disconnected at rapid round {round}"
            );
        }
        // Drain whatever is still flying; state must settle cleanly.
        let report = sim.run_to_quiescence();
        assert!(survivors_connected(&sim));
        // Many messages chased dead nodes — that's expected, not an error.
        let _ = report.dropped;
    }
}

/// Partial drains: let only part of each broadcast through before the
/// next deletion. IDs are stale mid-flood, but safety holds and the
/// final drain converges every surviving component to a single ID.
#[test]
fn partially_drained_broadcasts_still_converge() {
    let n = 48;
    let seed = 5u64;
    let mut sim = build_sim(n, seed);
    let mut rng = SplitMix64::new(seed ^ 1);
    for _ in 0..n as u32 / 2 {
        let live: Vec<u32> = sim.topology.live_nodes().collect();
        let victim = *rng.choose(&live);
        sim.delete_node(victim);
        // Partial progress: broadcasts only fully drain every ~4th round,
        // so most deletions observe stale, mid-flood component IDs.
        if rng.gen_range(4) == 0 {
            sim.run_to_quiescence();
        }
        assert!(survivors_connected(&sim), "disconnected mid-flood");
    }
    sim.run_to_quiescence();
    assert!(survivors_connected(&sim));
    assert_ids_converged(&sim, "partial-drain");
}

/// Degree damage under batch storms stays within the DASH envelope no
/// matter which schedule delivers the notifications: stale IDs can only
/// over-split (more edges spread over more nodes), and the binary-tree
/// shape still caps per-round growth.
#[test]
fn storm_degree_growth_stays_bounded_under_every_schedule() {
    let n = 96;
    let bound = 4.0 * (n as f64).log2();
    for (name, schedule) in named_schedules() {
        let mut sim = build_sim(n, 13);
        sim.set_batch_schedule(schedule);
        let initial: Vec<usize> = (0..n as u32)
            .map(|v| sim.topology.neighbors(v).len())
            .collect();
        let mut rng = SplitMix64::new(13 ^ 0xbeef);
        let mut max_delta = 0i64;
        while sim.topology.live_count() > 8 {
            let victims = independent_victims(&sim, 3, &mut rng);
            if victims.len() < 2 {
                break;
            }
            sim.delete_batch(&victims);
            sim.run_to_quiescence();
            for v in sim.topology.live_nodes() {
                let d = sim.topology.neighbors(v).len() as i64 - initial[v as usize] as i64;
                max_delta = max_delta.max(d);
            }
        }
        // Allow 2x the synchronous bound for stale-ID over-splitting.
        assert!(
            (max_delta as f64) <= bound,
            "{name}: storm delta {max_delta} exceeded relaxed bound {bound}"
        );
    }
}

//! # selfheal
//!
//! Facade crate for the self-healing reconfigurable-network workspace — a
//! full reproduction of *"Picking up the Pieces: Self-Healing in
//! Reconfigurable Networks"* (Saia & Trehan, IPPS 2008).
//!
//! Re-exports the workspace crates under short names and offers a
//! [`prelude`] for examples and downstream users:
//!
//! - [`graph`] — graph substrate (dynamic graphs, generators, components,
//!   shortest paths, parallel sweeps),
//! - [`sim`] — deterministic message-passing simulator,
//! - [`core`] — DASH/SDASH healing algorithms, attacks, engine,
//!   invariants,
//! - [`metrics`] — statistics, stretch, tables,
//! - [`experiments`] — the harness regenerating every figure of the paper,
//! - [`serve`] — healing-as-a-service: tenant shards behind a line
//!   protocol with lock-free snapshot queries.
//!
//! # Example
//! ```
//! use rand::SeedableRng;
//! use selfheal::prelude::*;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let graph = generators::barabasi_albert(64, 3, &mut rng);
//! let net = HealingNetwork::new(graph, 1);
//! // Any adversary is an event source; scripted schedules can mix
//! // Delete, DeleteBatch and Join events through the same engine.
//! let mut engine = ScenarioEngine::new(net, Dash, MaxNode).with_audit(AuditLevel::Cheap);
//! let report = engine.run_to_empty();
//! assert!(report.violations.is_empty());
//! assert_eq!(report.deletions, 64);
//! ```

pub use selfheal_core as core;
pub use selfheal_experiments as experiments;
pub use selfheal_graph as graph;
pub use selfheal_metrics as metrics;
pub use selfheal_serve as serve;
pub use selfheal_sim as sim;

/// Most-used items in one import.
pub mod prelude {
    pub use selfheal_core::attack::{
        Adversary, CutVertex, EpidemicChurn, FlashCrowd, MaxNode, MinDegree, NeighborOfMax,
        RackPartition, RandomAttack, Scripted,
    };
    pub use selfheal_core::dash::Dash;
    pub use selfheal_core::distributed::{DistributedDash, HealMode};
    pub use selfheal_core::distributed_runner::{
        DistEventRecord, DistScenarioReport, DistributedScenarioRunner,
    };
    pub use selfheal_core::engine::{AuditLevel, Engine, EngineReport};
    pub use selfheal_core::exhaustive::{run_universe, SmallGraph, UniverseConfig, UniverseReport};
    pub use selfheal_core::explore::{
        check_seeded_orders, explore_events, ExplorerConfig, ExplorerReport,
    };
    pub use selfheal_core::ftree::ForgivingTree;
    pub use selfheal_core::invariants::{FamilyAuditor, TheoremAuditor, TheoremBounds};
    pub use selfheal_core::naive::{BinaryTreeHeal, GraphHeal, LineHeal, NoHeal};
    pub use selfheal_core::oracle::OracleDash;
    pub use selfheal_core::ring::RingForgiving;
    pub use selfheal_core::scenario::{
        AuditObserver, DegreeBatches, EventKind, EventRecord, EventSource, NetworkEvent,
        NullObserver, Observer, RandomChurn, RecordLog, ScenarioEngine, ScenarioReport,
        ScriptedEvents,
    };
    pub use selfheal_core::sdash::Sdash;
    pub use selfheal_core::spec::{
        AdversarySpec, AuditSpec, BackendSpec, CuratedSchedule, DynScenarioEngine, GraphSpec,
        HealerSpec, RunOptions, ScenarioSpec, SpecError, SpecOutcome,
    };
    pub use selfheal_core::state::HealingNetwork;
    pub use selfheal_core::strategy::Healer;
    pub use selfheal_core::sweep::{
        replay, run_sweep, SweepAdversary, SweepAggregate, SweepConfig,
    };
    pub use selfheal_graph::{generators, Graph, NodeId};
    pub use selfheal_serve::{Cluster, ShardSnapshot, SnapshotReader};
    pub use selfheal_sim::BatchSchedule;
}

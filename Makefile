# Task runner for the selfheal workspace. `make ci` is the full gate the
# repo must keep green: build + every test + lints + docs.

CARGO ?= cargo

.PHONY: all build test test-all bench bench-check bench-baseline bench-regress sim-parity sweep-check spec-check family-rank-check serve-check verify-exhaustive lint-custom loom-check loom-check-full doc fmt fmt-check clippy examples figures scale ci clean

## The checked-in perf baseline this PR's trajectory is gated against.
## Convention: one BENCH_<pr>.json per PR that moved performance; the
## newest file is the active gate (see README "perf trajectory").
BENCH_BASELINE ?= BENCH_10.json
BENCH_EXPORT   := target/criterion-export.jsonl

all: build

## Release build of every workspace crate.
build:
	$(CARGO) build --release --workspace

## Tier-1 verification: the exact command the roadmap pins.
test:
	$(CARGO) build --release && $(CARGO) test -q

## Every test in every crate (units, integration, doctests).
test-all:
	$(CARGO) test --workspace -q

## Benchmark suite (offline criterion stand-in: indicative numbers, fast).
bench:
	$(CARGO) bench -p selfheal-bench

## Smoke-run the scenario throughput bench. The bench asserts its own
## structure (run-to-empty round counts, steady-state broadcast agreement
## between the scratch-buffer and allocating baselines), so a panic here
## means the allocation-free hot loop regressed. Offline-safe: the
## vendored criterion stand-in hard-caps runtimes.
bench-check:
	$(CARGO) bench -p selfheal-bench --bench scenario

## Record a new perf baseline: run the whole bench suite with the
## criterion stand-in's JSONL export enabled, then merge every group's
## median/MAD into $(BENCH_BASELINE) at the repo root (check it in).
bench-baseline:
	rm -f $(BENCH_EXPORT)
	CRITERION_EXPORT=$(CURDIR)/$(BENCH_EXPORT) $(CARGO) bench -p selfheal-bench
	$(CARGO) run -q --release -p selfheal-bench --bin baseline -- emit $(BENCH_EXPORT) $(BENCH_BASELINE)

## Perf-regression gate: re-run the suite and compare against the
## checked-in baseline. Fails when any benchmark's median regresses more
## than 10% beyond a 3-MAD noise slack; renamed/removed benches warn.
## A reported regression is re-sampled once before failing: on a shared
## host, transient CPU interference shifts a whole bench run's medians
## by far more than the MAD slack (observed +50..200% on rotating,
## unrelated benches), while a real regression reproduces on the
## second sample. So a retry cannot silently absorb a borderline real
## regression, both samples' full delta tables are echoed and kept
## under target/, and the benches that REGRESSED in sample 1 are
## re-printed with their sample-2 deltas side by side — a reviewer can
## see from the log whether the pass was convincing or marginal.
bench-regress:
	rm -f $(BENCH_EXPORT)
	CRITERION_EXPORT=$(CURDIR)/$(BENCH_EXPORT) $(CARGO) bench -p selfheal-bench
	@$(CARGO) run -q --release -p selfheal-bench --bin baseline -- compare $(BENCH_BASELINE) $(BENCH_EXPORT) > target/bench-compare-1.txt 2>&1; \
	st=$$?; cat target/bench-compare-1.txt; \
	if [ $$st -ne 0 ]; then \
	  echo "bench-regress: re-sampling once to rule out host interference (sample-1 deltas above)"; \
	  mv -f $(BENCH_EXPORT) $(BENCH_EXPORT).sample1; \
	  CRITERION_EXPORT=$(CURDIR)/$(BENCH_EXPORT) $(CARGO) bench -p selfheal-bench; \
	  $(CARGO) run -q --release -p selfheal-bench --bin baseline -- compare $(BENCH_BASELINE) $(BENCH_EXPORT) > target/bench-compare-2.txt 2>&1; \
	  st=$$?; cat target/bench-compare-2.txt; \
	  echo "bench-regress: sample-1 REGRESSED benches, as seen by sample 2:"; \
	  grep '^REGRESSED' target/bench-compare-1.txt | awk '{print $$2}' | while read -r k; do \
	    echo "  sample 1: $$(grep -F -- " $$k " target/bench-compare-1.txt | head -1)"; \
	    s2=$$(grep -F -- " $$k " target/bench-compare-2.txt | head -1); \
	    echo "  sample 2: $${s2:-$$k missing from sample 2}"; \
	  done; \
	  exit $$st; \
	fi

## Distributed-vs-centralized parity gate: the curated parity suite, the
## randomized parity proptests, and the distributed fabric bench (whose
## self-check asserts exact message-count agreement before timing).
sim-parity:
	$(CARGO) test -q --test distributed_parity
	$(CARGO) test -q --test scenarios distributed_parity
	$(CARGO) bench -p selfheal-bench --bench distributed

## Sweep-fleet gate: the fleet's integration tests (worker-count
## determinism, golden aggregate, stream locks, worst-seed replay) plus a
## real multi-thread sweep with theorem auditors on — any bound violation
## or aggregate divergence fails the run. The sweep bench's structural
## self-check (N-thread aggregate == 1-thread aggregate, byte-for-byte)
## rides along.
sweep-check:
	$(CARGO) test -q --test sweep
	$(CARGO) run -q --release -p selfheal-experiments -- sweep --quick --threads 4
	$(CARGO) bench -p selfheal-bench --bench sweep

## Spec-layer gate: the spec test-suite (round-trip properties, golden
## spec-vs-hand-built equivalence, curated-schedule parity), then parse
## and fully run every checked-in specs/*.scn through the CLI — any
## parse error, invalid configuration, theorem violation or parity
## divergence exits nonzero and fails the gate.
spec-check:
	$(CARGO) test -q --test spec
	@set -e; for f in specs/*.scn; do \
	  echo "== $$f"; \
	  $(CARGO) run -q --release -p selfheal-experiments -- run --spec $$f; \
	done

## Family-ranking gate (E12): run the full healer registry × the
## adversary library at 1, 2 and 8 worker threads and require all three
## tables to match the checked-in golden byte for byte. Any change to a
## healer's topology decisions, RNG streams, audit findings or the
## ranking key shows up here; if the change is intentional, regenerate
## with `run-experiments family-rank --quick --threads 1 2>/dev/null >
## goldens/family_rank_quick.txt` and note it in the commit.
family-rank-check:
	@set -e; for t in 1 2 8; do \
	  echo "== family-rank --threads $$t"; \
	  $(CARGO) run -q --release -p selfheal-experiments -- family-rank --quick --threads $$t 2>/dev/null \
	    | diff -u goldens/family_rank_quick.txt - ; \
	done

## Serving-layer gate (E13 + smoke): the serve crate's test-suite
## (wire-form proptests, hostile-input handling, the concurrent-reader
## soak, worker-count invariance), then the two-tenant replay smoke and
## the quick serve-bench soak at 1, 2 and 8 workers — every output must
## match its checked-in golden byte for byte (the cluster's determinism
## contract). Regenerate intentionally changed goldens with the two
## commands below, piping stdout over the golden, and note it in the
## commit.
serve-check:
	$(CARGO) test -q -p selfheal-serve
	@set -e; for t in 1 2 8; do \
	  echo "== selfheal-serve --threads $$t (replay smoke)"; \
	  $(CARGO) run -q --release -p selfheal-serve -- \
	    --specs specs --tenants random_churn,epidemic_sdash \
	    --threads $$t --replay specs/serve_smoke.replay \
	    | diff -u goldens/serve_smoke.txt - ; \
	done
	@set -e; for t in 1 2 8; do \
	  echo "== serve-bench --threads $$t"; \
	  $(CARGO) run -q --release -p selfheal-experiments -- serve-bench --quick --threads $$t 2>/dev/null \
	    | diff -u goldens/serve_bench_quick.txt - ; \
	done

## Exhaustive verification gate (E10), bounded to seconds: the
## small-world prover enumerates every connected graph up to n = 6 (the
## census-checked A001349 universe), every deletion order, and
## representative batch partitions for every registered healer, while
## the schedule explorer proves centralized/distributed parity under
## every DPOR class of batch-notification delivery orders. Any theorem
## or parity violation exits nonzero. The n = 7 tier (853 more graphs,
## ~26M runs, minutes not seconds) is opt-in:
## `cargo run --release -p selfheal-experiments -- verify --full`.
verify-exhaustive:
	$(CARGO) run -q --release -p selfheal-experiments -- verify --quick --threads 4

## Workspace invariant linter (crates/lint): deterministic-crate
## collection discipline, relaxed-ordering / unsafe / panic justification
## comments, and the parallel_fold dispatch-loop contract. Runs the
## linter's own test-suite (scanner units, exact-diagnostic fixtures,
## workspace self-check) first, then the CLI over the workspace — any
## finding exits nonzero with `path:line: [rule] message` diagnostics.
lint-custom:
	$(CARGO) test -q -p selfheal-lint
	$(CARGO) run -q --release -p selfheal-lint -- .

## Concurrency model check: build the workspace with `--cfg loom` so the
## graph/bench atomics and channels swap to the vendored model checker,
## then exhaustively enumerate interleavings (DPOR sleep-set pruned) of
## the DegreeIndex hint protocol, parallel_fold's dispatch/fan-in, and
## the CountingAlloc counters. The default tier keeps to 2 threads per
## model (seconds); a separate target dir avoids thrashing the normal
## build cache. Includes the vendored checker's own self-tests.
loom-check:
	RUSTFLAGS="--cfg loom" CARGO_TARGET_DIR=target/loom $(CARGO) test --release -q -p loom
	RUSTFLAGS="--cfg loom" CARGO_TARGET_DIR=target/loom $(CARGO) test --release -q -p selfheal-graph --test loom -- --nocapture
	RUSTFLAGS="--cfg loom" CARGO_TARGET_DIR=target/loom $(CARGO) test --release -q -p selfheal-bench --test loom -- --nocapture
	RUSTFLAGS="--cfg loom" CARGO_TARGET_DIR=target/loom $(CARGO) test --release -q -p selfheal-serve --test loom -- --nocapture

## Opt-in full tier: 3-thread models (tens of thousands of
## interleavings, ~10s).
loom-check-full:
	LOOM_FULL=1 RUSTFLAGS="--cfg loom" CARGO_TARGET_DIR=target/loom $(CARGO) test --release -q -p selfheal-graph --test loom -- --nocapture
	LOOM_FULL=1 RUSTFLAGS="--cfg loom" CARGO_TARGET_DIR=target/loom $(CARGO) test --release -q -p selfheal-bench --test loom -- --nocapture
	LOOM_FULL=1 RUSTFLAGS="--cfg loom" CARGO_TARGET_DIR=target/loom $(CARGO) test --release -q -p selfheal-serve --test loom -- --nocapture

## API docs for the workspace crates only.
doc:
	$(CARGO) doc --no-deps --workspace

fmt:
	$(CARGO) fmt

fmt-check:
	$(CARGO) fmt --check

clippy:
	$(CARGO) clippy --workspace --all-targets -- -D warnings

## Build and run every example (quickstart last so its output is on screen).
examples:
	$(CARGO) run -q --release --example attack_matrix
	$(CARGO) run -q --release --example batch_failures
	$(CARGO) run -q --release --example distributed_churn
	$(CARGO) run -q --release --example distributed_dash
	$(CARGO) run -q --release --example lower_bound
	$(CARGO) run -q --release --example overlay_churn
	$(CARGO) run -q --release --example sweep_fleet
	$(CARGO) run -q --release --example quickstart

## Regenerate the paper's figures (quick scale) with CSV dumps under out/.
figures:
	$(CARGO) run -q --release -p selfheal-experiments -- all --quick --csv out

## E11: million-node healing throughput (both healers, churn + racks).
## Not part of `figures`/`all` — a deliberate, ~half-minute invocation.
scale:
	$(CARGO) run -q --release -p selfheal-experiments -- scale

## The full CI gate.
ci: fmt-check clippy build test-all doc bench-check bench-regress sim-parity sweep-check spec-check family-rank-check serve-check verify-exhaustive lint-custom loom-check
	@echo "ci green"

clean:
	$(CARGO) clean

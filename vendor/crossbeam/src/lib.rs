//! Offline stand-in for `crossbeam`.
//!
//! The workspace uses exactly one crossbeam facility: a bounded channel
//! fanning worker results into a single reducer ([`channel::bounded`]).
//! `std::sync::mpsc::sync_channel` has the same semantics for that
//! multi-producer / single-consumer shape (clonable blocking senders, a
//! receiver whose iterator ends when every sender is dropped), so the
//! stand-in is a rename.

/// Multi-producer channels, mirroring `crossbeam::channel`.
///
/// Under `--cfg loom` the channel is the model checker's mock instead,
/// so sends and receives become schedule points (see `vendor/loom`).
#[cfg(loom)]
pub mod channel {
    pub use loom::sync::channel::{bounded, Receiver, SendError, Sender};
}

/// Multi-producer channels, mirroring `crossbeam::channel`.
#[cfg(not(loom))]
pub mod channel {
    /// Sending half; clonable, blocks when the channel is full.
    pub type Sender<T> = std::sync::mpsc::SyncSender<T>;

    /// Receiving half; `iter()` drains until all senders hang up.
    pub type Receiver<T> = std::sync::mpsc::Receiver<T>;

    /// A channel buffering at most `cap` in-flight messages.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        std::sync::mpsc::sync_channel(cap)
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn fan_in_and_hang_up() {
        let (tx, rx) = super::channel::bounded::<u64>(4);
        std::thread::scope(|s| {
            for i in 0..4u64 {
                let tx = tx.clone();
                s.spawn(move || tx.send(i).unwrap());
            }
            drop(tx);
            let total: u64 = rx.iter().sum();
            assert_eq!(total, 6);
        });
    }
}

//! Offline stand-in for `parking_lot`, backed by `std::sync`.
//!
//! Only [`Mutex`] is provided (the one primitive the workspace uses). The
//! API difference that matters is preserved: `lock()` returns the guard
//! directly instead of a poisoning `Result`. Poisoning is translated to a
//! panic, which is what every call site here would do with `.unwrap()`
//! anyway.

use std::sync::PoisonError;

/// A mutual-exclusion lock whose `lock()` never returns a `Result`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`]; releases the lock on drop.
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a mutex protecting `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    ///
    /// Unlike `std`, returns the guard directly; a lock poisoned by a
    /// panicking holder is still handed out (parking_lot has no poisoning).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (the borrow proves exclusivity).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_returns_guard_directly() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn shared_across_threads() {
        let m = Mutex::new(0u64);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(*m.lock(), 4000);
    }
}

//! Offline stand-in for the `bytes` crate.
//!
//! Provides [`BytesMut`] (a growable byte buffer) and the [`Buf`]/[`BufMut`]
//! cursor traits, restricted to the fixed-width big-endian accessors the
//! simulator's trace buffer uses. Byte order matches upstream `bytes`
//! (network order), so a trace written here decodes identically if the real
//! crate is ever swapped back in.

use std::ops::{Deref, DerefMut};

/// A growable, contiguous byte buffer (a thin wrapper over `Vec<u8>`).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut {
    inner: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut { inner: Vec::new() }
    }

    /// An empty buffer with room for `capacity` bytes before reallocating.
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut {
            inner: Vec::with_capacity(capacity),
        }
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether the buffer holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Removes all bytes, keeping the allocation.
    pub fn clear(&mut self) {
        self.inner.clear();
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.inner
    }
}

/// Write-side cursor: append fixed-width big-endian values.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// Read-side cursor: consume fixed-width big-endian values from the front.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Drops `cnt` bytes from the front.
    fn advance(&mut self, cnt: usize);

    /// A view of the unread bytes.
    fn chunk(&self) -> &[u8];

    /// Reads one byte.
    ///
    /// Panics if empty, matching upstream `bytes`.
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    /// Reads a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        let v = u32::from_be_bytes(self.chunk()[..4].try_into().expect("4 bytes"));
        self.advance(4);
        v
    }

    /// Reads a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        let v = u64::from_be_bytes(self.chunk()[..8].try_into().expect("8 bytes"));
        self.advance(8);
        v
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }

    fn chunk(&self) -> &[u8] {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::{Buf, BufMut, BytesMut};

    #[test]
    fn roundtrip_big_endian() {
        let mut b = BytesMut::with_capacity(13);
        b.put_u8(7);
        b.put_u64(0x0102_0304_0506_0708);
        b.put_u32(0xDEAD_BEEF);
        assert_eq!(b.len(), 13);
        assert_eq!(b[1], 0x01, "big-endian layout");

        let mut s = &b[..];
        assert_eq!(s.remaining(), 13);
        assert_eq!(s.get_u8(), 7);
        assert_eq!(s.get_u64(), 0x0102_0304_0506_0708);
        assert_eq!(s.get_u32(), 0xDEAD_BEEF);
        assert_eq!(s.remaining(), 0);
    }

    #[test]
    fn clear_keeps_capacity() {
        let mut b = BytesMut::with_capacity(64);
        b.put_u64(1);
        b.clear();
        assert!(b.is_empty());
    }
}

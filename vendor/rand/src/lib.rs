//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access, so the workspace vendors
//! the *exact* subset of the `rand` 0.8 API its code uses: the [`Rng`]
//! extension trait (`gen_range`, `gen_bool`), [`SeedableRng::seed_from_u64`]
//! and [`rngs::StdRng`]. The generator is xoshiro256++ seeded through
//! SplitMix64 — deterministic, high quality, and stable across platforms,
//! but **not** bit-compatible with upstream `StdRng` (ChaCha12). Seeded
//! results in this workspace are reproducible against *this* generator.

/// A source of random bits plus the sampling helpers the workspace uses.
pub trait Rng {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns a uniform `f64` in `[0, 1)` with 53 bits of precision.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Samples a value uniformly from `range`.
    ///
    /// Panics if the range is empty, matching upstream `rand`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// Panics unless `0 <= p <= 1`, matching upstream `rand`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range: {p}");
        self.next_f64() < p
    }
}

/// A range that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one uniform value from the range using `rng`.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

/// Rejection-free bounded sampling; the modulo bias is far below anything
/// observable at the sample counts this workspace draws.
fn bounded<R: Rng + ?Sized>(rng: &mut R, span: u64) -> u64 {
    rng.next_u64() % span
}

macro_rules! impl_int_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end - self.start) as u64;
                self.start + bounded(rng, span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    // Only reachable for the full u64 domain.
                    return rng.next_u64() as $t;
                }
                lo + bounded(rng, span + 1) as $t
            }
        }
    )*};
}

impl_int_ranges!(usize, u64, u32, u16, u8);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

/// A random generator constructible from a small seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Concrete generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard deterministic generator (xoshiro256++).
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    /// SplitMix64, used to expand a 64-bit seed into xoshiro state.
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(0u64..=5);
            assert!(y <= 5);
            let f = rng.gen_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_domain() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 8];
        for _ in 0..500 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn works_through_unsized_ref() {
        fn draw(rng: &mut (impl Rng + ?Sized)) -> usize {
            rng.gen_range(0..10)
        }
        let mut rng = StdRng::seed_from_u64(3);
        let dynrng: &mut StdRng = &mut rng;
        assert!(draw(dynrng) < 10);
    }
}

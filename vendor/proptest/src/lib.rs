//! Offline stand-in for `proptest`.
//!
//! Supports the subset this workspace's property tests use: the
//! [`proptest!`] macro with `#![proptest_config(...)]` and `ident in
//! range` argument strategies, plus [`prop_assert!`], [`prop_assert_eq!`]
//! and [`prop_assume!`]. Each test runs `cases` iterations with inputs
//! drawn from a deterministic per-test generator (seeded from the test
//! name, so runs are reproducible and independent of test order).
//!
//! Differences from real proptest, deliberately accepted for an offline
//! build: no shrinking (a failure reports the concrete inputs instead),
//! and rejected cases (`prop_assume!`) count toward the case budget.

use rand::rngs::StdRng;
use rand::SeedableRng;

pub use rand::Rng;

/// Per-test harness configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` iterations per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Why a single case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// The case was rejected by [`prop_assume!`]; it is skipped, not failed.
    Reject,
}

/// Outcome of one generated case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// A source of random values for one macro argument.
pub trait Strategy {
    /// The value type this strategy produces.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_int_strategy!(usize, u64, u32, u16, u8);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut StdRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident / $v:ident),+)),*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                let ($($v,)+) = self;
                ($($v.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy!(
    (A / a, B / b),
    (A / a, B / b, C / c),
    (A / a, B / b, C / c, D / d)
);

/// Collection strategies (`prop::collection::vec` in real proptest).
pub mod collection {
    use super::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// A strategy producing `Vec`s with lengths drawn from `len` and
    /// elements drawn independently from `element`.
    pub struct VecStrategy<S> {
        element: S,
        len: core::ops::Range<usize>,
    }

    /// Vectors of `element` values with a length in `len`.
    pub fn vec<S: Strategy>(element: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Self::Value {
            let n = rng.gen_range(self.len.clone());
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Mirror of real proptest's `prelude::prop` module path, so property
/// tests can say `prop::collection::vec(...)`.
pub mod prop {
    pub use crate::collection;
}

/// FNV-1a, used to seed each property from its own name.
pub fn seed_for(test_name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Builds the deterministic generator for one property.
pub fn rng_for(test_name: &str) -> StdRng {
    StdRng::seed_from_u64(seed_for(test_name))
}

/// Everything a property-test file needs in one import.
pub mod prelude {
    pub use crate::{
        prop, prop_assert, prop_assert_eq, prop_assume, proptest, ProptestConfig, Strategy,
        TestCaseError, TestCaseResult,
    };
}

/// Defines `#[test]` functions that run their body over many random
/// inputs. See the crate docs for the supported grammar.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::run_cases(
                    stringify!($name),
                    &$config,
                    |__pt_rng| {
                        $(let $arg = $crate::Strategy::sample(&($strategy), __pt_rng);)*
                        let __pt_inputs = format!(
                            concat!($(stringify!($arg), " = {:?}, "),*),
                            $(&$arg),*
                        );
                        // The immediately-called closure gives `prop_assume!`
                        // an early-return scope; the lint trades that away.
                        #[allow(clippy::redundant_closure_call)]
                        let outcome: $crate::TestCaseResult = (|| { $body Ok(()) })();
                        (outcome, __pt_inputs)
                    },
                );
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $($rest)*
        }
    };
}

/// Runs one property for `config.cases` iterations (macro plumbing).
pub fn run_cases<F>(name: &str, config: &ProptestConfig, mut case: F)
where
    F: FnMut(&mut StdRng) -> (TestCaseResult, String),
{
    let mut rng = rng_for(name);
    for case_no in 0..config.cases {
        let (outcome, inputs) = case(&mut rng);
        match outcome {
            Ok(()) => {}
            Err(TestCaseError::Reject) => continue,
            #[allow(unreachable_patterns)]
            Err(other) => panic!("{name} case {case_no} failed ({inputs}): {other:?}"),
        }
    }
}

/// Asserts inside a property; panics with the failing expression.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {
        assert_eq!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        assert_eq!($left, $right, $($fmt)*);
    };
}

/// Skips the current case when `cond` is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respected(n in 3usize..10, x in 0u64..100, p in 0.0f64..1.0) {
            prop_assert!((3..10).contains(&n));
            prop_assert!(x < 100);
            prop_assert!((0.0..1.0).contains(&p));
        }

        #[test]
        fn assume_skips(n in 0usize..10) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0, "assume should have filtered {}", n);
        }
    }

    #[test]
    fn seeds_differ_by_name() {
        assert_ne!(seed_for("a"), seed_for("b"));
        assert_eq!(seed_for("a"), seed_for("a"));
    }
}

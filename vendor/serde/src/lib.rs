//! Offline stand-in for `serde`.
//!
//! The workspace derives `Serialize`/`Deserialize` on snapshot types but
//! never drives serde's data model (I/O goes through the hand-rolled
//! edge-list format in `selfheal-graph::io`). This crate supplies marker
//! traits of the same names plus no-op derive macros so those annotations
//! compile unchanged; swapping in real serde later is a one-line
//! `Cargo.toml` change and zero source changes.

/// Marker for types tagged serializable (no methods in the stand-in).
pub trait Serialize {}

/// Marker for types tagged deserializable (no methods in the stand-in).
pub trait Deserialize {}

pub use serde_derive::{Deserialize, Serialize};

macro_rules! impl_markers {
    ($($t:ty),*) => {$(
        impl Serialize for $t {}
        impl Deserialize for $t {}
    )*};
}

impl_markers!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64, bool, char, String);

impl<T: Serialize> Serialize for Vec<T> {}
impl<T: Deserialize> Deserialize for Vec<T> {}
impl<T: Serialize> Serialize for Option<T> {}
impl<T: Deserialize> Deserialize for Option<T> {}
impl<A: Serialize, B: Serialize> Serialize for (A, B) {}
impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {}

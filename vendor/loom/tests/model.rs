//! Self-tests for the vendored loom stand-in: the checker must count
//! interleavings exactly, observe every outcome a racy protocol can
//! produce, prune commuting operations, and catch deadlocks.

use std::collections::BTreeSet;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex};

use loom::sync::atomic::AtomicUsize;
use loom::sync::channel;

#[test]
fn fetch_add_counter_is_exact_in_every_interleaving() {
    let report = loom::model(|| {
        let n = Arc::new(AtomicUsize::new(0));
        let h = {
            let n = n.clone();
            loom::thread::spawn(move || {
                n.fetch_add(1, Ordering::Relaxed);
            })
        };
        n.fetch_add(1, Ordering::Relaxed);
        h.join().unwrap();
        assert_eq!(n.load(Ordering::Relaxed), 2);
    });
    // Two dependent RMWs on one cell: both orders must be explored.
    assert_eq!(report.schedules, 2, "expected both RMW orders: {report:?}");
}

#[test]
fn load_then_store_exhibits_the_lost_update() {
    // The classic broken counter: load, add, store. The checker must
    // surface BOTH possible final values (2 when serialized, 1 when
    // the increments interleave and one update is lost).
    let finals: Arc<Mutex<BTreeSet<usize>>> = Arc::new(Mutex::new(BTreeSet::new()));
    let sink = finals.clone();
    loom::model(move || {
        let n = Arc::new(AtomicUsize::new(0));
        let h = {
            let n = n.clone();
            loom::thread::spawn(move || {
                let v = n.load(Ordering::Relaxed);
                n.store(v + 1, Ordering::Relaxed);
            })
        };
        let v = n.load(Ordering::Relaxed);
        n.store(v + 1, Ordering::Relaxed);
        h.join().unwrap();
        sink.lock().unwrap().insert(n.load(Ordering::Relaxed));
    });
    let finals = finals.lock().unwrap();
    assert_eq!(
        &*finals,
        &BTreeSet::from([1, 2]),
        "exploration missed an outcome of the racy increment"
    );
}

#[test]
fn independent_operations_are_pruned_to_one_schedule() {
    // Two threads touching *different* atomics commute; sleep sets
    // must collapse the state space to a single complete schedule.
    let report = loom::model(|| {
        let a = Arc::new(AtomicUsize::new(0));
        let b = Arc::new(AtomicUsize::new(0));
        let h = {
            let a = a.clone();
            loom::thread::spawn(move || {
                a.fetch_add(1, Ordering::Relaxed);
            })
        };
        b.fetch_add(1, Ordering::Relaxed);
        h.join().unwrap();
        assert_eq!(a.load(Ordering::Relaxed), 1);
        assert_eq!(b.load(Ordering::Relaxed), 1);
    });
    assert_eq!(
        report.schedules, 1,
        "commuting ops should explore one order: {report:?}"
    );
    assert!(report.pruned >= 1, "expected sleep-set pruning: {report:?}");
}

#[test]
fn scoped_threads_fan_in_through_the_channel() {
    let report = loom::model(|| {
        let (tx, rx) = channel::bounded::<usize>(2);
        loom::thread::scope(|s| {
            for k in 1..=2usize {
                let tx = tx.clone();
                s.spawn(move || {
                    tx.send(k).unwrap();
                });
            }
            drop(tx);
            let mut got: Vec<usize> = rx.iter().collect();
            got.sort_unstable();
            assert_eq!(got, vec![1, 2]);
        });
    });
    assert!(report.schedules >= 2, "sends must race: {report:?}");
}

#[test]
fn wait_until_blocks_without_enumerating_spins() {
    // The futex-style wait: the waiter parks on one schedule point until
    // two worker increments land. A spin loop here would diverge the DFS;
    // the readiness predicate keeps the state space tiny and the waiter
    // must observe the condition in EVERY schedule.
    let report = loom::model(|| {
        let n = Arc::new(AtomicUsize::new(0));
        let workers: Vec<_> = (0..2)
            .map(|_| {
                let n = n.clone();
                loom::thread::spawn(move || {
                    n.fetch_add(1, Ordering::Relaxed);
                })
            })
            .collect();
        n.wait_until(|v| v >= 2);
        assert_eq!(n.load(Ordering::Relaxed), 2);
        for h in workers {
            h.join().unwrap();
        }
    });
    assert!(
        report.schedules >= 1 && report.max_depth < 40,
        "wait_until must not spin-expand the schedule space: {report:?}"
    );
}

#[test]
fn wait_until_that_can_never_be_satisfied_is_a_deadlock() {
    let r = std::panic::catch_unwind(|| {
        loom::model(|| {
            let n = AtomicUsize::new(0);
            // No other thread exists to change the value.
            n.wait_until(|v| v == 1);
        });
    });
    let err = r.expect_err("unsatisfiable wait must fail the model");
    let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
    assert!(msg.contains("deadlock"), "unexpected payload: {msg:?}");
}

#[test]
fn wait_until_degrades_to_a_spin_outside_the_model() {
    let n = Arc::new(AtomicUsize::new(0));
    let h = {
        let n = n.clone();
        std::thread::spawn(move || {
            n.store(3, Ordering::SeqCst);
        })
    };
    n.wait_until(|v| v == 3);
    assert_eq!(n.load(Ordering::SeqCst), 3);
    h.join().unwrap();
}

#[test]
fn deadlock_is_detected_and_reported() {
    let r = std::panic::catch_unwind(|| {
        loom::model(|| {
            let (_tx, rx) = channel::bounded::<usize>(1);
            // _tx alive, nothing sent: recv can never become ready.
            let _ = rx.recv();
        });
    });
    let err = r.expect_err("deadlock must fail the model");
    let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
    assert!(msg.contains("deadlock"), "unexpected payload: {msg:?}");
}

#[test]
fn failing_assertion_escapes_the_model() {
    let r = std::panic::catch_unwind(|| {
        loom::model(|| {
            let n = Arc::new(AtomicUsize::new(0));
            let h = {
                let n = n.clone();
                loom::thread::spawn(move || {
                    let v = n.load(Ordering::Relaxed);
                    n.store(v + 1, Ordering::Relaxed);
                })
            };
            let v = n.load(Ordering::Relaxed);
            n.store(v + 1, Ordering::Relaxed);
            h.join().unwrap();
            // Fails on the interleaving that loses an update.
            assert_eq!(n.load(Ordering::Relaxed), 2);
        });
    });
    assert!(r.is_err(), "the lost-update schedule must surface");
}

#[test]
fn mocks_degrade_to_std_outside_the_model() {
    let n = AtomicUsize::new(41);
    assert_eq!(n.fetch_add(1, Ordering::Relaxed), 41);
    assert_eq!(n.load(Ordering::Relaxed), 42);
    let (tx, rx) = channel::bounded::<u8>(1);
    tx.send(7).unwrap();
    drop(tx);
    assert_eq!(rx.iter().collect::<Vec<_>>(), vec![7]);
}

//! Mock threads: [`spawn`]/[`JoinHandle`] and a [`scope`] mirror of
//! `std::thread::scope`, registering every thread with the current
//! model's scheduler (plain `std` threads outside a model).

use std::cell::RefCell;
use std::sync::Arc;

use crate::sched::{cur_ctx, hook, run_thread, Op, Scheduler, Tid};

pub struct JoinHandle<T> {
    inner: std::thread::JoinHandle<T>,
    model: Option<(Arc<Scheduler>, Tid)>,
}

impl<T> JoinHandle<T> {
    /// Wait for the thread to finish; its completion order relative to
    /// other operations is a scheduling decision under the model.
    pub fn join(self) -> std::thread::Result<T> {
        if let (Some((sched, target)), Some((_, me))) = (&self.model, cur_ctx()) {
            sched.join_point(me, *target);
        }
        self.inner.join()
    }
}

/// Spawn a thread. Inside a model the child is registered with the
/// scheduler *before* the OS thread starts, so its first operation is
/// already schedulable.
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    match cur_ctx() {
        Some((sched, _)) => {
            let tid = sched.register_thread();
            let inner = {
                let sched = sched.clone();
                std::thread::spawn(move || {
                    run_thread(sched, tid, move || {
                        // Park before any user code: thread prologues
                        // must not race the still-running spawner.
                        hook(Op::Spawn(tid));
                        f()
                    })
                })
            };
            JoinHandle {
                inner,
                model: Some((sched, tid)),
            }
        }
        None => JoinHandle {
            inner: std::thread::spawn(f),
            model: None,
        },
    }
}

pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
    model: Option<Arc<Scheduler>>,
    /// Model tids of scoped threads, joined at scope exit.
    joins: RefCell<Vec<Tid>>,
}

pub struct ScopedJoinHandle<'scope, T> {
    inner: std::thread::ScopedJoinHandle<'scope, T>,
    model: Option<(Arc<Scheduler>, Tid)>,
}

impl<T> ScopedJoinHandle<'_, T> {
    pub fn join(self) -> std::thread::Result<T> {
        if let (Some((sched, target)), Some((_, me))) = (&self.model, cur_ctx()) {
            sched.join_point(me, *target);
        }
        self.inner.join()
    }
}

impl<'scope, 'env> Scope<'scope, 'env> {
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce() -> T + Send + 'scope,
        T: Send + 'scope,
    {
        match &self.model {
            Some(sched) => {
                let tid = sched.register_thread();
                self.joins.borrow_mut().push(tid);
                let inner = {
                    let sched = sched.clone();
                    self.inner.spawn(move || {
                        run_thread(sched, tid, move || {
                            // See `spawn`: serialize the prologue.
                            hook(Op::Spawn(tid));
                            f()
                        })
                    })
                };
                ScopedJoinHandle {
                    inner,
                    model: Some((sched.clone(), tid)),
                }
            }
            None => ScopedJoinHandle {
                inner: self.inner.spawn(f),
                model: None,
            },
        }
    }
}

/// Mirror of `std::thread::scope`: all scoped threads are joined before
/// this returns. Under the model, the implicit joins at scope exit are
/// schedule points exactly like explicit [`ScopedJoinHandle::join`].
pub fn scope<'env, F, T>(f: F) -> T
where
    // Unlike std, the outer reference is not `&'scope`: our `Scope`
    // already stores the `&'scope std::thread::Scope` that `spawn`
    // needs, so the wrapper value itself may live on the closure frame.
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> T,
{
    let ctx = cur_ctx();
    let out = std::thread::scope(|s| {
        let scope = Scope {
            inner: s,
            model: ctx.as_ref().map(|(sched, _)| sched.clone()),
            joins: RefCell::new(Vec::new()),
        };
        // The closure must not unwind through `std::thread::scope`
        // while scoped model threads are still parked: std would block
        // joining them before the panic reaches the scheduler. Catch
        // it here, report it (waking every parked thread), and let the
        // scope drain.
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let out = f(&scope);
            if let Some((sched, me)) = &ctx {
                // Implicit join of every scoped thread not yet joined
                // explicitly (join_point no-ops for terminated ones).
                for tid in scope.joins.borrow().iter() {
                    sched.join_point(*me, *tid);
                }
            }
            out
        }));
        match caught {
            Ok(v) => Ok(v),
            Err(p) => match &ctx {
                Some((sched, _)) => {
                    sched.record_panic(p);
                    Err(())
                }
                None => std::panic::resume_unwind(p),
            },
        }
    });
    match out {
        Ok(v) => v,
        // The panic is recorded with the scheduler; unwind quietly.
        Err(()) => std::panic::panic_any(crate::sched::AbortToken),
    }
}

//! Offline stand-in for `loom`: a model checker for the workspace's
//! concurrent protocols.
//!
//! [`model`] runs a closure repeatedly, exploring **every** interleaving
//! of the operations its threads perform on mock shared objects
//! ([`sync::atomic`] atomics, [`sync::channel`] channels, [`thread`]
//! spawns/joins). Exploration is a depth-first search over scheduling
//! decisions, driven by replay: each run follows a recorded prefix of
//! choices and extends it; backtracking flips the deepest decision with
//! an untried alternative. Redundant interleavings are pruned with
//! *sleep sets* (Godefroid), the same partial-order-reduction family as
//! the DPOR schedule explorer in `selfheal-core::explore`: two adjacent
//! operations that commute (different objects, or both loads) never have
//! both orders explored.
//!
//! # Scope and fidelity
//!
//! - The exploration is **sequentially consistent**: every run is some
//!   total order of the operations. Weak-memory effects that relaxed
//!   atomics permit on real hardware (stale loads, store reordering) are
//!   *not* modeled; what the checker proves is that the protocol has no
//!   lost updates, torn transitions, or order-dependent outcomes under
//!   any operation interleaving. The workspace's `Relaxed` sites are all
//!   single-location monotone hints or commutative counters, for which
//!   per-location coherence (which SC exploration covers) is the entire
//!   soundness argument — see `ARCHITECTURE.md` "Static analysis &
//!   memory model".
//! - Threads under test must synchronize **only** through the mock
//!   primitives. A `std::sync::Mutex` held across a mock operation can
//!   hang the scheduler (the blocked thread is invisible to it).
//! - Outside [`model`], every mock primitive degrades to its `std`
//!   behavior, so a `--cfg loom` build runs normal code unchanged.
//!
//! # Example
//!
//! ```ignore
//! let report = loom::model(|| {
//!     let n = std::sync::Arc::new(loom::sync::atomic::AtomicUsize::new(0));
//!     let h = {
//!         let n = n.clone();
//!         loom::thread::spawn(move || { n.fetch_add(1, Ordering::Relaxed); })
//!     };
//!     n.fetch_add(1, Ordering::Relaxed);
//!     h.join().unwrap();
//!     assert_eq!(n.load(Ordering::Relaxed), 2); // holds in EVERY interleaving
//! });
//! println!("{} schedules, {} pruned", report.schedules, report.pruned);
//! ```

mod model;
mod sched;
pub mod sync;
pub mod thread;

pub use model::{model, Report};

//! Mock synchronization primitives: [`atomic`] integers and a bounded
//! [`channel`], each emitting a schedule point per operation when used
//! inside [`crate::model`] and degrading to plain `std` behavior
//! outside it.

pub mod atomic {
    //! Drop-in `AtomicUsize`/`AtomicU64` whose every operation is a
    //! scheduling decision under the model. The `Ordering` argument is
    //! accepted for source compatibility; exploration itself is
    //! sequentially consistent (see the crate docs).

    pub use std::sync::atomic::Ordering;

    use std::sync::OnceLock;

    use crate::sched::{cur_ctx, hook, hook_ready, Op};

    macro_rules! mock_atomic {
        ($name:ident, $raw:ty, $int:ty) => {
            #[derive(Debug, Default)]
            pub struct $name {
                inner: $raw,
                id: OnceLock<usize>,
            }

            impl $name {
                #[must_use]
                pub const fn new(v: $int) -> Self {
                    Self {
                        inner: <$raw>::new(v),
                        id: OnceLock::new(),
                    }
                }

                /// Replay-stable identity: first-use order under the
                /// model (see `Scheduler::fresh_obj_id`), raw address
                /// outside it.
                fn addr(&self) -> usize {
                    *self.id.get_or_init(|| match cur_ctx() {
                        Some((sched, _)) => sched.fresh_obj_id(),
                        None => self as *const _ as usize,
                    })
                }

                pub fn load(&self, order: Ordering) -> $int {
                    hook(Op::Load(self.addr()));
                    self.inner.load(order)
                }

                pub fn store(&self, v: $int, order: Ordering) {
                    hook(Op::Store(self.addr()));
                    self.inner.store(v, order);
                }

                pub fn fetch_add(&self, v: $int, order: Ordering) -> $int {
                    hook(Op::Rmw(self.addr()));
                    self.inner.fetch_add(v, order)
                }

                pub fn fetch_sub(&self, v: $int, order: Ordering) -> $int {
                    hook(Op::Rmw(self.addr()));
                    self.inner.fetch_sub(v, order)
                }

                pub fn fetch_max(&self, v: $int, order: Ordering) -> $int {
                    hook(Op::Rmw(self.addr()));
                    self.inner.fetch_max(v, order)
                }

                pub fn fetch_min(&self, v: $int, order: Ordering) -> $int {
                    hook(Op::Rmw(self.addr()));
                    self.inner.fetch_min(v, order)
                }

                pub fn compare_exchange(
                    &self,
                    current: $int,
                    new: $int,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$int, $int> {
                    hook(Op::Rmw(self.addr()));
                    self.inner.compare_exchange(current, new, success, failure)
                }

                /// Block until `pred(value)` holds — the modeled analogue
                /// of a futex wait. Under the model this is **one**
                /// schedule point whose readiness predicate re-samples the
                /// value whenever the scheduler makes a decision, so the
                /// thread is simply not enabled until the predicate holds:
                /// exploration never enumerates spin iterations (a naive
                /// `while !pred(load())` loop has unboundedly many
                /// schedules and blows the DFS), and a predicate no other
                /// thread can ever satisfy is reported as a deadlock.
                /// Outside a model it degrades to a spin-yield loop.
                ///
                /// The predicate is a plain `fn` on the sampled value, so
                /// it cannot touch mock objects or the scheduler (the
                /// [`Readiness::When`](crate::sched) contract).
                pub fn wait_until(&self, pred: fn($int) -> bool) {
                    let addr = self.addr();
                    let target = &self.inner as *const $raw as usize;
                    let ready: Box<dyn Fn() -> bool + Send> = Box::new(move || {
                        // SAFETY: the scheduler holds this closure only
                        // while the waiting thread is parked inside
                        // `hook_ready` below (granting the thread clears
                        // its pending readiness), and that parked frame
                        // keeps the `&self` borrow — hence the pointee —
                        // alive for the closure's whole lifetime.
                        let inner = unsafe { &*(target as *const $raw) };
                        pred(inner.load(Ordering::SeqCst))
                    });
                    if !hook_ready(Op::Load(addr), ready) {
                        // Outside a model: busy-wait for the condition.
                        while !pred(self.inner.load(Ordering::SeqCst)) {
                            std::thread::yield_now();
                        }
                    }
                }
            }
        };
    }

    mock_atomic!(AtomicUsize, std::sync::atomic::AtomicUsize, usize);
    mock_atomic!(AtomicU64, std::sync::atomic::AtomicU64, u64);
}

pub mod channel {
    //! Bounded MPSC channel with the `vendor/crossbeam` surface
    //! (`bounded`, `Sender`, `Receiver`), modeled so that sends and
    //! receives on the same channel are scheduling decisions.
    //!
    //! The payload queue and the schedulable metadata are split so the
    //! readiness closure handed to the scheduler stays `'static` even
    //! when `T` is not.

    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Mutex, OnceLock};

    use crate::sched::{cur_ctx, hook_ready, Op};

    /// Send on a channel whose receiver is gone.
    #[derive(PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    // Like std's: no `T: Debug` bound, the payload is elided.
    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a closed channel")
        }
    }

    /// Receive on an empty channel whose senders are gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// `T`-free schedulable state: captured by `'static` readiness
    /// closures. `len` mirrors `queue.len()` exactly (updated under the
    /// queue's critical section ordering: meta is always locked first).
    struct Meta {
        len: usize,
        cap: usize,
        senders: usize,
        receiver_alive: bool,
    }

    struct Shared<T> {
        meta: Arc<Mutex<Meta>>,
        queue: Mutex<VecDeque<T>>,
        id: OnceLock<usize>,
    }

    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Create a bounded channel with capacity `cap` (min 1).
    #[must_use]
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            meta: Arc::new(Mutex::new(Meta {
                len: 0,
                cap: cap.max(1),
                senders: 1,
                receiver_alive: true,
            })),
            queue: Mutex::new(VecDeque::new()),
            id: OnceLock::new(),
        });
        (
            Sender {
                shared: shared.clone(),
            },
            Receiver { shared },
        )
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared
                .meta
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .senders += 1;
            Sender {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            self.shared
                .meta
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .senders -= 1;
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared
                .meta
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .receiver_alive = false;
        }
    }

    impl<T> Shared<T> {
        /// Replay-stable channel identity (see `atomic`'s `addr`).
        fn chan_id(&self) -> usize {
            *self.id.get_or_init(|| match cur_ctx() {
                Some((sched, _)) => sched.fresh_obj_id(),
                None => Arc::as_ptr(&self.meta) as usize,
            })
        }
    }

    impl<T> Sender<T> {
        /// Block until there is room (a schedule point under the model;
        /// a spin-yield outside it), then enqueue.
        pub fn send(&self, v: T) -> Result<(), SendError<T>> {
            let meta = self.shared.meta.clone();
            let ready: Box<dyn Fn() -> bool + Send> = Box::new(move || {
                let m = meta.lock().unwrap_or_else(|e| e.into_inner());
                m.len < m.cap || !m.receiver_alive
            });
            if !hook_ready(Op::Send(self.shared.chan_id()), ready) {
                // Outside a model: busy-wait for room.
                loop {
                    let m = self.shared.meta.lock().unwrap_or_else(|e| e.into_inner());
                    if m.len < m.cap || !m.receiver_alive {
                        break;
                    }
                    drop(m);
                    std::thread::yield_now();
                }
            }
            let mut m = self.shared.meta.lock().unwrap_or_else(|e| e.into_inner());
            if !m.receiver_alive {
                return Err(SendError(v));
            }
            m.len += 1;
            self.shared
                .queue
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push_back(v);
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Block until a value is available (or all senders are gone).
        pub fn recv(&self) -> Result<T, RecvError> {
            let meta = self.shared.meta.clone();
            let ready: Box<dyn Fn() -> bool + Send> = Box::new(move || {
                let m = meta.lock().unwrap_or_else(|e| e.into_inner());
                m.len > 0 || m.senders == 0
            });
            if !hook_ready(Op::Recv(self.shared.chan_id()), ready) {
                loop {
                    let m = self.shared.meta.lock().unwrap_or_else(|e| e.into_inner());
                    if m.len > 0 || m.senders == 0 {
                        break;
                    }
                    drop(m);
                    std::thread::yield_now();
                }
            }
            let mut m = self.shared.meta.lock().unwrap_or_else(|e| e.into_inner());
            if m.len == 0 {
                return Err(RecvError);
            }
            m.len -= 1;
            let v = self
                .shared
                .queue
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .pop_front()
                .expect("meta.len > 0 implies a queued value");
            Ok(v)
        }

        /// Iterator draining the channel until all senders hang up.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { rx: self }
        }

        /// Non-schedulable drain used by tests outside the model.
        pub fn try_recv(&self) -> Result<T, RecvError> {
            let mut m = self.shared.meta.lock().unwrap_or_else(|e| e.into_inner());
            if m.len == 0 {
                return Err(RecvError);
            }
            m.len -= 1;
            let v = self
                .shared
                .queue
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .pop_front()
                .expect("meta.len > 0 implies a queued value");
            Ok(v)
        }
    }

    pub struct Iter<'a, T> {
        rx: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = Iter<'a, T>;
        fn into_iter(self) -> Iter<'a, T> {
            self.iter()
        }
    }
}

//! The exploration driver: run the closure under every schedule.

use std::panic;
use std::sync::Arc;

use crate::sched::{install_quiet_abort_hook, run_thread, Node, Scheduler, Tid};

/// Runaway-exploration backstop; honest protocols with 2–3 threads
/// explore orders of magnitude fewer schedules than this.
const MAX_RUNS: u64 = 1_000_000;

/// Exploration statistics returned by [`model`].
#[derive(Clone, Copy, Debug, Default)]
pub struct Report {
    /// Complete schedules executed to the end.
    pub schedules: u64,
    /// Runs cut short plus alternatives skipped by sleep-set pruning.
    pub pruned: u64,
    /// Deepest decision stack seen across all runs.
    pub max_depth: usize,
}

/// Exhaustively explore every interleaving of `f`'s mock operations.
///
/// `f` runs once per schedule; a failing run (assertion panic, deadlock,
/// divergent replay) re-raises its panic here after printing the
/// schedule that produced it. Returns exploration statistics otherwise.
pub fn model<F>(f: F) -> Report
where
    F: Fn() + Send + Sync + 'static,
{
    install_quiet_abort_hook();
    let f = Arc::new(f);
    let mut stack: Vec<Node> = Vec::new();
    let mut report = Report::default();
    let mut runs: u64 = 0;

    loop {
        runs += 1;
        assert!(
            runs <= MAX_RUNS,
            "loom: exploration exceeded {MAX_RUNS} runs — unbounded nondeterminism?"
        );

        let sched = Arc::new(Scheduler::new(std::mem::take(&mut stack)));
        let tid0: Tid = 0;
        let handle = {
            let sched = sched.clone();
            let f = f.clone();
            std::thread::spawn(move || run_thread(sched, tid0, || f()))
        };
        sched.wait_all_terminated();
        // The root thread unwinds with an AbortToken on failure; either
        // way it has already reported through the scheduler.
        let _ = handle.join();

        let mut out = sched.collect();
        report.pruned += out.pruned;
        report.max_depth = report.max_depth.max(out.stack.len());
        if let Some(p) = out.panic {
            eprintln!("loom: failing schedule ({} decisions):", out.stack.len());
            for (d, node) in out.stack.iter().enumerate() {
                eprintln!(
                    "  #{d}: thread {} ran {:?} (enabled: {:?})",
                    node.chosen,
                    node.op_of(node.chosen),
                    node.enabled
                );
            }
            panic::resume_unwind(p);
        }
        if !out.sleep_aborted {
            report.schedules += 1;
        }

        // Backtrack: flip the deepest decision with an untried,
        // non-sleeping alternative; pop exhausted nodes.
        loop {
            match out.stack.last_mut() {
                None => return report,
                Some(node) => {
                    node.explored.push(node.chosen);
                    let next = node
                        .enabled
                        .iter()
                        .copied()
                        .find(|t| !node.explored.contains(t) && !node.sleep.contains(t));
                    match next {
                        Some(t) => {
                            node.chosen = t;
                            break;
                        }
                        None => {
                            // Count alternatives sleep sets let us skip.
                            report.pruned += node
                                .enabled
                                .iter()
                                .filter(|t| node.sleep.contains(t) && !node.explored.contains(t))
                                .count() as u64;
                            out.stack.pop();
                        }
                    }
                }
            }
        }
        stack = out.stack;
    }
}

//! The cooperative scheduler behind [`crate::model`].
//!
//! Exactly one model thread is *active* at any time. A thread arriving
//! at a schedule point (every mock atomic/channel/join operation) parks
//! itself; when every live thread is parked the last arrival runs the
//! decision logic, which either replays the recorded choice at this
//! depth or — past the replayed prefix — picks the first enabled thread
//! not in the sleep set, pushing a fresh decision [`Node`] onto the DFS
//! stack. The granted thread wakes, performs its operation, and runs to
//! its next point.
//!
//! Aborted runs (sleep-set dead ends, deadlocks, a test assertion
//! failing) tear down by waking every parked thread with a panic whose
//! payload is the private [`AbortToken`]; the panic hook suppresses its
//! output and thread wrappers recognize it as teardown, not failure.

use std::any::Any;
use std::cell::RefCell;
use std::panic;
use std::sync::{Arc, Condvar, Mutex, OnceLock};

pub(crate) type Tid = usize;

/// DFS depth guard: a single run exceeding this many scheduling
/// decisions almost certainly means a livelock in the modeled code.
pub(crate) const MAX_DEPTH: usize = 20_000;

/// One operation on a mock shared object, identified by address.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum Op {
    Load(usize),
    Store(usize),
    /// Atomic read-modify-write (`fetch_add`, `fetch_max`, ...).
    Rmw(usize),
    Send(usize),
    Recv(usize),
    Join(Tid),
    /// Initial schedule point of a spawned thread, emitted before any
    /// user code runs. Serializes thread prologues so first-use object
    /// ids stay deterministic (see [`super::sched::Scheduler::fresh_obj_id`]).
    Spawn(Tid),
}

/// Do `a` and `b` commute? Adjacent independent operations lead to the
/// same state in either order, so only one order needs exploring.
pub(crate) fn indep(a: Op, b: Op) -> bool {
    use Op::*;
    match (a, b) {
        // Joins and spawn prologues read no shared state; their
        // position among other operations is unobservable.
        (Join(_) | Spawn(_), _) | (_, Join(_) | Spawn(_)) => true,
        // Two loads commute even on the same object.
        (Load(_), Load(_)) => true,
        (Load(x), Store(y) | Rmw(y)) | (Store(x) | Rmw(x), Load(y)) => x != y,
        (Store(x) | Rmw(x), Store(y) | Rmw(y)) => x != y,
        // Channel operations conflict exactly when they share a channel.
        (Send(x) | Recv(x), Send(y) | Recv(y)) => x != y,
        // An atomic and a channel are always distinct objects.
        (Send(_) | Recv(_), Load(_) | Store(_) | Rmw(_))
        | (Load(_) | Store(_) | Rmw(_), Send(_) | Recv(_)) => true,
    }
}

/// When a parked thread's pending operation may be granted.
pub(crate) enum Readiness {
    Always,
    WhenTerminated(Tid),
    /// Arbitrary predicate (channel receive); must not touch mock
    /// objects or the scheduler.
    When(Box<dyn Fn() -> bool + Send>),
}

struct ThreadState {
    parked: bool,
    terminated: bool,
    pending: Option<(Op, Readiness)>,
}

impl ThreadState {
    fn new() -> Self {
        ThreadState {
            parked: false,
            terminated: false,
            pending: None,
        }
    }
}

/// One scheduling decision on the DFS stack.
#[derive(Debug)]
pub(crate) struct Node {
    /// Threads whose pending operation was grantable, ascending.
    pub(crate) enabled: Vec<Tid>,
    /// Pending operation of each enabled thread (aligned with `enabled`).
    pub(crate) ops: Vec<Op>,
    /// Sleep set: enabled threads whose subtree here is provably
    /// redundant (covered by an earlier sibling of an ancestor).
    pub(crate) sleep: Vec<Tid>,
    /// Choices already fully explored at this node.
    pub(crate) explored: Vec<Tid>,
    /// The choice the current/most recent run follows.
    pub(crate) chosen: Tid,
}

impl Node {
    pub(crate) fn op_of(&self, t: Tid) -> Option<Op> {
        self.enabled
            .iter()
            .position(|&u| u == t)
            .map(|i| self.ops[i])
    }
}

pub(crate) struct RunState {
    threads: Vec<ThreadState>,
    live: usize,
    parked: usize,
    granted: Option<Tid>,
    abort: bool,
    /// The run died at a fully-slept decision (normal pruning).
    sleep_aborted: bool,
    /// First real panic observed (test assertion, deadlock, ...).
    panic: Option<Box<dyn Any + Send>>,
    /// DFS stack: replayed prefix plus this run's fresh decisions.
    stack: Vec<Node>,
    /// Next decision index.
    depth: usize,
    /// Alternatives pruned by sleep-set dead ends during this run.
    pruned: u64,
    /// Mock objects identified so far (see [`Scheduler::fresh_obj_id`]).
    next_obj: usize,
}

/// Per-run outcome handed back to the exploration driver.
pub(crate) struct RunOutcome {
    pub(crate) stack: Vec<Node>,
    pub(crate) pruned: u64,
    pub(crate) sleep_aborted: bool,
    pub(crate) panic: Option<Box<dyn Any + Send>>,
}

pub(crate) struct Scheduler {
    m: Mutex<RunState>,
    cv: Condvar,
}

/// Panic payload used to unwind parked threads during run teardown.
pub(crate) struct AbortToken;

thread_local! {
    static CTX: RefCell<Option<(Arc<Scheduler>, Tid)>> = const { RefCell::new(None) };
}

/// The current model context of this OS thread, if any.
pub(crate) fn cur_ctx() -> Option<(Arc<Scheduler>, Tid)> {
    CTX.with(|c| c.borrow().clone())
}

fn set_ctx(ctx: Option<(Arc<Scheduler>, Tid)>) {
    CTX.with(|c| *c.borrow_mut() = ctx);
}

/// Install (once per process) a panic hook that silences [`AbortToken`]
/// unwinds — they are scheduler teardown, not failures — and defers to
/// the previous hook for everything else.
pub(crate) fn install_quiet_abort_hook() {
    static HOOK: OnceLock<()> = OnceLock::new();
    HOOK.get_or_init(|| {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<AbortToken>().is_some() {
                return;
            }
            // Cascading panics on model threads during teardown (e.g.
            // std's "a scoped thread panicked" re-raise) are noise; the
            // first real panic was already printed and recorded.
            if let Some((sched, _)) = cur_ctx() {
                if sched.is_aborting() {
                    return;
                }
            }
            prev(info);
        }));
    });
}

impl Scheduler {
    pub(crate) fn new(stack: Vec<Node>) -> Self {
        Scheduler {
            m: Mutex::new(RunState {
                threads: vec![ThreadState::new()],
                live: 1,
                parked: 0,
                granted: None,
                abort: false,
                sleep_aborted: false,
                panic: None,
                stack,
                depth: 0,
                pruned: 0,
                next_obj: 0,
            }),
            cv: Condvar::new(),
        }
    }

    /// Register a freshly spawned model thread; called by the spawner
    /// (which is the active thread) before the OS thread starts.
    pub(crate) fn register_thread(&self) -> Tid {
        let mut st = self.m.lock().unwrap_or_else(|e| e.into_inner());
        let tid = st.threads.len();
        st.threads.push(ThreadState::new());
        st.live += 1;
        tid
    }

    /// Park at a schedule point and block until granted (or aborted).
    pub(crate) fn point(&self, me: Tid, op: Op, ready: Readiness) {
        let st = self.m.lock().unwrap_or_else(|e| e.into_inner());
        self.park(st, me, op, ready);
    }

    /// Join fast path: no schedule point when the target has already
    /// terminated (the operation would commute with everything anyway).
    pub(crate) fn join_point(&self, me: Tid, target: Tid) {
        let st = self.m.lock().unwrap_or_else(|e| e.into_inner());
        if st.abort {
            drop(st);
            panic::panic_any(AbortToken);
        }
        if st.threads[target].terminated {
            return;
        }
        self.park(st, me, Op::Join(target), Readiness::WhenTerminated(target));
    }

    fn park(&self, mut st: std::sync::MutexGuard<'_, RunState>, me: Tid, op: Op, ready: Readiness) {
        if st.abort {
            drop(st);
            panic::panic_any(AbortToken);
        }
        st.threads[me].pending = Some((op, ready));
        st.threads[me].parked = true;
        st.parked += 1;
        if st.parked == st.live {
            self.decide(&mut st);
        }
        loop {
            if st.abort {
                drop(st);
                panic::panic_any(AbortToken);
            }
            if st.granted == Some(me) {
                st.granted = None;
                st.threads[me].parked = false;
                st.threads[me].pending = None;
                st.parked -= 1;
                return;
            }
            st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// A model thread finished (normally or unwinding).
    pub(crate) fn on_terminate(&self, me: Tid) {
        let mut st = self.m.lock().unwrap_or_else(|e| e.into_inner());
        st.threads[me].terminated = true;
        st.live -= 1;
        if st.live == 0 {
            self.cv.notify_all();
        } else if !st.abort && st.parked == st.live {
            self.decide(&mut st);
        }
    }

    /// Record the first real panic and tear the run down. [`AbortToken`]
    /// payloads and panics during an abort are teardown noise.
    pub(crate) fn record_panic(&self, p: Box<dyn Any + Send>) {
        if p.downcast_ref::<AbortToken>().is_some() {
            return;
        }
        let mut st = self.m.lock().unwrap_or_else(|e| e.into_inner());
        if !st.abort {
            st.panic = Some(p);
            st.abort = true;
            self.cv.notify_all();
        }
    }

    /// Is the current run tearing down?
    pub(crate) fn is_aborting(&self) -> bool {
        self.m.lock().unwrap_or_else(|e| e.into_inner()).abort
    }

    /// Deterministic identity for a mock object first touched during
    /// this run. Exactly one thread is active between schedule points,
    /// so the creation/first-use order — hence the id — is a function
    /// of the schedule alone, making ids stable under replay (raw
    /// addresses are not: allocations move between runs). Tagged with
    /// low bits `01` so ids never collide with the aligned-address
    /// fallback used outside a model.
    pub(crate) fn fresh_obj_id(&self) -> usize {
        let mut st = self.m.lock().unwrap_or_else(|e| e.into_inner());
        st.next_obj += 1;
        st.next_obj * 4 + 1
    }

    /// Block until every model thread of the current run terminated.
    pub(crate) fn wait_all_terminated(&self) {
        let mut st = self.m.lock().unwrap_or_else(|e| e.into_inner());
        while st.live > 0 {
            st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Harvest the run's outcome (stack, pruning stats, panic).
    pub(crate) fn collect(&self) -> RunOutcome {
        let mut st = self.m.lock().unwrap_or_else(|e| e.into_inner());
        RunOutcome {
            stack: std::mem::take(&mut st.stack),
            pruned: st.pruned,
            sleep_aborted: st.sleep_aborted,
            panic: st.panic.take(),
        }
    }

    /// All threads are parked: pick who runs next.
    fn decide(&self, st: &mut RunState) {
        debug_assert_eq!(st.parked, st.live);
        let term: Vec<bool> = st.threads.iter().map(|t| t.terminated).collect();
        let mut enabled: Vec<Tid> = Vec::new();
        let mut ops: Vec<Op> = Vec::new();
        for tid in 0..st.threads.len() {
            let t = &st.threads[tid];
            if !t.parked || t.terminated {
                continue;
            }
            if let Some((op, ready)) = &t.pending {
                let ok = match ready {
                    Readiness::Always => true,
                    Readiness::WhenTerminated(j) => term[*j],
                    Readiness::When(f) => f(),
                };
                if ok {
                    enabled.push(tid);
                    ops.push(*op);
                }
            }
        }
        if enabled.is_empty() {
            self.fail(st, "loom: deadlock — every live thread is blocked");
            return;
        }
        let chosen = if st.depth < st.stack.len() {
            // Replay: the program must produce the same decision
            // structure as the run that recorded this prefix.
            let node = &st.stack[st.depth];
            if node.enabled != enabled || node.ops != ops {
                self.fail(
                    st,
                    "loom: nondeterministic execution — a replayed run diverged from its prefix",
                );
                return;
            }
            st.stack[st.depth].chosen
        } else {
            // Fresh decision: inherit the sleep set from the parent —
            // everything the parent already explored (or slept) whose
            // operation commutes with the choice that led here.
            let sleep: Vec<Tid> = match st.stack.last() {
                None => Vec::new(),
                Some(parent) => {
                    let cop = parent
                        .op_of(parent.chosen)
                        .expect("chosen is always enabled");
                    let mut s: Vec<Tid> = parent
                        .sleep
                        .iter()
                        .chain(parent.explored.iter())
                        .copied()
                        .filter(|&u| u != parent.chosen)
                        .filter(|&u| enabled.contains(&u))
                        .filter(|&u| parent.op_of(u).is_some_and(|uop| indep(uop, cop)))
                        .collect();
                    s.sort_unstable();
                    s.dedup();
                    s
                }
            };
            match enabled.iter().copied().find(|t| !sleep.contains(t)) {
                None => {
                    // Every enabled alternative is asleep: this whole
                    // subtree is covered elsewhere. Normal pruning.
                    st.pruned += enabled.len() as u64;
                    st.sleep_aborted = true;
                    st.abort = true;
                    self.cv.notify_all();
                    return;
                }
                Some(t) => {
                    if st.stack.len() >= MAX_DEPTH {
                        self.fail(st, "loom: run exceeded the scheduling-depth budget");
                        return;
                    }
                    st.stack.push(Node {
                        enabled,
                        ops,
                        sleep,
                        explored: Vec::new(),
                        chosen: t,
                    });
                    t
                }
            }
        };
        st.depth += 1;
        st.granted = Some(chosen);
        self.cv.notify_all();
    }

    fn fail(&self, st: &mut RunState, msg: &str) {
        if !st.abort {
            st.panic = Some(Box::new(msg.to_string()));
            st.abort = true;
        }
        self.cv.notify_all();
    }
}

/// Body wrapper for every model thread: installs the context, traps
/// panics, and reports termination.
pub(crate) fn run_thread<T>(sched: Arc<Scheduler>, tid: Tid, f: impl FnOnce() -> T) -> T {
    set_ctx(Some((sched.clone(), tid)));
    let r = panic::catch_unwind(panic::AssertUnwindSafe(f));
    set_ctx(None);
    match r {
        Ok(v) => {
            sched.on_terminate(tid);
            v
        }
        Err(p) => {
            sched.record_panic(p);
            sched.on_terminate(tid);
            panic::resume_unwind(Box::new(AbortToken))
        }
    }
}

/// Emit a schedule point for the current thread, if inside a model.
pub(crate) fn hook(op: Op) {
    if let Some((sched, tid)) = cur_ctx() {
        sched.point(tid, op, Readiness::Always);
    }
}

/// Emit a schedule point with a custom readiness predicate.
pub(crate) fn hook_ready(op: Op, ready: Box<dyn Fn() -> bool + Send>) -> bool {
    if let Some((sched, tid)) = cur_ctx() {
        sched.point(tid, op, Readiness::When(ready));
        true
    } else {
        false
    }
}

//! No-op derive macros backing the offline `serde` stand-in.
//!
//! The workspace only *tags* types as `Serialize`/`Deserialize`; nothing
//! serializes through serde's data model yet (graph snapshots use a
//! hand-rolled edge-list text format). These derives therefore expand to
//! marker-trait impls and nothing else, keeping every `#[derive(...)]` in
//! the seed source compiling without the real 60-kLoC dependency.

use proc_macro::TokenStream;

/// Extracts the identifier the derive is attached to (the token right
/// after `struct`/`enum`, skipping attributes and doc comments).
fn derived_type_name(input: &TokenStream) -> Option<String> {
    let mut tokens = input.clone().into_iter();
    while let Some(tok) = tokens.next() {
        if let proc_macro::TokenTree::Ident(id) = tok {
            let id = id.to_string();
            if id == "struct" || id == "enum" {
                for tok in tokens.by_ref() {
                    if let proc_macro::TokenTree::Ident(name) = tok {
                        return Some(name.to_string());
                    }
                }
            }
        }
    }
    None
}

fn marker_impl(input: TokenStream, trait_name: &str) -> TokenStream {
    match derived_type_name(&input) {
        // Generic types never appear with these derives in this workspace;
        // if one does, fail loudly rather than emit an ill-formed impl.
        Some(name) => format!("impl serde::{trait_name} for {name} {{}}")
            .parse()
            .expect("generated impl parses"),
        None => TokenStream::new(),
    }
}

/// Derives the (empty) `serde::Serialize` marker trait.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    marker_impl(input, "Serialize")
}

/// Derives the (empty) `serde::Deserialize` marker trait.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    marker_impl(input, "Deserialize")
}

//! Offline stand-in for `criterion`.
//!
//! Implements the API shape the workspace's benches use — groups,
//! `bench_function` / `bench_with_input`, `iter` / `iter_with_setup`,
//! [`BenchmarkId`], the `criterion_group!` / `criterion_main!` macros —
//! over a simple wall-clock loop: a short warm-up, then `sample_size`
//! timed samples whose per-iteration median/min/max are printed. No
//! statistics engine, plots, or HTML reports; numbers are indicative,
//! which is all an offline container can promise anyway.
//!
//! Benches honour `measurement_time`/`warm_up_time` as *caps*, scaled
//! down hard (so `cargo bench` over every target finishes in seconds),
//! and a single iteration always completes, so slow benchmarks degrade
//! to "timed once" rather than hanging.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Hard per-benchmark cap on measurement wall-clock, keeping full-suite
/// runs fast in CI containers regardless of requested measurement_time.
const MEASURE_CAP: Duration = Duration::from_millis(200);
const WARMUP_CAP: Duration = Duration::from_millis(20);

/// The benchmark harness root; one per `criterion_group!` runner.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\ngroup {name}");
        BenchmarkGroup {
            _criterion: self,
            group: name.to_string(),
            sample_size: 10,
        }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one("", name, 10, f);
        self
    }
}

/// A named collection of benchmarks sharing sampling settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    group: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Requested warm-up duration (capped hard in the stand-in).
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Requested measurement duration (capped hard in the stand-in).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<I: Display, F>(&mut self, id: I, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&self.group, &id.to_string(), self.sample_size, f);
        self
    }

    /// Benchmarks `f` under `id`, passing `input` through.
    pub fn bench_with_input<I: Display, T: ?Sized, F>(
        &mut self,
        id: I,
        input: &T,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &T),
    {
        run_one(&self.group, &id.to_string(), self.sample_size, |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group (prints nothing extra in the stand-in).
    pub fn finish(self) {}
}

/// Identifier for one parameterized benchmark.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`, criterion's conventional display form.
    pub fn new<P: Display>(name: &str, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }

    /// Identifier that is just the parameter.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Timing driver handed to each benchmark closure.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine` repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        self.iter_with_setup(|| (), |()| routine());
    }

    /// Times `routine` on fresh state from `setup`; only `routine` counts.
    ///
    /// Each recorded sample is the mean over a batch of iterations sized
    /// (from the warm-up's observed mean) so one batch measures ≈ 1ms of
    /// routine time. Single-iteration samples of a microsecond-scale
    /// routine are dominated by scheduler noise; batching keeps the
    /// run-to-run medians stable enough for the `bench-regress` gate's
    /// 10% + 3-MAD tolerance to be meaningful. Slow routines degrade to
    /// batches of one, i.e. the old behavior.
    pub fn iter_with_setup<S, O, I, R>(&mut self, mut setup: S, mut routine: R)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let deadline = Instant::now() + WARMUP_CAP;
        let mut warm_time = Duration::ZERO;
        let mut warm_iters: u32 = 0;
        loop {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            warm_time += start.elapsed();
            warm_iters += 1;
            if Instant::now() >= deadline {
                break;
            }
        }
        let mean_ns = (warm_time.as_nanos() / u128::from(warm_iters.max(1))).max(1);
        let batch = (1_000_000 / mean_ns).clamp(1, 10_000) as u32;
        let deadline = Instant::now() + MEASURE_CAP;
        for _ in 0..self.sample_size {
            let mut batch_time = Duration::ZERO;
            for _ in 0..batch {
                let input = setup();
                let start = Instant::now();
                std::hint::black_box(routine(input));
                batch_time += start.elapsed();
            }
            self.samples.push(batch_time / batch);
            if Instant::now() >= deadline {
                break;
            }
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(group: &str, name: &str, sample_size: usize, mut f: F) {
    let mut bencher = Bencher {
        samples: Vec::new(),
        sample_size,
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("  {name:<40} (no samples)");
        return;
    }
    bencher.samples.sort();
    let median = bencher.samples[bencher.samples.len() / 2];
    let min = bencher.samples[0];
    let max = bencher.samples[bencher.samples.len() - 1];
    println!(
        "  {name:<40} median {:>12?}  (min {:?}, max {:?}, {} samples)",
        median,
        min,
        max,
        bencher.samples.len()
    );
    export_sample(group, name, &bencher.samples);
}

/// When `CRITERION_EXPORT` names a file, append one JSONL record per
/// benchmark: `{"group", "bench", "median_ns", "mad_ns", "samples"}`.
/// Bench targets run as separate processes, so append (not truncate) is
/// the only mode that lets one `cargo bench` invocation accumulate a
/// whole suite; the consumer (`selfheal-bench`'s `baseline` tool) merges
/// duplicates by keeping the last record.
fn export_sample(group: &str, name: &str, sorted: &[Duration]) {
    let Ok(path) = std::env::var("CRITERION_EXPORT") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    let median = sorted[sorted.len() / 2].as_nanos() as u64;
    let mut deviations: Vec<u64> = sorted
        .iter()
        .map(|d| (d.as_nanos() as i128 - median as i128).unsigned_abs() as u64)
        .collect();
    deviations.sort_unstable();
    let mad = deviations[deviations.len() / 2];
    let esc = |s: &str| s.replace('\\', "\\\\").replace('"', "\\\"");
    let line = format!(
        "{{\"group\":\"{}\",\"bench\":\"{}\",\"median_ns\":{},\"mad_ns\":{},\"samples\":{}}}\n",
        esc(group),
        esc(name),
        median,
        mad,
        sorted.len()
    );
    use std::io::Write;
    if let Ok(mut f) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
    {
        let _ = f.write_all(line.as_bytes());
    }
}

/// Opaque value barrier; re-exported for call sites that import it from
/// criterion rather than `std::hint`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Bundles benchmark functions into a runner callable by `criterion_main!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(c: &mut Criterion) {
        let mut group = c.benchmark_group("stub");
        group.sample_size(3);
        group.bench_function("add", |b| b.iter(|| 1u64 + 1));
        group.bench_with_input(BenchmarkId::new("mul", 7), &7u64, |b, &x| b.iter(|| x * 3));
        group.finish();
    }

    #[test]
    fn harness_runs_and_samples() {
        let mut c = Criterion::default();
        quick(&mut c);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("bfs", 64).to_string(), "bfs/64");
        assert_eq!(BenchmarkId::from_parameter(9).to_string(), "9");
    }
}

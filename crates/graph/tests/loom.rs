//! Exhaustive interleaving checks for the graph crate's two concurrent
//! protocols (run via `make loom-check`, i.e. `RUSTFLAGS="--cfg loom"
//! cargo test -p selfheal-graph --test loom`):
//!
//! - the `DegreeIndex` hint protocol: `max_degree_node`/`min_degree_node`
//!   repair stranded relaxed hints through `&self` while other readers
//!   repair concurrently and `clone` snapshots the hints mid-repair;
//! - `parallel_fold`'s work dispatch: the relaxed `fetch_add` counter
//!   hands every item to exactly one worker, and the crossbeam fan-in
//!   delivers every partial accumulator.
//!
//! The hint *updates* (`fetch_max`/`fetch_min` in `DegreeIndex::insert`)
//! take `&mut Graph`, so they cannot race queries by construction; what
//! can race — and what is explored here — is repair vs. repair vs.
//! `clone`'s relaxed snapshot (graph.rs `DegreeIndex::clone`).
#![cfg(loom)]

use std::sync::Arc;

use selfheal_graph::parallel::parallel_fold;
use selfheal_graph::{Graph, NodeId};

/// Star K1,3 with the hub removed and one fresh edge: true max degree 1
/// (nodes 1,2), true min 0 (node 3), but `max_hint` is stranded at 3 by
/// the hub's departure. Every query must repair to the exact answer.
fn stranded_hint_graph() -> Graph {
    let mut g = Graph::new(4);
    for v in 1..4 {
        g.add_edge(NodeId::from_index(0), NodeId::from_index(v))
            .unwrap();
    }
    g.remove_node(NodeId::from_index(0)).unwrap();
    g.add_edge(NodeId::from_index(1), NodeId::from_index(2))
        .unwrap();
    g
}

#[test]
fn degree_hint_repairs_race_cleanly() {
    let report = loom::model(|| {
        let g = Arc::new(stranded_hint_graph());
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let g = Arc::clone(&g);
                loom::thread::spawn(move || {
                    // Each reader repairs both hints; the answers must
                    // be exact in every interleaving of the relaxed
                    // load/store repair pairs.
                    assert_eq!(g.max_degree_node(), Some(NodeId::from_index(1)));
                    assert_eq!(g.min_degree_node(), Some(NodeId::from_index(3)));
                })
            })
            .collect();
        // Snapshot mid-repair: clone reads both hints with relaxed
        // loads; the copy must still answer exactly and validate.
        let snap = (*g).clone();
        for h in handles {
            h.join().unwrap();
        }
        snap.validate().expect("mid-repair snapshot is consistent");
        assert_eq!(snap.max_degree_node(), Some(NodeId::from_index(1)));
        assert_eq!(snap.min_degree_node(), Some(NodeId::from_index(3)));
        g.validate().expect("shared graph stays consistent");
    });
    println!(
        "loom degree-hint protocol: {} interleavings explored, {} pruned, max depth {}",
        report.schedules, report.pruned, report.max_depth
    );
    assert!(report.schedules > 1, "hint repairs must actually race");
}

#[test]
fn parallel_fold_dispatch_claims_each_item_once() {
    let report = loom::model(|| {
        // 2 workers race the relaxed fetch_add dispatch over 3 items;
        // in every schedule each item must be folded exactly once and
        // every partial accumulator must arrive through the channel.
        let mut claimed = parallel_fold(
            3,
            2,
            Vec::new,
            |mut acc: Vec<usize>, i| {
                acc.push(i);
                acc
            },
            |mut a, mut b| {
                a.append(&mut b);
                a
            },
        );
        claimed.sort_unstable();
        assert_eq!(claimed, vec![0, 1, 2]);
    });
    println!(
        "loom parallel_fold dispatch: {} interleavings explored, {} pruned, max depth {}",
        report.schedules, report.pruned, report.max_depth
    );
    assert!(report.schedules > 1, "workers must actually race");
}

/// The default tier above keeps `make ci` in seconds; the wider
/// configurations below are opt-in, mirroring `verify --full`:
/// `make loom-check-full` (i.e. `LOOM_FULL=1`).
fn full_tier() -> bool {
    if std::env::var_os("LOOM_FULL").is_some() {
        return true;
    }
    eprintln!("skipped: full-tier loom config (opt in with LOOM_FULL=1 / make loom-check-full)");
    false
}

#[test]
fn full_degree_hint_three_readers() {
    if !full_tier() {
        return;
    }
    let report = loom::model(|| {
        let g = Arc::new(stranded_hint_graph());
        let handles: Vec<_> = (0..3)
            .map(|_| {
                let g = Arc::clone(&g);
                loom::thread::spawn(move || {
                    assert_eq!(g.max_degree_node(), Some(NodeId::from_index(1)));
                    assert_eq!(g.min_degree_node(), Some(NodeId::from_index(3)));
                })
            })
            .collect();
        let snap = (*g).clone();
        for h in handles {
            h.join().unwrap();
        }
        snap.validate().expect("mid-repair snapshot is consistent");
        assert_eq!(snap.max_degree_node(), Some(NodeId::from_index(1)));
        g.validate().expect("shared graph stays consistent");
    });
    println!(
        "loom degree-hint protocol (full, 3 readers): {} interleavings explored, {} pruned, max depth {}",
        report.schedules, report.pruned, report.max_depth
    );
}

#[test]
fn full_parallel_fold_three_workers() {
    if !full_tier() {
        return;
    }
    let report = loom::model(|| {
        let mut claimed = parallel_fold(
            4,
            3,
            Vec::new,
            |mut acc: Vec<usize>, i| {
                acc.push(i);
                acc
            },
            |mut a, mut b| {
                a.append(&mut b);
                a
            },
        );
        claimed.sort_unstable();
        assert_eq!(claimed, vec![0, 1, 2, 3]);
    });
    println!(
        "loom parallel_fold dispatch (full, 3 workers): {} interleavings explored, {} pruned, max depth {}",
        report.schedules, report.pruned, report.max_depth
    );
}

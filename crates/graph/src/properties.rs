//! Whole-graph structural statistics (degree distribution & friends).

use crate::graph::Graph;

/// Summary of the live degree distribution.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DegreeStats {
    /// Minimum degree over live nodes.
    pub min: usize,
    /// Maximum degree over live nodes.
    pub max: usize,
    /// Mean degree over live nodes.
    pub mean: f64,
    /// Number of live nodes the stats were computed over.
    pub nodes: usize,
}

/// Degree statistics of the live subgraph, or `None` if no live nodes.
pub fn degree_stats(g: &Graph) -> Option<DegreeStats> {
    let mut min = usize::MAX;
    let mut max = 0usize;
    let mut sum = 0usize;
    let mut nodes = 0usize;
    for v in g.live_nodes() {
        let d = g.degree(v);
        min = min.min(d);
        max = max.max(d);
        sum += d;
        nodes += 1;
    }
    if nodes == 0 {
        None
    } else {
        Some(DegreeStats {
            min,
            max,
            mean: sum as f64 / nodes as f64,
            nodes,
        })
    }
}

/// Histogram of live degrees: `hist[d]` = number of live nodes of degree `d`.
pub fn degree_histogram(g: &Graph) -> Vec<usize> {
    let mut hist = Vec::new();
    for v in g.live_nodes() {
        let d = g.degree(v);
        if hist.len() <= d {
            hist.resize(d + 1, 0);
        }
        hist[d] += 1;
    }
    hist
}

/// Edge density of the live subgraph: `2m / (n (n-1))`, or 0 for n < 2.
pub fn density(g: &Graph) -> f64 {
    let n = g.live_node_count();
    if n < 2 {
        0.0
    } else {
        2.0 * g.edge_count() as f64 / (n as f64 * (n as f64 - 1.0))
    }
}

/// Local clustering coefficient of `v`: the fraction of `v`'s neighbor
/// pairs that are themselves adjacent. 0 for degree < 2.
pub fn local_clustering(g: &Graph, v: crate::ids::NodeId) -> f64 {
    let nbrs = g.neighbors(v);
    let d = nbrs.len();
    if d < 2 {
        return 0.0;
    }
    let mut closed = 0usize;
    for (i, &a) in nbrs.iter().enumerate() {
        for &b in &nbrs[i + 1..] {
            if g.has_edge(a, b) {
                closed += 1;
            }
        }
    }
    2.0 * closed as f64 / (d * (d - 1)) as f64
}

/// Average local clustering coefficient over live nodes (Watts–Strogatz
/// definition). 0 for an empty graph.
pub fn average_clustering(g: &Graph) -> f64 {
    let mut sum = 0.0;
    let mut count = 0usize;
    for v in g.live_nodes() {
        sum += local_clustering(g, v);
        count += 1;
    }
    if count == 0 {
        0.0
    } else {
        sum / count as f64
    }
}

/// Degree assortativity (Pearson correlation of degrees across edges).
///
/// Negative for hub-and-spoke graphs (high-degree nodes link to
/// low-degree ones), near 0 for random graphs. `None` when the graph
/// has no edges or zero degree variance.
pub fn degree_assortativity(g: &Graph) -> Option<f64> {
    let mut n = 0.0f64;
    let (mut sx, mut sy, mut sxx, mut syy, mut sxy) = (0.0f64, 0.0, 0.0, 0.0, 0.0);
    for e in g.edges() {
        // Count each edge in both directions so the measure is symmetric.
        let (a, b) = (g.degree(e.lo()) as f64, g.degree(e.hi()) as f64);
        for (x, y) in [(a, b), (b, a)] {
            n += 1.0;
            sx += x;
            sy += y;
            sxx += x * x;
            syy += y * y;
            sxy += x * y;
        }
    }
    if n == 0.0 {
        return None;
    }
    let cov = sxy / n - (sx / n) * (sy / n);
    let vx = sxx / n - (sx / n) * (sx / n);
    let vy = syy / n - (sy / n) * (sy / n);
    if vx <= 1e-12 || vy <= 1e-12 {
        return None;
    }
    Some(cov / (vx * vy).sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::NodeId;

    #[test]
    fn stats_of_star() {
        let mut g = Graph::new(5);
        for i in 1..5 {
            g.add_edge(NodeId(0), NodeId::from_index(i)).unwrap();
        }
        let s = degree_stats(&g).unwrap();
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 4);
        assert!((s.mean - 1.6).abs() < 1e-12);
        assert_eq!(s.nodes, 5);
    }

    #[test]
    fn stats_none_when_empty() {
        let mut g = Graph::new(1);
        g.remove_node(NodeId(0)).unwrap();
        assert_eq!(degree_stats(&g), None);
    }

    #[test]
    fn histogram_of_star() {
        let mut g = Graph::new(4);
        for i in 1..4 {
            g.add_edge(NodeId(0), NodeId::from_index(i)).unwrap();
        }
        assert_eq!(degree_histogram(&g), vec![0, 3, 0, 1]);
    }

    #[test]
    fn clustering_of_triangle_and_star() {
        let mut tri = Graph::new(3);
        tri.add_edge(NodeId(0), NodeId(1)).unwrap();
        tri.add_edge(NodeId(1), NodeId(2)).unwrap();
        tri.add_edge(NodeId(2), NodeId(0)).unwrap();
        assert!((local_clustering(&tri, NodeId(0)) - 1.0).abs() < 1e-12);
        assert!((average_clustering(&tri) - 1.0).abs() < 1e-12);

        let mut star = Graph::new(4);
        for i in 1..4 {
            star.add_edge(NodeId(0), NodeId::from_index(i)).unwrap();
        }
        assert_eq!(local_clustering(&star, NodeId(0)), 0.0);
        assert_eq!(local_clustering(&star, NodeId(1)), 0.0); // degree 1
        assert_eq!(average_clustering(&star), 0.0);
    }

    #[test]
    fn clustering_of_square_with_diagonal() {
        // 0-1-2-3-0 plus diagonal 0-2: node 1 has neighbors {0,2} which
        // are adjacent -> clustering 1; node 0 has {1,2,3} with closed
        // pairs (1,2) and (2,3) of the three -> 2/3.
        let mut g = Graph::new(4);
        for (a, b) in [(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)] {
            g.add_edge(NodeId(a), NodeId(b)).unwrap();
        }
        assert!((local_clustering(&g, NodeId(1)) - 1.0).abs() < 1e-12);
        assert!((local_clustering(&g, NodeId(0)) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn star_is_perfectly_disassortative() {
        // Every edge joins degree 4 to degree 1 -> correlation exactly -1.
        let mut star = Graph::new(5);
        for i in 1..5 {
            star.add_edge(NodeId(0), NodeId::from_index(i)).unwrap();
        }
        let r = degree_assortativity(&star).unwrap();
        assert!((r + 1.0).abs() < 1e-12, "expected -1, got {r}");
    }

    #[test]
    fn assortativity_of_mixed_graph_is_negative_for_hubs() {
        // Star plus one extra spoke-spoke edge creates variance on both
        // edge sides; hub mixing keeps it negative.
        let mut g = Graph::new(6);
        for i in 1..6 {
            g.add_edge(NodeId(0), NodeId::from_index(i)).unwrap();
        }
        g.add_edge(NodeId(1), NodeId(2)).unwrap();
        let r = degree_assortativity(&g).unwrap();
        assert!(r < 0.0, "hub graph should be disassortative, got {r}");
    }

    #[test]
    fn assortativity_none_without_edges_or_variance() {
        assert!(degree_assortativity(&Graph::new(3)).is_none());
        // Cycle: every degree is 2 -> zero variance.
        let mut cyc = Graph::new(4);
        for i in 0..4 {
            cyc.add_edge(NodeId::from_index(i), NodeId::from_index((i + 1) % 4))
                .unwrap();
        }
        assert!(degree_assortativity(&cyc).is_none());
    }

    #[test]
    fn density_bounds() {
        let mut g = Graph::new(3);
        assert_eq!(density(&g), 0.0);
        g.add_edge(NodeId(0), NodeId(1)).unwrap();
        g.add_edge(NodeId(1), NodeId(2)).unwrap();
        g.add_edge(NodeId(2), NodeId(0)).unwrap();
        assert!((density(&g) - 1.0).abs() < 1e-12);
        assert_eq!(density(&Graph::new(1)), 0.0);
    }
}

//! Thread-parallel graph sweeps.
//!
//! The expensive analysis in this workspace is all-pairs BFS (used by the
//! stretch metric, Fig. 10 of the paper). The graph being swept is frozen
//! into a [`Csr`] snapshot, which is `Sync`, so the sweep parallelizes
//! embarrassingly: sources are distributed over a small pool of scoped
//! threads with dynamic (atomic-counter) load balancing, and per-thread
//! partial results are folded through a crossbeam channel.

use crate::csr::Csr;
use std::num::NonZeroUsize;

// Under `--cfg loom` the dispatch counter, the fan-in channel (via the
// crossbeam stand-in), and scoped threads are the model checker's mocks,
// making every claim/send/join a schedule point (`make loom-check`).
#[cfg(loom)]
use loom::sync::atomic::{AtomicUsize, Ordering};
#[cfg(loom)]
use loom::thread::scope;
#[cfg(not(loom))]
use std::sync::atomic::{AtomicUsize, Ordering};
#[cfg(not(loom))]
use std::thread::scope;

/// A sensible default worker count: available parallelism capped at 8
/// (the sweeps here saturate memory bandwidth long before 8 cores).
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
        .min(8)
}

/// Fold every item in `0..n_items` into per-worker accumulators on a pool
/// of `threads` workers, then combine the worker accumulators with
/// `reduce`.
///
/// This is the workhorse behind both the analysis sweeps in this crate
/// and the scenario sweep fleet in `selfheal-core`: each worker starts
/// from a fresh `init()` accumulator and folds every item it claims
/// (dynamically, via an atomic counter, so uneven per-item costs still
/// balance); the partial accumulators fan into the caller through a
/// crossbeam channel and are combined with `reduce`.
///
/// The item-to-worker partition and the reduction order are unspecified:
/// for a result that is independent of `threads`, `fold`/`reduce` must be
/// commutative and associative over items (histogram-style counting,
/// `max`/`min`, sums all qualify).
pub fn parallel_fold<A, I, F, R>(n_items: usize, threads: usize, init: I, fold: F, reduce: R) -> A
where
    A: Send,
    I: Fn() -> A + Sync,
    F: Fn(A, usize) -> A + Sync,
    R: Fn(A, A) -> A,
{
    let threads = threads.max(1).min(n_items.max(1));
    if threads == 1 {
        let mut acc = init();
        for i in 0..n_items {
            acc = fold(acc, i);
        }
        return acc;
    }
    let next = AtomicUsize::new(0);
    let (tx, rx) = crossbeam::channel::bounded::<A>(threads);
    scope(|scope| {
        for _ in 0..threads {
            let tx = tx.clone();
            let next = &next;
            let init = &init;
            let fold = &fold;
            scope.spawn(move || {
                let mut acc = init();
                loop {
                    // relaxed-ok: fetch_add claims each index exactly
                    // once whatever the interleaving; no payload is
                    // published through this counter (results travel via
                    // the channel). Exhaustively checked by
                    // `crates/graph/tests/loom.rs` (`make loom-check`).
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n_items {
                        break;
                    }
                    acc = fold(acc, i);
                }
                // panic-ok: the receiver lives until every worker has
                // sent (the scope joins workers before `rx` drops), so a
                // send failure is unreachable short of a poisoned scope.
                tx.send(acc).expect("result channel closed early");
            });
        }
        drop(tx);
        let mut total = init();
        for part in rx.iter() {
            total = reduce(total, part);
        }
        total
    })
}

/// Map every item in `0..n_items` through `map` on a pool of `threads`
/// workers and fold all results with `reduce`, starting from `identity`
/// in each worker.
///
/// Items are handed out dynamically via an atomic counter, so uneven
/// per-item costs still balance. The reduction order is unspecified;
/// `reduce` must be associative and commutative for a deterministic
/// result (all uses in this crate fold with `max`, which is).
pub fn parallel_map_reduce<T, F, R>(
    n_items: usize,
    threads: usize,
    identity: T,
    map: F,
    reduce: R,
) -> T
where
    T: Send + Sync + Clone,
    F: Fn(usize) -> T + Sync,
    R: Fn(T, T) -> T + Sync + Send,
{
    parallel_fold(
        n_items,
        threads,
        || identity.clone(),
        |acc, i| reduce(acc, map(i)),
        &reduce,
    )
}

/// All-pairs shortest paths over a CSR snapshot using `threads` workers.
///
/// Returns the full `n x n` hop-distance matrix in dense indices,
/// identical to [`crate::paths::apsp`] but computed in parallel. Rows are
/// written in place, so the result is bit-for-bit deterministic regardless
/// of scheduling.
pub fn parallel_apsp(csr: &Csr, threads: usize) -> Vec<Vec<u32>> {
    let n = csr.len();
    let mut out: Vec<Vec<u32>> = vec![Vec::new(); n];
    if n == 0 {
        return out;
    }
    let threads = threads.max(1).min(n);
    let next = AtomicUsize::new(0);
    // Hand out rows through raw pointers guarded by the atomic counter:
    // each row index is claimed exactly once, so no two threads touch the
    // same row. A scoped-thread + channel version would avoid the unsafe
    // block but doubles peak memory by staging rows; APSP matrices are the
    // biggest allocation in the workspace, so in-place wins.
    struct RowsPtr(*mut Vec<u32>);
    // SAFETY: the pointer is only dereferenced at indices claimed
    // exactly once through the atomic counter, so no two threads ever
    // alias the same row; the buffer outlives the scope.
    unsafe impl Send for RowsPtr {}
    // SAFETY: shared access is index-disjoint by the same claim
    // protocol; `&RowsPtr` hands out no aliased `&mut`.
    unsafe impl Sync for RowsPtr {}
    let rows = RowsPtr(out.as_mut_ptr());
    scope(|scope| {
        for _ in 0..threads {
            let next = &next;
            let rows = &rows;
            scope.spawn(move || {
                let mut queue = Vec::new();
                loop {
                    // relaxed-ok: unique index claim as in
                    // `parallel_fold`; the rows written through the
                    // claimed index are published by the scope join, not
                    // by this counter.
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    // SAFETY: `i` is claimed exactly once across all
                    // threads (fetch_add), and `out` outlives the scope.
                    let row = unsafe { &mut *rows.0.add(i) };
                    csr.bfs_into(i, row, &mut queue);
                }
            });
        }
    });
    out
}

/// Sum of all finite pairwise distances and the count of connected ordered
/// pairs, computed in parallel without materializing the APSP matrix.
///
/// Useful for average-path-length style metrics on large graphs.
pub fn parallel_distance_sum(csr: &Csr, threads: usize) -> (u64, u64) {
    parallel_map_reduce(
        csr.len(),
        threads,
        (0u64, 0u64),
        |src| {
            let dist = csr.bfs(src);
            let mut sum = 0u64;
            let mut cnt = 0u64;
            for (j, &d) in dist.iter().enumerate() {
                if j != src && d != crate::csr::UNREACHABLE {
                    sum += d as u64;
                    cnt += 1;
                }
            }
            (sum, cnt)
        },
        |a, b| (a.0 + b.0, a.1 + b.1),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;
    use crate::ids::NodeId;
    use crate::paths::apsp;

    fn ring(n: usize) -> Graph {
        let mut g = Graph::new(n);
        for i in 0..n {
            g.add_edge(NodeId::from_index(i), NodeId::from_index((i + 1) % n))
                .unwrap();
        }
        g
    }

    #[test]
    fn parallel_apsp_matches_serial() {
        let g = ring(64);
        let csr = Csr::from_graph(&g);
        let serial = apsp(&csr);
        for threads in [1, 2, 4] {
            let par = parallel_apsp(&csr, threads);
            assert_eq!(par, serial, "mismatch at {threads} threads");
        }
    }

    #[test]
    fn parallel_apsp_empty() {
        let mut g = Graph::new(1);
        g.remove_node(NodeId(0)).unwrap();
        let csr = Csr::from_graph(&g);
        assert!(parallel_apsp(&csr, 4).is_empty());
    }

    #[test]
    fn fold_matches_serial_for_any_thread_count() {
        // Histogram-style counting: commutative, so the aggregate must be
        // identical no matter how items land on workers.
        let serial = parallel_fold(
            100,
            1,
            || vec![0u64; 10],
            |mut acc, i| {
                acc[i % 10] += i as u64;
                acc
            },
            |mut a, b| {
                for (x, y) in a.iter_mut().zip(&b) {
                    *x += y;
                }
                a
            },
        );
        for threads in [2, 4, 8] {
            let par = parallel_fold(
                100,
                threads,
                || vec![0u64; 10],
                |mut acc, i| {
                    acc[i % 10] += i as u64;
                    acc
                },
                |mut a, b| {
                    for (x, y) in a.iter_mut().zip(&b) {
                        *x += y;
                    }
                    a
                },
            );
            assert_eq!(par, serial, "mismatch at {threads} threads");
        }
    }

    #[test]
    fn fold_zero_items_returns_init() {
        let out = parallel_fold(0, 4, || 41u64, |a, _| a + 1, |a, b| a + b);
        assert_eq!(out, 41);
    }

    #[test]
    fn map_reduce_sums() {
        let total = parallel_map_reduce(1000, 4, 0u64, |i| i as u64, |a, b| a + b);
        assert_eq!(total, 499_500);
    }

    #[test]
    fn map_reduce_single_thread_path() {
        let total = parallel_map_reduce(10, 1, 0u64, |i| i as u64, |a, b| a + b);
        assert_eq!(total, 45);
    }

    #[test]
    fn map_reduce_zero_items() {
        let total = parallel_map_reduce(0, 4, 7u64, |_| 1, |a, b| a.max(b));
        assert_eq!(total, 7);
    }

    #[test]
    fn distance_sum_on_ring() {
        // On a ring of 6, each node sees distances 1,2,3,2,1 (sum 9).
        let g = ring(6);
        let csr = Csr::from_graph(&g);
        let (sum, cnt) = parallel_distance_sum(&csr, 3);
        assert_eq!(sum, 6 * 9);
        assert_eq!(cnt, 30);
    }
}

//! Pooled adjacency storage: one arena for every neighbor list.
//!
//! `Vec<Vec<NodeId>>` adjacency costs one heap allocation per node and
//! scatters neighbor lists across the heap, so the hot healing loops
//! (`propagate_min_id`, `delete_node_into`, the DASH/SDASH rewiring
//! walks) chase a fresh pointer per `neighbors()` call. [`AdjPool`]
//! replaces that with a single `Vec<NodeId>` arena carved into
//! power-of-two **chunks** (capacities `4 << class`): each node owns one
//! contiguous chunk described by a [`ChunkRef`] `{offset, len, class}`,
//! so a neighbor list is still one real `&[NodeId]` slice — the public
//! `Graph` API is unchanged — but all lists live in one allocation.
//!
//! Freed chunks (node deletions, growth reallocations) go on a per-class
//! **intrusive free list**: the arena offset of the next free chunk is
//! stored in the freed chunk's own first slot (every chunk holds ≥ 4
//! `u32`-sized entries, so the link always fits). Growth is amortized
//! doubling: a full chunk reallocates into the next class, copies, and
//! frees the old chunk for reuse. The arena itself never shrinks — its
//! high-water mark is the peak total adjacency size, and after that
//! steady-state churn is allocation-free.

use crate::ids::NodeId;

/// Sentinel arena offset meaning "no chunk" / "end of free list".
const NIL: u32 = u32::MAX;

/// Smallest chunk capacity (class 0). Must be ≥ 1 so the intrusive
/// free-list link fits in slot 0; 4 keeps tiny-degree nodes compact
/// while bounding the class count (`4 << 27` already exceeds `u32` ids).
const MIN_CAP: u32 = 4;

/// Handle to one node's chunk in an [`AdjPool`].
///
/// `Default` is the empty handle: no chunk allocated, length 0. The
/// arena allocates lazily on first insert, so building a graph with `n`
/// isolated nodes touches the pool not at all.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChunkRef {
    off: u32,
    len: u32,
    class: u8,
}

impl Default for ChunkRef {
    fn default() -> Self {
        ChunkRef {
            off: NIL,
            len: 0,
            class: 0,
        }
    }
}

impl ChunkRef {
    /// Number of values stored.
    #[inline]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether the list is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// The arena of adjacency chunks. See the module docs for the layout.
#[derive(Clone, Debug, Default)]
pub struct AdjPool {
    /// The single backing allocation for every chunk.
    slots: Vec<NodeId>,
    /// Head of the free list per size class (`NIL` when empty); the next
    /// link of a free chunk lives in its own slot 0.
    free_heads: Vec<u32>,
}

/// Capacity of a size class.
#[inline]
fn cap_of(class: u8) -> u32 {
    MIN_CAP << class
}

impl AdjPool {
    /// The values of a chunk, as one contiguous slice.
    #[inline]
    pub fn slice(&self, r: &ChunkRef) -> &[NodeId] {
        if r.off == NIL {
            &[]
        } else {
            &self.slots[r.off as usize..(r.off + r.len) as usize]
        }
    }

    /// Total arena entries (live + free chunks) — the memory high-water
    /// mark in `NodeId` units.
    pub fn arena_len(&self) -> usize {
        self.slots.len()
    }

    /// Pop a free chunk of `class`, or carve a fresh one off the arena.
    fn alloc(&mut self, class: u8) -> u32 {
        if let Some(&head) = self.free_heads.get(class as usize) {
            if head != NIL {
                self.free_heads[class as usize] = self.slots[head as usize].0;
                return head;
            }
        }
        let off = self.slots.len();
        assert!(
            off + cap_of(class) as usize <= NIL as usize,
            "adjacency arena exceeds u32 offsets"
        );
        self.slots.resize(off + cap_of(class) as usize, NodeId(NIL));
        off as u32
    }

    /// Push a chunk onto its class's free list (intrusive link in slot 0).
    fn free(&mut self, off: u32, class: u8) {
        if self.free_heads.len() <= class as usize {
            self.free_heads.resize(class as usize + 1, NIL);
        }
        self.slots[off as usize] = NodeId(self.free_heads[class as usize]);
        self.free_heads[class as usize] = off;
    }

    /// Reallocate `r` into the next size class, copying its values.
    fn grow(&mut self, r: &mut ChunkRef) {
        let new_class = if r.off == NIL { 0 } else { r.class + 1 };
        let new_off = self.alloc(new_class);
        if r.off != NIL {
            self.slots
                .copy_within(r.off as usize..(r.off + r.len) as usize, new_off as usize);
            self.free(r.off, r.class);
        }
        r.off = new_off;
        r.class = new_class;
    }

    /// Insert `value` at `pos` (≤ len), shifting the tail right; grows the
    /// chunk into the next size class when full.
    pub fn insert_at(&mut self, r: &mut ChunkRef, pos: usize, value: NodeId) {
        debug_assert!(pos <= r.len as usize);
        if r.off == NIL || r.len == cap_of(r.class) {
            self.grow(r);
        }
        let base = r.off as usize;
        self.slots
            .copy_within(base + pos..base + r.len as usize, base + pos + 1);
        self.slots[base + pos] = value;
        r.len += 1;
    }

    /// Remove and return the value at `pos` (< len), shifting the tail left.
    pub fn remove_at(&mut self, r: &mut ChunkRef, pos: usize) -> NodeId {
        debug_assert!(pos < r.len as usize);
        let base = r.off as usize;
        let value = self.slots[base + pos];
        self.slots
            .copy_within(base + pos + 1..base + r.len as usize, base + pos);
        r.len -= 1;
        value
    }

    /// Release the chunk entirely (tombstoned node): the chunk returns to
    /// the free list for reuse and `r` becomes the empty handle.
    pub fn clear(&mut self, r: &mut ChunkRef) {
        if r.off != NIL {
            self.free(r.off, r.class);
        }
        *r = ChunkRef::default();
    }

    /// Number of chunks currently on free lists (test/diagnostic hook).
    pub fn free_chunk_count(&self) -> usize {
        let mut count = 0;
        for (class, &head) in self.free_heads.iter().enumerate() {
            let mut off = head;
            let mut guard = 0usize;
            while off != NIL {
                count += 1;
                off = self.slots[off as usize].0;
                guard += 1;
                assert!(
                    guard <= self.slots.len() / cap_of(class as u8) as usize + 1,
                    "cycle in free list of class {class}"
                );
            }
        }
        count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(r: &AdjPool, c: &ChunkRef) -> Vec<u32> {
        r.slice(c).iter().map(|n| n.0).collect()
    }

    #[test]
    fn empty_ref_is_an_empty_slice() {
        let pool = AdjPool::default();
        let r = ChunkRef::default();
        assert!(r.is_empty());
        assert_eq!(pool.slice(&r), &[] as &[NodeId]);
        assert_eq!(pool.arena_len(), 0);
    }

    #[test]
    fn insert_shifts_and_grows_through_classes() {
        let mut pool = AdjPool::default();
        let mut r = ChunkRef::default();
        // Insert 0..20 at the front in reverse so shifting is exercised.
        for v in (0..20u32).rev() {
            pool.insert_at(&mut r, 0, NodeId(v));
        }
        assert_eq!(r.len(), 20);
        assert_eq!(ids(&pool, &r), (0..20).collect::<Vec<_>>());
        // 20 values need a class-3 chunk (cap 32); classes 0..=2 were
        // grown through and freed.
        assert_eq!(pool.free_chunk_count(), 3);
    }

    #[test]
    fn remove_at_returns_value_and_shifts() {
        let mut pool = AdjPool::default();
        let mut r = ChunkRef::default();
        for v in 0..6u32 {
            pool.insert_at(&mut r, v as usize, NodeId(v));
        }
        assert_eq!(pool.remove_at(&mut r, 2), NodeId(2));
        assert_eq!(pool.remove_at(&mut r, 0), NodeId(0));
        assert_eq!(ids(&pool, &r), vec![1, 3, 4, 5]);
    }

    #[test]
    fn freed_chunks_are_reused_not_leaked() {
        let mut pool = AdjPool::default();
        let mut a = ChunkRef::default();
        for v in 0..4u32 {
            pool.insert_at(&mut a, 0, NodeId(v));
        }
        let high_water = pool.arena_len();
        pool.clear(&mut a);
        assert_eq!(a, ChunkRef::default());
        // A same-class allocation must reuse the freed chunk: the arena
        // does not grow.
        let mut b = ChunkRef::default();
        pool.insert_at(&mut b, 0, NodeId(9));
        assert_eq!(pool.arena_len(), high_water);
        assert_eq!(ids(&pool, &b), vec![9]);
        assert_eq!(pool.free_chunk_count(), 0);
    }

    #[test]
    fn many_lists_interleaved_stay_disjoint() {
        let mut pool = AdjPool::default();
        let mut refs: Vec<ChunkRef> = vec![ChunkRef::default(); 16];
        for round in 0..40u32 {
            for (i, r) in refs.iter_mut().enumerate() {
                pool.insert_at(r, r.len(), NodeId(round * 100 + i as u32));
            }
        }
        for (i, r) in refs.iter().enumerate() {
            let got = ids(&pool, r);
            let want: Vec<u32> = (0..40).map(|round| round * 100 + i as u32).collect();
            assert_eq!(got, want, "list {i} corrupted");
        }
    }

    #[test]
    fn clear_then_regrow_cycles_the_free_lists() {
        let mut pool = AdjPool::default();
        let mut r = ChunkRef::default();
        for _ in 0..3 {
            for v in 0..50u32 {
                let end = r.len();
                pool.insert_at(&mut r, end, NodeId(v));
            }
            pool.clear(&mut r);
        }
        // Steady state: the second and third cycles reuse the first
        // cycle's chunks, so the arena is no bigger than one cycle's
        // growth chain (4 + 8 + 16 + 32 + 64).
        assert_eq!(pool.arena_len(), 4 + 8 + 16 + 32 + 64);
    }
}

//! Breadth-first and depth-first traversal over live nodes.
//!
//! Both traversals allocate their bookkeeping from the graph's
//! [`node_bound`](crate::Graph::node_bound) so they are safe to run on
//! graphs with tombstoned (deleted) nodes.

use crate::graph::Graph;
use crate::ids::NodeId;
use std::collections::VecDeque;

/// Breadth-first search from `src`, invoking `visit(node, depth)` for every
/// reachable live node (including `src` at depth 0).
///
/// Returns the number of nodes visited. Does nothing (returns 0) if `src`
/// is dead or out of range.
pub fn bfs<F: FnMut(NodeId, u32)>(g: &Graph, src: NodeId, mut visit: F) -> usize {
    if !g.is_alive(src) {
        return 0;
    }
    let mut seen = vec![false; g.node_bound()];
    let mut queue = VecDeque::new();
    seen[src.index()] = true;
    queue.push_back((src, 0u32));
    let mut count = 0;
    while let Some((v, d)) = queue.pop_front() {
        visit(v, d);
        count += 1;
        for &u in g.neighbors(v) {
            if !seen[u.index()] {
                seen[u.index()] = true;
                queue.push_back((u, d + 1));
            }
        }
    }
    count
}

/// Iterative depth-first search from `src`, invoking `visit` in preorder.
///
/// Neighbors are explored in increasing id order (the sorted adjacency
/// order), making the traversal deterministic. Returns the number of nodes
/// visited.
pub fn dfs<F: FnMut(NodeId)>(g: &Graph, src: NodeId, mut visit: F) -> usize {
    if !g.is_alive(src) {
        return 0;
    }
    let mut seen = vec![false; g.node_bound()];
    let mut stack = vec![src];
    seen[src.index()] = true;
    let mut count = 0;
    while let Some(v) = stack.pop() {
        visit(v);
        count += 1;
        // Push in reverse so the smallest-id neighbor is expanded first.
        for &u in g.neighbors(v).iter().rev() {
            if !seen[u.index()] {
                seen[u.index()] = true;
                stack.push(u);
            }
        }
    }
    count
}

/// Collect the nodes reachable from `src` (including `src`), sorted by id.
pub fn reachable_set(g: &Graph, src: NodeId) -> Vec<NodeId> {
    let mut out = Vec::new();
    bfs(g, src, |v, _| out.push(v));
    out.sort_unstable();
    out
}

/// BFS layers from `src`: `layers[d]` holds all nodes at distance exactly
/// `d`, each layer sorted by id.
pub fn bfs_layers(g: &Graph, src: NodeId) -> Vec<Vec<NodeId>> {
    let mut layers: Vec<Vec<NodeId>> = Vec::new();
    bfs(g, src, |v, d| {
        let d = d as usize;
        if layers.len() <= d {
            layers.resize_with(d + 1, Vec::new);
        }
        layers[d].push(v);
    });
    for layer in &mut layers {
        layer.sort_unstable();
    }
    layers
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cycle(n: usize) -> Graph {
        let mut g = Graph::new(n);
        for i in 0..n {
            g.add_edge(NodeId::from_index(i), NodeId::from_index((i + 1) % n))
                .unwrap();
        }
        g
    }

    #[test]
    fn bfs_visits_all_reachable() {
        let g = cycle(6);
        let mut order = Vec::new();
        let n = bfs(&g, NodeId(0), |v, _| order.push(v));
        assert_eq!(n, 6);
        assert_eq!(order.len(), 6);
        assert_eq!(order[0], NodeId(0));
    }

    #[test]
    fn bfs_depths_on_cycle() {
        let g = cycle(6);
        let mut depth = vec![0u32; 6];
        bfs(&g, NodeId(0), |v, d| depth[v.index()] = d);
        assert_eq!(depth, vec![0, 1, 2, 3, 2, 1]);
    }

    #[test]
    fn bfs_from_dead_node_is_empty() {
        let mut g = cycle(4);
        g.remove_node(NodeId(0)).unwrap();
        assert_eq!(bfs(&g, NodeId(0), |_, _| {}), 0);
        assert_eq!(dfs(&g, NodeId(0), |_| {}), 0);
    }

    #[test]
    fn dfs_preorder_is_deterministic() {
        let mut g = Graph::new(5);
        g.add_edge(NodeId(0), NodeId(2)).unwrap();
        g.add_edge(NodeId(0), NodeId(1)).unwrap();
        g.add_edge(NodeId(1), NodeId(3)).unwrap();
        g.add_edge(NodeId(2), NodeId(4)).unwrap();
        let mut order = Vec::new();
        dfs(&g, NodeId(0), |v| order.push(v));
        assert_eq!(
            order,
            vec![NodeId(0), NodeId(1), NodeId(3), NodeId(2), NodeId(4)]
        );
    }

    #[test]
    fn reachable_set_respects_disconnection() {
        let mut g = cycle(6);
        g.remove_node(NodeId(1)).unwrap();
        g.remove_node(NodeId(4)).unwrap();
        // Cycle 0-1-2-3-4-5 minus {1,4} leaves paths 2-3 and 5-0.
        assert_eq!(reachable_set(&g, NodeId(0)), vec![NodeId(0), NodeId(5)]);
        assert_eq!(reachable_set(&g, NodeId(2)), vec![NodeId(2), NodeId(3)]);
    }

    #[test]
    fn bfs_layers_group_by_distance() {
        let g = cycle(6);
        let layers = bfs_layers(&g, NodeId(0));
        assert_eq!(layers[0], vec![NodeId(0)]);
        assert_eq!(layers[1], vec![NodeId(1), NodeId(5)]);
        assert_eq!(layers[2], vec![NodeId(2), NodeId(4)]);
        assert_eq!(layers[3], vec![NodeId(3)]);
    }
}

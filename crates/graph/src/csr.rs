//! Compressed-sparse-row snapshot of the live subgraph.
//!
//! Stretch computation needs many BFS sweeps over a momentarily-frozen
//! graph. Rebuilding the dynamic adjacency into one contiguous CSR buffer
//! makes those sweeps cache-friendly and lets the parallel APSP workers
//! share the structure immutably across threads.

use crate::graph::Graph;
use crate::ids::NodeId;

/// Distance value used for unreachable pairs.
pub const UNREACHABLE: u32 = u32::MAX;

/// An immutable CSR snapshot over the *live* nodes of a [`Graph`].
///
/// Live nodes are renumbered to dense indices `0..len()`; the mapping in
/// both directions is retained so results can be reported in original
/// [`NodeId`] terms.
#[derive(Clone, Debug)]
pub struct Csr {
    /// `offsets[i]..offsets[i+1]` indexes `targets` for dense node `i`.
    offsets: Vec<u32>,
    /// Concatenated neighbor lists in dense indices.
    targets: Vec<u32>,
    /// Dense index -> original id.
    original: Vec<NodeId>,
    /// Original id -> dense index (`u32::MAX` for dead slots).
    dense: Vec<u32>,
}

impl Csr {
    /// Snapshot the live subgraph of `g`.
    pub fn from_graph(g: &Graph) -> Self {
        let n = g.live_node_count();
        let mut original = Vec::with_capacity(n);
        let mut dense = vec![u32::MAX; g.node_bound()];
        for v in g.live_nodes() {
            dense[v.index()] = original.len() as u32;
            original.push(v);
        }
        let mut offsets = Vec::with_capacity(n + 1);
        let mut targets = Vec::with_capacity(g.degree_sum());
        offsets.push(0);
        for &v in &original {
            for &u in g.neighbors(v) {
                targets.push(dense[u.index()]);
            }
            offsets.push(targets.len() as u32);
        }
        Csr {
            offsets,
            targets,
            original,
            dense,
        }
    }

    /// Number of (live) nodes in the snapshot.
    #[inline]
    pub fn len(&self) -> usize {
        self.original.len()
    }

    /// Whether the snapshot contains no nodes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.original.is_empty()
    }

    /// Number of undirected edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.targets.len() / 2
    }

    /// Neighbors of dense node `i`.
    #[inline]
    pub fn neighbors(&self, i: usize) -> &[u32] {
        let lo = self.offsets[i] as usize;
        let hi = self.offsets[i + 1] as usize;
        &self.targets[lo..hi]
    }

    /// Degree of dense node `i`.
    #[inline]
    pub fn degree(&self, i: usize) -> usize {
        (self.offsets[i + 1] - self.offsets[i]) as usize
    }

    /// Original id of dense node `i`.
    #[inline]
    pub fn original_id(&self, i: usize) -> NodeId {
        self.original[i]
    }

    /// Dense index of original node `v`, or `None` if dead/out of range.
    #[inline]
    pub fn dense_index(&self, v: NodeId) -> Option<usize> {
        match self.dense.get(v.index()) {
            Some(&d) if d != u32::MAX => Some(d as usize),
            _ => None,
        }
    }

    /// BFS distances (in hops) from dense node `src` to every dense node.
    ///
    /// Unreachable entries are [`UNREACHABLE`]. The output buffer is
    /// supplied by the caller so sweeps can reuse allocations; it is
    /// resized and overwritten.
    pub fn bfs_into(&self, src: usize, dist: &mut Vec<u32>, queue: &mut Vec<u32>) {
        dist.clear();
        dist.resize(self.len(), UNREACHABLE);
        queue.clear();
        dist[src] = 0;
        queue.push(src as u32);
        let mut head = 0;
        while head < queue.len() {
            let v = queue[head] as usize;
            head += 1;
            let next = dist[v] + 1;
            for &u in self.neighbors(v) {
                let u = u as usize;
                if dist[u] == UNREACHABLE {
                    dist[u] = next;
                    queue.push(u as u32);
                }
            }
        }
    }

    /// Convenience wrapper around [`Csr::bfs_into`] that allocates.
    pub fn bfs(&self, src: usize) -> Vec<u32> {
        let mut dist = Vec::new();
        let mut queue = Vec::new();
        self.bfs_into(src, &mut dist, &mut queue);
        dist
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(n: usize) -> Graph {
        let mut g = Graph::new(n);
        for i in 1..n {
            g.add_edge(NodeId::from_index(i - 1), NodeId::from_index(i))
                .unwrap();
        }
        g
    }

    #[test]
    fn snapshot_preserves_structure() {
        let g = path(5);
        let csr = Csr::from_graph(&g);
        assert_eq!(csr.len(), 5);
        assert_eq!(csr.edge_count(), 4);
        assert_eq!(csr.degree(0), 1);
        assert_eq!(csr.degree(2), 2);
    }

    #[test]
    fn dense_renumbering_skips_dead_nodes() {
        let mut g = path(5);
        g.remove_node(NodeId(2)).unwrap();
        let csr = Csr::from_graph(&g);
        assert_eq!(csr.len(), 4);
        assert_eq!(csr.dense_index(NodeId(2)), None);
        let d3 = csr.dense_index(NodeId(3)).unwrap();
        assert_eq!(csr.original_id(d3), NodeId(3));
        // 3-4 still connected; 0-1 still connected; but 1 !~ 3.
        let dist = csr.bfs(csr.dense_index(NodeId(0)).unwrap());
        assert_eq!(dist[csr.dense_index(NodeId(1)).unwrap()], 1);
        assert_eq!(dist[d3], UNREACHABLE);
    }

    #[test]
    fn bfs_distances_on_path() {
        let g = path(6);
        let csr = Csr::from_graph(&g);
        let dist = csr.bfs(0);
        assert_eq!(dist, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn bfs_into_reuses_buffers() {
        let g = path(4);
        let csr = Csr::from_graph(&g);
        let mut dist = Vec::new();
        let mut queue = Vec::new();
        csr.bfs_into(0, &mut dist, &mut queue);
        assert_eq!(dist, vec![0, 1, 2, 3]);
        csr.bfs_into(3, &mut dist, &mut queue);
        assert_eq!(dist, vec![3, 2, 1, 0]);
    }

    #[test]
    fn empty_snapshot() {
        let mut g = Graph::new(1);
        g.remove_node(NodeId(0)).unwrap();
        let csr = Csr::from_graph(&g);
        assert!(csr.is_empty());
        assert_eq!(csr.edge_count(), 0);
    }
}

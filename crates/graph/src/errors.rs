//! Error type shared by all fallible graph operations.

use crate::ids::NodeId;
use std::fmt;

/// Errors returned by mutating or querying operations on [`crate::Graph`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GraphError {
    /// The node id is out of range for this graph.
    NodeOutOfRange(NodeId),
    /// The node exists but has been deleted.
    NodeDead(NodeId),
    /// A self-loop `(v, v)` was requested; simple graphs forbid them.
    SelfLoop(NodeId),
    /// The requested edge already exists.
    EdgeExists(NodeId, NodeId),
    /// The requested edge does not exist.
    EdgeMissing(NodeId, NodeId),
    /// An operation that requires a non-empty graph was called on an empty one.
    EmptyGraph,
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeOutOfRange(v) => write!(f, "node {v} is out of range"),
            GraphError::NodeDead(v) => write!(f, "node {v} has been deleted"),
            GraphError::SelfLoop(v) => write!(f, "self-loop at node {v} is not allowed"),
            GraphError::EdgeExists(u, v) => write!(f, "edge ({u}, {v}) already exists"),
            GraphError::EdgeMissing(u, v) => write!(f, "edge ({u}, {v}) does not exist"),
            GraphError::EmptyGraph => write!(f, "operation requires a non-empty graph"),
        }
    }
}

impl std::error::Error for GraphError {}

/// Convenient result alias for graph operations.
pub type Result<T> = std::result::Result<T, GraphError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_mention_the_node() {
        assert!(GraphError::NodeOutOfRange(NodeId(7))
            .to_string()
            .contains('7'));
        assert!(GraphError::NodeDead(NodeId(3)).to_string().contains('3'));
        assert!(GraphError::SelfLoop(NodeId(1)).to_string().contains('1'));
        assert!(GraphError::EdgeExists(NodeId(1), NodeId(2))
            .to_string()
            .contains("(1, 2)"));
        assert!(GraphError::EdgeMissing(NodeId(4), NodeId(5))
            .to_string()
            .contains("(4, 5)"));
        assert!(!GraphError::EmptyGraph.to_string().is_empty());
    }
}

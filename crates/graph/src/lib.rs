//! # selfheal-graph
//!
//! Graph substrate for the self-healing network workspace: a dynamic
//! undirected [`Graph`] with stable node ids and tombstoned deletion,
//! frozen [`Csr`] snapshots for fast sweeps, traversal / component /
//! shortest-path algorithms (serial and thread-parallel), deterministic
//! and random graph generators, and simple serialization.
//!
//! Everything is written from scratch on the standard library plus `rand`
//! (sampling), `crossbeam` (parallel result channels) and `serde`
//! (snapshots); no external graph library is used.
//!
//! ## Quick tour
//! ```
//! use rand::SeedableRng;
//! use selfheal_graph::{generators, components, paths, NodeId};
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let mut g = generators::barabasi_albert(64, 3, &mut rng);
//! assert!(components::is_connected(&g));
//!
//! let hub = g.max_degree_node().unwrap();
//! let victims = g.remove_node(hub).unwrap();
//! assert!(victims.len() >= 3);
//! assert_eq!(paths::distance(&g, hub, NodeId(0)), None); // hub is gone
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod components;
pub mod csr;
pub mod cuts;
pub mod errors;
pub mod forest;
pub mod generators;
mod graph;
pub mod ids;
pub mod io;
pub mod parallel;
pub mod paths;
pub mod pool;
pub mod properties;
pub mod subgraph;
pub mod traversal;

pub use csr::{Csr, UNREACHABLE};
pub use errors::{GraphError, Result};
pub use graph::Graph;
pub use ids::{Edge, NodeId};

//! Shortest paths (unweighted), eccentricity and diameter.

use crate::csr::{Csr, UNREACHABLE};
use crate::graph::Graph;
use crate::ids::NodeId;
use std::collections::VecDeque;

/// BFS hop distances from `src` indexed by original node id
/// (`UNREACHABLE` for dead or unreachable nodes).
pub fn bfs_distances(g: &Graph, src: NodeId) -> Vec<u32> {
    let mut dist = vec![UNREACHABLE; g.node_bound()];
    if !g.is_alive(src) {
        return dist;
    }
    let mut queue = VecDeque::new();
    dist[src.index()] = 0;
    queue.push_back(src);
    while let Some(v) = queue.pop_front() {
        let next = dist[v.index()] + 1;
        for &u in g.neighbors(v) {
            if dist[u.index()] == UNREACHABLE {
                dist[u.index()] = next;
                queue.push_back(u);
            }
        }
    }
    dist
}

/// Hop distance between two nodes, or `None` if disconnected/dead.
pub fn distance(g: &Graph, u: NodeId, v: NodeId) -> Option<u32> {
    if !g.is_alive(u) || !g.is_alive(v) {
        return None;
    }
    let dist = bfs_distances(g, u);
    match dist[v.index()] {
        UNREACHABLE => None,
        d => Some(d),
    }
}

/// One shortest path between `u` and `v` (inclusive), or `None`.
///
/// Ties are broken toward lower node ids, so the returned path is
/// deterministic.
pub fn shortest_path(g: &Graph, u: NodeId, v: NodeId) -> Option<Vec<NodeId>> {
    if !g.is_alive(u) || !g.is_alive(v) {
        return None;
    }
    let dist = bfs_distances(g, u);
    if dist[v.index()] == UNREACHABLE {
        return None;
    }
    let mut path = vec![v];
    let mut cur = v;
    while cur != u {
        let d = dist[cur.index()];
        let prev = g
            .neighbors(cur)
            .iter()
            .copied()
            .find(|&w| dist[w.index()] + 1 == d)
            // panic-ok: any node at BFS distance `d > 0` was discovered
            // through a neighbor at distance `d - 1`.
            .expect("BFS predecessor must exist");
        path.push(prev);
        cur = prev;
    }
    path.reverse();
    Some(path)
}

/// All-pairs shortest path matrix over the dense indices of a CSR
/// snapshot: `result[i][j]` is the hop distance from dense `i` to dense `j`.
///
/// Serial version; see [`crate::parallel::parallel_apsp`] for the
/// multi-threaded one.
pub fn apsp(csr: &Csr) -> Vec<Vec<u32>> {
    let mut out = Vec::with_capacity(csr.len());
    let mut queue = Vec::new();
    for src in 0..csr.len() {
        let mut dist = Vec::new();
        csr.bfs_into(src, &mut dist, &mut queue);
        out.push(dist);
    }
    out
}

/// Eccentricity of `src`: the maximum finite distance to any live node, or
/// `None` if some live node is unreachable or `src` is dead.
pub fn eccentricity(g: &Graph, src: NodeId) -> Option<u32> {
    if !g.is_alive(src) {
        return None;
    }
    let dist = bfs_distances(g, src);
    let mut ecc = 0;
    for v in g.live_nodes() {
        match dist[v.index()] {
            UNREACHABLE => return None,
            d => ecc = ecc.max(d),
        }
    }
    Some(ecc)
}

/// Diameter of the live subgraph: max distance over all connected pairs,
/// or `None` when the graph is disconnected or has no live nodes.
pub fn diameter(g: &Graph) -> Option<u32> {
    let mut best = None;
    for v in g.live_nodes() {
        match eccentricity(g, v) {
            Some(e) => best = Some(best.map_or(e, |b: u32| b.max(e))),
            None => return None,
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path_graph(n: usize) -> Graph {
        let mut g = Graph::new(n);
        for i in 1..n {
            g.add_edge(NodeId::from_index(i - 1), NodeId::from_index(i))
                .unwrap();
        }
        g
    }

    #[test]
    fn distances_on_path() {
        let g = path_graph(5);
        assert_eq!(distance(&g, NodeId(0), NodeId(4)), Some(4));
        assert_eq!(distance(&g, NodeId(2), NodeId(2)), Some(0));
    }

    #[test]
    fn distance_none_for_dead_or_disconnected() {
        let mut g = path_graph(5);
        g.remove_node(NodeId(2)).unwrap();
        assert_eq!(distance(&g, NodeId(0), NodeId(4)), None);
        assert_eq!(distance(&g, NodeId(2), NodeId(0)), None);
    }

    #[test]
    fn shortest_path_endpoints_and_length() {
        let g = path_graph(4);
        let p = shortest_path(&g, NodeId(0), NodeId(3)).unwrap();
        assert_eq!(p, vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)]);
        let p0 = shortest_path(&g, NodeId(1), NodeId(1)).unwrap();
        assert_eq!(p0, vec![NodeId(1)]);
    }

    #[test]
    fn shortest_path_is_shortest_on_cycle() {
        let mut g = Graph::new(5);
        for i in 0..5 {
            g.add_edge(NodeId::from_index(i), NodeId::from_index((i + 1) % 5))
                .unwrap();
        }
        let p = shortest_path(&g, NodeId(0), NodeId(3)).unwrap();
        assert_eq!(p.len(), 3); // 0-4-3
    }

    #[test]
    fn apsp_matches_pairwise_bfs() {
        let g = path_graph(5);
        let csr = Csr::from_graph(&g);
        let all = apsp(&csr);
        for (i, row) in all.iter().enumerate() {
            for (j, &d) in row.iter().enumerate() {
                assert_eq!(d, (i as i32 - j as i32).unsigned_abs());
            }
        }
    }

    #[test]
    fn eccentricity_and_diameter() {
        let g = path_graph(5);
        assert_eq!(eccentricity(&g, NodeId(0)), Some(4));
        assert_eq!(eccentricity(&g, NodeId(2)), Some(2));
        assert_eq!(diameter(&g), Some(4));
    }

    #[test]
    fn diameter_none_when_disconnected() {
        let mut g = path_graph(4);
        g.remove_edge(NodeId(1), NodeId(2)).unwrap();
        assert_eq!(diameter(&g), None);
        assert_eq!(eccentricity(&g, NodeId(0)), None);
    }

    #[test]
    fn diameter_of_single_node() {
        let g = Graph::new(1);
        assert_eq!(diameter(&g), Some(0));
    }
}

//! Forest/tree predicates and reconnection-shape helpers.
//!
//! The healing algorithms wire a set of nodes into one of three shapes:
//! a *complete binary tree* (DASH and the naive binary-tree heal), a
//! *line* (the earlier Boman et al. baseline) or a *star* (SDASH's
//! surrogation). The shape helpers here produce the edge lists; the
//! predicates verify the forest invariant of the healing graph `G'`
//! (Lemma 1 of the paper).

use crate::components::connected_components;
use crate::graph::Graph;
use crate::ids::NodeId;

/// Whether the live subgraph is a forest (acyclic).
///
/// Uses the identity `|E| = |V| - #components` that characterizes forests.
pub fn is_forest(g: &Graph) -> bool {
    let cc = connected_components(g);
    g.edge_count() == g.live_node_count() - cc.count
}

/// Whether the live subgraph is a single tree (connected and acyclic).
///
/// The empty graph is *not* a tree; a single isolated node is.
pub fn is_tree(g: &Graph) -> bool {
    g.live_node_count() >= 1
        && g.edge_count() == g.live_node_count() - 1
        && crate::components::is_connected(g)
}

/// Index of the parent of position `i` in a complete binary tree laid out
/// in level order, or `None` for the root.
#[inline]
pub fn parent_position(i: usize) -> Option<usize> {
    if i == 0 {
        None
    } else {
        Some((i - 1) / 2)
    }
}

/// Child positions of `i` that exist in a complete binary tree of `len`
/// nodes (level-order layout).
#[inline]
pub fn child_positions(i: usize, len: usize) -> impl Iterator<Item = usize> {
    let left = 2 * i + 1;
    let right = 2 * i + 2;
    [left, right].into_iter().filter(move |&c| c < len)
}

/// Whether position `i` is a leaf of a complete binary tree with `len`
/// nodes.
#[inline]
pub fn is_leaf_position(i: usize, len: usize) -> bool {
    2 * i + 1 >= len
}

/// Number of leaves in a complete binary tree of `len` nodes.
///
/// At least half the positions are leaves — the structural fact DASH uses
/// to park the highest-δ nodes where their degree cannot grow.
#[inline]
pub fn leaf_count(len: usize) -> usize {
    len - len / 2
}

/// Depth (root = 0) of position `i` in a level-order complete binary tree.
#[inline]
pub fn position_depth(i: usize) -> u32 {
    (usize::BITS - 1).saturating_sub((i + 1).leading_zeros())
}

/// Edge list wiring `nodes` into a complete binary tree in the given
/// order: `nodes[0]` is the root, `nodes[1..3]` its children, and so on
/// (left to right, top down — exactly the mapping in Algorithm 1).
pub fn complete_binary_tree_edges(nodes: &[NodeId]) -> Vec<(NodeId, NodeId)> {
    let mut edges = Vec::with_capacity(nodes.len().saturating_sub(1));
    for i in 1..nodes.len() {
        edges.push((nodes[(i - 1) / 2], nodes[i]));
    }
    edges
}

/// Edge list wiring `nodes` into a line (path) in the given order.
pub fn line_edges(nodes: &[NodeId]) -> Vec<(NodeId, NodeId)> {
    nodes.windows(2).map(|w| (w[0], w[1])).collect()
}

/// Edge list wiring every node in `others` to `center` (a star).
pub fn star_edges(center: NodeId, others: &[NodeId]) -> Vec<(NodeId, NodeId)> {
    others
        .iter()
        .copied()
        .filter(|&v| v != center)
        .map(|v| (center, v))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(v: &[u32]) -> Vec<NodeId> {
        v.iter().map(|&x| NodeId(x)).collect()
    }

    #[test]
    fn forest_and_tree_predicates() {
        let mut g = Graph::new(5);
        assert!(is_forest(&g)); // isolated nodes form a forest
        assert!(!is_tree(&g));
        for (a, b) in [(0, 1), (1, 2), (2, 3), (3, 4)] {
            g.add_edge(NodeId(a), NodeId(b)).unwrap();
        }
        assert!(is_forest(&g));
        assert!(is_tree(&g));
        g.add_edge(NodeId(0), NodeId(4)).unwrap(); // close the cycle
        assert!(!is_forest(&g));
        assert!(!is_tree(&g));
    }

    #[test]
    fn single_node_is_tree_empty_is_not() {
        let g = Graph::new(1);
        assert!(is_tree(&g));
        let e = Graph::new(0);
        assert!(is_forest(&e));
        assert!(!is_tree(&e));
    }

    #[test]
    fn binary_tree_positions() {
        assert_eq!(parent_position(0), None);
        assert_eq!(parent_position(1), Some(0));
        assert_eq!(parent_position(2), Some(0));
        assert_eq!(parent_position(5), Some(2));
        assert_eq!(child_positions(0, 6).collect::<Vec<_>>(), vec![1, 2]);
        assert_eq!(child_positions(2, 6).collect::<Vec<_>>(), vec![5]);
        assert_eq!(child_positions(3, 6).count(), 0);
        assert!(is_leaf_position(3, 6));
        assert!(!is_leaf_position(2, 6));
    }

    #[test]
    fn at_least_half_are_leaves() {
        for len in 1..200 {
            assert!(leaf_count(len) * 2 >= len, "len={len}");
            let structural = (0..len).filter(|&i| is_leaf_position(i, len)).count();
            assert_eq!(structural, leaf_count(len), "len={len}");
        }
    }

    #[test]
    fn position_depths() {
        assert_eq!(position_depth(0), 0);
        assert_eq!(position_depth(1), 1);
        assert_eq!(position_depth(2), 1);
        assert_eq!(position_depth(3), 2);
        assert_eq!(position_depth(6), 2);
        assert_eq!(position_depth(7), 3);
    }

    #[test]
    fn complete_binary_tree_edges_shape() {
        let nodes = ids(&[10, 20, 30, 40, 50]);
        let edges = complete_binary_tree_edges(&nodes);
        assert_eq!(
            edges,
            vec![
                (NodeId(10), NodeId(20)),
                (NodeId(10), NodeId(30)),
                (NodeId(20), NodeId(40)),
                (NodeId(20), NodeId(50)),
            ]
        );
    }

    #[test]
    fn binary_tree_of_trivial_sizes() {
        assert!(complete_binary_tree_edges(&[]).is_empty());
        assert!(complete_binary_tree_edges(&ids(&[1])).is_empty());
        assert_eq!(
            complete_binary_tree_edges(&ids(&[1, 2])),
            vec![(NodeId(1), NodeId(2))]
        );
    }

    #[test]
    fn binary_tree_edges_form_a_tree() {
        let nodes: Vec<NodeId> = (0..31).map(NodeId).collect();
        let edges = complete_binary_tree_edges(&nodes);
        let mut g = Graph::new(31);
        for (a, b) in edges {
            g.add_edge(a, b).unwrap();
        }
        assert!(is_tree(&g));
        // Max degree in a complete binary tree is 3 (parent + 2 children).
        assert!(nodes.iter().all(|&v| g.degree(v) <= 3));
    }

    #[test]
    fn line_and_star_edges() {
        let nodes = ids(&[1, 2, 3, 4]);
        assert_eq!(
            line_edges(&nodes),
            vec![
                (NodeId(1), NodeId(2)),
                (NodeId(2), NodeId(3)),
                (NodeId(3), NodeId(4))
            ]
        );
        assert_eq!(
            star_edges(NodeId(2), &nodes),
            vec![
                (NodeId(2), NodeId(1)),
                (NodeId(2), NodeId(3)),
                (NodeId(2), NodeId(4))
            ]
        );
        assert!(line_edges(&ids(&[7])).is_empty());
        assert!(star_edges(NodeId(7), &ids(&[7])).is_empty());
    }
}

//! Connected components: BFS labeling and a union-find (disjoint-set)
//! structure.
//!
//! The healing algorithms need component information in two flavors:
//! a one-shot labeling of the current graph (BFS-based,
//! [`connected_components`]) and an incremental structure that absorbs
//! edge insertions cheaply ([`UnionFind`], used to track the healing
//! forest `G'` under merges).

use crate::graph::Graph;
use crate::ids::NodeId;
use std::collections::VecDeque;

/// Result of a one-shot component labeling.
#[derive(Clone, Debug)]
pub struct ComponentLabels {
    /// `labels[v] == usize::MAX` for dead nodes, otherwise the component
    /// index in `0..count`.
    pub labels: Vec<usize>,
    /// Number of connected components among live nodes.
    pub count: usize,
}

impl ComponentLabels {
    /// Component index of `v`, or `None` if `v` is dead/out of range.
    pub fn component_of(&self, v: NodeId) -> Option<usize> {
        match self.labels.get(v.index()) {
            Some(&l) if l != usize::MAX => Some(l),
            _ => None,
        }
    }

    /// Whether two live nodes share a component.
    pub fn same_component(&self, u: NodeId, v: NodeId) -> bool {
        match (self.component_of(u), self.component_of(v)) {
            (Some(a), Some(b)) => a == b,
            _ => false,
        }
    }

    /// Sizes of every component, indexed by component label.
    pub fn sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.count];
        for &l in &self.labels {
            if l != usize::MAX {
                sizes[l] += 1;
            }
        }
        sizes
    }
}

/// Label the connected components of the live subgraph.
///
/// Components are numbered in order of their smallest node id, so the
/// labeling is deterministic.
pub fn connected_components(g: &Graph) -> ComponentLabels {
    let mut labels = vec![usize::MAX; g.node_bound()];
    let mut count = 0;
    let mut queue = VecDeque::new();
    for src in g.live_nodes() {
        if labels[src.index()] != usize::MAX {
            continue;
        }
        labels[src.index()] = count;
        queue.push_back(src);
        while let Some(v) = queue.pop_front() {
            for &u in g.neighbors(v) {
                if labels[u.index()] == usize::MAX {
                    labels[u.index()] = count;
                    queue.push_back(u);
                }
            }
        }
        count += 1;
    }
    ComponentLabels { labels, count }
}

/// Whether all live nodes form a single connected component.
///
/// An empty graph (zero live nodes) is considered connected, matching the
/// paper's "up to all nodes deleted" boundary condition.
pub fn is_connected(g: &Graph) -> bool {
    let mut it = g.live_nodes();
    let Some(src) = it.next() else { return true };
    let visited = crate::traversal::bfs(g, src, |_, _| {});
    visited == g.live_node_count()
}

/// Disjoint-set union with union by rank and path halving.
///
/// Element ids are plain `usize` indices; wrap/unwrap [`NodeId`] at call
/// sites via [`NodeId::index`].
#[derive(Clone, Debug)]
pub struct UnionFind {
    parent: Vec<u32>,
    rank: Vec<u8>,
    sets: usize,
}

impl UnionFind {
    /// Create `n` singleton sets.
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n as u32).collect(),
            rank: vec![0; n],
            sets: n,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Whether the structure is empty.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Number of disjoint sets.
    pub fn set_count(&self) -> usize {
        self.sets
    }

    /// Add one more singleton set, returning its index.
    pub fn push(&mut self) -> usize {
        let id = self.parent.len();
        self.parent.push(id as u32);
        self.rank.push(0);
        self.sets += 1;
        id
    }

    /// Representative of `x`'s set (with path halving).
    pub fn find(&mut self, x: usize) -> usize {
        let mut x = x as u32;
        while self.parent[x as usize] != x {
            let grandparent = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = grandparent;
            x = grandparent;
        }
        x as usize
    }

    /// Representative without mutation (no compression); slower, usable
    /// through a shared reference.
    pub fn find_immutable(&self, x: usize) -> usize {
        let mut x = x as u32;
        while self.parent[x as usize] != x {
            x = self.parent[x as usize];
        }
        x as usize
    }

    /// Merge the sets of `a` and `b`; returns `true` if they were distinct.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (hi, lo) = if self.rank[ra] >= self.rank[rb] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[lo] = hi as u32;
        if self.rank[hi] == self.rank[lo] {
            self.rank[hi] += 1;
        }
        self.sets -= 1;
        true
    }

    /// Whether `a` and `b` are in the same set.
    pub fn same(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_triangles() -> Graph {
        let mut g = Graph::new(6);
        for (a, b) in [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)] {
            g.add_edge(NodeId(a), NodeId(b)).unwrap();
        }
        g
    }

    #[test]
    fn components_of_two_triangles() {
        let g = two_triangles();
        let cc = connected_components(&g);
        assert_eq!(cc.count, 2);
        assert!(cc.same_component(NodeId(0), NodeId(2)));
        assert!(!cc.same_component(NodeId(0), NodeId(3)));
        assert_eq!(cc.sizes(), vec![3, 3]);
        assert!(!is_connected(&g));
    }

    #[test]
    fn components_are_deterministically_numbered() {
        let g = two_triangles();
        let cc = connected_components(&g);
        assert_eq!(cc.component_of(NodeId(0)), Some(0));
        assert_eq!(cc.component_of(NodeId(3)), Some(1));
    }

    #[test]
    fn dead_nodes_have_no_component() {
        let mut g = two_triangles();
        g.remove_node(NodeId(1)).unwrap();
        let cc = connected_components(&g);
        assert_eq!(cc.component_of(NodeId(1)), None);
        assert_eq!(cc.count, 2); // 0-2 still joined through edge (2,0)
    }

    #[test]
    fn empty_graph_is_connected() {
        let g = Graph::new(0);
        assert!(is_connected(&g));
        let mut g1 = Graph::new(1);
        assert!(is_connected(&g1));
        g1.remove_node(NodeId(0)).unwrap();
        assert!(is_connected(&g1));
    }

    #[test]
    fn isolated_nodes_are_their_own_components() {
        let g = Graph::new(3);
        let cc = connected_components(&g);
        assert_eq!(cc.count, 3);
        assert!(!is_connected(&g));
    }

    #[test]
    fn union_find_basic() {
        let mut uf = UnionFind::new(5);
        assert_eq!(uf.set_count(), 5);
        assert!(uf.union(0, 1));
        assert!(uf.union(1, 2));
        assert!(!uf.union(0, 2));
        assert_eq!(uf.set_count(), 3);
        assert!(uf.same(0, 2));
        assert!(!uf.same(0, 3));
        assert_eq!(uf.find_immutable(2), uf.find(0));
    }

    #[test]
    fn union_find_push_extends() {
        let mut uf = UnionFind::new(2);
        let id = uf.push();
        assert_eq!(id, 2);
        assert_eq!(uf.len(), 3);
        assert_eq!(uf.set_count(), 3);
        uf.union(0, 2);
        assert!(uf.same(0, 2));
    }

    #[test]
    fn union_find_matches_bfs_components() {
        let g = two_triangles();
        let mut uf = UnionFind::new(g.node_bound());
        for e in g.edges() {
            uf.union(e.lo().index(), e.hi().index());
        }
        let cc = connected_components(&g);
        for u in g.live_nodes() {
            for v in g.live_nodes() {
                assert_eq!(uf.same(u.index(), v.index()), cc.same_component(u, v));
            }
        }
    }
}

//! Graph (de)serialization: a serde-friendly value type, an edge-list text
//! format, and Graphviz DOT export.

use crate::errors::{GraphError, Result};
use crate::graph::Graph;
use crate::ids::NodeId;
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// A plain-old-data snapshot of a graph, suitable for serde and for the
/// simple text formats below.
///
/// Only live structure is captured: `node_count` is the number of *slots*
/// and `dead` lists tombstoned ids so a round-trip reproduces liveness.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct GraphData {
    /// Number of allocated node slots.
    pub node_count: usize,
    /// Tombstoned (deleted) node ids.
    pub dead: Vec<NodeId>,
    /// Undirected edges as `(lo, hi)` pairs.
    pub edges: Vec<(NodeId, NodeId)>,
}

impl GraphData {
    /// Capture `g` into a value snapshot.
    pub fn from_graph(g: &Graph) -> Self {
        let dead = (0..g.node_bound())
            .map(NodeId::from_index)
            .filter(|&v| !g.is_alive(v))
            .collect();
        let edges = g.edges().map(|e| e.endpoints()).collect();
        GraphData {
            node_count: g.node_bound(),
            dead,
            edges,
        }
    }

    /// Rebuild a [`Graph`] from the snapshot.
    pub fn into_graph(&self) -> Result<Graph> {
        let mut g = Graph::new(self.node_count);
        for &(a, b) in &self.edges {
            g.add_edge(a, b)?;
        }
        for &v in &self.dead {
            g.remove_node(v)?;
        }
        Ok(g)
    }
}

/// Serialize to a whitespace edge-list: first line `n m`, then one `u v`
/// pair per line. Dead nodes are not representable in this format; use
/// [`GraphData`] when tombstones matter.
pub fn to_edge_list(g: &Graph) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "{} {}", g.node_bound(), g.edge_count());
    for e in g.edges() {
        let _ = writeln!(s, "{} {}", e.lo(), e.hi());
    }
    s
}

/// Parse the edge-list format produced by [`to_edge_list`].
pub fn from_edge_list(text: &str) -> Result<Graph> {
    let mut lines = text.lines().filter(|l| !l.trim().is_empty());
    let header = lines.next().ok_or(GraphError::EmptyGraph)?;
    let mut it = header.split_whitespace();
    let n: usize = it
        .next()
        .and_then(|t| t.parse().ok())
        .ok_or(GraphError::EmptyGraph)?;
    let mut g = Graph::new(n);
    for line in lines {
        let mut it = line.split_whitespace();
        let u: u32 = it
            .next()
            .and_then(|t| t.parse().ok())
            .ok_or(GraphError::EmptyGraph)?;
        let v: u32 = it
            .next()
            .and_then(|t| t.parse().ok())
            .ok_or(GraphError::EmptyGraph)?;
        g.add_edge(NodeId(u), NodeId(v))?;
    }
    Ok(g)
}

/// Render the live subgraph as Graphviz DOT (undirected).
pub fn to_dot(g: &Graph, name: &str) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "graph {name} {{");
    for v in g.live_nodes() {
        let _ = writeln!(s, "  {v};");
    }
    for e in g.edges() {
        let _ = writeln!(s, "  {} -- {};", e.lo(), e.hi());
    }
    s.push_str("}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Graph {
        let mut g = Graph::new(4);
        g.add_edge(NodeId(0), NodeId(1)).unwrap();
        g.add_edge(NodeId(1), NodeId(2)).unwrap();
        g.add_edge(NodeId(2), NodeId(3)).unwrap();
        g
    }

    #[test]
    fn graph_data_roundtrip() {
        let mut g = sample();
        g.remove_node(NodeId(3)).unwrap();
        let data = GraphData::from_graph(&g);
        let g2 = data.into_graph().unwrap();
        assert_eq!(g2.node_bound(), 4);
        assert!(!g2.is_alive(NodeId(3)));
        assert_eq!(g2.edge_count(), 2);
        assert!(g2.has_edge(NodeId(0), NodeId(1)));
        assert_eq!(GraphData::from_graph(&g2), data);
    }

    #[test]
    fn edge_list_roundtrip() {
        let g = sample();
        let text = to_edge_list(&g);
        let g2 = from_edge_list(&text).unwrap();
        assert_eq!(g2.node_bound(), 4);
        assert_eq!(g2.edge_count(), 3);
        assert!(g2.has_edge(NodeId(1), NodeId(2)));
    }

    #[test]
    fn edge_list_rejects_garbage() {
        assert!(from_edge_list("").is_err());
        assert!(from_edge_list("abc def").is_err());
        assert!(from_edge_list("2 1\n0 zzz").is_err());
        // edge to out-of-range node
        assert!(from_edge_list("2 1\n0 5").is_err());
    }

    #[test]
    fn dot_contains_all_edges() {
        let g = sample();
        let dot = to_dot(&g, "g");
        assert!(dot.starts_with("graph g {"));
        assert!(dot.contains("0 -- 1;"));
        assert!(dot.contains("2 -- 3;"));
        assert!(dot.trim_end().ends_with('}'));
    }
}

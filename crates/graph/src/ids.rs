//! Strongly-typed node identifiers.
//!
//! All graphs in this workspace index nodes with a compact [`NodeId`]
//! newtype over `u32`. Using a newtype (instead of bare `usize`) prevents
//! accidental mixing of node ids with, e.g., positions inside a
//! reconstruction tree, and keeps hot adjacency vectors half the size of a
//! `usize`-based representation on 64-bit targets.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a node inside a [`crate::Graph`].
///
/// `NodeId`s are dense indices assigned at construction time: a graph over
/// `n` initial nodes uses ids `0..n`. Deleting a node never invalidates the
/// ids of other nodes (the slot is tombstoned), so a `NodeId` observed at
/// any point during a simulation remains a stable name for that node.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Largest representable id, used as a sentinel by some algorithms.
    pub const MAX: NodeId = NodeId(u32::MAX);

    /// The id as a `usize` index, for direct vector indexing.
    #[inline(always)]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Construct from a `usize` index.
    ///
    /// # Panics
    /// Panics if `i` does not fit in a `u32`.
    #[inline(always)]
    pub fn from_index(i: usize) -> Self {
        debug_assert!(i <= u32::MAX as usize, "node index {i} overflows u32");
        NodeId(i as u32)
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u32> for NodeId {
    #[inline]
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

impl From<NodeId> for u32 {
    #[inline]
    fn from(v: NodeId) -> Self {
        v.0
    }
}

/// An undirected edge as an unordered pair of node ids.
///
/// The pair is stored in normalized (sorted) order so `Edge::new(a, b) ==
/// Edge::new(b, a)`, making `Edge` usable as a set/map key.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Edge {
    lo: NodeId,
    hi: NodeId,
}

impl Edge {
    /// Create a normalized edge; endpoint order does not matter.
    #[inline]
    pub fn new(a: NodeId, b: NodeId) -> Self {
        if a <= b {
            Edge { lo: a, hi: b }
        } else {
            Edge { lo: b, hi: a }
        }
    }

    /// The smaller endpoint.
    #[inline]
    pub fn lo(self) -> NodeId {
        self.lo
    }

    /// The larger endpoint.
    #[inline]
    pub fn hi(self) -> NodeId {
        self.hi
    }

    /// Both endpoints as a tuple `(lo, hi)`.
    #[inline]
    pub fn endpoints(self) -> (NodeId, NodeId) {
        (self.lo, self.hi)
    }

    /// Whether `v` is one of the endpoints.
    #[inline]
    pub fn touches(self, v: NodeId) -> bool {
        self.lo == v || self.hi == v
    }

    /// Given one endpoint, return the other.
    ///
    /// # Panics
    /// Panics if `v` is not an endpoint of this edge.
    #[inline]
    pub fn other(self, v: NodeId) -> NodeId {
        if v == self.lo {
            self.hi
        } else {
            assert_eq!(v, self.hi, "node {v} is not an endpoint of {self:?}");
            self.lo
        }
    }

    /// True if this is a self-loop (both endpoints equal).
    #[inline]
    pub fn is_loop(self) -> bool {
        self.lo == self.hi
    }
}

impl fmt::Debug for Edge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}-{})", self.lo.0, self.hi.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_roundtrip() {
        let n = NodeId::from_index(42);
        assert_eq!(n.index(), 42);
        assert_eq!(u32::from(n), 42);
        assert_eq!(NodeId::from(42u32), n);
        assert_eq!(format!("{n}"), "42");
        assert_eq!(format!("{n:?}"), "n42");
    }

    #[test]
    fn edge_is_normalized() {
        let a = NodeId(3);
        let b = NodeId(7);
        assert_eq!(Edge::new(a, b), Edge::new(b, a));
        assert_eq!(Edge::new(a, b).lo(), a);
        assert_eq!(Edge::new(a, b).hi(), b);
        assert_eq!(Edge::new(b, a).endpoints(), (a, b));
    }

    #[test]
    fn edge_other_and_touches() {
        let e = Edge::new(NodeId(1), NodeId(2));
        assert_eq!(e.other(NodeId(1)), NodeId(2));
        assert_eq!(e.other(NodeId(2)), NodeId(1));
        assert!(e.touches(NodeId(1)));
        assert!(e.touches(NodeId(2)));
        assert!(!e.touches(NodeId(3)));
        assert!(!e.is_loop());
        assert!(Edge::new(NodeId(5), NodeId(5)).is_loop());
    }

    #[test]
    #[should_panic]
    fn edge_other_panics_on_non_endpoint() {
        let e = Edge::new(NodeId(1), NodeId(2));
        let _ = e.other(NodeId(9));
    }

    #[test]
    fn edge_ordering_is_lexicographic() {
        let e1 = Edge::new(NodeId(0), NodeId(5));
        let e2 = Edge::new(NodeId(1), NodeId(2));
        assert!(e1 < e2);
    }
}

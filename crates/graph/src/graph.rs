//! The dynamic undirected graph at the heart of every simulation.
//!
//! [`Graph`] is a simple (no self-loops, no parallel edges) undirected
//! graph with *stable node ids* and tombstoned deletion: removing a node
//! keeps its slot so every other node's id stays valid, which is exactly
//! what a long adversarial deletion/healing run needs.
//!
//! Neighbor lists are kept **sorted**, so membership tests are
//! `O(log deg)` binary searches and neighbor iteration yields ids in
//! increasing order — a property the deterministic healing algorithms rely
//! on for reproducibility.
//!
//! Storage is the pooled arena of [`crate::pool`]: every neighbor list is
//! a contiguous chunk of one shared `Vec<NodeId>`, so `neighbors()` is
//! still a real `&[NodeId]` slice but million-node runs stop paying one
//! heap allocation (and one cache-missing pointer chase) per node. Two
//! always-maintained indexes keep the per-event query surface sublinear:
//! a **degree-bucket index** answers [`Graph::max_degree_node`] /
//! [`Graph::min_degree_node`] from the extreme bucket instead of an O(n)
//! scan, and a **Fenwick live-order index** answers [`Graph::nth_live`]
//! (the k-th smallest live id) in O(log n) so adversaries can sample
//! uniform live nodes without materializing the live list.

use crate::errors::{GraphError, Result};
use crate::ids::{Edge, NodeId};
use crate::pool::{AdjPool, ChunkRef};
// Under `--cfg loom` the hint atomics become the model checker's mocks,
// so every load/store/fetch_max below is an explored schedule point
// (`make loom-check`; see vendor/loom and crates/graph/tests/loom.rs).
#[cfg(loom)]
use loom::sync::atomic::{AtomicUsize, Ordering};
#[cfg(not(loom))]
use std::sync::atomic::{AtomicUsize, Ordering};

/// Exact degree buckets over the live nodes with lazily-repaired extreme
/// hints.
///
/// Every live node sits in `buckets[degree(v)]`; `pos[v]` is its index in
/// that bucket so moves are O(1) `swap_remove`s. The hints over-approximate
/// (`max_hint ≥` true max, `min_hint ≤` true min): mutations only ever
/// push them outward, and queries walk them back to the first non-empty
/// bucket — each repair step is paid for by the mutation that stranded the
/// hint, so queries are amortized O(1) plus the extreme bucket's tie scan.
///
/// The hints are atomics so queries keep the historical `&self` signature
/// (`Graph::max_degree_node` is called through shared references): a hint
/// repair is a pure narrowing of the search window, so racing relaxed
/// stores can only lose a repair, never break the bounds.
#[derive(Debug, Default)]
struct DegreeIndex {
    buckets: Vec<Vec<NodeId>>,
    pos: Vec<u32>,
    max_hint: AtomicUsize,
    min_hint: AtomicUsize,
}

impl Clone for DegreeIndex {
    fn clone(&self) -> Self {
        DegreeIndex {
            buckets: self.buckets.clone(),
            pos: self.pos.clone(),
            // relaxed-ok: any conservative snapshot is valid — a hint is
            // only a search start, and a concurrent repair can at worst
            // be lost, leaving the clone's hint equally conservative.
            // Proven by `crates/graph/tests/loom.rs` (`make loom-check`).
            max_hint: AtomicUsize::new(self.max_hint.load(Ordering::Relaxed)),
            // relaxed-ok: as above.
            min_hint: AtomicUsize::new(self.min_hint.load(Ordering::Relaxed)),
        }
    }
}

impl DegreeIndex {
    /// Index for `n` fresh live nodes, all of degree 0.
    fn new_isolated(n: usize) -> Self {
        DegreeIndex {
            buckets: vec![(0..n).map(NodeId::from_index).collect()],
            pos: (0..n).map(|i| i as u32).collect(),
            max_hint: AtomicUsize::new(0),
            min_hint: AtomicUsize::new(0),
        }
    }

    fn insert(&mut self, v: NodeId, d: usize) {
        if self.buckets.len() <= d {
            self.buckets.resize_with(d + 1, Vec::new);
        }
        self.pos[v.index()] = self.buckets[d].len() as u32;
        self.buckets[d].push(v);
        // relaxed-ok: insert holds `&mut self`, so no query races this
        // store; fetch_max/fetch_min keep the hints conservative
        // (`max_hint ≥` true max, `min_hint ≤` true min) and the loom
        // model checks the full hint protocol under `make loom-check`.
        self.max_hint.fetch_max(d, Ordering::Relaxed);
        // relaxed-ok: as above.
        self.min_hint.fetch_min(d, Ordering::Relaxed);
    }

    fn remove(&mut self, v: NodeId, d: usize) {
        let p = self.pos[v.index()] as usize;
        debug_assert_eq!(self.buckets[d][p], v);
        self.buckets[d].swap_remove(p);
        if let Some(&moved) = self.buckets[d].get(p) {
            self.pos[moved.index()] = p as u32;
        }
    }

    fn change(&mut self, v: NodeId, from: usize, to: usize) {
        self.remove(v, from);
        self.insert(v, to);
    }

    /// Lowest id in the highest non-empty bucket. The caller guarantees at
    /// least one live node.
    fn max_node(&self) -> NodeId {
        // relaxed-ok: stale reads only start the walk too high — the
        // hint invariant (`max_hint ≥` true max) still holds; verified
        // exhaustively by `crates/graph/tests/loom.rs`.
        let mut h = self.max_hint.load(Ordering::Relaxed);
        while h > 0 && self.buckets[h].is_empty() {
            h -= 1;
        }
        // relaxed-ok: lazy repair; racing stores can only lose a repair
        // (leaving a conservative hint), never break the bounds.
        self.max_hint.store(h, Ordering::Relaxed);
        *self.buckets[h]
            .iter()
            .min()
            // panic-ok: documented precondition — the caller guarantees a
            // live node, so the downward walk must hit a non-empty bucket.
            .expect("hint repaired to a non-empty bucket")
    }

    /// Lowest id in the lowest non-empty bucket. The caller guarantees at
    /// least one live node.
    fn min_node(&self) -> NodeId {
        // relaxed-ok: mirror of [`Self::max_node`] — stale reads start
        // the walk too low but `min_hint ≤` true min still holds.
        let mut h = self.min_hint.load(Ordering::Relaxed);
        while self.buckets[h].is_empty() {
            h += 1;
        }
        // relaxed-ok: lazy repair, losable without harm (see max_node).
        self.min_hint.store(h, Ordering::Relaxed);
        *self.buckets[h]
            .iter()
            .min()
            // panic-ok: documented precondition — the caller guarantees a
            // live node, so the upward walk must hit a non-empty bucket.
            .expect("hint repaired to a non-empty bucket")
    }
}

/// Fenwick (binary-indexed) tree over the alive bits, for O(log n)
/// rank/select on live nodes. Grows by doubling with an O(n) rebuild.
#[derive(Clone, Debug, Default)]
struct LiveIndex {
    /// 1-indexed partial sums; `tree.len() == cap + 1`.
    tree: Vec<u32>,
    cap: usize,
}

impl LiveIndex {
    /// Linear-time build over the first `n` alive bits with capacity `cap`.
    fn rebuild(&mut self, cap: usize, alive: &[bool]) {
        self.cap = cap;
        self.tree.clear();
        self.tree.resize(cap + 1, 0);
        for (i, &a) in alive.iter().enumerate() {
            if a {
                self.tree[i + 1] += 1;
            }
        }
        for i in 1..=cap {
            let j = i + (i & i.wrapping_neg());
            if j <= cap {
                let t = self.tree[i];
                self.tree[j] += t;
            }
        }
    }

    fn add(&mut self, i: usize, delta: i32) {
        let mut i = i + 1;
        while i <= self.cap {
            self.tree[i] = (self.tree[i] as i32 + delta) as u32;
            i += i & i.wrapping_neg();
        }
    }

    /// Slot index of the k-th (0-indexed) live node in increasing order.
    /// The caller guarantees `k <` the number of live nodes.
    fn select(&self, k: usize) -> usize {
        let mut pos = 0usize;
        let mut rem = (k + 1) as u32;
        let mut pw = self.cap.next_power_of_two();
        if pw > self.cap {
            pw /= 2;
        }
        while pw > 0 {
            let next = pos + pw;
            if next <= self.cap && self.tree[next] < rem {
                rem -= self.tree[next];
                pos = next;
            }
            pw /= 2;
        }
        pos // tree is 1-indexed: `pos` live entries precede slot `pos`.
    }
}

/// A dynamic, simple, undirected graph with tombstoned node deletion.
///
/// # Examples
/// ```
/// use selfheal_graph::{Graph, NodeId};
///
/// let mut g = Graph::new(4);
/// g.add_edge(NodeId(0), NodeId(1)).unwrap();
/// g.add_edge(NodeId(1), NodeId(2)).unwrap();
/// g.add_edge(NodeId(2), NodeId(3)).unwrap();
/// assert_eq!(g.degree(NodeId(1)), 2);
///
/// let former = g.remove_node(NodeId(1)).unwrap();
/// assert_eq!(former, vec![NodeId(0), NodeId(2)]);
/// assert!(!g.is_alive(NodeId(1)));
/// assert_eq!(g.degree(NodeId(0)), 0);
/// ```
#[derive(Clone, Debug, Default)]
pub struct Graph {
    /// One arena backing every neighbor list (see [`crate::pool`]).
    pool: AdjPool,
    /// Per-slot chunk handle (dead slots hold the empty handle).
    adj: Vec<ChunkRef>,
    /// Liveness flag per slot.
    alive: Vec<bool>,
    /// Number of live nodes.
    live_count: usize,
    /// Number of live edges.
    edge_count: usize,
    /// Degree buckets for O(extreme-bucket) max/min-degree queries.
    degrees: DegreeIndex,
    /// Fenwick index for O(log n) k-th-live-node selection.
    live_index: LiveIndex,
}

impl Graph {
    /// Create a graph with `n` live, isolated nodes (ids `0..n`).
    pub fn new(n: usize) -> Self {
        let alive = vec![true; n];
        let mut live_index = LiveIndex::default();
        live_index.rebuild(n, &alive);
        Graph {
            pool: AdjPool::default(),
            adj: vec![ChunkRef::default(); n],
            alive,
            live_count: n,
            edge_count: 0,
            degrees: DegreeIndex::new_isolated(n),
            live_index,
        }
    }

    /// Create an empty graph that will allocate slots lazily via
    /// [`Graph::add_node`].
    pub fn empty() -> Self {
        Self::new(0)
    }

    /// Total number of node slots ever allocated (live + dead).
    ///
    /// All per-node auxiliary vectors in client code should be sized by
    /// this bound.
    #[inline]
    pub fn node_bound(&self) -> usize {
        self.adj.len()
    }

    /// Number of currently live nodes.
    #[inline]
    pub fn live_node_count(&self) -> usize {
        self.live_count
    }

    /// Number of currently live edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Whether `v` refers to an allocated slot (live or dead).
    #[inline]
    pub fn contains(&self, v: NodeId) -> bool {
        v.index() < self.adj.len()
    }

    /// Whether node `v` is currently live.
    #[inline]
    pub fn is_alive(&self, v: NodeId) -> bool {
        self.contains(v) && self.alive[v.index()]
    }

    /// Validate that `v` is an allocated, live node.
    #[inline]
    pub fn check_alive(&self, v: NodeId) -> Result<()> {
        if !self.contains(v) {
            Err(GraphError::NodeOutOfRange(v))
        } else if !self.alive[v.index()] {
            Err(GraphError::NodeDead(v))
        } else {
            Ok(())
        }
    }

    /// Allocate a fresh live node and return its id.
    pub fn add_node(&mut self) -> NodeId {
        let id = NodeId::from_index(self.adj.len());
        self.adj.push(ChunkRef::default());
        self.alive.push(true);
        self.live_count += 1;
        self.degrees.pos.push(0);
        self.degrees.insert(id, 0);
        if self.alive.len() > self.live_index.cap {
            let cap = (self.live_index.cap * 2).max(self.alive.len()).max(16);
            self.live_index.rebuild(cap, &self.alive);
        } else {
            self.live_index.add(id.index(), 1);
        }
        id
    }

    /// Degree of `v` (0 for dead or out-of-range nodes).
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        if self.contains(v) {
            self.adj[v.index()].len()
        } else {
            0
        }
    }

    /// The sorted neighbor list of `v` (empty slice for dead nodes).
    #[inline]
    pub fn neighbors(&self, v: NodeId) -> &[NodeId] {
        if self.contains(v) {
            self.pool.slice(&self.adj[v.index()])
        } else {
            &[]
        }
    }

    /// Whether the edge `(u, v)` exists (both endpoints live).
    #[inline]
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.contains(u)
            && self
                .pool
                .slice(&self.adj[u.index()])
                .binary_search(&v)
                .is_ok()
    }

    /// Insert the undirected edge `(u, v)`.
    ///
    /// # Errors
    /// Fails with [`GraphError::SelfLoop`] for `u == v`, with
    /// [`GraphError::EdgeExists`] if the edge is already present, and with
    /// node errors if either endpoint is dead or out of range.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) -> Result<()> {
        if u == v {
            return Err(GraphError::SelfLoop(u));
        }
        self.check_alive(u)?;
        self.check_alive(v)?;
        let pos_u = match self.pool.slice(&self.adj[u.index()]).binary_search(&v) {
            Ok(_) => return Err(GraphError::EdgeExists(u, v)),
            Err(pos) => pos,
        };
        // This cannot be Ok if the u-side search wasn't: adjacency is symmetric.
        let pos_v = self
            .pool
            .slice(&self.adj[v.index()])
            .binary_search(&u)
            .expect_err("asymmetric adjacency detected");
        let (du, dv) = (self.adj[u.index()].len(), self.adj[v.index()].len());
        let mut r = self.adj[u.index()];
        self.pool.insert_at(&mut r, pos_u, v);
        self.adj[u.index()] = r;
        let mut r = self.adj[v.index()];
        self.pool.insert_at(&mut r, pos_v, u);
        self.adj[v.index()] = r;
        self.degrees.change(u, du, du + 1);
        self.degrees.change(v, dv, dv + 1);
        self.edge_count += 1;
        Ok(())
    }

    /// Insert `(u, v)` if absent; returns `true` when a new edge was added.
    ///
    /// Unlike [`Graph::add_edge`], an already-present edge is not an error.
    pub fn ensure_edge(&mut self, u: NodeId, v: NodeId) -> Result<bool> {
        match self.add_edge(u, v) {
            Ok(()) => Ok(true),
            Err(GraphError::EdgeExists(..)) => Ok(false),
            Err(e) => Err(e),
        }
    }

    /// Remove the undirected edge `(u, v)`.
    ///
    /// # Errors
    /// Fails with [`GraphError::EdgeMissing`] if the edge is not present.
    pub fn remove_edge(&mut self, u: NodeId, v: NodeId) -> Result<()> {
        self.check_alive(u)?;
        self.check_alive(v)?;
        let pos_u = self
            .pool
            .slice(&self.adj[u.index()])
            .binary_search(&v)
            .map_err(|_| GraphError::EdgeMissing(u, v))?;
        let pos_v = self
            .pool
            .slice(&self.adj[v.index()])
            .binary_search(&u)
            .map_err(|_| GraphError::EdgeMissing(u, v))?;
        let (du, dv) = (self.adj[u.index()].len(), self.adj[v.index()].len());
        let mut r = self.adj[u.index()];
        self.pool.remove_at(&mut r, pos_u);
        self.adj[u.index()] = r;
        let mut r = self.adj[v.index()];
        self.pool.remove_at(&mut r, pos_v);
        self.adj[v.index()] = r;
        self.degrees.change(u, du, du - 1);
        self.degrees.change(v, dv, dv - 1);
        self.edge_count -= 1;
        Ok(())
    }

    /// Delete node `v`, detaching all incident edges.
    ///
    /// Returns the (sorted) list of former neighbors, which is exactly the
    /// set a locality-aware healing algorithm is allowed to rewire.
    pub fn remove_node(&mut self, v: NodeId) -> Result<Vec<NodeId>> {
        let mut neighbors = Vec::new();
        self.remove_node_into(v, &mut neighbors)?;
        Ok(neighbors)
    }

    /// [`Graph::remove_node`] writing the former neighbors into a
    /// caller-owned buffer (cleared first), so steady-state deletion loops
    /// can reuse one allocation across rounds. On error the buffer is left
    /// cleared and the graph untouched.
    pub fn remove_node_into(&mut self, v: NodeId, neighbors: &mut Vec<NodeId>) -> Result<()> {
        neighbors.clear();
        self.check_alive(v)?;
        neighbors.extend_from_slice(self.pool.slice(&self.adj[v.index()]));
        // Release the dead slot's chunk to the pool's free list:
        // tombstoned nodes never come back, so the chunk is immediately
        // reusable and the arena's high-water mark stays bounded by the
        // peak live adjacency.
        let mut r = self.adj[v.index()];
        self.pool.clear(&mut r);
        self.adj[v.index()] = r;
        self.degrees.remove(v, neighbors.len());
        for &u in neighbors.iter() {
            let pos = self
                .pool
                .slice(&self.adj[u.index()])
                .binary_search(&v)
                // panic-ok: adjacency symmetry is a structural invariant
                // every mutation maintains; asymmetry means memory
                // corruption and must not be papered over.
                .expect("asymmetric adjacency detected");
            let du = self.adj[u.index()].len();
            let mut r = self.adj[u.index()];
            self.pool.remove_at(&mut r, pos);
            self.adj[u.index()] = r;
            self.degrees.change(u, du, du - 1);
        }
        self.edge_count -= neighbors.len();
        self.alive[v.index()] = false;
        self.live_count -= 1;
        self.live_index.add(v.index(), -1);
        Ok(())
    }

    /// Iterator over the ids of all live nodes, in increasing order.
    pub fn live_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.alive
            .iter()
            .enumerate()
            .filter(|(_, &a)| a)
            .map(|(i, _)| NodeId::from_index(i))
    }

    /// Collect all live node ids (increasing order) into `out`, reusing
    /// its allocation — the snapshot-capture path rebuilds this list
    /// every epoch and must not allocate at steady state.
    pub fn live_nodes_into(&self, out: &mut Vec<NodeId>) {
        out.clear();
        out.extend(self.live_nodes());
    }

    /// Collect the degree of every slot (dead slots report 0) into
    /// `out`, indexed by [`NodeId::index`] and sized to
    /// [`Graph::node_bound`], reusing its allocation.
    pub fn degrees_into(&self, out: &mut Vec<u32>) {
        out.clear();
        out.extend(
            self.adj
                .iter()
                .map(|r| u32::try_from(r.len()).unwrap_or(u32::MAX)),
        );
    }

    /// The k-th (0-indexed) live node in increasing id order, in O(log n).
    ///
    /// Agrees exactly with `live_nodes().nth(k)`: sampling
    /// `nth_live(rng.gen_range(live_node_count()))` draws the same node a
    /// collect-then-index of the live list would, without the O(n) scan.
    pub fn nth_live(&self, k: usize) -> Option<NodeId> {
        if k >= self.live_count {
            return None;
        }
        Some(NodeId::from_index(self.live_index.select(k)))
    }

    /// Iterator over all live edges, each reported once with `lo < hi`.
    pub fn edges(&self) -> impl Iterator<Item = Edge> + '_ {
        self.adj.iter().enumerate().flat_map(move |(i, r)| {
            let u = NodeId::from_index(i);
            self.pool
                .slice(r)
                .iter()
                .filter(move |&&w| u < w)
                .map(move |&w| Edge::new(u, w))
        })
    }

    /// The neighbor-of-neighbor (NoN) set of `v`: every node at distance
    /// exactly 1 or 2 from `v`, excluding `v` itself, sorted and deduplicated.
    ///
    /// This is the information the paper assumes every node maintains
    /// ("for all nodes x, y, z such that x is a neighbor of y and y is a
    /// neighbor of z, x knows z").
    pub fn neighbors_of_neighbors(&self, v: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        self.neighbors_of_neighbors_into(v, &mut out);
        out
    }

    /// [`Graph::neighbors_of_neighbors`] writing into a caller-owned
    /// buffer (cleared first), so per-deletion NoN walks can reuse one
    /// allocation across rounds.
    pub fn neighbors_of_neighbors_into(&self, v: NodeId, out: &mut Vec<NodeId>) {
        out.clear();
        for &u in self.neighbors(v) {
            out.push(u);
            out.extend(self.neighbors(u).iter().copied().filter(|&w| w != v));
        }
        out.sort_unstable();
        out.dedup();
    }

    /// The live node with the maximum degree (ties broken by lowest id).
    ///
    /// Returns `None` when the graph has no live nodes. Answered from the
    /// degree-bucket index: amortized O(1) hint repair plus a scan of the
    /// single extreme bucket (instead of the former O(n) full scan).
    pub fn max_degree_node(&self) -> Option<NodeId> {
        if self.live_count == 0 {
            return None;
        }
        Some(self.degrees.max_node())
    }

    /// The live node with the minimum degree (ties broken by lowest id).
    pub fn min_degree_node(&self) -> Option<NodeId> {
        if self.live_count == 0 {
            return None;
        }
        Some(self.degrees.min_node())
    }

    /// Sum of degrees over all live nodes (= `2 * edge_count`).
    pub fn degree_sum(&self) -> usize {
        self.adj.iter().map(ChunkRef::len).sum()
    }

    /// Internal consistency check used by tests and `debug_assert!`s:
    /// adjacency symmetric & sorted, dead nodes isolated, counters and
    /// both indexes correct.
    pub fn validate(&self) -> Result<()> {
        let mut edges = 0usize;
        let mut live = 0usize;
        for (i, r) in self.adj.iter().enumerate() {
            let v = NodeId::from_index(i);
            let nbrs = self.pool.slice(r);
            if self.alive[i] {
                live += 1;
            } else if !nbrs.is_empty() {
                return Err(GraphError::NodeDead(v));
            }
            let mut prev: Option<NodeId> = None;
            for &u in nbrs {
                if u == v {
                    return Err(GraphError::SelfLoop(v));
                }
                if let Some(p) = prev {
                    if p >= u {
                        // duplicate or unsorted entry
                        return Err(GraphError::EdgeExists(v, u));
                    }
                }
                prev = Some(u);
                if !self.is_alive(u) {
                    return Err(GraphError::NodeDead(u));
                }
                if self
                    .pool
                    .slice(&self.adj[u.index()])
                    .binary_search(&v)
                    .is_err()
                {
                    return Err(GraphError::EdgeMissing(u, v));
                }
                edges += 1;
            }
        }
        debug_assert_eq!(edges % 2, 0);
        if edges / 2 != self.edge_count || live != self.live_count {
            return Err(GraphError::EmptyGraph); // counter drift
        }
        // Degree-bucket index: every live node in its degree's bucket at
        // its recorded position, no stale entries, hints still bounding.
        let mut indexed = 0usize;
        for (d, bucket) in self.degrees.buckets.iter().enumerate() {
            for &v in bucket {
                if !self.is_alive(v)
                    || self.degree(v) != d
                    || self.degrees.pos[v.index()] as usize >= bucket.len()
                    || bucket[self.degrees.pos[v.index()] as usize] != v
                {
                    return Err(GraphError::EmptyGraph); // index drift
                }
                indexed += 1;
            }
            // relaxed-ok: validation reads on a quiescent graph (`&self`,
            // no concurrent mutators by borrow rules); a conservative
            // hint value is exactly what the bound check wants.
            let max_hint = self.degrees.max_hint.load(Ordering::Relaxed);
            // relaxed-ok: as above.
            let min_hint = self.degrees.min_hint.load(Ordering::Relaxed);
            if !bucket.is_empty() && (d > max_hint || d < min_hint) {
                return Err(GraphError::EmptyGraph); // hint no longer bounds
            }
        }
        if indexed != self.live_count {
            return Err(GraphError::EmptyGraph); // index drift
        }
        // Fenwick live index: rank/select must agree with the alive bits.
        for (k, v) in self.live_nodes().enumerate() {
            if self.live_index.select(k) != v.index() {
                return Err(GraphError::EmptyGraph); // index drift
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(n: usize) -> Graph {
        let mut g = Graph::new(n);
        for i in 1..n {
            g.add_edge(NodeId::from_index(i - 1), NodeId::from_index(i))
                .unwrap();
        }
        g
    }

    #[test]
    fn new_graph_is_isolated() {
        let g = Graph::new(5);
        assert_eq!(g.live_node_count(), 5);
        assert_eq!(g.edge_count(), 0);
        for v in g.live_nodes() {
            assert_eq!(g.degree(v), 0);
        }
        g.validate().unwrap();
    }

    #[test]
    fn bulk_accessors_match_their_per_node_counterparts() {
        let mut g = Graph::new(4);
        g.add_edge(NodeId(0), NodeId(1)).unwrap();
        g.add_edge(NodeId(1), NodeId(2)).unwrap();
        g.add_edge(NodeId(2), NodeId(3)).unwrap();
        g.remove_node(NodeId(1)).unwrap();

        let mut live = vec![NodeId(99)]; // stale content must be cleared
        g.live_nodes_into(&mut live);
        assert_eq!(live, g.live_nodes().collect::<Vec<_>>());

        let mut degs = vec![77u32];
        g.degrees_into(&mut degs);
        assert_eq!(degs.len(), g.node_bound());
        for (i, &d) in degs.iter().enumerate() {
            assert_eq!(d as usize, g.degree(NodeId::from_index(i)));
        }
        assert_eq!(degs[1], 0, "dead slot must report degree 0");
    }

    #[test]
    fn add_and_query_edges() {
        let mut g = Graph::new(3);
        g.add_edge(NodeId(0), NodeId(2)).unwrap();
        assert!(g.has_edge(NodeId(0), NodeId(2)));
        assert!(g.has_edge(NodeId(2), NodeId(0)));
        assert!(!g.has_edge(NodeId(0), NodeId(1)));
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.degree_sum(), 2);
        g.validate().unwrap();
    }

    #[test]
    fn duplicate_edge_rejected() {
        let mut g = Graph::new(2);
        g.add_edge(NodeId(0), NodeId(1)).unwrap();
        assert_eq!(
            g.add_edge(NodeId(1), NodeId(0)),
            Err(GraphError::EdgeExists(NodeId(1), NodeId(0)))
        );
        assert_eq!(g.ensure_edge(NodeId(0), NodeId(1)), Ok(false));
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn self_loop_rejected() {
        let mut g = Graph::new(2);
        assert_eq!(
            g.add_edge(NodeId(1), NodeId(1)),
            Err(GraphError::SelfLoop(NodeId(1)))
        );
    }

    #[test]
    fn out_of_range_rejected() {
        let mut g = Graph::new(2);
        assert_eq!(
            g.add_edge(NodeId(0), NodeId(9)),
            Err(GraphError::NodeOutOfRange(NodeId(9)))
        );
        assert!(!g.is_alive(NodeId(9)));
        assert!(!g.has_edge(NodeId(0), NodeId(9)));
    }

    #[test]
    fn remove_edge_works_and_missing_edge_errors() {
        let mut g = path(3);
        g.remove_edge(NodeId(0), NodeId(1)).unwrap();
        assert!(!g.has_edge(NodeId(0), NodeId(1)));
        assert_eq!(g.edge_count(), 1);
        assert_eq!(
            g.remove_edge(NodeId(0), NodeId(1)),
            Err(GraphError::EdgeMissing(NodeId(0), NodeId(1)))
        );
        g.validate().unwrap();
    }

    #[test]
    fn remove_node_detaches_and_tombstones() {
        let mut g = path(4);
        let nbrs = g.remove_node(NodeId(1)).unwrap();
        assert_eq!(nbrs, vec![NodeId(0), NodeId(2)]);
        assert!(!g.is_alive(NodeId(1)));
        assert_eq!(g.live_node_count(), 3);
        assert_eq!(g.edge_count(), 1); // only (2,3) remains
        assert_eq!(g.degree(NodeId(0)), 0);
        assert_eq!(
            g.check_alive(NodeId(1)),
            Err(GraphError::NodeDead(NodeId(1)))
        );
        g.validate().unwrap();
    }

    #[test]
    fn removing_dead_node_errors() {
        let mut g = path(3);
        g.remove_node(NodeId(0)).unwrap();
        assert_eq!(
            g.remove_node(NodeId(0)),
            Err(GraphError::NodeDead(NodeId(0)))
        );
    }

    #[test]
    fn edges_are_reported_once() {
        let g = path(4);
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges.len(), 3);
        assert_eq!(edges[0], Edge::new(NodeId(0), NodeId(1)));
        assert_eq!(edges[2], Edge::new(NodeId(2), NodeId(3)));
    }

    #[test]
    fn add_node_extends_graph() {
        let mut g = Graph::new(1);
        let v = g.add_node();
        assert_eq!(v, NodeId(1));
        g.add_edge(NodeId(0), v).unwrap();
        assert_eq!(g.live_node_count(), 2);
        g.validate().unwrap();
    }

    #[test]
    fn neighbors_of_neighbors_excludes_self() {
        let g = path(5);
        // NoN of node 2 on a path: {0, 1, 3, 4}
        assert_eq!(
            g.neighbors_of_neighbors(NodeId(2)),
            vec![NodeId(0), NodeId(1), NodeId(3), NodeId(4)]
        );
        // NoN of an endpoint
        assert_eq!(
            g.neighbors_of_neighbors(NodeId(0)),
            vec![NodeId(1), NodeId(2)]
        );
    }

    #[test]
    fn neighbors_of_neighbors_into_reuses_buffer() {
        let g = path(5);
        let mut out = vec![NodeId(99)]; // stale content must be cleared
        g.neighbors_of_neighbors_into(NodeId(2), &mut out);
        assert_eq!(out, vec![NodeId(0), NodeId(1), NodeId(3), NodeId(4)]);
        let cap = out.capacity();
        g.neighbors_of_neighbors_into(NodeId(0), &mut out);
        assert_eq!(out, vec![NodeId(1), NodeId(2)]);
        assert_eq!(out.capacity(), cap, "buffer must be reused, not replaced");
    }

    #[test]
    fn max_and_min_degree_nodes() {
        let mut g = Graph::new(4);
        g.add_edge(NodeId(0), NodeId(1)).unwrap();
        g.add_edge(NodeId(0), NodeId(2)).unwrap();
        g.add_edge(NodeId(0), NodeId(3)).unwrap();
        assert_eq!(g.max_degree_node(), Some(NodeId(0)));
        assert_eq!(g.min_degree_node(), Some(NodeId(1))); // tie broken by id
        let mut empty = Graph::new(1);
        empty.remove_node(NodeId(0)).unwrap();
        assert_eq!(empty.max_degree_node(), None);
        assert_eq!(empty.min_degree_node(), None);
    }

    #[test]
    fn degree_extremes_track_mutations() {
        // Exercise the lazily-repaired hints: push the max up, delete the
        // hub (hint now over-estimates), then query — and symmetrically
        // drain the min bucket.
        let mut g = Graph::new(6);
        for v in 1..6u32 {
            g.add_edge(NodeId(0), NodeId(v)).unwrap();
        }
        assert_eq!(g.max_degree_node(), Some(NodeId(0)));
        g.remove_node(NodeId(0)).unwrap();
        // All survivors are isolated again.
        assert_eq!(g.max_degree_node(), Some(NodeId(1)));
        assert_eq!(g.min_degree_node(), Some(NodeId(1)));
        g.add_edge(NodeId(2), NodeId(3)).unwrap();
        assert_eq!(g.max_degree_node(), Some(NodeId(2)));
        assert_eq!(g.min_degree_node(), Some(NodeId(1)));
        g.remove_node(NodeId(1)).unwrap();
        g.remove_node(NodeId(4)).unwrap();
        g.remove_node(NodeId(5)).unwrap();
        // Only the edge (2,3) remains: min degree is now 1.
        assert_eq!(g.min_degree_node(), Some(NodeId(2)));
        g.validate().unwrap();
    }

    #[test]
    fn nth_live_matches_live_nodes_order() {
        let mut g = Graph::new(10);
        for v in [0u32, 3, 7, 9] {
            g.remove_node(NodeId(v)).unwrap();
        }
        let live: Vec<NodeId> = g.live_nodes().collect();
        for (k, &v) in live.iter().enumerate() {
            assert_eq!(g.nth_live(k), Some(v));
        }
        assert_eq!(g.nth_live(live.len()), None);
        // Joins grow the index (through a rebuild once capacity doubles).
        for _ in 0..20 {
            g.add_node();
        }
        let live: Vec<NodeId> = g.live_nodes().collect();
        assert_eq!(g.nth_live(live.len() - 1), Some(*live.last().unwrap()));
        assert_eq!(g.nth_live(0), Some(NodeId(1)));
        g.validate().unwrap();
    }

    #[test]
    fn neighbors_sorted_after_random_insertions() {
        let mut g = Graph::new(10);
        for v in [7u32, 3, 9, 1, 5] {
            g.add_edge(NodeId(0), NodeId(v)).unwrap();
        }
        let nbrs = g.neighbors(NodeId(0));
        assert!(nbrs.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn clone_preserves_pooled_storage() {
        let mut g = path(6);
        g.remove_node(NodeId(2)).unwrap();
        let c = g.clone();
        for v in 0..6u32 {
            assert_eq!(g.neighbors(NodeId(v)), c.neighbors(NodeId(v)));
        }
        c.validate().unwrap();
    }
}

//! The dynamic undirected graph at the heart of every simulation.
//!
//! [`Graph`] is a simple (no self-loops, no parallel edges) undirected
//! graph with *stable node ids* and tombstoned deletion: removing a node
//! keeps its slot so every other node's id stays valid, which is exactly
//! what a long adversarial deletion/healing run needs.
//!
//! Neighbor lists are kept **sorted**, so membership tests are
//! `O(log deg)` binary searches and neighbor iteration yields ids in
//! increasing order — a property the deterministic healing algorithms rely
//! on for reproducibility.

use crate::errors::{GraphError, Result};
use crate::ids::{Edge, NodeId};

/// A dynamic, simple, undirected graph with tombstoned node deletion.
///
/// # Examples
/// ```
/// use selfheal_graph::{Graph, NodeId};
///
/// let mut g = Graph::new(4);
/// g.add_edge(NodeId(0), NodeId(1)).unwrap();
/// g.add_edge(NodeId(1), NodeId(2)).unwrap();
/// g.add_edge(NodeId(2), NodeId(3)).unwrap();
/// assert_eq!(g.degree(NodeId(1)), 2);
///
/// let former = g.remove_node(NodeId(1)).unwrap();
/// assert_eq!(former, vec![NodeId(0), NodeId(2)]);
/// assert!(!g.is_alive(NodeId(1)));
/// assert_eq!(g.degree(NodeId(0)), 0);
/// ```
#[derive(Clone, Debug, Default)]
pub struct Graph {
    /// Sorted adjacency list per node slot (dead slots are empty).
    adj: Vec<Vec<NodeId>>,
    /// Liveness flag per slot.
    alive: Vec<bool>,
    /// Number of live nodes.
    live_count: usize,
    /// Number of live edges.
    edge_count: usize,
}

impl Graph {
    /// Create a graph with `n` live, isolated nodes (ids `0..n`).
    pub fn new(n: usize) -> Self {
        Graph {
            adj: vec![Vec::new(); n],
            alive: vec![true; n],
            live_count: n,
            edge_count: 0,
        }
    }

    /// Create an empty graph that will allocate slots lazily via
    /// [`Graph::add_node`].
    pub fn empty() -> Self {
        Self::new(0)
    }

    /// Total number of node slots ever allocated (live + dead).
    ///
    /// All per-node auxiliary vectors in client code should be sized by
    /// this bound.
    #[inline]
    pub fn node_bound(&self) -> usize {
        self.adj.len()
    }

    /// Number of currently live nodes.
    #[inline]
    pub fn live_node_count(&self) -> usize {
        self.live_count
    }

    /// Number of currently live edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Whether `v` refers to an allocated slot (live or dead).
    #[inline]
    pub fn contains(&self, v: NodeId) -> bool {
        v.index() < self.adj.len()
    }

    /// Whether node `v` is currently live.
    #[inline]
    pub fn is_alive(&self, v: NodeId) -> bool {
        self.contains(v) && self.alive[v.index()]
    }

    /// Validate that `v` is an allocated, live node.
    #[inline]
    pub fn check_alive(&self, v: NodeId) -> Result<()> {
        if !self.contains(v) {
            Err(GraphError::NodeOutOfRange(v))
        } else if !self.alive[v.index()] {
            Err(GraphError::NodeDead(v))
        } else {
            Ok(())
        }
    }

    /// Allocate a fresh live node and return its id.
    pub fn add_node(&mut self) -> NodeId {
        let id = NodeId::from_index(self.adj.len());
        self.adj.push(Vec::new());
        self.alive.push(true);
        self.live_count += 1;
        id
    }

    /// Degree of `v` (0 for dead or out-of-range nodes).
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        if self.contains(v) {
            self.adj[v.index()].len()
        } else {
            0
        }
    }

    /// The sorted neighbor list of `v` (empty slice for dead nodes).
    #[inline]
    pub fn neighbors(&self, v: NodeId) -> &[NodeId] {
        if self.contains(v) {
            &self.adj[v.index()]
        } else {
            &[]
        }
    }

    /// Whether the edge `(u, v)` exists (both endpoints live).
    #[inline]
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.contains(u) && self.adj[u.index()].binary_search(&v).is_ok()
    }

    /// Insert the undirected edge `(u, v)`.
    ///
    /// # Errors
    /// Fails with [`GraphError::SelfLoop`] for `u == v`, with
    /// [`GraphError::EdgeExists`] if the edge is already present, and with
    /// node errors if either endpoint is dead or out of range.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) -> Result<()> {
        if u == v {
            return Err(GraphError::SelfLoop(u));
        }
        self.check_alive(u)?;
        self.check_alive(v)?;
        let pos_u = match self.adj[u.index()].binary_search(&v) {
            Ok(_) => return Err(GraphError::EdgeExists(u, v)),
            Err(pos) => pos,
        };
        // This cannot be Ok if the u-side search wasn't: adjacency is symmetric.
        let pos_v = self.adj[v.index()]
            .binary_search(&u)
            .expect_err("asymmetric adjacency detected");
        self.adj[u.index()].insert(pos_u, v);
        self.adj[v.index()].insert(pos_v, u);
        self.edge_count += 1;
        Ok(())
    }

    /// Insert `(u, v)` if absent; returns `true` when a new edge was added.
    ///
    /// Unlike [`Graph::add_edge`], an already-present edge is not an error.
    pub fn ensure_edge(&mut self, u: NodeId, v: NodeId) -> Result<bool> {
        match self.add_edge(u, v) {
            Ok(()) => Ok(true),
            Err(GraphError::EdgeExists(..)) => Ok(false),
            Err(e) => Err(e),
        }
    }

    /// Remove the undirected edge `(u, v)`.
    ///
    /// # Errors
    /// Fails with [`GraphError::EdgeMissing`] if the edge is not present.
    pub fn remove_edge(&mut self, u: NodeId, v: NodeId) -> Result<()> {
        self.check_alive(u)?;
        self.check_alive(v)?;
        let pos_u = self.adj[u.index()]
            .binary_search(&v)
            .map_err(|_| GraphError::EdgeMissing(u, v))?;
        let pos_v = self.adj[v.index()]
            .binary_search(&u)
            .map_err(|_| GraphError::EdgeMissing(u, v))?;
        self.adj[u.index()].remove(pos_u);
        self.adj[v.index()].remove(pos_v);
        self.edge_count -= 1;
        Ok(())
    }

    /// Delete node `v`, detaching all incident edges.
    ///
    /// Returns the (sorted) list of former neighbors, which is exactly the
    /// set a locality-aware healing algorithm is allowed to rewire.
    pub fn remove_node(&mut self, v: NodeId) -> Result<Vec<NodeId>> {
        let mut neighbors = Vec::new();
        self.remove_node_into(v, &mut neighbors)?;
        Ok(neighbors)
    }

    /// [`Graph::remove_node`] writing the former neighbors into a
    /// caller-owned buffer (cleared first), so steady-state deletion loops
    /// can reuse one allocation across rounds. On error the buffer is left
    /// cleared and the graph untouched.
    pub fn remove_node_into(&mut self, v: NodeId, neighbors: &mut Vec<NodeId>) -> Result<()> {
        neighbors.clear();
        self.check_alive(v)?;
        neighbors.extend_from_slice(&self.adj[v.index()]);
        // Release the dead slot's buffer: tombstoned nodes never come
        // back, so retaining capacity there would pin O(m) memory over a
        // run-to-empty sweep.
        self.adj[v.index()] = Vec::new();
        for &u in neighbors.iter() {
            let pos = self.adj[u.index()]
                .binary_search(&v)
                .expect("asymmetric adjacency detected");
            self.adj[u.index()].remove(pos);
        }
        self.edge_count -= neighbors.len();
        self.alive[v.index()] = false;
        self.live_count -= 1;
        Ok(())
    }

    /// Iterator over the ids of all live nodes, in increasing order.
    pub fn live_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.alive
            .iter()
            .enumerate()
            .filter(|(_, &a)| a)
            .map(|(i, _)| NodeId::from_index(i))
    }

    /// Iterator over all live edges, each reported once with `lo < hi`.
    pub fn edges(&self) -> impl Iterator<Item = Edge> + '_ {
        self.adj.iter().enumerate().flat_map(move |(i, nbrs)| {
            let u = NodeId::from_index(i);
            nbrs.iter()
                .filter(move |&&w| u < w)
                .map(move |&w| Edge::new(u, w))
        })
    }

    /// The neighbor-of-neighbor (NoN) set of `v`: every node at distance
    /// exactly 1 or 2 from `v`, excluding `v` itself, sorted and deduplicated.
    ///
    /// This is the information the paper assumes every node maintains
    /// ("for all nodes x, y, z such that x is a neighbor of y and y is a
    /// neighbor of z, x knows z").
    pub fn neighbors_of_neighbors(&self, v: NodeId) -> Vec<NodeId> {
        let mut out: Vec<NodeId> = Vec::new();
        for &u in self.neighbors(v) {
            out.push(u);
            out.extend(self.neighbors(u).iter().copied().filter(|&w| w != v));
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// The live node with the maximum degree (ties broken by lowest id).
    ///
    /// Returns `None` when the graph has no live nodes.
    pub fn max_degree_node(&self) -> Option<NodeId> {
        let mut best: Option<(usize, NodeId)> = None;
        for v in self.live_nodes() {
            let d = self.degree(v);
            match best {
                Some((bd, _)) if bd >= d => {}
                _ => best = Some((d, v)),
            }
        }
        best.map(|(_, v)| v)
    }

    /// The live node with the minimum degree (ties broken by lowest id).
    pub fn min_degree_node(&self) -> Option<NodeId> {
        let mut best: Option<(usize, NodeId)> = None;
        for v in self.live_nodes() {
            let d = self.degree(v);
            match best {
                Some((bd, _)) if bd <= d => {}
                _ => best = Some((d, v)),
            }
        }
        best.map(|(_, v)| v)
    }

    /// Sum of degrees over all live nodes (= `2 * edge_count`).
    pub fn degree_sum(&self) -> usize {
        self.adj.iter().map(Vec::len).sum()
    }

    /// Internal consistency check used by tests and `debug_assert!`s:
    /// adjacency symmetric & sorted, dead nodes isolated, counters correct.
    pub fn validate(&self) -> Result<()> {
        let mut edges = 0usize;
        let mut live = 0usize;
        for (i, nbrs) in self.adj.iter().enumerate() {
            let v = NodeId::from_index(i);
            if self.alive[i] {
                live += 1;
            } else if !nbrs.is_empty() {
                return Err(GraphError::NodeDead(v));
            }
            let mut prev: Option<NodeId> = None;
            for &u in nbrs {
                if u == v {
                    return Err(GraphError::SelfLoop(v));
                }
                if let Some(p) = prev {
                    if p >= u {
                        // duplicate or unsorted entry
                        return Err(GraphError::EdgeExists(v, u));
                    }
                }
                prev = Some(u);
                if !self.is_alive(u) {
                    return Err(GraphError::NodeDead(u));
                }
                if self.adj[u.index()].binary_search(&v).is_err() {
                    return Err(GraphError::EdgeMissing(u, v));
                }
                edges += 1;
            }
        }
        debug_assert_eq!(edges % 2, 0);
        if edges / 2 != self.edge_count || live != self.live_count {
            return Err(GraphError::EmptyGraph); // counter drift
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(n: usize) -> Graph {
        let mut g = Graph::new(n);
        for i in 1..n {
            g.add_edge(NodeId::from_index(i - 1), NodeId::from_index(i))
                .unwrap();
        }
        g
    }

    #[test]
    fn new_graph_is_isolated() {
        let g = Graph::new(5);
        assert_eq!(g.live_node_count(), 5);
        assert_eq!(g.edge_count(), 0);
        for v in g.live_nodes() {
            assert_eq!(g.degree(v), 0);
        }
        g.validate().unwrap();
    }

    #[test]
    fn add_and_query_edges() {
        let mut g = Graph::new(3);
        g.add_edge(NodeId(0), NodeId(2)).unwrap();
        assert!(g.has_edge(NodeId(0), NodeId(2)));
        assert!(g.has_edge(NodeId(2), NodeId(0)));
        assert!(!g.has_edge(NodeId(0), NodeId(1)));
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.degree_sum(), 2);
        g.validate().unwrap();
    }

    #[test]
    fn duplicate_edge_rejected() {
        let mut g = Graph::new(2);
        g.add_edge(NodeId(0), NodeId(1)).unwrap();
        assert_eq!(
            g.add_edge(NodeId(1), NodeId(0)),
            Err(GraphError::EdgeExists(NodeId(1), NodeId(0)))
        );
        assert_eq!(g.ensure_edge(NodeId(0), NodeId(1)), Ok(false));
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn self_loop_rejected() {
        let mut g = Graph::new(2);
        assert_eq!(
            g.add_edge(NodeId(1), NodeId(1)),
            Err(GraphError::SelfLoop(NodeId(1)))
        );
    }

    #[test]
    fn out_of_range_rejected() {
        let mut g = Graph::new(2);
        assert_eq!(
            g.add_edge(NodeId(0), NodeId(9)),
            Err(GraphError::NodeOutOfRange(NodeId(9)))
        );
        assert!(!g.is_alive(NodeId(9)));
        assert!(!g.has_edge(NodeId(0), NodeId(9)));
    }

    #[test]
    fn remove_edge_works_and_missing_edge_errors() {
        let mut g = path(3);
        g.remove_edge(NodeId(0), NodeId(1)).unwrap();
        assert!(!g.has_edge(NodeId(0), NodeId(1)));
        assert_eq!(g.edge_count(), 1);
        assert_eq!(
            g.remove_edge(NodeId(0), NodeId(1)),
            Err(GraphError::EdgeMissing(NodeId(0), NodeId(1)))
        );
        g.validate().unwrap();
    }

    #[test]
    fn remove_node_detaches_and_tombstones() {
        let mut g = path(4);
        let nbrs = g.remove_node(NodeId(1)).unwrap();
        assert_eq!(nbrs, vec![NodeId(0), NodeId(2)]);
        assert!(!g.is_alive(NodeId(1)));
        assert_eq!(g.live_node_count(), 3);
        assert_eq!(g.edge_count(), 1); // only (2,3) remains
        assert_eq!(g.degree(NodeId(0)), 0);
        assert_eq!(
            g.check_alive(NodeId(1)),
            Err(GraphError::NodeDead(NodeId(1)))
        );
        g.validate().unwrap();
    }

    #[test]
    fn removing_dead_node_errors() {
        let mut g = path(3);
        g.remove_node(NodeId(0)).unwrap();
        assert_eq!(
            g.remove_node(NodeId(0)),
            Err(GraphError::NodeDead(NodeId(0)))
        );
    }

    #[test]
    fn edges_are_reported_once() {
        let g = path(4);
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges.len(), 3);
        assert_eq!(edges[0], Edge::new(NodeId(0), NodeId(1)));
        assert_eq!(edges[2], Edge::new(NodeId(2), NodeId(3)));
    }

    #[test]
    fn add_node_extends_graph() {
        let mut g = Graph::new(1);
        let v = g.add_node();
        assert_eq!(v, NodeId(1));
        g.add_edge(NodeId(0), v).unwrap();
        assert_eq!(g.live_node_count(), 2);
        g.validate().unwrap();
    }

    #[test]
    fn neighbors_of_neighbors_excludes_self() {
        let g = path(5);
        // NoN of node 2 on a path: {0, 1, 3, 4}
        assert_eq!(
            g.neighbors_of_neighbors(NodeId(2)),
            vec![NodeId(0), NodeId(1), NodeId(3), NodeId(4)]
        );
        // NoN of an endpoint
        assert_eq!(
            g.neighbors_of_neighbors(NodeId(0)),
            vec![NodeId(1), NodeId(2)]
        );
    }

    #[test]
    fn max_and_min_degree_nodes() {
        let mut g = Graph::new(4);
        g.add_edge(NodeId(0), NodeId(1)).unwrap();
        g.add_edge(NodeId(0), NodeId(2)).unwrap();
        g.add_edge(NodeId(0), NodeId(3)).unwrap();
        assert_eq!(g.max_degree_node(), Some(NodeId(0)));
        assert_eq!(g.min_degree_node(), Some(NodeId(1))); // tie broken by id
        let mut empty = Graph::new(1);
        empty.remove_node(NodeId(0)).unwrap();
        assert_eq!(empty.max_degree_node(), None);
        assert_eq!(empty.min_degree_node(), None);
    }

    #[test]
    fn neighbors_sorted_after_random_insertions() {
        let mut g = Graph::new(10);
        for v in [7u32, 3, 9, 1, 5] {
            g.add_edge(NodeId(0), NodeId(v)).unwrap();
        }
        let nbrs = g.neighbors(NodeId(0));
        assert!(nbrs.windows(2).all(|w| w[0] < w[1]));
    }
}

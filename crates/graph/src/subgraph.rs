//! Induced subgraphs and component extraction.

use crate::components::connected_components;
use crate::graph::Graph;
use crate::ids::NodeId;

/// An induced subgraph with the mapping back to the parent graph.
#[derive(Clone, Debug)]
pub struct Subgraph {
    /// The extracted graph over dense ids `0..len`.
    pub graph: Graph,
    /// Dense id -> original id.
    pub original: Vec<NodeId>,
}

impl Subgraph {
    /// Original id of dense node `i`.
    pub fn original_id(&self, i: NodeId) -> NodeId {
        self.original[i.index()]
    }
}

/// Extract the subgraph induced by `nodes` (dead and out-of-range ids are
/// ignored; duplicates collapsed).
pub fn induced_subgraph(g: &Graph, nodes: &[NodeId]) -> Subgraph {
    let mut selected: Vec<NodeId> = nodes.iter().copied().filter(|&v| g.is_alive(v)).collect();
    selected.sort_unstable();
    selected.dedup();
    let mut dense = vec![u32::MAX; g.node_bound()];
    for (i, &v) in selected.iter().enumerate() {
        dense[v.index()] = i as u32;
    }
    let mut sub = Graph::new(selected.len());
    for (i, &v) in selected.iter().enumerate() {
        for &u in g.neighbors(v) {
            let du = dense[u.index()];
            if du != u32::MAX && (du as usize) > i {
                // panic-ok: dense indices are in range by construction
                // and `du > i` visits each induced edge exactly once.
                sub.add_edge(NodeId::from_index(i), NodeId(du)).unwrap();
            }
        }
    }
    Subgraph {
        graph: sub,
        original: selected,
    }
}

/// The node set of the largest connected component (ties broken toward
/// the component containing the smallest node id). Empty for an empty
/// graph.
pub fn largest_component(g: &Graph) -> Vec<NodeId> {
    let cc = connected_components(g);
    if cc.count == 0 {
        return Vec::new();
    }
    let sizes = cc.sizes();
    let best = (0..cc.count)
        .max_by_key(|&c| (sizes[c], std::cmp::Reverse(c)))
        // panic-ok: the empty-graph case returned above, so at least
        // one component exists.
        .unwrap();
    g.live_nodes()
        .filter(|&v| cc.component_of(v) == Some(best))
        .collect()
}

/// Extract the largest connected component as its own graph.
pub fn largest_component_subgraph(g: &Graph) -> Subgraph {
    induced_subgraph(g, &largest_component(g))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::components::is_connected;

    fn two_parts() -> Graph {
        // Triangle {0,1,2} + path {3,4}.
        let mut g = Graph::new(5);
        for (a, b) in [(0, 1), (1, 2), (2, 0), (3, 4)] {
            g.add_edge(NodeId(a), NodeId(b)).unwrap();
        }
        g
    }

    #[test]
    fn induced_keeps_internal_edges_only() {
        let g = two_parts();
        let sub = induced_subgraph(&g, &[NodeId(0), NodeId(1), NodeId(3)]);
        assert_eq!(sub.graph.live_node_count(), 3);
        assert_eq!(sub.graph.edge_count(), 1); // only (0,1)
        assert_eq!(sub.original_id(NodeId(0)), NodeId(0));
        assert_eq!(sub.original_id(NodeId(2)), NodeId(3));
    }

    #[test]
    fn induced_ignores_dead_and_duplicates() {
        let mut g = two_parts();
        g.remove_node(NodeId(1)).unwrap();
        let sub = induced_subgraph(&g, &[NodeId(0), NodeId(0), NodeId(1), NodeId(9)]);
        assert_eq!(sub.graph.live_node_count(), 1);
        assert_eq!(sub.graph.edge_count(), 0);
    }

    #[test]
    fn largest_component_is_the_triangle() {
        let g = two_parts();
        assert_eq!(largest_component(&g), vec![NodeId(0), NodeId(1), NodeId(2)]);
        let sub = largest_component_subgraph(&g);
        assert_eq!(sub.graph.live_node_count(), 3);
        assert_eq!(sub.graph.edge_count(), 3);
        assert!(is_connected(&sub.graph));
    }

    #[test]
    fn empty_graph_has_empty_component() {
        let g = Graph::new(0);
        assert!(largest_component(&g).is_empty());
        assert_eq!(largest_component_subgraph(&g).graph.live_node_count(), 0);
    }

    #[test]
    fn tie_break_prefers_lower_component_index() {
        // Two components of equal size: {0,1} and {2,3}.
        let mut g = Graph::new(4);
        g.add_edge(NodeId(0), NodeId(1)).unwrap();
        g.add_edge(NodeId(2), NodeId(3)).unwrap();
        assert_eq!(largest_component(&g), vec![NodeId(0), NodeId(1)]);
    }
}

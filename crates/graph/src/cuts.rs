//! Articulation points and bridges (Tarjan/Hopcroft, iterative).
//!
//! An articulation point (cut vertex) is a node whose removal disconnects
//! its component; a bridge is an edge with the same property. The
//! smartest deletion adversary targets articulation points — they force
//! the healing algorithm to do real work every round — so the attack
//! module builds on this.

use crate::graph::Graph;
use crate::ids::{Edge, NodeId};

/// DFS state for the iterative lowlink computation.
struct LowlinkState {
    disc: Vec<u32>,
    low: Vec<u32>,
    parent: Vec<u32>,
    timer: u32,
}

const UNVISITED: u32 = u32::MAX;

/// Result of the cut analysis.
#[derive(Clone, Debug, Default)]
pub struct CutAnalysis {
    /// All articulation points, sorted by id.
    pub articulation_points: Vec<NodeId>,
    /// All bridges.
    pub bridges: Vec<Edge>,
}

/// Compute articulation points and bridges of the live subgraph.
pub fn cut_analysis(g: &Graph) -> CutAnalysis {
    let n = g.node_bound();
    let mut st = LowlinkState {
        disc: vec![UNVISITED; n],
        low: vec![0; n],
        parent: vec![u32::MAX; n],
        timer: 0,
    };
    let mut is_ap = vec![false; n];
    let mut bridges = Vec::new();

    for root in g.live_nodes() {
        if st.disc[root.index()] != UNVISITED {
            continue;
        }
        // Iterative DFS: stack of (node, neighbor-cursor).
        let mut stack: Vec<(NodeId, usize)> = Vec::new();
        st.disc[root.index()] = st.timer;
        st.low[root.index()] = st.timer;
        st.timer += 1;
        stack.push((root, 0));
        let mut root_children = 0usize;

        while let Some(&mut (v, ref mut cursor)) = stack.last_mut() {
            let nbrs = g.neighbors(v);
            if *cursor < nbrs.len() {
                let u = nbrs[*cursor];
                *cursor += 1;
                if st.disc[u.index()] == UNVISITED {
                    st.parent[u.index()] = v.0;
                    if v == root {
                        root_children += 1;
                    }
                    st.disc[u.index()] = st.timer;
                    st.low[u.index()] = st.timer;
                    st.timer += 1;
                    stack.push((u, 0));
                } else if u.0 != st.parent[v.index()] {
                    // Back edge.
                    st.low[v.index()] = st.low[v.index()].min(st.disc[u.index()]);
                }
            } else {
                stack.pop();
                if let Some(&(p, _)) = stack.last() {
                    st.low[p.index()] = st.low[p.index()].min(st.low[v.index()]);
                    if st.low[v.index()] > st.disc[p.index()] {
                        bridges.push(Edge::new(p, v));
                    }
                    if p != root && st.low[v.index()] >= st.disc[p.index()] {
                        is_ap[p.index()] = true;
                    }
                }
            }
        }
        if root_children >= 2 {
            is_ap[root.index()] = true;
        }
    }

    let articulation_points = (0..n)
        .filter(|&i| is_ap[i])
        .map(NodeId::from_index)
        .collect();
    bridges.sort_unstable();
    CutAnalysis {
        articulation_points,
        bridges,
    }
}

/// Just the articulation points (sorted by id).
pub fn articulation_points(g: &Graph) -> Vec<NodeId> {
    cut_analysis(g).articulation_points
}

/// Just the bridges.
pub fn bridges(g: &Graph) -> Vec<Edge> {
    cut_analysis(g).bridges
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{complete_graph, cycle_graph, path_graph, star_graph};

    #[test]
    fn path_interior_nodes_are_cut_points() {
        let g = path_graph(5);
        let a = cut_analysis(&g);
        assert_eq!(a.articulation_points, vec![NodeId(1), NodeId(2), NodeId(3)]);
        assert_eq!(a.bridges.len(), 4); // every path edge is a bridge
    }

    #[test]
    fn cycle_has_no_cut_points() {
        let g = cycle_graph(6);
        let a = cut_analysis(&g);
        assert!(a.articulation_points.is_empty());
        assert!(a.bridges.is_empty());
    }

    #[test]
    fn star_hub_is_the_only_cut_point() {
        let g = star_graph(6);
        let a = cut_analysis(&g);
        assert_eq!(a.articulation_points, vec![NodeId(0)]);
        assert_eq!(a.bridges.len(), 5);
    }

    #[test]
    fn complete_graph_has_none() {
        let g = complete_graph(5);
        let a = cut_analysis(&g);
        assert!(a.articulation_points.is_empty());
        assert!(a.bridges.is_empty());
    }

    #[test]
    fn barbell_detects_the_bridge() {
        // Two triangles joined by the edge (2, 3).
        let mut g = Graph::new(6);
        for (a, b) in [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (2, 3)] {
            g.add_edge(NodeId(a), NodeId(b)).unwrap();
        }
        let a = cut_analysis(&g);
        assert_eq!(a.articulation_points, vec![NodeId(2), NodeId(3)]);
        assert_eq!(a.bridges, vec![Edge::new(NodeId(2), NodeId(3))]);
    }

    #[test]
    fn disconnected_components_are_analyzed_independently() {
        // A path 0-1-2 and an isolated triangle 3-4-5.
        let mut g = Graph::new(6);
        for (a, b) in [(0, 1), (1, 2), (3, 4), (4, 5), (5, 3)] {
            g.add_edge(NodeId(a), NodeId(b)).unwrap();
        }
        let a = cut_analysis(&g);
        assert_eq!(a.articulation_points, vec![NodeId(1)]);
        assert_eq!(a.bridges.len(), 2);
    }

    #[test]
    fn dead_nodes_are_skipped() {
        let mut g = path_graph(5);
        g.remove_node(NodeId(2)).unwrap();
        let a = cut_analysis(&g);
        // Remaining components are 0-1 and 3-4: endpoints only, no APs.
        assert_eq!(a.articulation_points, Vec::<NodeId>::new());
        assert_eq!(a.bridges.len(), 2);
    }

    #[test]
    fn removal_of_cut_point_disconnects() {
        // Cross-check the definition on a random-ish structure.
        let mut g = Graph::new(7);
        for (a, b) in [
            (0, 1),
            (1, 2),
            (2, 0),
            (2, 3),
            (3, 4),
            (4, 5),
            (5, 3),
            (5, 6),
        ] {
            g.add_edge(NodeId(a), NodeId(b)).unwrap();
        }
        for v in articulation_points(&g) {
            let mut h = g.clone();
            h.remove_node(v).unwrap();
            assert!(
                !crate::components::is_connected(&h),
                "removing AP {v} should disconnect"
            );
        }
        // And removing any non-AP keeps it connected.
        let aps = articulation_points(&g);
        for v in g.live_nodes().filter(|v| !aps.contains(v)) {
            let mut h = g.clone();
            h.remove_node(v).unwrap();
            assert!(
                crate::components::is_connected(&h),
                "removing non-AP {v} disconnected"
            );
        }
    }
}

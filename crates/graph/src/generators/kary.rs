//! Complete k-ary trees with retained structure.
//!
//! The Theorem 2 lower-bound adversary (LEVELATTACK, Algorithm 2 in the
//! paper) operates on a full `(M+2)`-ary tree and needs to remember the
//! *original* levels and ancestry even after healing has rewired the
//! graph, so this generator returns a [`KaryTree`] carrying that metadata
//! alongside the [`Graph`].

use crate::graph::Graph;
use crate::ids::NodeId;

/// A complete k-ary tree plus its original structural metadata.
///
/// Nodes are numbered in level (BFS) order: the root is node 0 and the
/// children of node `i` are nodes `k*i + 1 ..= k*i + k`.
#[derive(Clone, Debug)]
pub struct KaryTree {
    /// The tree as a graph (mutable copy; healing will rewire it).
    pub graph: Graph,
    /// Branching factor `k >= 1`.
    pub arity: usize,
    /// Depth `D` (root at level 0, leaves at level `D`).
    pub depth: u32,
    levels: Vec<u32>,
}

impl KaryTree {
    /// Build the complete `k`-ary tree of the given depth.
    ///
    /// # Panics
    /// Panics if `arity == 0`.
    pub fn new(arity: usize, depth: u32) -> Self {
        assert!(arity >= 1, "arity must be >= 1");
        let n = Self::size_for(arity, depth);
        let mut graph = Graph::new(n);
        let mut levels = vec![0u32; n];
        for i in 1..n {
            let parent = (i - 1) / arity;
            graph
                .add_edge(NodeId::from_index(parent), NodeId::from_index(i))
                // panic-ok: `parent < i < n`, each child linked once.
                .unwrap();
            levels[i] = levels[parent] + 1;
        }
        KaryTree {
            graph,
            arity,
            depth,
            levels,
        }
    }

    /// Number of nodes in a complete `k`-ary tree of depth `d`.
    pub fn size_for(arity: usize, depth: u32) -> usize {
        if arity == 1 {
            return depth as usize + 1;
        }
        let mut total = 0usize;
        let mut layer = 1usize;
        for _ in 0..=depth {
            total += layer;
            layer *= arity;
        }
        total
    }

    /// Total number of nodes.
    pub fn node_count(&self) -> usize {
        self.levels.len()
    }

    /// Original level of `v` (0 = root).
    pub fn level(&self, v: NodeId) -> u32 {
        self.levels[v.index()]
    }

    /// Original parent of `v`, or `None` for the root.
    pub fn parent(&self, v: NodeId) -> Option<NodeId> {
        if v.index() == 0 {
            None
        } else {
            Some(NodeId::from_index((v.index() - 1) / self.arity))
        }
    }

    /// Original children of `v` (empty for original leaves).
    pub fn children(&self, v: NodeId) -> Vec<NodeId> {
        let first = self.arity * v.index() + 1;
        (first..first + self.arity)
            .filter(|&c| c < self.node_count())
            .map(NodeId::from_index)
            .collect()
    }

    /// All node ids at a given original level, in increasing order.
    pub fn nodes_at_level(&self, level: u32) -> Vec<NodeId> {
        (0..self.node_count())
            .filter(|&i| self.levels[i] == level)
            .map(NodeId::from_index)
            .collect()
    }

    /// Whether `desc` lies in the original subtree rooted at `anc`
    /// (inclusive: a node is its own descendant).
    pub fn is_descendant(&self, anc: NodeId, desc: NodeId) -> bool {
        let mut cur = desc;
        loop {
            if cur == anc {
                return true;
            }
            match self.parent(cur) {
                Some(p) => cur = p,
                None => return false,
            }
        }
    }

    /// All original descendants of `v` including `v`, in level order.
    pub fn subtree(&self, v: NodeId) -> Vec<NodeId> {
        let mut out = vec![v];
        let mut head = 0;
        while head < out.len() {
            let cur = out[head];
            head += 1;
            out.extend(self.children(cur));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forest::is_tree;

    #[test]
    fn sizes() {
        assert_eq!(KaryTree::size_for(2, 0), 1);
        assert_eq!(KaryTree::size_for(2, 3), 15);
        assert_eq!(KaryTree::size_for(3, 2), 13);
        assert_eq!(KaryTree::size_for(1, 5), 6);
    }

    #[test]
    fn structure_is_a_tree() {
        let t = KaryTree::new(3, 3);
        assert_eq!(t.node_count(), 40);
        assert!(is_tree(&t.graph));
        assert_eq!(t.graph.degree(NodeId(0)), 3);
    }

    #[test]
    fn levels_and_parents() {
        let t = KaryTree::new(2, 2); // 7 nodes
        assert_eq!(t.level(NodeId(0)), 0);
        assert_eq!(t.level(NodeId(2)), 1);
        assert_eq!(t.level(NodeId(6)), 2);
        assert_eq!(t.parent(NodeId(0)), None);
        assert_eq!(t.parent(NodeId(5)), Some(NodeId(2)));
        assert_eq!(t.children(NodeId(1)), vec![NodeId(3), NodeId(4)]);
        assert!(t.children(NodeId(6)).is_empty());
    }

    #[test]
    fn nodes_at_level_counts() {
        let t = KaryTree::new(4, 2); // 1 + 4 + 16
        assert_eq!(t.nodes_at_level(0).len(), 1);
        assert_eq!(t.nodes_at_level(1).len(), 4);
        assert_eq!(t.nodes_at_level(2).len(), 16);
        assert!(t.nodes_at_level(3).is_empty());
    }

    #[test]
    fn descendants() {
        let t = KaryTree::new(2, 3);
        assert!(t.is_descendant(NodeId(1), NodeId(1)));
        assert!(t.is_descendant(NodeId(1), NodeId(9)));
        assert!(!t.is_descendant(NodeId(2), NodeId(9)));
        assert!(t.is_descendant(NodeId(0), NodeId(14)));
        let sub = t.subtree(NodeId(1));
        assert_eq!(sub.len(), 7);
        assert!(sub.contains(&NodeId(10)));
        assert!(!sub.contains(&NodeId(2)));
    }

    #[test]
    fn unary_tree_is_a_path() {
        let t = KaryTree::new(1, 4);
        assert_eq!(t.node_count(), 5);
        assert_eq!(t.graph.degree(NodeId(0)), 1);
        assert_eq!(t.graph.degree(NodeId(2)), 2);
        assert_eq!(t.level(NodeId(4)), 4);
    }
}

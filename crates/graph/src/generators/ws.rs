//! Watts–Strogatz small-world graphs.

use crate::graph::Graph;
use crate::ids::NodeId;
use rand::Rng;

/// Watts–Strogatz small-world graph: a ring lattice where each node is
/// joined to its `k` nearest neighbors (`k` even), then every lattice edge
/// is rewired with probability `beta` to a uniformly random non-duplicate
/// endpoint.
///
/// # Panics
/// Panics if `k` is odd, `k >= n`, or `beta` is not a probability.
pub fn watts_strogatz<R: Rng + ?Sized>(n: usize, k: usize, beta: f64, rng: &mut R) -> Graph {
    assert!(k.is_multiple_of(2), "k must be even, got {k}");
    assert!(k < n, "k must be < n (k = {k}, n = {n})");
    assert!((0.0..=1.0).contains(&beta), "beta must be a probability");
    let mut g = Graph::new(n);
    for i in 0..n {
        for d in 1..=(k / 2) {
            let j = (i + d) % n;
            g.ensure_edge(NodeId::from_index(i), NodeId::from_index(j))
                // panic-ok: ring-lattice endpoints are in range and
                // distinct for `k < n` (ensure_edge tolerates repeats).
                .unwrap();
        }
    }
    if beta == 0.0 {
        return g;
    }
    // Rewire each original lattice edge (i, i+d) with probability beta.
    for i in 0..n {
        for d in 1..=(k / 2) {
            let j = (i + d) % n;
            let (u, v) = (NodeId::from_index(i), NodeId::from_index(j));
            if !g.has_edge(u, v) || !rng.gen_bool(beta) {
                continue;
            }
            // Find a fresh endpoint; give up after a bounded number of
            // tries on very dense graphs.
            for _ in 0..32 {
                let w = NodeId::from_index(rng.gen_range(0..n));
                if w != u && !g.has_edge(u, w) {
                    // panic-ok: `(u, v)` is the lattice edge being
                    // rewired, present until this removal.
                    g.remove_edge(u, v).unwrap();
                    // panic-ok: `w != u` and absence checked above.
                    g.add_edge(u, w).unwrap();
                    break;
                }
            }
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn lattice_when_beta_zero() {
        let mut rng = StdRng::seed_from_u64(0);
        let g = watts_strogatz(10, 4, 0.0, &mut rng);
        assert_eq!(g.edge_count(), 10 * 2);
        for v in g.live_nodes() {
            assert_eq!(g.degree(v), 4);
        }
    }

    #[test]
    fn edge_count_preserved_by_rewiring() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = watts_strogatz(50, 6, 0.3, &mut rng);
        assert_eq!(g.edge_count(), 50 * 3);
        g.validate().unwrap();
    }

    #[test]
    fn full_rewiring_changes_structure() {
        let mut rng = StdRng::seed_from_u64(2);
        let lattice = watts_strogatz(40, 4, 0.0, &mut StdRng::seed_from_u64(2));
        let rewired = watts_strogatz(40, 4, 1.0, &mut rng);
        let le: Vec<_> = lattice.edges().collect();
        let re: Vec<_> = rewired.edges().collect();
        assert_ne!(le, re);
    }

    #[test]
    #[should_panic]
    fn rejects_odd_k() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = watts_strogatz(10, 3, 0.1, &mut rng);
    }

    #[test]
    #[should_panic]
    fn rejects_k_geq_n() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = watts_strogatz(4, 4, 0.1, &mut rng);
    }
}

//! Random and deterministic graph generators.
//!
//! The paper's experiments run on Barabási–Albert preferential-attachment
//! graphs ([`barabasi_albert`]); the lower-bound construction needs
//! complete `(M+2)`-ary trees ([`kary::KaryTree`]); tests and extra
//! benchmarks use the rest. All random generators take a caller-supplied
//! `rand::Rng` so every experiment is seed-reproducible.

mod ba;
mod classic;
mod er;
pub mod kary;
mod powerlaw;
mod trees;
mod ws;

pub use ba::barabasi_albert;
pub use classic::{complete_graph, cycle_graph, grid_graph, path_graph, star_graph};
pub use er::{erdos_renyi_gnm, erdos_renyi_gnp};
pub use kary::KaryTree;
pub use powerlaw::powerlaw_configuration;
pub use trees::{preferential_attachment_tree, random_recursive_tree};
pub use ws::watts_strogatz;

//! Barabási–Albert preferential attachment (the paper's experiment
//! workload, refs [3, 4] in the paper).

use crate::graph::Graph;
use crate::ids::NodeId;
use rand::Rng;

/// Generate a Barabási–Albert preferential-attachment graph over `n`
/// nodes where every arriving node attaches to `m` distinct existing
/// nodes with probability proportional to their current degree.
///
/// The seed graph is a complete graph over the first `m + 1` nodes, so the
/// result is always connected and every node has degree ≥ `m`.
///
/// # Panics
/// Panics if `m == 0` or `n < m + 1`.
///
/// # Examples
/// ```
/// use rand::SeedableRng;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let g = selfheal_graph::generators::barabasi_albert(100, 3, &mut rng);
/// assert_eq!(g.live_node_count(), 100);
/// assert!(selfheal_graph::components::is_connected(&g));
/// ```
pub fn barabasi_albert<R: Rng + ?Sized>(n: usize, m: usize, rng: &mut R) -> Graph {
    assert!(m >= 1, "attachment count m must be >= 1");
    assert!(n > m, "need at least m + 1 = {} nodes, got {n}", m + 1);
    let mut g = Graph::new(n);
    // `endpoints` holds one entry per edge endpoint; sampling an index
    // uniformly therefore samples nodes proportional to degree.
    let mut endpoints: Vec<NodeId> = Vec::with_capacity(2 * m * n);
    for i in 0..=m {
        for j in 0..i {
            let (u, v) = (NodeId::from_index(i), NodeId::from_index(j));
            // panic-ok: seed-clique indices are in range and distinct by
            // loop construction.
            g.add_edge(u, v).unwrap();
            endpoints.push(u);
            endpoints.push(v);
        }
    }
    let mut picked: Vec<NodeId> = Vec::with_capacity(m);
    for i in (m + 1)..n {
        let v = NodeId::from_index(i);
        picked.clear();
        while picked.len() < m {
            let candidate = endpoints[rng.gen_range(0..endpoints.len())];
            if !picked.contains(&candidate) {
                picked.push(candidate);
            }
        }
        for &u in &picked {
            // panic-ok: `picked` holds distinct earlier nodes and `v` is
            // the fresh node, so the edge is always valid and new.
            g.add_edge(v, u).unwrap();
            endpoints.push(v);
            endpoints.push(u);
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::components::is_connected;
    use crate::properties::degree_stats;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn correct_node_and_edge_counts() {
        let mut rng = StdRng::seed_from_u64(1);
        let (n, m) = (200, 3);
        let g = barabasi_albert(n, m, &mut rng);
        assert_eq!(g.live_node_count(), n);
        // seed clique edges + m per arriving node
        let expected = m * (m + 1) / 2 + (n - m - 1) * m;
        assert_eq!(g.edge_count(), expected);
    }

    #[test]
    fn always_connected_and_min_degree_m() {
        for seed in 0..5 {
            let mut rng = StdRng::seed_from_u64(seed);
            let g = barabasi_albert(150, 2, &mut rng);
            assert!(is_connected(&g), "seed {seed}");
            assert!(degree_stats(&g).unwrap().min >= 2, "seed {seed}");
        }
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let g1 = barabasi_albert(80, 3, &mut StdRng::seed_from_u64(42));
        let g2 = barabasi_albert(80, 3, &mut StdRng::seed_from_u64(42));
        let e1: Vec<_> = g1.edges().collect();
        let e2: Vec<_> = g2.edges().collect();
        assert_eq!(e1, e2);
    }

    #[test]
    fn heavy_tail_hubs_exist() {
        // A BA graph should have a hub with degree far above the mean.
        let mut rng = StdRng::seed_from_u64(3);
        let g = barabasi_albert(1000, 3, &mut rng);
        let stats = degree_stats(&g).unwrap();
        assert!(
            stats.max as f64 > 4.0 * stats.mean,
            "max {} mean {}",
            stats.max,
            stats.mean
        );
    }

    #[test]
    fn minimal_size_is_clique() {
        let mut rng = StdRng::seed_from_u64(0);
        let g = barabasi_albert(4, 3, &mut rng);
        assert_eq!(g.edge_count(), 6); // K4
    }

    #[test]
    #[should_panic]
    fn rejects_too_small_n() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = barabasi_albert(3, 3, &mut rng);
    }

    #[test]
    #[should_panic]
    fn rejects_zero_m() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = barabasi_albert(10, 0, &mut rng);
    }
}

//! Power-law graphs via the configuration model.
//!
//! Complements the Barabási–Albert generator with direct control over the
//! degree exponent: degrees are drawn from `P(d) ∝ d^(-gamma)` on
//! `d ∈ [d_min, d_max]`, stubs are shuffled and paired, and self-loops /
//! duplicate edges are dropped (so realized degrees can be slightly lower
//! than drawn ones — the standard erased configuration model).

use crate::graph::Graph;
use crate::ids::NodeId;
use rand::Rng;

/// Sample one degree from a truncated discrete power law by inverse
/// transform over the normalized mass function.
fn sample_degree<R: Rng + ?Sized>(weights: &[f64], d_min: usize, rng: &mut R) -> usize {
    let total: f64 = weights.iter().sum();
    let mut x = rng.gen_range(0.0..total);
    for (i, &w) in weights.iter().enumerate() {
        if x < w {
            return d_min + i;
        }
        x -= w;
    }
    d_min + weights.len() - 1
}

/// Erased configuration model with power-law degrees.
///
/// # Panics
/// Panics if `d_min == 0`, `d_min > d_max`, or `d_max >= n`.
pub fn powerlaw_configuration<R: Rng + ?Sized>(
    n: usize,
    gamma: f64,
    d_min: usize,
    d_max: usize,
    rng: &mut R,
) -> Graph {
    assert!(d_min >= 1, "d_min must be >= 1");
    assert!(d_min <= d_max, "d_min must be <= d_max");
    assert!(d_max < n, "d_max must be < n");
    let weights: Vec<f64> = (d_min..=d_max).map(|d| (d as f64).powf(-gamma)).collect();
    let mut degrees: Vec<usize> = (0..n)
        .map(|_| sample_degree(&weights, d_min, rng))
        .collect();
    // The stub count must be even; bump an arbitrary node if not.
    if degrees.iter().sum::<usize>() % 2 == 1 {
        degrees[0] += 1;
    }
    let mut stubs: Vec<NodeId> = Vec::with_capacity(degrees.iter().sum());
    for (i, &d) in degrees.iter().enumerate() {
        stubs.extend(std::iter::repeat_n(NodeId::from_index(i), d));
    }
    // Fisher-Yates shuffle, then pair consecutive stubs.
    for i in (1..stubs.len()).rev() {
        stubs.swap(i, rng.gen_range(0..=i));
    }
    let mut g = Graph::new(n);
    for pair in stubs.chunks_exact(2) {
        let (u, v) = (pair[0], pair[1]);
        if u != v {
            let _ = g.ensure_edge(u, v);
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::properties::{degree_histogram, degree_stats};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn degrees_within_bounds() {
        let mut rng = StdRng::seed_from_u64(0);
        let g = powerlaw_configuration(500, 2.5, 1, 30, &mut rng);
        let stats = degree_stats(&g).unwrap();
        // Erasure can only lower degrees below the drawn values.
        assert!(stats.max <= 31, "max degree {}", stats.max);
        assert!(g.edge_count() > 0);
        g.validate().unwrap();
    }

    #[test]
    fn heavier_gamma_means_lighter_tail() {
        let g_heavy = powerlaw_configuration(2000, 2.0, 1, 100, &mut StdRng::seed_from_u64(1));
        let g_light = powerlaw_configuration(2000, 3.5, 1, 100, &mut StdRng::seed_from_u64(1));
        let mh = degree_stats(&g_heavy).unwrap().mean;
        let ml = degree_stats(&g_light).unwrap().mean;
        assert!(
            mh > ml,
            "gamma=2.0 mean {mh} should exceed gamma=3.5 mean {ml}"
        );
    }

    #[test]
    fn low_degrees_dominate() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = powerlaw_configuration(1000, 2.5, 1, 50, &mut rng);
        let hist = degree_histogram(&g);
        let deg1 = hist.get(1).copied().unwrap_or(0);
        let deg5 = hist.get(5).copied().unwrap_or(0);
        assert!(deg1 > deg5, "P(1) = {deg1} should exceed P(5) = {deg5}");
    }

    #[test]
    #[should_panic]
    fn rejects_zero_min_degree() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = powerlaw_configuration(10, 2.5, 0, 3, &mut rng);
    }
}

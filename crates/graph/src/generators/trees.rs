//! Random tree generators used by tests and the Lemma 10 experiments.

use crate::graph::Graph;
use crate::ids::NodeId;
use rand::Rng;

/// Random recursive tree: node `i` attaches to a uniformly random earlier
/// node. Always a tree over `n` nodes.
pub fn random_recursive_tree<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Graph {
    let mut g = Graph::new(n);
    for i in 1..n {
        let parent = rng.gen_range(0..i);
        g.add_edge(NodeId::from_index(parent), NodeId::from_index(i))
            // panic-ok: `parent < i < n`, each node attached once.
            .unwrap();
    }
    g
}

/// Preferential-attachment tree (Barabási–Albert with `m = 1`): node `i`
/// attaches to an earlier node chosen proportional to degree.
pub fn preferential_attachment_tree<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Graph {
    let mut g = Graph::new(n);
    if n <= 1 {
        return g;
    }
    let mut endpoints: Vec<NodeId> = Vec::with_capacity(2 * n);
    // panic-ok: `n > 1` checked above; the seed edge is fresh.
    g.add_edge(NodeId(0), NodeId(1)).unwrap();
    endpoints.push(NodeId(0));
    endpoints.push(NodeId(1));
    for i in 2..n {
        let v = NodeId::from_index(i);
        let u = endpoints[rng.gen_range(0..endpoints.len())];
        // panic-ok: `v` is fresh so the edge to any earlier node is new
        // and in range.
        g.add_edge(v, u).unwrap();
        endpoints.push(v);
        endpoints.push(u);
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forest::is_tree;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn recursive_tree_is_tree() {
        for seed in 0..5 {
            let mut rng = StdRng::seed_from_u64(seed);
            let g = random_recursive_tree(100, &mut rng);
            assert!(is_tree(&g), "seed {seed}");
        }
    }

    #[test]
    fn pa_tree_is_tree() {
        for seed in 0..5 {
            let mut rng = StdRng::seed_from_u64(seed);
            let g = preferential_attachment_tree(100, &mut rng);
            assert!(is_tree(&g), "seed {seed}");
        }
    }

    #[test]
    fn degenerate_sizes() {
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(random_recursive_tree(0, &mut rng).live_node_count(), 0);
        assert_eq!(random_recursive_tree(1, &mut rng).edge_count(), 0);
        assert_eq!(preferential_attachment_tree(1, &mut rng).edge_count(), 0);
        assert_eq!(preferential_attachment_tree(2, &mut rng).edge_count(), 1);
    }

    #[test]
    fn pa_tree_has_bigger_hubs_than_recursive() {
        // Statistical smoke test: preferential attachment should produce a
        // larger maximum degree on average.
        let mut pa_max = 0usize;
        let mut rr_max = 0usize;
        for seed in 0..10 {
            let mut rng = StdRng::seed_from_u64(seed);
            pa_max += crate::properties::degree_stats(&preferential_attachment_tree(500, &mut rng))
                .unwrap()
                .max;
            let mut rng = StdRng::seed_from_u64(seed);
            rr_max += crate::properties::degree_stats(&random_recursive_tree(500, &mut rng))
                .unwrap()
                .max;
        }
        assert!(pa_max > rr_max, "pa {pa_max} vs rr {rr_max}");
    }
}

//! Deterministic classic topologies: path, cycle, star, complete, grid.

use crate::graph::Graph;
use crate::ids::NodeId;

/// Path graph `0 - 1 - ... - (n-1)`.
pub fn path_graph(n: usize) -> Graph {
    let mut g = Graph::new(n);
    for i in 1..n {
        g.add_edge(NodeId::from_index(i - 1), NodeId::from_index(i))
            // panic-ok: consecutive in-range indices, each edge fresh.
            .unwrap();
    }
    g
}

/// Cycle graph over `n >= 3` nodes (for `n < 3` falls back to a path).
pub fn cycle_graph(n: usize) -> Graph {
    let mut g = path_graph(n);
    if n >= 3 {
        // panic-ok: the closing edge is new (a path has no wraparound)
        // and both endpoints are in range.
        g.add_edge(NodeId::from_index(n - 1), NodeId(0)).unwrap();
    }
    g
}

/// Star graph: node 0 is the hub, nodes `1..n` are spokes.
pub fn star_graph(n: usize) -> Graph {
    let mut g = Graph::new(n);
    for i in 1..n {
        // panic-ok: hub-to-spoke edges are in range and each is fresh.
        g.add_edge(NodeId(0), NodeId::from_index(i)).unwrap();
    }
    g
}

/// Complete graph `K_n`.
pub fn complete_graph(n: usize) -> Graph {
    let mut g = Graph::new(n);
    for i in 0..n {
        for j in (i + 1)..n {
            g.add_edge(NodeId::from_index(i), NodeId::from_index(j))
                // panic-ok: `j > i` keeps endpoints distinct, in range,
                // and each unordered pair visited once.
                .unwrap();
        }
    }
    g
}

/// `rows x cols` 4-connected grid; node `(r, c)` has id `r * cols + c`.
pub fn grid_graph(rows: usize, cols: usize) -> Graph {
    let mut g = Graph::new(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            let v = NodeId::from_index(r * cols + c);
            if c + 1 < cols {
                // panic-ok: bounds-checked grid neighbor, visited once.
                g.add_edge(v, NodeId::from_index(r * cols + c + 1)).unwrap();
            }
            if r + 1 < rows {
                g.add_edge(v, NodeId::from_index((r + 1) * cols + c))
                    // panic-ok: bounds-checked grid neighbor, visited once.
                    .unwrap();
            }
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::components::is_connected;
    use crate::paths::diameter;

    #[test]
    fn path_properties() {
        let g = path_graph(10);
        assert_eq!(g.edge_count(), 9);
        assert!(is_connected(&g));
        assert_eq!(diameter(&g), Some(9));
        assert_eq!(path_graph(0).edge_count(), 0);
        assert_eq!(path_graph(1).edge_count(), 0);
    }

    #[test]
    fn cycle_properties() {
        let g = cycle_graph(8);
        assert_eq!(g.edge_count(), 8);
        assert_eq!(diameter(&g), Some(4));
        // degenerate sizes fall back to paths
        assert_eq!(cycle_graph(2).edge_count(), 1);
        assert_eq!(cycle_graph(1).edge_count(), 0);
    }

    #[test]
    fn star_properties() {
        let g = star_graph(6);
        assert_eq!(g.edge_count(), 5);
        assert_eq!(g.degree(NodeId(0)), 5);
        assert_eq!(diameter(&g), Some(2));
    }

    #[test]
    fn complete_properties() {
        let g = complete_graph(7);
        assert_eq!(g.edge_count(), 21);
        assert_eq!(diameter(&g), Some(1));
    }

    #[test]
    fn grid_properties() {
        let g = grid_graph(3, 4);
        assert_eq!(g.live_node_count(), 12);
        // edges: 3 rows * 3 horizontal + 2 * 4 vertical = 9 + 8
        assert_eq!(g.edge_count(), 17);
        assert!(is_connected(&g));
        assert_eq!(diameter(&g), Some(5));
        assert_eq!(g.degree(NodeId(0)), 2); // corner
    }
}

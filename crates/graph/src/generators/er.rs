//! Erdős–Rényi random graphs, G(n, p) and G(n, m) flavors.

use crate::graph::Graph;
use crate::ids::NodeId;
use rand::Rng;

/// G(n, p): each of the `n (n-1) / 2` possible edges is present
/// independently with probability `p`.
///
/// # Panics
/// Panics if `p` is not within `[0, 1]`.
pub fn erdos_renyi_gnp<R: Rng + ?Sized>(n: usize, p: f64, rng: &mut R) -> Graph {
    assert!((0.0..=1.0).contains(&p), "p must be a probability, got {p}");
    let mut g = Graph::new(n);
    if p == 0.0 {
        return g;
    }
    for i in 0..n {
        for j in (i + 1)..n {
            if p >= 1.0 || rng.gen_bool(p) {
                g.add_edge(NodeId::from_index(i), NodeId::from_index(j))
                    // panic-ok: `j > i` keeps endpoints distinct and each
                    // pair is visited once.
                    .unwrap();
            }
        }
    }
    g
}

/// G(n, m): exactly `m` distinct edges chosen uniformly at random.
///
/// # Panics
/// Panics if `m` exceeds the number of possible edges `n (n-1) / 2`.
pub fn erdos_renyi_gnm<R: Rng + ?Sized>(n: usize, m: usize, rng: &mut R) -> Graph {
    let possible = n.saturating_mul(n.saturating_sub(1)) / 2;
    assert!(
        m <= possible,
        "m = {m} exceeds the {possible} possible edges"
    );
    let mut g = Graph::new(n);
    // Rejection sampling is fine for the sparse graphs used here; switch
    // to dense enumeration when more than half the edges are requested.
    if m * 2 > possible {
        let mut all: Vec<(usize, usize)> = (0..n)
            .flat_map(|i| ((i + 1)..n).map(move |j| (i, j)))
            .collect();
        // Partial Fisher-Yates: shuffle the first m slots.
        for k in 0..m {
            let pick = rng.gen_range(k..all.len());
            all.swap(k, pick);
            let (i, j) = all[k];
            g.add_edge(NodeId::from_index(i), NodeId::from_index(j))
                // panic-ok: partial Fisher–Yates draws each distinct
                // pair at most once from the full pair universe.
                .unwrap();
        }
        return g;
    }
    let mut added = 0;
    while added < m {
        let i = rng.gen_range(0..n);
        let j = rng.gen_range(0..n);
        if i == j {
            continue;
        }
        if g.ensure_edge(NodeId::from_index(i), NodeId::from_index(j))
            // panic-ok: `i != j` checked above and both are below `n`.
            .unwrap()
        {
            added += 1;
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn gnp_extremes() {
        let mut rng = StdRng::seed_from_u64(0);
        let empty = erdos_renyi_gnp(10, 0.0, &mut rng);
        assert_eq!(empty.edge_count(), 0);
        let full = erdos_renyi_gnp(10, 1.0, &mut rng);
        assert_eq!(full.edge_count(), 45);
    }

    #[test]
    fn gnp_edge_count_near_expectation() {
        let mut rng = StdRng::seed_from_u64(5);
        let n = 100;
        let p = 0.1;
        let g = erdos_renyi_gnp(n, p, &mut rng);
        let expected = (n * (n - 1) / 2) as f64 * p;
        let got = g.edge_count() as f64;
        assert!(
            (got - expected).abs() < 0.3 * expected,
            "got {got}, expected ~{expected}"
        );
    }

    #[test]
    fn gnm_exact_edge_count_sparse_and_dense() {
        let mut rng = StdRng::seed_from_u64(1);
        let sparse = erdos_renyi_gnm(50, 30, &mut rng);
        assert_eq!(sparse.edge_count(), 30);
        let dense = erdos_renyi_gnm(20, 180, &mut rng); // 190 possible
        assert_eq!(dense.edge_count(), 180);
        dense.validate().unwrap();
    }

    #[test]
    fn gnm_zero_and_full() {
        let mut rng = StdRng::seed_from_u64(2);
        assert_eq!(erdos_renyi_gnm(10, 0, &mut rng).edge_count(), 0);
        assert_eq!(erdos_renyi_gnm(6, 15, &mut rng).edge_count(), 15);
    }

    #[test]
    #[should_panic]
    fn gnm_rejects_impossible_m() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = erdos_renyi_gnm(4, 7, &mut rng);
    }

    #[test]
    #[should_panic]
    fn gnp_rejects_bad_probability() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = erdos_renyi_gnp(4, 1.5, &mut rng);
    }
}

//! Plain-text table rendering for experiment output.

use std::fmt::Write as _;

/// A simple right-aligned ASCII table.
#[derive(Clone, Debug, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Table with the given column headers.
    pub fn new<I, S>(headers: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (shorter rows are padded with empty cells).
    pub fn row<I, S>(&mut self, cells: I) -> &mut Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.rows.push(cells.into_iter().map(Into::into).collect());
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with aligned columns and a header separator.
    pub fn render(&self) -> String {
        let cols = self
            .headers
            .len()
            .max(self.rows.iter().map(Vec::len).max().unwrap_or(0));
        let mut widths = vec![0usize; cols];
        for (i, h) in self.headers.iter().enumerate() {
            widths[i] = widths[i].max(h.len());
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let write_row = |out: &mut String, cells: &[String]| {
            for (i, &width) in widths.iter().enumerate() {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{cell:>width$}");
            }
            out.push('\n');
        };
        write_row(&mut out, &self.headers);
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1));
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            write_row(&mut out, row);
        }
        out
    }
}

/// Format a float with sensible width for tables.
pub fn fmt_f64(x: f64) -> String {
    if x == 0.0 {
        "0".to_string()
    } else if x.abs() >= 1000.0 {
        format!("{x:.0}")
    } else if x.abs() >= 10.0 {
        format!("{x:.1}")
    } else {
        format!("{x:.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(["n", "dash", "graph-heal"]);
        t.row(["64", "3", "21"]);
        t.row(["1024", "11", "305"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("dash"));
        assert!(lines[1].starts_with('-'));
        // Right-aligned: 64 is indented to the width of 1024.
        assert!(lines[2].starts_with("  64"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn pads_short_rows() {
        let mut t = Table::new(["a", "b"]);
        t.row(["1"]);
        let s = t.render();
        assert!(s.lines().count() == 3);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(fmt_f64(0.0), "0");
        // Not 2.71828: clippy's approx_constant denies near-e literals.
        assert_eq!(fmt_f64(2.716), "2.72");
        assert_eq!(fmt_f64(42.5), "42.5");
        assert_eq!(fmt_f64(12345.6), "12346");
    }
}

//! Integer histograms and quantiles for per-node distributions
//! (degree increases, ID changes, message counts).

/// A dense histogram over small non-negative integer observations.
#[derive(Clone, Debug, Default)]
pub struct Histogram {
    counts: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// Empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Record one observation.
    pub fn push(&mut self, value: usize) {
        if self.counts.len() <= value {
            self.counts.resize(value + 1, 0);
        }
        self.counts[value] += 1;
        self.total += 1;
    }

    /// Record every value of an iterator.
    pub fn extend<I: IntoIterator<Item = usize>>(&mut self, values: I) {
        for v in values {
            self.push(v);
        }
    }

    /// Fold another histogram into this one (counts add bucket-wise).
    ///
    /// Merging is commutative and associative, which is what lets the
    /// sweep fleet aggregate per-worker histograms into a result that is
    /// byte-identical regardless of worker count or item partition.
    pub fn merge(&mut self, other: &Histogram) {
        if self.counts.len() < other.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (dst, &src) in self.counts.iter_mut().zip(&other.counts) {
            *dst += src;
        }
        self.total += other.total;
    }

    /// Non-empty buckets as `(value, count)` pairs in ascending value
    /// order — a canonical sparse form for deterministic rendering.
    pub fn buckets(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(v, &c)| (v, c))
    }

    /// Number of observations.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Count at a specific value.
    pub fn count(&self, value: usize) -> u64 {
        self.counts.get(value).copied().unwrap_or(0)
    }

    /// Largest observed value (`None` when empty).
    pub fn max(&self) -> Option<usize> {
        self.counts.iter().rposition(|&c| c > 0)
    }

    /// The q-quantile (0 ≤ q ≤ 1) by cumulative count, `None` when empty.
    ///
    /// `quantile(0.5)` is the median; `quantile(1.0)` equals [`Histogram::max`].
    pub fn quantile(&self, q: f64) -> Option<usize> {
        if self.total == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((self.total as f64) * q).ceil().max(1.0) as u64;
        let mut cum = 0u64;
        for (value, &c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= target {
                return Some(value);
            }
        }
        self.max()
    }

    /// Mean of the observations (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let sum: u64 = self
            .counts
            .iter()
            .enumerate()
            .map(|(v, &c)| v as u64 * c)
            .sum();
        sum as f64 / self.total as f64
    }

    /// Simple one-line rendering: `p50=_ p90=_ p99=_ max=_`.
    pub fn percentile_line(&self) -> String {
        match self.max() {
            None => "empty".to_string(),
            Some(max) => format!(
                "p50={} p90={} p99={} max={max}",
                // panic-ok: `max()` returned Some, so the histogram is
                // non-empty and every quantile exists (same below).
                self.quantile(0.5).unwrap(),
                // panic-ok: as above.
                self.quantile(0.9).unwrap(),
                // panic-ok: as above.
                self.quantile(0.99).unwrap(),
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_total() {
        let mut h = Histogram::new();
        h.extend([1usize, 1, 2, 5]);
        assert_eq!(h.total(), 4);
        assert_eq!(h.count(1), 2);
        assert_eq!(h.count(2), 1);
        assert_eq!(h.count(3), 0);
        assert_eq!(h.count(99), 0);
        assert_eq!(h.max(), Some(5));
    }

    #[test]
    fn quantiles_on_uniform() {
        let mut h = Histogram::new();
        h.extend(0..100usize);
        assert_eq!(h.quantile(0.0), Some(0));
        assert_eq!(h.quantile(0.5), Some(49));
        assert_eq!(h.quantile(1.0), Some(99));
        assert_eq!(h.quantile(0.9), Some(89));
    }

    #[test]
    fn quantile_edge_cases() {
        let h = Histogram::new();
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.percentile_line(), "empty");

        let mut one = Histogram::new();
        one.push(7);
        assert_eq!(one.quantile(0.0), Some(7));
        assert_eq!(one.quantile(0.5), Some(7));
        assert_eq!(one.quantile(1.0), Some(7));
    }

    #[test]
    fn merge_adds_bucketwise_and_commutes() {
        let mut a = Histogram::new();
        a.extend([1usize, 2, 2]);
        let mut b = Histogram::new();
        b.extend([2usize, 7]);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab.total(), 5);
        assert_eq!(ab.count(2), 3);
        assert_eq!(ab.count(7), 1);
        assert_eq!(ab.max(), Some(7));
        let dump = |h: &Histogram| h.buckets().collect::<Vec<_>>();
        assert_eq!(dump(&ab), dump(&ba));
        // Merging an empty histogram is a no-op.
        ab.merge(&Histogram::new());
        assert_eq!(ab.total(), 5);
    }

    #[test]
    fn buckets_are_sparse_and_sorted() {
        let mut h = Histogram::new();
        h.extend([5usize, 0, 5, 9]);
        assert_eq!(
            h.buckets().collect::<Vec<_>>(),
            vec![(0, 1), (5, 2), (9, 1)]
        );
    }

    #[test]
    fn mean_matches_manual() {
        let mut h = Histogram::new();
        h.extend([0usize, 10, 20]);
        assert!((h.mean() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn percentile_line_format() {
        let mut h = Histogram::new();
        h.extend([1usize, 2, 3, 4]);
        let line = h.percentile_line();
        assert!(line.contains("p50="));
        assert!(line.contains("max=4"));
    }
}

//! Stretch — the Fig. 10 metric.
//!
//! The stretch of a healed network relative to the original is the
//! maximum, over all pairs of *surviving* nodes, of
//! `dist_healed(u, v) / dist_original(u, v)` (Section 4.6.1 of the
//! paper). Healing edges only ever connect former neighbors of deleted
//! nodes, so paths can lengthen; surrogation (SDASH) exists precisely to
//! fight this.
//!
//! Computing stretch needs all-pairs distances in both graphs. The
//! original graph's APSP is computed once (in parallel) at baseline
//! construction; each evaluation then runs one BFS per surviving node
//! over the healed snapshot, distributed over threads.

use selfheal_graph::parallel::{parallel_apsp, parallel_map_reduce};
use selfheal_graph::{Csr, Graph, NodeId, UNREACHABLE};

/// The frozen original network plus its all-pairs distances.
pub struct StretchBaseline {
    csr: Csr,
    dist: Vec<Vec<u32>>,
}

/// Result of a stretch evaluation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StretchResult {
    /// Maximum distance ratio over surviving pairs.
    pub stretch: f64,
    /// A witness pair realizing the maximum.
    pub witness: (NodeId, NodeId),
}

impl StretchBaseline {
    /// Snapshot `original` (which must be connected) and precompute its
    /// APSP with `threads` workers.
    pub fn new(original: &Graph, threads: usize) -> Self {
        let csr = Csr::from_graph(original);
        let dist = parallel_apsp(&csr, threads);
        StretchBaseline { csr, dist }
    }

    /// Original-graph distance between two original node ids.
    pub fn original_distance(&self, u: NodeId, v: NodeId) -> Option<u32> {
        let (du, dv) = (self.csr.dense_index(u)?, self.csr.dense_index(v)?);
        match self.dist[du][dv] {
            UNREACHABLE => None,
            d => Some(d),
        }
    }

    /// Evaluate the stretch of `healed` (a later state of the same node
    /// universe) using `threads` workers.
    ///
    /// Nodes absent from the baseline (joined after the snapshot, under
    /// churn) have no original distance and are skipped — stretch is the
    /// paper's metric over surviving *original* pairs.
    ///
    /// Returns `None` when some surviving original pair is disconnected
    /// in the healed graph (stretch is undefined/infinite — happens only
    /// for non-healing strategies) or when fewer than two nodes survive.
    pub fn stretch_of(&self, healed: &Graph, threads: usize) -> Option<StretchResult> {
        let hcsr = Csr::from_graph(healed);
        let n = hcsr.len();
        if n < 2 {
            return None;
        }
        // (max ratio, witness healed-dense pair, disconnected?) per source.
        let folded = parallel_map_reduce(
            n,
            threads,
            (0.0f64, (0usize, 0usize), false),
            |src| {
                let orig_src = hcsr.original_id(src);
                let Some(bsrc) = self.csr.dense_index(orig_src) else {
                    return (0.0, (src, src), false); // joined after baseline
                };
                let hdist = hcsr.bfs(src);
                let bdist = &self.dist[bsrc];
                let mut best = 0.0f64;
                let mut witness = (src, src);
                for (j, &dh) in hdist.iter().enumerate() {
                    if j == src {
                        continue;
                    }
                    let orig_j = hcsr.original_id(j);
                    let Some(bj) = self.csr.dense_index(orig_j) else {
                        continue; // joined after baseline
                    };
                    if dh == UNREACHABLE {
                        return (f64::INFINITY, (src, j), true);
                    }
                    let d0 = bdist[bj];
                    debug_assert!(d0 != UNREACHABLE && d0 > 0);
                    let ratio = dh as f64 / d0 as f64;
                    if ratio > best {
                        best = ratio;
                        witness = (src, j);
                    }
                }
                (best, witness, false)
            },
            |a, b| {
                if b.2 || b.0 > a.0 {
                    if a.2 {
                        a
                    } else {
                        b
                    }
                } else {
                    a
                }
            },
        );
        if folded.2 {
            return None;
        }
        Some(StretchResult {
            stretch: folded.0,
            witness: (hcsr.original_id(folded.1 .0), hcsr.original_id(folded.1 .1)),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use selfheal_graph::generators::{cycle_graph, path_graph, star_graph};

    #[test]
    fn identical_graph_has_stretch_one() {
        let g = path_graph(6);
        let base = StretchBaseline::new(&g, 2);
        let r = base.stretch_of(&g, 2).unwrap();
        assert!((r.stretch - 1.0).abs() < 1e-12);
    }

    #[test]
    fn removing_a_chord_stretches() {
        // Cycle of 6: distance 0-3 is 3. Remove edge (0,5): now 0-5 costs 5
        // instead of 1 => stretch 5.
        let g = cycle_graph(6);
        let base = StretchBaseline::new(&g, 2);
        let mut healed = g.clone();
        healed.remove_edge(NodeId(0), NodeId(5)).unwrap();
        let r = base.stretch_of(&healed, 2).unwrap();
        assert!((r.stretch - 5.0).abs() < 1e-12);
        let w = (r.witness.0.min(r.witness.1), r.witness.0.max(r.witness.1));
        assert_eq!(w, (NodeId(0), NodeId(5)));
    }

    #[test]
    fn deleted_nodes_are_ignored() {
        // Star: delete a spoke; remaining pairs keep their distances.
        let g = star_graph(5);
        let base = StretchBaseline::new(&g, 1);
        let mut healed = g.clone();
        healed.remove_node(NodeId(4)).unwrap();
        let r = base.stretch_of(&healed, 1).unwrap();
        assert!((r.stretch - 1.0).abs() < 1e-12);
    }

    #[test]
    fn disconnected_healed_graph_is_none() {
        let g = path_graph(4);
        let base = StretchBaseline::new(&g, 1);
        let mut healed = g.clone();
        healed.remove_edge(NodeId(1), NodeId(2)).unwrap();
        assert!(base.stretch_of(&healed, 2).is_none());
    }

    #[test]
    fn tiny_graphs_are_none() {
        let g = path_graph(2);
        let base = StretchBaseline::new(&g, 1);
        let mut healed = g.clone();
        healed.remove_node(NodeId(0)).unwrap();
        assert!(base.stretch_of(&healed, 1).is_none());
    }

    #[test]
    fn original_distance_accessor() {
        let g = path_graph(5);
        let base = StretchBaseline::new(&g, 1);
        assert_eq!(base.original_distance(NodeId(0), NodeId(4)), Some(4));
        assert_eq!(base.original_distance(NodeId(2), NodeId(2)), Some(0));
    }

    #[test]
    fn joined_nodes_are_skipped() {
        // A node added after the baseline snapshot has no original
        // distances; pairs involving it are excluded from the metric.
        let g = path_graph(4);
        let base = StretchBaseline::new(&g, 1);
        let mut healed = g.clone();
        let joiner = healed.add_node();
        healed.add_edge(joiner, NodeId(0)).unwrap();
        let r = base.stretch_of(&healed, 1).unwrap();
        assert!((r.stretch - 1.0).abs() < 1e-12);
        assert_ne!(r.witness.0, joiner);
        assert_ne!(r.witness.1, joiner);
    }

    #[test]
    fn serial_and_parallel_agree() {
        let g = cycle_graph(32);
        let base = StretchBaseline::new(&g, 4);
        let mut healed = g.clone();
        healed.remove_edge(NodeId(0), NodeId(31)).unwrap();
        let s1 = base.stretch_of(&healed, 1).unwrap().stretch;
        let s4 = base.stretch_of(&healed, 4).unwrap().stretch;
        assert_eq!(s1, s4);
    }
}

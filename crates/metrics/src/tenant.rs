//! Per-tenant aggregate metrics, the reusable accumulator behind the
//! serving layer's `stats` query and the experiments' per-run tables.
//!
//! A [`TenantStats`] folds a stream of per-event [`TenantSample`]s into
//! scalar sums and maxes. Both `observe` and `merge` are commutative
//! and associative, so the aggregate is **worker-count-invariant**: any
//! partition of a sample stream across workers, merged in any order,
//! yields the exact value the sequential fold would — the same contract
//! `graph::parallel::parallel_fold` demands of its reducers, and the
//! property that lets `selfheal-serve` promise byte-identical per-tenant
//! reports across 1/2/8 worker threads.
//!
//! The metrics crate sits below `core` in the crate DAG, so the sample
//! is a plain struct: callers (the serve shard's observer, experiment
//! loops) convert their `EventRecord`s into samples at the hook site.

/// One event's contribution to a tenant's aggregate, extracted from a
/// core `EventRecord` by the layer that owns it.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TenantSample {
    /// Nodes actually deleted by the event (0 for no-ops and joins).
    pub victims: usize,
    /// Whether the event created a node.
    pub joined: bool,
    /// Total reconstruction-set size across the event's heals.
    pub rt_size: usize,
    /// Healing edges added by the event.
    pub edges_added: usize,
    /// ID-broadcast messages sent during the event.
    pub messages: u64,
    /// ID-broadcast latency of the event.
    pub latency: u64,
    /// Maximum degree increase among the event's reconstruction-set
    /// members (`None` when nothing healed).
    pub round_max_delta: Option<i64>,
}

/// Merge-able per-tenant aggregate: sums and maxes over observed
/// samples. All fields are scalars, so the whole aggregate is `Copy`
/// and comparisons are exact.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TenantStats {
    /// Events observed (including sanitized no-ops).
    pub events: u64,
    /// Events skipped before reaching the engine (pre-validated
    /// no-progress events a serving shard refuses to apply).
    pub skipped: u64,
    /// Total nodes deleted.
    pub deletions: u64,
    /// Total nodes joined.
    pub joins: u64,
    /// Total reconstruction-set membership across all heals.
    pub rt_total: u64,
    /// Total healing edges added.
    pub edges_added: u64,
    /// Total ID-broadcast messages.
    pub messages: u64,
    /// Total ID-broadcast latency.
    pub latency_total: u64,
    /// Worst single-event broadcast latency.
    pub max_latency: u64,
    /// Worst degree increase ever observed (Theorem 1's quantity).
    pub max_delta: i64,
}

impl TenantStats {
    /// Fold one event's sample into the aggregate.
    pub fn observe(&mut self, s: TenantSample) {
        self.events += 1;
        self.deletions += s.victims as u64;
        self.joins += u64::from(s.joined);
        self.rt_total += s.rt_size as u64;
        self.edges_added += s.edges_added as u64;
        self.messages += s.messages;
        self.latency_total += s.latency;
        self.max_latency = self.max_latency.max(s.latency);
        if let Some(d) = s.round_max_delta {
            self.max_delta = self.max_delta.max(d);
        }
    }

    /// Count an event refused before the engine saw it.
    pub fn observe_skipped(&mut self) {
        self.skipped += 1;
    }

    /// Fold another aggregate in (commutative, associative).
    pub fn merge(&mut self, other: TenantStats) {
        self.events += other.events;
        self.skipped += other.skipped;
        self.deletions += other.deletions;
        self.joins += other.joins;
        self.rt_total += other.rt_total;
        self.edges_added += other.edges_added;
        self.messages += other.messages;
        self.latency_total += other.latency_total;
        self.max_latency = self.max_latency.max(other.max_latency);
        self.max_delta = self.max_delta.max(other.max_delta);
    }

    /// Mean broadcast latency per event (0 before any event).
    #[must_use]
    pub fn amortized_latency(&self) -> f64 {
        if self.events == 0 {
            0.0
        } else {
            self.latency_total as f64 / self.events as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(i: u64) -> TenantSample {
        TenantSample {
            victims: (i % 3) as usize,
            joined: i.is_multiple_of(4),
            rt_size: (i % 5) as usize,
            edges_added: (i % 7) as usize,
            messages: i * 3,
            latency: i % 11,
            round_max_delta: if i.is_multiple_of(2) {
                Some(i as i64 % 9)
            } else {
                None
            },
        }
    }

    #[test]
    fn observe_accumulates_sums_and_maxes() {
        let mut t = TenantStats::default();
        t.observe(TenantSample {
            victims: 2,
            joined: false,
            rt_size: 4,
            edges_added: 3,
            messages: 10,
            latency: 5,
            round_max_delta: Some(7),
        });
        t.observe_skipped();
        assert_eq!(t.events, 1);
        assert_eq!(t.skipped, 1);
        assert_eq!(t.deletions, 2);
        assert_eq!(t.max_delta, 7);
        assert_eq!(t.amortized_latency(), 5.0);
    }

    #[test]
    fn any_partition_merged_in_any_order_matches_the_sequential_fold() {
        let mut sequential = TenantStats::default();
        for i in 0..64 {
            sequential.observe(sample(i));
        }
        // Split the stream at every boundary and merge both ways.
        for split in 0..64 {
            let (mut a, mut b) = (TenantStats::default(), TenantStats::default());
            for i in 0..split {
                a.observe(sample(i));
            }
            for i in split..64 {
                b.observe(sample(i));
            }
            let mut ab = a;
            ab.merge(b);
            let mut ba = b;
            ba.merge(a);
            assert_eq!(ab, sequential, "split at {split}");
            assert_eq!(ba, sequential, "merge order must not matter");
        }
    }
}

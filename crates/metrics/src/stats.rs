//! Streaming summary statistics (Welford's online algorithm).

/// Online mean/variance accumulator. Numerically stable for long streams.
#[derive(Clone, Copy, Debug, Default)]
pub struct Welford {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Welford {
    /// Empty accumulator.
    pub fn new() -> Self {
        Welford {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Fold one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let d = x - self.mean;
        self.mean += d / self.count as f64;
        self.m2 += d * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 for fewer than 2 observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Sample standard deviation (Bessel-corrected; 0 for < 2 samples).
    pub fn std_dev(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            (self.m2 / (self.count - 1) as f64).sqrt()
        }
    }

    /// Minimum observation (+inf when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Maximum observation (-inf when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Freeze into a [`Summary`].
    pub fn summary(&self) -> Summary {
        Summary {
            count: self.count,
            mean: self.mean(),
            std_dev: self.std_dev(),
            min: if self.count == 0 { 0.0 } else { self.min },
            max: if self.count == 0 { 0.0 } else { self.max },
        }
    }
}

/// Frozen summary of a sample.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Summary {
    /// Number of observations.
    pub count: u64,
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation.
    pub std_dev: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
}

/// Summarize an iterator of observations.
pub fn summarize<I: IntoIterator<Item = f64>>(values: I) -> Summary {
    let mut w = Welford::new();
    for v in values {
        w.push(v);
    }
    w.summary()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_values() {
        let s = summarize([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.count, 8);
        assert!((s.mean - 5.0).abs() < 1e-12);
        // population variance is 4 -> sample std = sqrt(32/7)
        assert!((s.std_dev - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
    }

    #[test]
    fn empty_and_singleton() {
        let e = summarize([]);
        assert_eq!(e.count, 0);
        assert_eq!(e.mean, 0.0);
        assert_eq!(e.std_dev, 0.0);
        let s = summarize([3.5]);
        assert_eq!(s.count, 1);
        assert_eq!(s.mean, 3.5);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.min, 3.5);
        assert_eq!(s.max, 3.5);
    }

    #[test]
    fn welford_matches_two_pass() {
        let xs: Vec<f64> = (0..1000).map(|i| (i as f64).sin() * 10.0).collect();
        let s = summarize(xs.iter().copied());
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (xs.len() - 1) as f64;
        assert!((s.mean - mean).abs() < 1e-9);
        assert!((s.std_dev - var.sqrt()).abs() < 1e-9);
    }

    #[test]
    fn incremental_equals_batch() {
        let mut w = Welford::new();
        for x in [1.0, 2.0, 3.0] {
            w.push(x);
        }
        assert_eq!(w.summary(), summarize([1.0, 2.0, 3.0]));
        assert_eq!(w.count(), 3);
        assert!((w.variance() - 2.0 / 3.0).abs() < 1e-12);
    }
}

//! ASCII line charts: render a [`Figure`] as an actual plot so
//! `run-experiments` output visually matches the paper's figures.
//!
//! Each series gets a glyph; points are placed on a character grid with
//! linear or log-scaled axes. Collisions between series at the same cell
//! are shown with `*`.

use crate::series::Figure;
use std::fmt::Write as _;

/// Axis scaling.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AxisScale {
    /// Linear axis.
    Linear,
    /// Log₂ axis (values must be positive; zeros clamp to the minimum).
    Log,
}

/// Chart configuration.
#[derive(Clone, Copy, Debug)]
pub struct PlotConfig {
    /// Grid width in character cells (excluding labels).
    pub width: usize,
    /// Grid height in character cells.
    pub height: usize,
    /// x-axis scaling (the paper's size axes are logarithmic).
    pub x_scale: AxisScale,
    /// y-axis scaling.
    pub y_scale: AxisScale,
}

impl Default for PlotConfig {
    fn default() -> Self {
        PlotConfig {
            width: 60,
            height: 16,
            x_scale: AxisScale::Log,
            y_scale: AxisScale::Linear,
        }
    }
}

const GLYPHS: &[char] = &['o', '+', 'x', '#', '@', '%', '&', '$'];

fn scale(value: f64, min: f64, max: f64, cells: usize, kind: AxisScale) -> usize {
    let (v, lo, hi) = match kind {
        AxisScale::Linear => (value, min, max),
        AxisScale::Log => {
            let floor = min.max(1e-9);
            (value.max(floor).log2(), floor.log2(), max.max(floor).log2())
        }
    };
    if hi <= lo {
        return 0;
    }
    let t = ((v - lo) / (hi - lo)).clamp(0.0, 1.0);
    ((t * (cells - 1) as f64).round() as usize).min(cells - 1)
}

/// Render the figure as an ASCII chart with a legend.
pub fn render(fig: &Figure, cfg: PlotConfig) -> String {
    let points: Vec<(f64, f64)> = fig
        .series
        .iter()
        .flat_map(|s| s.points.iter().map(|p| (p.x, p.mean)))
        .filter(|(x, y)| x.is_finite() && y.is_finite())
        .collect();
    if points.is_empty() {
        return format!("{} (no data)\n", fig.title);
    }
    let (mut x_min, mut x_max) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut y_min, mut y_max) = (f64::INFINITY, f64::NEG_INFINITY);
    for &(x, y) in &points {
        x_min = x_min.min(x);
        x_max = x_max.max(x);
        y_min = y_min.min(y);
        y_max = y_max.max(y);
    }
    if (y_max - y_min).abs() < 1e-12 {
        y_max = y_min + 1.0;
    }

    let mut grid = vec![vec![' '; cfg.width]; cfg.height];
    for (si, s) in fig.series.iter().enumerate() {
        let glyph = GLYPHS[si % GLYPHS.len()];
        for p in &s.points {
            if !p.x.is_finite() || !p.mean.is_finite() {
                continue;
            }
            let col = scale(p.x, x_min, x_max, cfg.width, cfg.x_scale);
            let row = scale(p.mean, y_min, y_max, cfg.height, cfg.y_scale);
            let cell = &mut grid[cfg.height - 1 - row][col];
            *cell = if *cell == ' ' || *cell == glyph {
                glyph
            } else {
                '*'
            };
        }
    }

    let mut out = String::new();
    let _ = writeln!(out, "{}", fig.title);
    let y_label_width = 10usize;
    for (r, row) in grid.iter().enumerate() {
        let frac = 1.0 - r as f64 / (cfg.height - 1) as f64;
        let y_value = match cfg.y_scale {
            AxisScale::Linear => y_min + frac * (y_max - y_min),
            AxisScale::Log => {
                let lo = y_min.max(1e-9).log2();
                let hi = y_max.max(1e-9).log2();
                2f64.powf(lo + frac * (hi - lo))
            }
        };
        let label = if r == 0 || r == cfg.height - 1 || r == cfg.height / 2 {
            format!("{y_value:>9.1} ")
        } else {
            " ".repeat(y_label_width)
        };
        let _ = writeln!(out, "{label}|{}", row.iter().collect::<String>());
    }
    let _ = writeln!(
        out,
        "{}+{}",
        " ".repeat(y_label_width),
        "-".repeat(cfg.width)
    );
    let _ = writeln!(
        out,
        "{}{:<w$}{:>w2$}",
        " ".repeat(y_label_width + 1),
        format!("{x_min}"),
        format!("{x_max}  ({})", fig.x_label),
        w = cfg.width / 2,
        w2 = cfg.width - cfg.width / 2,
    );
    let _ = writeln!(out, "  y: {}", fig.y_label);
    for (si, s) in fig.series.iter().enumerate() {
        let _ = writeln!(out, "  {} {}", GLYPHS[si % GLYPHS.len()], s.name);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::series::{Series, SeriesPoint};

    fn fig() -> Figure {
        let mut f = Figure::new("Test figure", "n", "metric");
        let mut a = Series::new("dash");
        let mut b = Series::new("graph-heal");
        for (x, ya, yb) in [(64.0, 2.0, 8.0), (256.0, 2.1, 26.0), (1024.0, 2.3, 120.0)] {
            a.push(SeriesPoint::from_trials(x, &[ya]));
            b.push(SeriesPoint::from_trials(x, &[yb]));
        }
        f.push(a);
        f.push(b);
        f
    }

    #[test]
    fn renders_grid_and_legend() {
        let s = render(&fig(), PlotConfig::default());
        assert!(s.starts_with("Test figure\n"));
        assert!(s.contains("o dash"));
        assert!(s.contains("+ graph-heal"));
        assert!(s.contains('|'));
        assert!(s.contains('+'));
        // Both glyphs appear somewhere on the grid.
        let grid_part: String = s.lines().take(18).collect();
        assert!(grid_part.contains('o'));
        assert!(grid_part.contains('+') || grid_part.contains('*'));
    }

    #[test]
    fn empty_figure_is_graceful() {
        let f = Figure::new("Empty", "x", "y");
        let s = render(&f, PlotConfig::default());
        assert!(s.contains("no data"));
    }

    #[test]
    fn flat_series_does_not_divide_by_zero() {
        let mut f = Figure::new("Flat", "x", "y");
        let mut a = Series::new("const");
        a.push(SeriesPoint::from_trials(1.0, &[5.0]));
        a.push(SeriesPoint::from_trials(2.0, &[5.0]));
        f.push(a);
        let s = render(
            &f,
            PlotConfig {
                width: 20,
                height: 5,
                ..Default::default()
            },
        );
        assert!(s.contains('o'));
    }

    #[test]
    fn scale_maps_endpoints() {
        assert_eq!(scale(0.0, 0.0, 10.0, 11, AxisScale::Linear), 0);
        assert_eq!(scale(10.0, 0.0, 10.0, 11, AxisScale::Linear), 10);
        assert_eq!(scale(5.0, 0.0, 10.0, 11, AxisScale::Linear), 5);
        // Log scale: 64..1024 spans 4 doublings.
        assert_eq!(scale(64.0, 64.0, 1024.0, 5, AxisScale::Log), 0);
        assert_eq!(scale(1024.0, 64.0, 1024.0, 5, AxisScale::Log), 4);
        assert_eq!(scale(256.0, 64.0, 1024.0, 5, AxisScale::Log), 2);
        // Degenerate range collapses to 0.
        assert_eq!(scale(3.0, 3.0, 3.0, 5, AxisScale::Linear), 0);
    }
}

//! Experiment series: one named curve of (x, aggregated-y) points — the
//! in-memory form of every figure in the paper.

use crate::stats::{summarize, Summary};
use serde::{Deserialize, Serialize};

/// One aggregated point of a curve.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct SeriesPoint {
    /// Independent variable (graph size n for most figures).
    pub x: f64,
    /// Mean over trials.
    pub mean: f64,
    /// Sample standard deviation over trials.
    pub std_dev: f64,
    /// Minimum over trials.
    pub min: f64,
    /// Maximum over trials.
    pub max: f64,
    /// Number of trials aggregated.
    pub trials: u64,
}

impl SeriesPoint {
    /// A single observation at `x` (no spread): the shape observer-fed
    /// per-event timelines use, where each event contributes one value.
    pub fn single(x: f64, value: f64) -> Self {
        SeriesPoint {
            x,
            mean: value,
            std_dev: 0.0,
            min: value,
            max: value,
            trials: 1,
        }
    }

    /// Aggregate raw per-trial observations at `x`.
    pub fn from_trials(x: f64, values: &[f64]) -> Self {
        let Summary {
            count,
            mean,
            std_dev,
            min,
            max,
        } = summarize(values.iter().copied());
        SeriesPoint {
            x,
            mean,
            std_dev,
            min,
            max,
            trials: count,
        }
    }
}

/// A named curve (one line of a figure).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Series {
    /// Curve label (healing strategy name, usually).
    pub name: String,
    /// Points in increasing `x`.
    pub points: Vec<SeriesPoint>,
}

impl Series {
    /// Empty series.
    pub fn new(name: impl Into<String>) -> Self {
        Series {
            name: name.into(),
            points: Vec::new(),
        }
    }

    /// Append an aggregated point.
    pub fn push(&mut self, point: SeriesPoint) {
        self.points.push(point);
    }

    /// y-mean at a given x, if present.
    pub fn mean_at(&self, x: f64) -> Option<f64> {
        self.points.iter().find(|p| p.x == x).map(|p| p.mean)
    }

    /// Largest mean over the curve.
    pub fn max_mean(&self) -> f64 {
        self.points
            .iter()
            .map(|p| p.mean)
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Whether this curve lies (weakly) below `other` at every shared x —
    /// the ordinal "who wins" comparisons the figures make.
    pub fn dominated_by(&self, other: &Series) -> bool {
        self.points.iter().all(|p| match other.mean_at(p.x) {
            Some(o) => p.mean <= o + 1e-12,
            None => true,
        })
    }
}

/// A whole figure: several curves over a common x-axis.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Figure {
    /// Figure title (e.g. "Fig 8: maximum degree increase").
    pub title: String,
    /// x-axis label.
    pub x_label: String,
    /// y-axis label.
    pub y_label: String,
    /// The curves.
    pub series: Vec<Series>,
}

impl Figure {
    /// New empty figure.
    pub fn new(
        title: impl Into<String>,
        x_label: impl Into<String>,
        y_label: impl Into<String>,
    ) -> Self {
        Figure {
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            series: Vec::new(),
        }
    }

    /// Add a curve.
    pub fn push(&mut self, series: Series) {
        self.series.push(series);
    }

    /// Find a curve by name.
    pub fn series_named(&self, name: &str) -> Option<&Series> {
        self.series.iter().find(|s| s.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregate_point() {
        let p = SeriesPoint::from_trials(100.0, &[1.0, 2.0, 3.0]);
        assert_eq!(p.x, 100.0);
        assert_eq!(p.mean, 2.0);
        assert_eq!(p.min, 1.0);
        assert_eq!(p.max, 3.0);
        assert_eq!(p.trials, 3);
    }

    #[test]
    fn series_queries() {
        let mut s = Series::new("dash");
        s.push(SeriesPoint::from_trials(10.0, &[1.0]));
        s.push(SeriesPoint::from_trials(20.0, &[2.0, 4.0]));
        assert_eq!(s.mean_at(10.0), Some(1.0));
        assert_eq!(s.mean_at(20.0), Some(3.0));
        assert_eq!(s.mean_at(30.0), None);
        assert_eq!(s.max_mean(), 3.0);
    }

    #[test]
    fn dominance_comparison() {
        let mut lo = Series::new("dash");
        let mut hi = Series::new("graph-heal");
        for x in [10.0, 20.0] {
            lo.push(SeriesPoint::from_trials(x, &[1.0]));
            hi.push(SeriesPoint::from_trials(x, &[5.0]));
        }
        assert!(lo.dominated_by(&hi));
        assert!(!hi.dominated_by(&lo));
    }

    #[test]
    fn figure_lookup() {
        let mut f = Figure::new("t", "x", "y");
        f.push(Series::new("a"));
        assert!(f.series_named("a").is_some());
        assert!(f.series_named("b").is_none());
    }
}

//! # selfheal-metrics
//!
//! Measurement layer for the self-healing experiments: streaming summary
//! statistics, the *stretch* metric of Fig. 10 (with a parallel APSP
//! baseline), figure/series aggregation over trials, ASCII tables and CSV
//! output.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod aggregate;
pub mod csv;
pub mod histogram;
pub mod plot;
pub mod series;
pub mod stats;
pub mod stretch;
pub mod table;
pub mod tenant;

pub use aggregate::Extreme;
pub use histogram::Histogram;
pub use series::{Figure, Series, SeriesPoint};
pub use stats::{summarize, Summary, Welford};
pub use stretch::{StretchBaseline, StretchResult};
pub use table::Table;
pub use tenant::{TenantSample, TenantStats};

//! Minimal CSV output for figures (hand-rolled; values here never need
//! quoting beyond comma/quote escaping).

use crate::series::Figure;
use std::fmt::Write as _;

/// Escape one CSV field.
fn field(s: &str) -> String {
    if s.contains([',', '"', '\n']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// Render a [`Figure`] as long-form CSV:
/// `series,x,mean,std_dev,min,max,trials`.
pub fn figure_to_csv(fig: &Figure) -> String {
    let mut out = String::from("series,x,mean,std_dev,min,max,trials\n");
    for s in &fig.series {
        for p in &s.points {
            let _ = writeln!(
                out,
                "{},{},{},{},{},{},{}",
                field(&s.name),
                p.x,
                p.mean,
                p.std_dev,
                p.min,
                p.max,
                p.trials
            );
        }
    }
    out
}

/// Write a figure to a CSV file.
pub fn write_figure_csv(fig: &Figure, path: &std::path::Path) -> std::io::Result<()> {
    std::fs::write(path, figure_to_csv(fig))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::series::{Series, SeriesPoint};

    fn sample_figure() -> Figure {
        let mut f = Figure::new("fig", "n", "y");
        let mut s = Series::new("dash");
        s.push(SeriesPoint::from_trials(10.0, &[1.0, 3.0]));
        f.push(s);
        f
    }

    #[test]
    fn csv_shape() {
        let csv = figure_to_csv(&sample_figure());
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0], "series,x,mean,std_dev,min,max,trials");
        assert!(lines[1].starts_with("dash,10,2,"));
        assert!(lines[1].ends_with(",2"));
    }

    #[test]
    fn escaping() {
        assert_eq!(field("plain"), "plain");
        assert_eq!(field("a,b"), "\"a,b\"");
        assert_eq!(field("say \"hi\""), "\"say \"\"hi\"\"\"");
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("selfheal-csv-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("fig.csv");
        write_figure_csv(&sample_figure(), &path).unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.contains("dash,10"));
        std::fs::remove_file(path).unwrap();
    }
}

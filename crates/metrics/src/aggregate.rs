//! Order-independent aggregation primitives for parallel sweeps.
//!
//! A sweep fleet folds thousands of per-run results into per-worker
//! accumulators and merges the accumulators at the end; for the final
//! aggregate to be byte-identical regardless of worker count, every
//! primitive it is built from must merge commutatively and associatively.
//! [`Histogram`](crate::Histogram) already does (bucket counts add);
//! [`Extreme`] is the other piece: "worst value seen, and the seed that
//! produced it" with a deterministic tie-break, so the worst offender of
//! a sweep can be replayed no matter how runs landed on threads.

use std::fmt;

/// The maximum value observed across a sweep, tagged with the seed of the
/// run that produced it (lowest seed wins ties, making observation order
/// irrelevant).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Extreme {
    /// The largest observed value (0 before any observation).
    pub value: u64,
    /// Seed of the run realizing it (`u64::MAX` before any observation).
    pub seed: u64,
    observed: bool,
}

impl Default for Extreme {
    fn default() -> Self {
        Extreme::new()
    }
}

impl Extreme {
    /// No observations yet.
    pub fn new() -> Self {
        Extreme {
            value: 0,
            seed: u64::MAX,
            observed: false,
        }
    }

    /// Whether any run has been observed.
    pub fn is_observed(&self) -> bool {
        self.observed
    }

    /// Record one run's value.
    pub fn observe(&mut self, value: u64, seed: u64) {
        if !self.observed || value > self.value || (value == self.value && seed < self.seed) {
            self.value = value;
            self.seed = seed;
            self.observed = true;
        }
    }

    /// Fold another accumulator into this one (commutative, associative).
    pub fn merge(&mut self, other: &Extreme) {
        if other.observed {
            self.observe(other.value, other.seed);
        }
    }
}

impl fmt::Display for Extreme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.observed {
            write!(f, "{} (seed {})", self.value, self.seed)
        } else {
            write!(f, "none")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_the_unobserved_sentinel() {
        assert_eq!(Extreme::default(), Extreme::new());
        assert_eq!(Extreme::default().seed, u64::MAX);
    }

    #[test]
    fn observes_maximum() {
        let mut e = Extreme::new();
        assert!(!e.is_observed());
        e.observe(5, 100);
        e.observe(9, 200);
        e.observe(3, 300);
        assert_eq!((e.value, e.seed), (9, 200));
        assert!(e.is_observed());
    }

    #[test]
    fn ties_break_to_lowest_seed() {
        let mut a = Extreme::new();
        a.observe(7, 50);
        a.observe(7, 10);
        a.observe(7, 90);
        assert_eq!((a.value, a.seed), (7, 10));
    }

    #[test]
    fn merge_is_order_independent() {
        let runs = [(3u64, 7u64), (9, 4), (9, 2), (1, 9)];
        let mut forward = Extreme::new();
        for &(v, s) in &runs {
            forward.observe(v, s);
        }
        let mut halves = (Extreme::new(), Extreme::new());
        halves.0.observe(runs[0].0, runs[0].1);
        halves.0.observe(runs[3].0, runs[3].1);
        halves.1.observe(runs[2].0, runs[2].1);
        halves.1.observe(runs[1].0, runs[1].1);
        let mut merged = halves.1;
        merged.merge(&halves.0);
        assert_eq!(merged, forward);
        // Merging an unobserved accumulator changes nothing.
        merged.merge(&Extreme::new());
        assert_eq!(merged, forward);
    }

    #[test]
    fn zero_value_observation_counts() {
        let mut e = Extreme::new();
        e.observe(0, 42);
        assert!(e.is_observed());
        assert_eq!((e.value, e.seed), (0, 42));
        assert_eq!(e.to_string(), "0 (seed 42)");
        assert_eq!(Extreme::new().to_string(), "none");
    }
}

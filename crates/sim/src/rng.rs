//! Tiny deterministic PRNG for the simulator.
//!
//! The simulator must be bit-for-bit reproducible across platforms and
//! library versions, so it carries its own SplitMix64 instead of depending
//! on an external generator whose stream might change. SplitMix64 passes
//! BigCrush, is trivially seedable, and supports cheap stream splitting —
//! each node of a simulation can derive an independent stream from the
//! run seed and its node id.

/// SplitMix64 pseudo-random generator (Steele, Lea & Flood 2014).
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Seed the generator.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Derive an independent stream for a sub-entity (e.g. a node id).
    ///
    /// Mixes the id into the seed with one SplitMix64 round so derived
    /// streams do not overlap in practice.
    pub fn derive(&self, stream: u64) -> Self {
        let mut d = SplitMix64::new(self.state ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        d.next_u64();
        d
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)` via Lemire's multiply-shift rejection.
    ///
    /// # Panics
    /// Panics if `bound == 0`.
    pub fn gen_range(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "gen_range bound must be positive");
        // Rejection sampling to remove modulo bias.
        loop {
            let x = self.next_u64();
            let (hi, lo) = {
                let wide = (x as u128) * (bound as u128);
                ((wide >> 64) as u64, wide as u64)
            };
            if lo >= bound || lo >= bound.wrapping_neg() % bound {
                return hi;
            }
        }
    }

    /// Uniform `f64` in `[0, 1)` using the top 53 bits.
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Fisher-Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.gen_range(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }

    /// Pick a uniformly random element of a non-empty slice.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> &'a T {
        assert!(!slice.is_empty(), "choose on empty slice");
        &slice[self.gen_range(slice.len() as u64) as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_stream() {
        let mut a = SplitMix64::new(12345);
        let mut b = SplitMix64::new(12345);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_different_streams() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn derived_streams_are_independent() {
        let root = SplitMix64::new(99);
        let mut d1 = root.derive(1);
        let mut d2 = root.derive(2);
        let same = (0..64).filter(|_| d1.next_u64() == d2.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn gen_range_respects_bound() {
        let mut rng = SplitMix64::new(7);
        for bound in [1u64, 2, 3, 10, 1000] {
            for _ in 0..200 {
                assert!(rng.gen_range(bound) < bound);
            }
        }
    }

    #[test]
    fn gen_range_covers_small_domain() {
        let mut rng = SplitMix64::new(3);
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[rng.gen_range(5) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut rng = SplitMix64::new(11);
        for _ in 0..1000 {
            let x = rng.gen_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SplitMix64::new(5);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "a 50-element shuffle should move something");
    }

    #[test]
    #[should_panic]
    fn gen_range_zero_panics() {
        SplitMix64::new(0).gen_range(0);
    }

    #[test]
    #[should_panic]
    fn choose_empty_panics() {
        let v: Vec<u8> = vec![];
        SplitMix64::new(0).choose(&v);
    }
}

//! Batch-notification delivery schedules.
//!
//! When an independent set of victims dies simultaneously
//! ([`Simulator::delete_batch`](crate::Simulator::delete_batch)), every
//! former neighbor of every victim must be notified — but a real fabric
//! gives no guarantee about the *order* those notifications land in.
//! That order is the one degree of freedom a batch leaves open, and it is
//! exactly where the coordinator-election and stale-comp-ID bugs live, so
//! the fabric makes it a first-class, controllable [`BatchSchedule`]
//! instead of a hardcoded loop.
//!
//! A schedule maps the batch's notification set — pair `(v, s)` meaning
//! "former neighbor in slot `s` of victim `v` learns of `v`'s death" — to
//! a total delivery order. The default [`BatchSchedule::RoundRobin`]
//! reproduces the fabric's historical interleaving byte for byte; the
//! other variants exist for the schedule explorer
//! (`selfheal-core::explore`), which enumerates representative orders and
//! proves the protocol's outcome independent of the choice.

use crate::rng::SplitMix64;

/// Delivery order of the per-neighbor notifications of one deletion
/// batch. Set via
/// [`Simulator::set_batch_schedule`](crate::Simulator::set_batch_schedule);
/// applies to every subsequent [`delete_batch`](crate::Simulator::delete_batch).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub enum BatchSchedule {
    /// Interleave across victims slot by slot: neighbor 1 of victim A,
    /// neighbor 1 of victim B, neighbor 2 of victim A, … — the fabric's
    /// historical default.
    #[default]
    RoundRobin,
    /// All of victim A's neighbors, then all of victim B's, in victim
    /// input order.
    VictimMajor,
    /// Victim-major in the given victim order: `VictimOrder(vec![2, 0, 1])`
    /// notifies all of victim 2's neighbors first, then victim 0's, then
    /// victim 1's. Indices refer to positions in the batch's victim list.
    VictimOrder(Vec<usize>),
    /// A fully explicit delivery sequence of `(victim index, neighbor
    /// slot)` pairs. Must cover every notification of the batch exactly
    /// once.
    Explicit(Vec<(usize, usize)>),
    /// A seeded uniform shuffle of the notification set — a deterministic
    /// stand-in for an arbitrary adversarial fabric.
    Shuffled(u64),
}

impl BatchSchedule {
    /// Expand the schedule into a concrete delivery order for a batch
    /// whose victim `i` has `degrees[i]` former neighbors.
    ///
    /// # Panics
    /// Panics if the schedule does not fit the batch: a `VictimOrder`
    /// that is not a permutation of `0..victims`, or an `Explicit`
    /// sequence that is not an exact cover of the notification set. A
    /// malformed schedule would silently skip notifications, so the
    /// fabric refuses it loudly (mirroring `delete_batch`'s own victim
    /// validation).
    pub(crate) fn delivery_order(&self, degrees: &[usize]) -> Vec<(usize, usize)> {
        let total: usize = degrees.iter().sum();
        let mut order = Vec::with_capacity(total);
        match self {
            BatchSchedule::RoundRobin => {
                let max_degree = degrees.iter().copied().max().unwrap_or(0);
                for slot in 0..max_degree {
                    for (v, &deg) in degrees.iter().enumerate() {
                        if slot < deg {
                            order.push((v, slot));
                        }
                    }
                }
            }
            BatchSchedule::VictimMajor => {
                for (v, &deg) in degrees.iter().enumerate() {
                    for slot in 0..deg {
                        order.push((v, slot));
                    }
                }
            }
            BatchSchedule::VictimOrder(perm) => {
                assert_eq!(
                    perm.len(),
                    degrees.len(),
                    "victim order lists {} victims but the batch has {}",
                    perm.len(),
                    degrees.len()
                );
                let mut seen = vec![false; degrees.len()];
                for &v in perm {
                    assert!(
                        v < degrees.len() && !std::mem::replace(&mut seen[v], true),
                        "victim order {perm:?} is not a permutation of 0..{}",
                        degrees.len()
                    );
                    for slot in 0..degrees[v] {
                        order.push((v, slot));
                    }
                }
            }
            BatchSchedule::Explicit(pairs) => {
                assert_eq!(
                    pairs.len(),
                    total,
                    "explicit schedule has {} deliveries but the batch has {total}",
                    pairs.len()
                );
                let mut seen: Vec<Vec<bool>> = degrees.iter().map(|&d| vec![false; d]).collect();
                for &(v, slot) in pairs {
                    assert!(
                        v < degrees.len() && slot < degrees[v],
                        "explicit delivery ({v}, {slot}) is out of range for the batch"
                    );
                    assert!(
                        !std::mem::replace(&mut seen[v][slot], true),
                        "explicit delivery ({v}, {slot}) repeated"
                    );
                    order.push((v, slot));
                }
            }
            BatchSchedule::Shuffled(seed) => {
                order = BatchSchedule::RoundRobin.delivery_order(degrees);
                SplitMix64::new(*seed).shuffle(&mut order);
            }
        }
        order
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DEGREES: [usize; 3] = [3, 1, 2];

    fn as_set(mut order: Vec<(usize, usize)>) -> Vec<(usize, usize)> {
        order.sort_unstable();
        order
    }

    #[test]
    fn round_robin_interleaves_slot_major() {
        let order = BatchSchedule::RoundRobin.delivery_order(&DEGREES);
        assert_eq!(order, vec![(0, 0), (1, 0), (2, 0), (0, 1), (2, 1), (0, 2)]);
    }

    #[test]
    fn victim_major_groups_by_victim() {
        let order = BatchSchedule::VictimMajor.delivery_order(&DEGREES);
        assert_eq!(order, vec![(0, 0), (0, 1), (0, 2), (1, 0), (2, 0), (2, 1)]);
    }

    #[test]
    fn victim_order_respects_permutation() {
        let order = BatchSchedule::VictimOrder(vec![2, 0, 1]).delivery_order(&DEGREES);
        assert_eq!(order, vec![(2, 0), (2, 1), (0, 0), (0, 1), (0, 2), (1, 0)]);
    }

    #[test]
    fn shuffle_is_a_seeded_permutation_of_the_notification_set() {
        let a = BatchSchedule::Shuffled(7).delivery_order(&DEGREES);
        let b = BatchSchedule::Shuffled(7).delivery_order(&DEGREES);
        assert_eq!(a, b, "same seed must replay the same order");
        assert_eq!(
            as_set(a),
            as_set(BatchSchedule::RoundRobin.delivery_order(&DEGREES)),
            "shuffle must cover the notification set exactly"
        );
    }

    #[test]
    fn explicit_replays_verbatim() {
        let pairs = vec![(2, 1), (0, 2), (1, 0), (0, 0), (2, 0), (0, 1)];
        let order = BatchSchedule::Explicit(pairs.clone()).delivery_order(&DEGREES);
        assert_eq!(order, pairs);
    }

    #[test]
    #[should_panic(expected = "not a permutation")]
    fn victim_order_rejects_repeats() {
        BatchSchedule::VictimOrder(vec![0, 0, 1]).delivery_order(&DEGREES);
    }

    #[test]
    #[should_panic(expected = "repeated")]
    fn explicit_rejects_duplicate_deliveries() {
        BatchSchedule::Explicit(vec![(0, 0), (0, 0), (0, 1), (0, 2), (1, 0), (2, 0)])
            .delivery_order(&DEGREES);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn explicit_rejects_out_of_range_slots() {
        BatchSchedule::Explicit(vec![(1, 1), (0, 0), (0, 1), (0, 2), (1, 0), (2, 0)])
            .delivery_order(&DEGREES);
    }

    #[test]
    fn empty_batch_yields_empty_order() {
        assert!(BatchSchedule::RoundRobin.delivery_order(&[]).is_empty());
        assert!(BatchSchedule::Shuffled(3)
            .delivery_order(&[0, 0])
            .is_empty());
    }
}

//! Per-node message accounting.
//!
//! The paper's Theorem 1 bounds *per-node* message counts, so the fabric
//! tracks sent/received per node rather than only aggregates.

/// Message counters maintained automatically by the simulator.
#[derive(Clone, Debug, Default)]
pub struct SimMetrics {
    sent: Vec<u64>,
    received: Vec<u64>,
    /// Messages dropped because the recipient died before delivery.
    pub dropped: u64,
}

impl SimMetrics {
    /// Counters for `n` nodes, all zero.
    pub fn new(n: usize) -> Self {
        SimMetrics {
            sent: vec![0; n],
            received: vec![0; n],
            dropped: 0,
        }
    }

    /// Grow the counter vectors to cover `n` node slots (joins extend
    /// the network); existing counts are preserved, shrinking is a no-op.
    pub fn grow(&mut self, n: usize) {
        if self.sent.len() < n {
            self.sent.resize(n, 0);
            self.received.resize(n, 0);
        }
    }

    /// Record a send by node `v`.
    #[inline]
    pub fn record_sent(&mut self, v: u32) {
        self.sent[v as usize] += 1;
    }

    /// Record a delivery to node `v`.
    #[inline]
    pub fn record_received(&mut self, v: u32) {
        self.received[v as usize] += 1;
    }

    /// Messages sent by `v`.
    pub fn sent(&self, v: u32) -> u64 {
        self.sent[v as usize]
    }

    /// Messages received by `v`.
    pub fn received(&self, v: u32) -> u64 {
        self.received[v as usize]
    }

    /// Sent + received for `v` — the quantity bounded by Lemma 8.
    pub fn traffic(&self, v: u32) -> u64 {
        self.sent(v) + self.received(v)
    }

    /// Total messages sent by all nodes.
    pub fn total_sent(&self) -> u64 {
        self.sent.iter().sum()
    }

    /// Total messages delivered.
    pub fn total_received(&self) -> u64 {
        self.received.iter().sum()
    }

    /// Maximum per-node traffic (sent + received).
    pub fn max_traffic(&self) -> u64 {
        (0..self.sent.len() as u32)
            .map(|v| self.traffic(v))
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut m = SimMetrics::new(3);
        m.record_sent(0);
        m.record_sent(0);
        m.record_received(1);
        assert_eq!(m.sent(0), 2);
        assert_eq!(m.received(1), 1);
        assert_eq!(m.traffic(0), 2);
        assert_eq!(m.total_sent(), 2);
        assert_eq!(m.total_received(), 1);
        assert_eq!(m.max_traffic(), 2);
    }

    #[test]
    fn empty_metrics() {
        let m = SimMetrics::new(0);
        assert_eq!(m.max_traffic(), 0);
        assert_eq!(m.total_sent(), 0);
    }

    #[test]
    fn grow_preserves_counts() {
        let mut m = SimMetrics::new(2);
        m.record_sent(1);
        m.grow(4);
        m.record_sent(3);
        m.record_received(2);
        assert_eq!(m.sent(1), 1);
        assert_eq!(m.sent(3), 1);
        assert_eq!(m.received(2), 1);
        // Shrinking is a no-op.
        m.grow(1);
        assert_eq!(m.total_sent(), 2);
    }
}

//! Logical simulation time.

use std::fmt;
use std::ops::Add;

/// A logical timestamp: the number of unit-latency hops since the
/// simulation started. Message delivery advances time by exactly one unit
/// per hop, so latencies measured in [`SimTime`] are hop counts —
/// matching how the paper states its O(1) / O(log n) latency bounds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    /// Time zero.
    pub const ZERO: SimTime = SimTime(0);

    /// The timestamp one delivery hop later.
    #[inline]
    pub fn next(self) -> SimTime {
        SimTime(self.0 + 1)
    }

    /// Hops elapsed since `earlier`.
    ///
    /// # Panics
    /// Panics in debug builds if `earlier` is later than `self`.
    #[inline]
    pub fn since(self, earlier: SimTime) -> u64 {
        debug_assert!(earlier.0 <= self.0);
        self.0 - earlier.0
    }
}

impl Add<u64> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: u64) -> SimTime {
        SimTime(self.0 + rhs)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_and_arithmetic() {
        let t = SimTime::ZERO;
        assert_eq!(t.next(), SimTime(1));
        assert_eq!(t + 5, SimTime(5));
        assert!(SimTime(3) < SimTime(4));
        assert_eq!(SimTime(9).since(SimTime(4)), 5);
        assert_eq!(format!("{:?} {}", SimTime(2), SimTime(2)), "t2 2");
    }
}

//! Bounded binary event trace.
//!
//! For debugging protocol runs the simulator can record every delivery
//! and topology change into a compact fixed-width binary log (17 bytes
//! per event in a [`bytes::BytesMut`] buffer) with a hard capacity so a
//! runaway protocol cannot exhaust memory.

use crate::time::SimTime;
use bytes::{Buf, BufMut, BytesMut};

/// Kind of a traced event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceKind {
    /// Message delivered from `a` to `b`.
    Deliver = 0,
    /// Node `a` was deleted (`b` unused).
    Kill = 1,
    /// Link `(a, b)` was added.
    Link = 2,
    /// Message from `a` to dead node `b` was dropped.
    Drop = 3,
    /// Node `a` joined the network (`b` = its attachment count).
    Join = 4,
}

/// One decoded trace event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Event kind.
    pub kind: TraceKind,
    /// Timestamp.
    pub time: SimTime,
    /// First operand (sender / victim / endpoint).
    pub a: u32,
    /// Second operand (recipient / endpoint; 0 when unused).
    pub b: u32,
}

const RECORD_BYTES: usize = 1 + 8 + 4 + 4;

/// Fixed-capacity binary ring of simulation events (stops recording when
/// full, counting overflow instead of wrapping, so the *earliest* events —
/// usually the interesting ones when debugging a protocol — survive).
#[derive(Debug)]
pub struct TraceBuffer {
    buf: BytesMut,
    capacity_events: usize,
    recorded: usize,
    /// Events that arrived after the buffer filled up.
    pub overflowed: usize,
}

impl TraceBuffer {
    /// A trace that can hold up to `capacity_events` events.
    pub fn new(capacity_events: usize) -> Self {
        TraceBuffer {
            buf: BytesMut::with_capacity(capacity_events * RECORD_BYTES),
            capacity_events,
            recorded: 0,
            overflowed: 0,
        }
    }

    /// Record an event (silently counted as overflow when full).
    pub fn record(&mut self, kind: TraceKind, time: SimTime, a: u32, b: u32) {
        if self.recorded >= self.capacity_events {
            self.overflowed += 1;
            return;
        }
        self.buf.put_u8(kind as u8);
        self.buf.put_u64(time.0);
        self.buf.put_u32(a);
        self.buf.put_u32(b);
        self.recorded += 1;
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.recorded
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.recorded == 0
    }

    /// Decode all retained events.
    pub fn events(&self) -> Vec<TraceEvent> {
        let mut out = Vec::with_capacity(self.recorded);
        let mut slice = &self.buf[..];
        while slice.remaining() >= RECORD_BYTES {
            let kind = match slice.get_u8() {
                0 => TraceKind::Deliver,
                1 => TraceKind::Kill,
                2 => TraceKind::Link,
                4 => TraceKind::Join,
                _ => TraceKind::Drop,
            };
            let time = SimTime(slice.get_u64());
            let a = slice.get_u32();
            let b = slice.get_u32();
            out.push(TraceEvent { kind, time, a, b });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let mut t = TraceBuffer::new(10);
        t.record(TraceKind::Kill, SimTime(1), 5, 0);
        t.record(TraceKind::Link, SimTime(2), 3, 4);
        t.record(TraceKind::Deliver, SimTime(3), 3, 4);
        t.record(TraceKind::Drop, SimTime(4), 1, 5);
        t.record(TraceKind::Join, SimTime(5), 6, 2);
        let ev = t.events();
        assert_eq!(ev.len(), 5);
        assert_eq!(
            ev[0],
            TraceEvent {
                kind: TraceKind::Kill,
                time: SimTime(1),
                a: 5,
                b: 0
            }
        );
        assert_eq!(ev[1].kind, TraceKind::Link);
        assert_eq!(ev[3].kind, TraceKind::Drop);
        assert_eq!(ev[4].kind, TraceKind::Join);
        assert_eq!(ev[4].b, 2);
    }

    #[test]
    fn capacity_is_enforced() {
        let mut t = TraceBuffer::new(2);
        for i in 0..5 {
            t.record(TraceKind::Deliver, SimTime(i), i as u32, 0);
        }
        assert_eq!(t.len(), 2);
        assert_eq!(t.overflowed, 3);
        assert_eq!(t.events().len(), 2);
        assert_eq!(t.events()[0].time, SimTime(0));
    }

    #[test]
    fn empty_trace() {
        let t = TraceBuffer::new(4);
        assert!(t.is_empty());
        assert!(t.events().is_empty());
    }
}

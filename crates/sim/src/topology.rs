//! The simulator's own lightweight view of the network topology.
//!
//! The simulator is deliberately independent of `selfheal-graph`: a
//! protocol under test *is allowed* to keep richer graph state, but the
//! fabric only needs to know who is alive and who can talk to whom. Kept
//! minimal: sorted adjacency vectors with tombstoned deletion, plus
//! [`Topology::add_node`] so reconfiguration streams can grow the
//! network as well as shrink it.
//!
//! Accessor contract: every **read** accessor is total — out-of-range
//! ids report "not alive", an empty neighbor list, or "no edge" instead
//! of panicking, so protocols and runners can probe stale references
//! safely. The **write** path ([`Topology::add_edge`],
//! [`Topology::kill`]) panics on dead or out-of-range ids: a mutation
//! aimed at a node that does not exist is always a protocol bug, and the
//! fabric fails loudly rather than masking it.

/// Adjacency view used by the simulation fabric.
#[derive(Clone, Debug)]
pub struct Topology {
    adj: Vec<Vec<u32>>,
    alive: Vec<bool>,
    live: usize,
}

impl Topology {
    /// `n` isolated live nodes.
    pub fn new(n: usize) -> Self {
        Topology {
            adj: vec![Vec::new(); n],
            alive: vec![true; n],
            live: n,
        }
    }

    /// Build from an undirected edge list over `n` nodes.
    ///
    /// Duplicate edges and self-loops are ignored. A degree-counting
    /// first pass sizes every adjacency column up front, so the sorted
    /// inserts below never reallocate — building a mirror of a large
    /// `selfheal-graph` network costs one allocation per node, not
    /// O(log degree) growth reallocations each.
    pub fn from_edges(n: usize, edges: &[(u32, u32)]) -> Self {
        let mut t = Topology::new(n);
        let mut degree = vec![0usize; n];
        for &(a, b) in edges {
            if a != b && (a as usize) < n && (b as usize) < n {
                degree[a as usize] += 1;
                degree[b as usize] += 1;
            }
        }
        for (col, d) in t.adj.iter_mut().zip(degree) {
            col.reserve_exact(d);
        }
        for &(a, b) in edges {
            t.add_edge(a, b);
        }
        t
    }

    /// Number of node slots.
    pub fn len(&self) -> usize {
        self.adj.len()
    }

    /// Append a fresh live, isolated node; returns its id.
    ///
    /// Dead slots are never recycled — ids stay stable forever, matching
    /// `selfheal-graph`'s tombstoned `Graph::add_node`.
    pub fn add_node(&mut self) -> u32 {
        let v = self.adj.len() as u32;
        self.adj.push(Vec::new());
        self.alive.push(true);
        self.live += 1;
        v
    }

    /// Whether there are no node slots.
    pub fn is_empty(&self) -> bool {
        self.adj.is_empty()
    }

    /// Number of live nodes.
    pub fn live_count(&self) -> usize {
        self.live
    }

    /// Whether node `v` is live. Total: out-of-range ids are not alive.
    pub fn is_alive(&self, v: u32) -> bool {
        (v as usize) < self.alive.len() && self.alive[v as usize]
    }

    /// Sorted live neighbors of `v`. Total: dead and out-of-range ids
    /// have no neighbors.
    pub fn neighbors(&self, v: u32) -> &[u32] {
        self.adj.get(v as usize).map_or(&[], Vec::as_slice)
    }

    /// Whether the link `(u, v)` exists. Total: any endpoint that is
    /// dead or out of range has no incident edges.
    pub fn has_edge(&self, u: u32, v: u32) -> bool {
        self.adj
            .get(u as usize)
            .is_some_and(|nbrs| nbrs.binary_search(&v).is_ok())
    }

    /// Add the link `(u, v)`; returns `true` if it was new.
    ///
    /// # Panics
    /// Panics if either endpoint is dead or out of range, or `u == v`.
    pub fn add_edge(&mut self, u: u32, v: u32) -> bool {
        assert!(u != v, "self-loop at {u}");
        assert!(self.is_alive(u), "dead or invalid endpoint {u}");
        assert!(self.is_alive(v), "dead or invalid endpoint {v}");
        match self.adj[u as usize].binary_search(&v) {
            Ok(_) => false,
            Err(pu) => {
                let pv = self.adj[v as usize].binary_search(&u).unwrap_err();
                self.adj[u as usize].insert(pu, v);
                self.adj[v as usize].insert(pv, u);
                true
            }
        }
    }

    /// Kill node `v`, detaching all links; returns its former neighbors.
    ///
    /// # Panics
    /// Panics if `v` is already dead or out of range.
    pub fn kill(&mut self, v: u32) -> Vec<u32> {
        let mut nbrs = Vec::new();
        self.kill_into(v, &mut nbrs);
        nbrs
    }

    /// [`Topology::kill`] writing the former neighbors into a
    /// caller-owned buffer (cleared first), mirroring the core crate's
    /// `_into` hot-path convention so delete-heavy simulation runs reuse
    /// one buffer across kills. The dead node's own column is freed —
    /// tombstoned slots are never revisited, so holding its capacity
    /// would only leak.
    ///
    /// # Panics
    /// Panics if `v` is already dead or out of range.
    pub fn kill_into(&mut self, v: u32, out: &mut Vec<u32>) {
        assert!(self.is_alive(v), "kill of dead or invalid node {v}");
        out.clear();
        out.extend_from_slice(&self.adj[v as usize]);
        drop(std::mem::take(&mut self.adj[v as usize]));
        for &u in out.iter() {
            let pos = self.adj[u as usize]
                .binary_search(&v)
                // panic-ok: adjacency symmetry is a structural invariant
                // of every mutation; asymmetry is unrecoverable.
                .expect("asymmetric adjacency");
            self.adj[u as usize].remove(pos);
        }
        self.alive[v as usize] = false;
        self.live -= 1;
    }

    /// Iterator over live node indices.
    pub fn live_nodes(&self) -> impl Iterator<Item = u32> + '_ {
        self.alive
            .iter()
            .enumerate()
            .filter(|(_, &a)| a)
            .map(|(i, _)| i as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_kill() {
        let mut t = Topology::from_edges(4, &[(0, 1), (1, 2), (2, 3), (1, 2)]);
        assert_eq!(t.live_count(), 4);
        assert!(t.has_edge(1, 2));
        let nbrs = t.kill(1);
        assert_eq!(nbrs, vec![0, 2]);
        assert!(!t.is_alive(1));
        assert!(!t.has_edge(0, 1));
        assert_eq!(t.live_count(), 3);
        assert_eq!(t.live_nodes().collect::<Vec<_>>(), vec![0, 2, 3]);
    }

    #[test]
    fn add_edge_dedups() {
        let mut t = Topology::new(3);
        assert!(t.add_edge(0, 2));
        assert!(!t.add_edge(2, 0));
        assert_eq!(t.neighbors(0), &[2]);
    }

    #[test]
    #[should_panic]
    fn add_edge_to_dead_panics() {
        let mut t = Topology::new(3);
        t.kill(1);
        t.add_edge(0, 1);
    }

    #[test]
    fn read_accessors_are_total() {
        let mut t = Topology::from_edges(3, &[(0, 1)]);
        // Out of range: false-y, never panicking.
        assert!(!t.is_alive(99));
        assert_eq!(t.neighbors(99), &[] as &[u32]);
        assert!(!t.has_edge(99, 0));
        assert!(!t.has_edge(0, 99));
        // Dead nodes read as isolated.
        t.kill(1);
        assert_eq!(t.neighbors(1), &[] as &[u32]);
        assert!(!t.has_edge(0, 1));
        assert!(!t.has_edge(1, 0));
    }

    #[test]
    fn add_node_appends_live_slots() {
        let mut t = Topology::from_edges(2, &[(0, 1)]);
        t.kill(0);
        let v = t.add_node();
        assert_eq!(v, 2);
        assert_eq!(t.len(), 3);
        assert_eq!(t.live_count(), 2);
        assert!(t.is_alive(v));
        assert_eq!(t.neighbors(v), &[] as &[u32]);
        // Dead slot 0 is not recycled.
        assert!(!t.is_alive(0));
        assert!(t.add_edge(v, 1));
        assert_eq!(t.neighbors(1), &[2]);
    }

    #[test]
    #[should_panic]
    fn double_kill_panics() {
        let mut t = Topology::new(2);
        t.kill(0);
        t.kill(0);
    }
}

//! Message envelopes.

use crate::time::SimTime;

/// A message in flight, addressed by dense node index.
#[derive(Clone, Debug)]
pub struct Envelope<M> {
    /// Global sequence number: assigned at send time, used to break
    /// delivery ties deterministically (FIFO per send order).
    pub seq: u64,
    /// Delivery timestamp.
    pub deliver_at: SimTime,
    /// Sender node index.
    pub from: u32,
    /// Recipient node index.
    pub to: u32,
    /// Protocol payload.
    pub payload: M,
}

impl<M> Envelope<M> {
    /// Ordering key: by time, then by send sequence.
    #[inline]
    pub fn key(&self) -> (SimTime, u64) {
        (self.deliver_at, self.seq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_orders_by_time_then_seq() {
        let a = Envelope {
            seq: 5,
            deliver_at: SimTime(1),
            from: 0,
            to: 1,
            payload: (),
        };
        let b = Envelope {
            seq: 2,
            deliver_at: SimTime(2),
            from: 0,
            to: 1,
            payload: (),
        };
        let c = Envelope {
            seq: 9,
            deliver_at: SimTime(1),
            from: 0,
            to: 1,
            payload: (),
        };
        assert!(a.key() < b.key());
        assert!(a.key() < c.key());
        assert!(c.key() < b.key());
    }
}

//! The protocol trait and the context handle protocols use to act on the
//! world.

use crate::metrics::SimMetrics;
use crate::rng::SplitMix64;
use crate::scheduler::EventQueue;
use crate::time::SimTime;
use crate::topology::Topology;
use crate::trace::{TraceBuffer, TraceKind};

/// Message delay model.
///
/// The paper's latency claims assume synchronous unit-latency delivery
/// ([`LatencyModel::Unit`]); [`LatencyModel::Jitter`] adds an adversarial
/// per-message delay of up to `max_extra` additional hops (seeded, so
/// still deterministic) — used to show DASH's ID broadcast converges to
/// the same fixed point under asynchrony.
#[derive(Clone, Debug)]
pub enum LatencyModel {
    /// Every message takes exactly one hop.
    Unit,
    /// Each message takes `1 + uniform(0..=max_extra)` hops.
    Jitter {
        /// Deterministic delay source.
        rng: SplitMix64,
        /// Maximum extra hops added to a delivery.
        max_extra: u64,
    },
}

impl LatencyModel {
    /// Delay (in hops) for the next message.
    pub fn next_delay(&mut self) -> u64 {
        match self {
            LatencyModel::Unit => 1,
            LatencyModel::Jitter { rng, max_extra } => 1 + rng.gen_range(*max_extra + 1),
        }
    }
}

/// Information made available to the neighbors of a deleted node.
///
/// The paper assumes neighbor-of-neighbor (NoN) knowledge: when `deleted`
/// dies, each former neighbor already knows the full list of its fellow
/// former neighbors (maintained out-of-band by standard techniques, refs
/// [14, 18] in the paper, and not charged to the healing algorithm).
#[derive(Clone, Debug)]
pub struct DeletionInfo {
    /// The node that was deleted.
    pub deleted: u32,
    /// Its neighbor list at the moment of deletion, sorted.
    pub former_neighbors: Vec<u32>,
    /// `true` when the deletion is part of a simultaneous batch
    /// ([`crate::Simulator::delete_batch`]): other victims died in the
    /// same instant and notifications for different victims interleave.
    /// Batch-safe protocols defer their per-victim healing (see
    /// [`Protocol::on_quiescent`]) so each victim's reconnection and
    /// broadcast complete before the next victim's heal reads shared
    /// state — the synchronous-rounds structure the paper's per-round
    /// accounting (Lemmas 7–8) assumes.
    pub simultaneous: bool,
}

/// Handle through which a protocol sends messages and rewires links.
///
/// Splitting the simulator internals into this context keeps the borrow
/// checker happy: the protocol state and the fabric are disjoint borrows.
pub struct Ctx<'a, M> {
    pub(crate) topology: &'a mut Topology,
    pub(crate) queue: &'a mut EventQueue<M>,
    pub(crate) metrics: &'a mut SimMetrics,
    pub(crate) trace: Option<&'a mut TraceBuffer>,
    pub(crate) latency: &'a mut LatencyModel,
    pub(crate) now: SimTime,
}

impl<'a, M> Ctx<'a, M> {
    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Send `msg` from `me` to `to`; delivery delay comes from the
    /// simulator's [`LatencyModel`] (one hop by default).
    ///
    /// The send is counted against `me` immediately; delivery (and the
    /// recipient's counter) happens when the event fires. Messages to
    /// nodes that die in flight are dropped at delivery time.
    pub fn send(&mut self, me: u32, to: u32, msg: M) {
        debug_assert!(self.topology.is_alive(me), "dead sender {me}");
        self.metrics.record_sent(me);
        let deliver_at = self.now + self.latency.next_delay();
        self.queue.push(me, to, deliver_at, msg);
    }

    /// Add the undirected link `(u, v)`; returns `true` if it was new.
    ///
    /// Healing algorithms may only call this for pairs of former
    /// neighbors of a deleted node — the simulator does not police that
    /// (locality is the *algorithm's* contract), but the trace records
    /// every link for post-hoc auditing.
    pub fn add_link(&mut self, u: u32, v: u32) -> bool {
        let added = self.topology.add_edge(u, v);
        if added {
            if let Some(tr) = self.trace.as_deref_mut() {
                tr.record(TraceKind::Link, self.now, u, v);
            }
        }
        added
    }

    /// Sorted live neighbors of `v`.
    pub fn neighbors(&self, v: u32) -> &[u32] {
        self.topology.neighbors(v)
    }

    /// Whether `v` is alive.
    pub fn is_alive(&self, v: u32) -> bool {
        self.topology.is_alive(v)
    }
}

/// A distributed protocol under simulation.
///
/// One value of the implementing type holds the state of *all* nodes
/// (indexed by dense node id); the fabric invokes the callbacks for one
/// node at a time. This "columnar" arrangement avoids per-node boxing and
/// keeps cross-node assertions (used heavily in tests) cheap — while the
/// callbacks still only touch the invoked node's row, preserving the
/// distributed-locality discipline.
pub trait Protocol {
    /// Message payload type.
    type Msg: Clone + std::fmt::Debug;

    /// Invoked once per live node before the simulation starts.
    fn on_init(&mut self, _ctx: &mut Ctx<'_, Self::Msg>, _me: u32) {}

    /// Invoked on each former neighbor of a deleted node, immediately
    /// after the deletion. For a single deletion
    /// ([`crate::Simulator::delete_node`]) the notifications arrive in
    /// increasing id order; for a simultaneous batch
    /// ([`crate::Simulator::delete_batch`]) notifications for *different
    /// victims interleave* in whatever order the active
    /// [`BatchSchedule`](crate::BatchSchedule) dictates (round-robin
    /// across victims by default), so implementations must be
    /// batch-safe: track coordination per victim, never through a single
    /// "last seen" slot, and never depend on the delivery order.
    fn on_neighbor_deleted(&mut self, ctx: &mut Ctx<'_, Self::Msg>, me: u32, info: &DeletionInfo);

    /// Invoked when a message is delivered to `me`.
    fn on_message(&mut self, ctx: &mut Ctx<'_, Self::Msg>, me: u32, from: u32, msg: Self::Msg);

    /// Invoked on a node that just joined the network
    /// ([`crate::Simulator::join_node`]), after its attachment edges are
    /// live. `neighbors` is the sorted attachment list. Protocols with
    /// per-node state must grow it here. Default: no-op.
    fn on_join(&mut self, _ctx: &mut Ctx<'_, Self::Msg>, _me: u32, _neighbors: &[u32]) {}

    /// Invoked by [`crate::Simulator::run_to_quiescence`] whenever the
    /// event queue drains. Return `true` if the protocol performed more
    /// work (the drain continues), `false` when it is truly quiescent.
    ///
    /// This is the fabric's synchronous-round barrier: a batch-safe
    /// protocol parks the healing work it deferred during interleaved
    /// deletion notifications and performs it here one victim at a time,
    /// so each victim's reconnection plus ID broadcast completes before
    /// the next heal reads component state. Default: always quiescent.
    fn on_quiescent(&mut self, _ctx: &mut Ctx<'_, Self::Msg>) -> bool {
        false
    }
}

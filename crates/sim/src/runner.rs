//! The simulation driver.

use crate::metrics::SimMetrics;
use crate::protocol::{Ctx, DeletionInfo, LatencyModel, Protocol};
use crate::schedule::BatchSchedule;
use crate::scheduler::EventQueue;
use crate::time::SimTime;
use crate::topology::Topology;
use crate::trace::{TraceBuffer, TraceKind};

/// Result of driving the event queue to quiescence.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct QuiescenceReport {
    /// Messages delivered during this drain.
    pub delivered: u64,
    /// Messages dropped (recipient died in flight).
    pub dropped: u64,
    /// Hops of latency the drain took (0 if nothing was in flight).
    pub latency: u64,
}

/// A deterministic discrete-event simulation of a [`Protocol`] over a
/// [`Topology`].
///
/// # Examples
/// A one-shot flood protocol (every node forwards the first token it sees):
/// ```
/// use selfheal_sim::{Simulator, Topology, Protocol, Ctx, DeletionInfo};
///
/// struct Flood { seen: Vec<bool> }
/// impl Protocol for Flood {
///     type Msg = ();
///     fn on_neighbor_deleted(&mut self, _: &mut Ctx<'_, ()>, _: u32, _: &DeletionInfo) {}
///     fn on_message(&mut self, ctx: &mut Ctx<'_, ()>, me: u32, _from: u32, _msg: ()) {
///         if !self.seen[me as usize] {
///             self.seen[me as usize] = true;
///             for &n in ctx.neighbors(me).to_vec().iter() {
///                 ctx.send(me, n, ());
///             }
///         }
///     }
/// }
///
/// let topo = Topology::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
/// let mut sim = Simulator::new(topo, Flood { seen: vec![false; 4] });
/// sim.inject(0, 0, ()); // seed the flood
/// let report = sim.run_to_quiescence();
/// assert!(sim.protocol.seen.iter().all(|&s| s));
/// // seed hop + 3 forwarding hops + the last node's redundant echo
/// assert_eq!(report.latency, 5);
/// ```
pub struct Simulator<P: Protocol> {
    /// The network fabric.
    pub topology: Topology,
    /// Protocol state (all nodes).
    pub protocol: P,
    /// Per-node message counters.
    pub metrics: SimMetrics,
    queue: EventQueue<P::Msg>,
    trace: Option<TraceBuffer>,
    latency: LatencyModel,
    now: SimTime,
    batch_schedule: BatchSchedule,
}

impl<P: Protocol> Simulator<P> {
    /// Build a simulator; calls [`Protocol::on_init`] on every live node.
    pub fn new(topology: Topology, protocol: P) -> Self {
        let n = topology.len();
        let mut sim = Simulator {
            topology,
            protocol,
            metrics: SimMetrics::new(n),
            queue: EventQueue::new(),
            trace: None,
            latency: LatencyModel::Unit,
            now: SimTime::ZERO,
            batch_schedule: BatchSchedule::default(),
        };
        let live: Vec<u32> = sim.topology.live_nodes().collect();
        for v in live {
            let mut ctx = Ctx {
                topology: &mut sim.topology,
                queue: &mut sim.queue,
                metrics: &mut sim.metrics,
                trace: sim.trace.as_mut(),
                latency: &mut sim.latency,
                now: sim.now,
            };
            sim.protocol.on_init(&mut ctx, v);
        }
        sim
    }

    /// Enable event tracing with the given capacity.
    pub fn enable_trace(&mut self, capacity_events: usize) {
        self.trace = Some(TraceBuffer::new(capacity_events));
    }

    /// The recorded trace, if tracing was enabled.
    pub fn trace(&self) -> Option<&TraceBuffer> {
        self.trace.as_ref()
    }

    /// Switch to adversarial asynchronous delivery: each message takes
    /// `1 + uniform(0..=max_extra)` hops, deterministically per seed.
    pub fn set_latency_jitter(&mut self, seed: u64, max_extra: u64) {
        self.latency = LatencyModel::Jitter {
            rng: crate::rng::SplitMix64::new(seed),
            max_extra,
        };
    }

    /// Choose the delivery order of batch-deletion notifications for
    /// every subsequent [`delete_batch`](Self::delete_batch). The default
    /// is [`BatchSchedule::RoundRobin`], the fabric's historical
    /// interleaving.
    pub fn set_batch_schedule(&mut self, schedule: BatchSchedule) {
        self.batch_schedule = schedule;
    }

    /// The currently active batch-notification schedule.
    pub fn batch_schedule(&self) -> &BatchSchedule {
        &self.batch_schedule
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Messages currently in flight.
    pub fn in_flight(&self) -> usize {
        self.queue.len()
    }

    /// Inject a message from outside the protocol (e.g. to seed a flood).
    pub fn inject(&mut self, from: u32, to: u32, msg: P::Msg) {
        self.metrics.record_sent(from);
        self.queue.push(from, to, self.now.next(), msg);
    }

    /// Delete node `v`: remove it from the fabric and notify each former
    /// neighbor (in increasing id order) with the same [`DeletionInfo`].
    ///
    /// # Panics
    /// Panics if `v` is dead or out of range.
    pub fn delete_node(&mut self, v: u32) -> DeletionInfo {
        let former = self.topology.kill(v);
        if let Some(tr) = self.trace.as_mut() {
            tr.record(TraceKind::Kill, self.now, v, 0);
        }
        let info = DeletionInfo {
            deleted: v,
            former_neighbors: former.clone(),
            simultaneous: false,
        };
        for &u in &former {
            let mut ctx = Ctx {
                topology: &mut self.topology,
                queue: &mut self.queue,
                metrics: &mut self.metrics,
                trace: self.trace.as_mut(),
                latency: &mut self.latency,
                now: self.now,
            };
            self.protocol.on_neighbor_deleted(&mut ctx, u, &info);
        }
        info
    }

    /// Delete an independent set of victims *simultaneously* (the paper's
    /// footnote-1 batch model): every victim is removed from the fabric
    /// before any notification fires, and the per-neighbor notifications
    /// then land in the order the active [`BatchSchedule`] dictates —
    /// round-robin across victims by default (neighbor 1 of victim A,
    /// neighbor 1 of victim B, neighbor 2 of victim A, …), the delivery
    /// pattern a real fabric would produce when several nodes die in the
    /// same instant. Each notification carries `simultaneous: true`, so
    /// batch-safe protocols defer their heals to the
    /// [`Protocol::on_quiescent`] barrier.
    ///
    /// Returns one [`DeletionInfo`] per victim, in input order.
    ///
    /// # Panics
    /// Panics if any victim is dead, out of range, repeated, or adjacent
    /// to another victim — a dependent batch breaks the
    /// neighbor-of-neighbor knowledge assumption, so the fabric refuses
    /// it loudly (callers sanitize, mirroring the scenario engine).
    pub fn delete_batch(&mut self, victims: &[u32]) -> Vec<DeletionInfo> {
        for (i, &v) in victims.iter().enumerate() {
            assert!(self.topology.is_alive(v), "batch victim {v} is dead");
            for &u in &victims[..i] {
                assert!(u != v, "batch victim {v} repeated");
                assert!(
                    !self.topology.has_edge(u, v),
                    "batch victims {u} and {v} are adjacent; the batch must be independent"
                );
            }
        }
        // Phase 1: all victims die before anyone is told.
        let infos: Vec<DeletionInfo> = victims
            .iter()
            .map(|&v| {
                let former = self.topology.kill(v);
                if let Some(tr) = self.trace.as_mut() {
                    tr.record(TraceKind::Kill, self.now, v, 0);
                }
                DeletionInfo {
                    deleted: v,
                    former_neighbors: former,
                    simultaneous: true,
                }
            })
            .collect();
        // Phase 2: notifications land in schedule order (round-robin
        // across victims by default).
        let degrees: Vec<usize> = infos.iter().map(|i| i.former_neighbors.len()).collect();
        for (v, slot) in self.batch_schedule.delivery_order(&degrees) {
            let info = &infos[v];
            let u = info.former_neighbors[slot];
            let mut ctx = Ctx {
                topology: &mut self.topology,
                queue: &mut self.queue,
                metrics: &mut self.metrics,
                trace: self.trace.as_mut(),
                latency: &mut self.latency,
                now: self.now,
            };
            self.protocol.on_neighbor_deleted(&mut ctx, u, info);
        }
        infos
    }

    /// A new node joins the network, attached to the given live nodes,
    /// and the protocol is told via [`Protocol::on_join`]. Returns the
    /// joiner's id (node slots are append-only, matching
    /// [`Topology::add_node`]).
    ///
    /// # Panics
    /// Panics if any attachment target is dead, out of range, or
    /// repeated (callers sanitize, mirroring the scenario engine).
    pub fn join_node(&mut self, neighbors: &[u32]) -> u32 {
        for (i, &u) in neighbors.iter().enumerate() {
            assert!(self.topology.is_alive(u), "join target {u} is dead");
            assert!(!neighbors[..i].contains(&u), "join target {u} repeated");
        }
        let v = self.topology.add_node();
        for &u in neighbors {
            self.topology.add_edge(v, u);
        }
        self.metrics.grow(self.topology.len());
        if let Some(tr) = self.trace.as_mut() {
            tr.record(TraceKind::Join, self.now, v, neighbors.len() as u32);
        }
        let mut ctx = Ctx {
            topology: &mut self.topology,
            queue: &mut self.queue,
            metrics: &mut self.metrics,
            trace: self.trace.as_mut(),
            latency: &mut self.latency,
            now: self.now,
        };
        self.protocol.on_join(&mut ctx, v, neighbors);
        v
    }

    /// Drain the event queue until no messages are in flight **and** the
    /// protocol reports quiescence: whenever the queue empties,
    /// [`Protocol::on_quiescent`] is offered the barrier — if it performs
    /// deferred work (e.g. heals the next victim of a simultaneous
    /// batch), draining resumes; only when it declines is the run over.
    ///
    /// Time advances to the delivery timestamp of each message; the
    /// returned latency is the number of hops between the first and last
    /// activity in this drain.
    pub fn run_to_quiescence(&mut self) -> QuiescenceReport {
        let start = self.now;
        let mut delivered = 0u64;
        let mut dropped = 0u64;
        loop {
            while let Some(env) = self.queue.pop() {
                self.now = env.deliver_at;
                if !self.topology.is_alive(env.to) {
                    dropped += 1;
                    self.metrics.dropped += 1;
                    if let Some(tr) = self.trace.as_mut() {
                        tr.record(TraceKind::Drop, self.now, env.from, env.to);
                    }
                    continue;
                }
                delivered += 1;
                self.metrics.record_received(env.to);
                if let Some(tr) = self.trace.as_mut() {
                    tr.record(TraceKind::Deliver, self.now, env.from, env.to);
                }
                let mut ctx = Ctx {
                    topology: &mut self.topology,
                    queue: &mut self.queue,
                    metrics: &mut self.metrics,
                    trace: self.trace.as_mut(),
                    latency: &mut self.latency,
                    now: self.now,
                };
                self.protocol
                    .on_message(&mut ctx, env.to, env.from, env.payload);
            }
            let mut ctx = Ctx {
                topology: &mut self.topology,
                queue: &mut self.queue,
                metrics: &mut self.metrics,
                trace: self.trace.as_mut(),
                latency: &mut self.latency,
                now: self.now,
            };
            if !self.protocol.on_quiescent(&mut ctx) {
                break;
            }
        }
        QuiescenceReport {
            delivered,
            dropped,
            latency: self.now.since(start),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Flood protocol that also records the hop distance at which each
    /// node first saw the token.
    struct DistFlood {
        dist: Vec<Option<u64>>,
        origin: SimTime,
    }

    impl Protocol for DistFlood {
        type Msg = ();
        fn on_neighbor_deleted(&mut self, _: &mut Ctx<'_, ()>, _: u32, _: &DeletionInfo) {}
        fn on_message(&mut self, ctx: &mut Ctx<'_, ()>, me: u32, _from: u32, _msg: ()) {
            if self.dist[me as usize].is_none() {
                self.dist[me as usize] = Some(ctx.now().since(self.origin));
                let nbrs: Vec<u32> = ctx.neighbors(me).to_vec();
                for n in nbrs {
                    ctx.send(me, n, ());
                }
            }
        }
    }

    fn path_topology(n: usize) -> Topology {
        let edges: Vec<(u32, u32)> = (1..n as u32).map(|i| (i - 1, i)).collect();
        Topology::from_edges(n, &edges)
    }

    #[test]
    fn flood_distances_match_bfs() {
        let mut sim = Simulator::new(
            path_topology(6),
            DistFlood {
                dist: vec![None; 6],
                origin: SimTime::ZERO,
            },
        );
        sim.inject(0, 0, ());
        let report = sim.run_to_quiescence();
        // Node i is reached at hop i + 1 (the injection itself costs one hop).
        for i in 0..6u32 {
            assert_eq!(sim.protocol.dist[i as usize], Some(i as u64 + 1));
        }
        // Node 5 is reached at hop 6 and its redundant send back to node
        // 4 is delivered (and ignored) at hop 7.
        assert_eq!(report.latency, 7);
        assert_eq!(report.dropped, 0);
        // Each node sends to all neighbors once: node degrees on a path
        // are 1,2,2,2,2,1 => 10 sends plus the injection.
        assert_eq!(sim.metrics.total_sent(), 11);
    }

    #[test]
    fn messages_to_dead_nodes_are_dropped() {
        let mut sim = Simulator::new(
            path_topology(3),
            DistFlood {
                dist: vec![None; 3],
                origin: SimTime::ZERO,
            },
        );
        sim.inject(0, 0, ());
        sim.inject(0, 2, ());
        sim.delete_node(2);
        let report = sim.run_to_quiescence();
        assert!(report.dropped >= 1);
        assert_eq!(sim.metrics.dropped, report.dropped);
        assert_eq!(sim.protocol.dist[2], None);
    }

    #[test]
    fn deletion_notifies_neighbors_in_order() {
        struct Recorder {
            calls: Vec<(u32, u32)>,
        }
        impl Protocol for Recorder {
            type Msg = ();
            fn on_neighbor_deleted(&mut self, _: &mut Ctx<'_, ()>, me: u32, info: &DeletionInfo) {
                self.calls.push((me, info.deleted));
            }
            fn on_message(&mut self, _: &mut Ctx<'_, ()>, _: u32, _: u32, _: ()) {}
        }
        let topo = Topology::from_edges(4, &[(1, 0), (1, 2), (1, 3)]);
        let mut sim = Simulator::new(topo, Recorder { calls: vec![] });
        let info = sim.delete_node(1);
        assert_eq!(info.former_neighbors, vec![0, 2, 3]);
        assert_eq!(sim.protocol.calls, vec![(0, 1), (2, 1), (3, 1)]);
    }

    #[test]
    fn batch_notifications_interleave_round_robin() {
        struct Recorder {
            calls: Vec<(u32, u32, bool)>,
            other_victim_alive: Vec<bool>,
        }
        impl Protocol for Recorder {
            type Msg = ();
            fn on_neighbor_deleted(&mut self, ctx: &mut Ctx<'_, ()>, me: u32, info: &DeletionInfo) {
                self.calls.push((me, info.deleted, info.simultaneous));
                let other = if info.deleted == 1 { 4 } else { 1 };
                self.other_victim_alive.push(ctx.is_alive(other));
            }
            fn on_message(&mut self, _: &mut Ctx<'_, ()>, _: u32, _: u32, _: ()) {}
        }
        // Victim 1 has neighbors {0, 2, 3}; victim 4 has {5, 6}.
        let topo = Topology::from_edges(7, &[(1, 0), (1, 2), (1, 3), (4, 5), (4, 6)]);
        let mut sim = Simulator::new(
            topo,
            Recorder {
                calls: vec![],
                other_victim_alive: vec![],
            },
        );
        let infos = sim.delete_batch(&[1, 4]);
        assert_eq!(infos[0].former_neighbors, vec![0, 2, 3]);
        assert_eq!(infos[1].former_neighbors, vec![5, 6]);
        // Round-robin across victims, flagged simultaneous.
        assert_eq!(
            sim.protocol.calls,
            vec![
                (0, 1, true),
                (5, 4, true),
                (2, 1, true),
                (6, 4, true),
                (3, 1, true)
            ]
        );
        // Simultaneity: the other victim was already dead in every callback.
        assert!(sim.protocol.other_victim_alive.iter().all(|&a| !a));
    }

    #[test]
    fn batch_schedule_hook_controls_notification_order() {
        struct Recorder {
            calls: Vec<(u32, u32)>,
        }
        impl Protocol for Recorder {
            type Msg = ();
            fn on_neighbor_deleted(&mut self, _: &mut Ctx<'_, ()>, me: u32, info: &DeletionInfo) {
                self.calls.push((me, info.deleted));
            }
            fn on_message(&mut self, _: &mut Ctx<'_, ()>, _: u32, _: u32, _: ()) {}
        }
        let build = || {
            let topo = Topology::from_edges(7, &[(1, 0), (1, 2), (1, 3), (4, 5), (4, 6)]);
            Simulator::new(topo, Recorder { calls: vec![] })
        };

        let mut sim = build();
        sim.set_batch_schedule(BatchSchedule::VictimMajor);
        sim.delete_batch(&[1, 4]);
        assert_eq!(
            sim.protocol.calls,
            vec![(0, 1), (2, 1), (3, 1), (5, 4), (6, 4)]
        );

        let mut sim = build();
        sim.set_batch_schedule(BatchSchedule::VictimOrder(vec![1, 0]));
        sim.delete_batch(&[1, 4]);
        assert_eq!(
            sim.protocol.calls,
            vec![(5, 4), (6, 4), (0, 1), (2, 1), (3, 1)]
        );

        let mut sim = build();
        sim.set_batch_schedule(BatchSchedule::Explicit(vec![
            (0, 2),
            (1, 1),
            (0, 0),
            (1, 0),
            (0, 1),
        ]));
        sim.delete_batch(&[1, 4]);
        assert_eq!(
            sim.protocol.calls,
            vec![(3, 1), (6, 4), (0, 1), (5, 4), (2, 1)]
        );
    }

    #[test]
    #[should_panic(expected = "adjacent")]
    fn dependent_batch_is_refused() {
        let mut sim = Simulator::new(
            path_topology(3),
            DistFlood {
                dist: vec![None; 3],
                origin: SimTime::ZERO,
            },
        );
        sim.delete_batch(&[0, 1]);
    }

    #[test]
    fn join_grows_fabric_and_notifies_protocol() {
        struct JoinRec {
            joins: Vec<(u32, Vec<u32>)>,
        }
        impl Protocol for JoinRec {
            type Msg = ();
            fn on_neighbor_deleted(&mut self, _: &mut Ctx<'_, ()>, _: u32, _: &DeletionInfo) {}
            fn on_message(&mut self, _: &mut Ctx<'_, ()>, _: u32, _: u32, _: ()) {}
            fn on_join(&mut self, ctx: &mut Ctx<'_, ()>, me: u32, neighbors: &[u32]) {
                self.joins.push((me, neighbors.to_vec()));
                // Attachment edges are already live at hook time.
                for &u in neighbors {
                    assert!(ctx.neighbors(me).contains(&u));
                }
            }
        }
        let mut sim = Simulator::new(path_topology(3), JoinRec { joins: vec![] });
        sim.enable_trace(8);
        let v = sim.join_node(&[0, 2]);
        assert_eq!(v, 3);
        assert_eq!(sim.protocol.joins, vec![(3, vec![0, 2])]);
        assert_eq!(sim.topology.neighbors(3), &[0, 2]);
        // Metrics grew with the fabric: counting for the joiner works.
        sim.inject(v, 0, ());
        assert_eq!(sim.metrics.sent(v), 1);
        let trace = sim.trace().unwrap().events();
        assert_eq!(trace.last().unwrap().kind, TraceKind::Join);
    }

    #[test]
    fn quiescence_barrier_drives_deferred_work() {
        /// Defers two floods; each on_quiescent call releases one.
        struct Deferred {
            pending: Vec<u32>,
            rounds: Vec<u64>,
        }
        impl Protocol for Deferred {
            type Msg = ();
            fn on_neighbor_deleted(&mut self, _: &mut Ctx<'_, ()>, _: u32, _: &DeletionInfo) {}
            fn on_message(&mut self, _: &mut Ctx<'_, ()>, _: u32, _: u32, _: ()) {}
            fn on_quiescent(&mut self, ctx: &mut Ctx<'_, ()>) -> bool {
                match self.pending.pop() {
                    Some(v) => {
                        self.rounds.push(ctx.now().0);
                        ctx.send(v, v + 1, ());
                        true
                    }
                    None => false,
                }
            }
        }
        let mut sim = Simulator::new(
            path_topology(4),
            Deferred {
                pending: vec![2, 0],
                rounds: vec![],
            },
        );
        let report = sim.run_to_quiescence();
        assert_eq!(report.delivered, 2);
        // Both deferred sends ran, each in its own barrier round.
        assert_eq!(sim.protocol.rounds.len(), 2);
        assert!(sim.protocol.pending.is_empty());
    }

    #[test]
    fn healing_via_ctx_rewires_topology() {
        struct HealLine;
        impl Protocol for HealLine {
            type Msg = ();
            fn on_neighbor_deleted(&mut self, ctx: &mut Ctx<'_, ()>, me: u32, info: &DeletionInfo) {
                // First former neighbor wires everyone into a line.
                if Some(&me) == info.former_neighbors.first() {
                    for w in info.former_neighbors.windows(2) {
                        ctx.add_link(w[0], w[1]);
                    }
                }
            }
            fn on_message(&mut self, _: &mut Ctx<'_, ()>, _: u32, _: u32, _: ()) {}
        }
        let topo = Topology::from_edges(4, &[(1, 0), (1, 2), (1, 3)]);
        let mut sim = Simulator::new(topo, HealLine);
        sim.enable_trace(16);
        sim.delete_node(1);
        assert!(sim.topology.has_edge(0, 2));
        assert!(sim.topology.has_edge(2, 3));
        assert!(!sim.topology.has_edge(0, 3));
        let trace = sim.trace().unwrap().events();
        assert_eq!(trace.len(), 3); // 1 kill + 2 links
    }

    #[test]
    fn jitter_delays_but_still_floods_everyone() {
        let mut sim = Simulator::new(
            path_topology(6),
            DistFlood {
                dist: vec![None; 6],
                origin: SimTime::ZERO,
            },
        );
        sim.set_latency_jitter(42, 3);
        sim.inject(0, 0, ());
        let report = sim.run_to_quiescence();
        assert!(sim.protocol.dist.iter().all(Option::is_some));
        // With up to 3 extra hops per message the drain takes longer than
        // the synchronous 7 hops (w.h.p. for this seed, deterministic).
        assert!(report.latency >= 7, "latency {}", report.latency);
    }

    #[test]
    fn jitter_is_deterministic_per_seed() {
        let run = |seed: u64| {
            let mut sim = Simulator::new(
                path_topology(8),
                DistFlood {
                    dist: vec![None; 8],
                    origin: SimTime::ZERO,
                },
            );
            sim.set_latency_jitter(seed, 4);
            sim.inject(0, 0, ());
            sim.run_to_quiescence();
            sim.protocol.dist.clone()
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }

    #[test]
    fn determinism_across_runs() {
        let run = || {
            let mut sim = Simulator::new(
                path_topology(8),
                DistFlood {
                    dist: vec![None; 8],
                    origin: SimTime::ZERO,
                },
            );
            sim.inject(3, 3, ());
            sim.run_to_quiescence();
            (sim.metrics.total_sent(), sim.protocol.dist.clone())
        };
        assert_eq!(run(), run());
    }
}

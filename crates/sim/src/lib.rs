//! # selfheal-sim
//!
//! A small, fully deterministic discrete-event simulator for distributed
//! protocols over mutable network topologies.
//!
//! The self-healing paper claims *per-node* message and latency bounds for
//! DASH; validating them honestly requires running DASH as an actual
//! message-passing protocol, not just as a graph transformation. This
//! crate provides the substrate:
//!
//! - [`Topology`] — the fabric's view of who is alive and connected
//!   (total read accessors, append-only joins),
//! - [`Simulator`] — drives a [`Protocol`] with unit-latency messages,
//!   deterministic FIFO tie-breaking and automatic per-node accounting
//!   ([`SimMetrics`]); reconfiguration via `delete_node`, simultaneous
//!   `delete_batch` (neighbor notifications ordered by a controllable
//!   [`BatchSchedule`], round-robin by default) and `join_node`, with a
//!   protocol-visible quiescence barrier ([`Protocol::on_quiescent`])
//!   for batch-safe healing,
//! - [`SplitMix64`] — a self-contained seedable PRNG so simulations are
//!   bit-reproducible across platforms,
//! - [`trace::TraceBuffer`] — optional bounded binary event log.
//!
//! Determinism guarantees: given the same topology, protocol, seed and
//! call sequence, every run delivers identical messages in identical
//! order and produces identical metrics.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod message;
pub mod metrics;
pub mod protocol;
pub mod rng;
pub mod runner;
pub mod schedule;
pub mod scheduler;
pub mod time;
pub mod topology;
pub mod trace;

pub use metrics::SimMetrics;
pub use protocol::{Ctx, DeletionInfo, LatencyModel, Protocol};
pub use rng::SplitMix64;
pub use runner::{QuiescenceReport, Simulator};
pub use schedule::BatchSchedule;
pub use time::SimTime;
pub use topology::Topology;

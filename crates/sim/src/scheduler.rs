//! Deterministic event queue.

use crate::message::Envelope;
use crate::time::SimTime;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A min-heap of in-flight messages ordered by `(deliver_at, seq)`.
///
/// Because `seq` is unique per send, ordering is total and pops are fully
/// deterministic regardless of insertion order.
pub struct EventQueue<M> {
    heap: BinaryHeap<Entry<M>>,
    next_seq: u64,
}

struct Entry<M>(Envelope<M>);

impl<M> PartialEq for Entry<M> {
    fn eq(&self, other: &Self) -> bool {
        self.0.key() == other.0.key()
    }
}
impl<M> Eq for Entry<M> {}
impl<M> PartialOrd for Entry<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Entry<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // BinaryHeap is a max-heap; invert to pop the earliest first.
        Reverse(self.0.key()).cmp(&Reverse(other.0.key()))
    }
}

impl<M> EventQueue<M> {
    /// Empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Enqueue a payload from `from` to `to` delivered at `deliver_at`.
    /// Returns the assigned sequence number.
    pub fn push(&mut self, from: u32, to: u32, deliver_at: SimTime, payload: M) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry(Envelope {
            seq,
            deliver_at,
            from,
            to,
            payload,
        }));
        seq
    }

    /// Pop the earliest message, if any.
    pub fn pop(&mut self) -> Option<Envelope<M>> {
        self.heap.pop().map(|e| e.0)
    }

    /// Timestamp of the earliest pending message.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.0.deliver_at)
    }

    /// Number of in-flight messages.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no messages are in flight.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total messages ever enqueued.
    pub fn total_sent(&self) -> u64 {
        self.next_seq
    }
}

impl<M> Default for EventQueue<M> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(0, 1, SimTime(5), "late");
        q.push(0, 1, SimTime(1), "early");
        q.push(0, 1, SimTime(3), "mid");
        assert_eq!(q.pop().unwrap().payload, "early");
        assert_eq!(q.pop().unwrap().payload, "mid");
        assert_eq!(q.pop().unwrap().payload, "late");
        assert!(q.pop().is_none());
    }

    #[test]
    fn ties_break_by_send_order() {
        let mut q = EventQueue::new();
        q.push(0, 1, SimTime(1), "first");
        q.push(0, 2, SimTime(1), "second");
        q.push(0, 3, SimTime(1), "third");
        assert_eq!(q.pop().unwrap().payload, "first");
        assert_eq!(q.pop().unwrap().payload, "second");
        assert_eq!(q.pop().unwrap().payload, "third");
    }

    #[test]
    fn bookkeeping() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(0, 1, SimTime(2), ());
        q.push(0, 1, SimTime(1), ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(SimTime(1)));
        assert_eq!(q.total_sent(), 2);
        q.pop();
        q.pop();
        assert_eq!(q.total_sent(), 2);
        assert!(q.is_empty());
    }
}

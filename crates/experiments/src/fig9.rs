//! Fig. 9 — component-ID maintenance costs vs. graph size.
//!
//! - **Fig. 9(a)**: maximum number of ID changes any node suffers. The
//!   record-breaking argument (Lemma 8) predicts < `2 ln n` w.h.p. for
//!   every healing strategy.
//! - **Fig. 9(b)**: maximum number of ID-maintenance messages any node
//!   sends. A node sends `deg(v)` messages per ID change, so strategies
//!   with higher degree increase pay proportionally more — DASH/SDASH
//!   should win, GraphHeal lose.

use crate::config::{AttackKind, HealerKind, Scale};
use crate::runner::{extract, run_trials, TrialStats};
use selfheal_metrics::{Figure, Series, SeriesPoint};

fn run_metric(
    title: &str,
    y_label: &str,
    scale: Scale,
    base_seed: u64,
    threads: usize,
    metric: impl Fn(&TrialStats) -> f64,
) -> Figure {
    let mut fig = Figure::new(title, "n", y_label);
    for healer in HealerKind::figure_set() {
        let mut series = Series::new(healer.name());
        for &n in &scale.degree_sizes() {
            let stats = run_trials(
                n,
                healer,
                AttackKind::NeighborOfMax,
                base_seed,
                scale.trials(),
                threads,
            );
            series.push(SeriesPoint::from_trials(
                n as f64,
                &extract(&stats, &metric),
            ));
        }
        fig.push(series);
    }
    fig
}

/// Fig. 9(a): max ID changes per node.
pub fn run_id_changes(scale: Scale, base_seed: u64, threads: usize) -> Figure {
    let mut fig = run_metric(
        "Fig 9a: maximum ID changes per node (NeighborOfMax attack)",
        "max ID changes",
        scale,
        base_seed,
        threads,
        |s| s.max_id_changes as f64,
    );
    let mut bound = Series::new("2*ln(n) bound");
    for &n in &scale.degree_sizes() {
        bound.push(SeriesPoint::from_trials(n as f64, &[2.0 * (n as f64).ln()]));
    }
    fig.push(bound);
    fig
}

/// Fig. 9(b): max ID-maintenance messages sent per node.
pub fn run_messages(scale: Scale, base_seed: u64, threads: usize) -> Figure {
    run_metric(
        "Fig 9b: maximum messages sent per node for ID maintenance",
        "max messages sent",
        scale,
        base_seed,
        threads,
        |s| s.max_msgs_sent as f64,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_changes_below_record_breaking_bound() {
        let fig = run_id_changes(Scale::Quick, 7, 4);
        let bound = fig.series_named("2*ln(n) bound").unwrap();
        for healer in HealerKind::figure_set() {
            let s = fig.series_named(healer.name()).unwrap();
            assert!(
                s.dominated_by(bound),
                "{} exceeds 2 ln n: {:?}",
                healer.name(),
                s.points
            );
        }
    }

    #[test]
    fn dash_sends_fewer_messages_than_graph_heal() {
        let fig = run_messages(Scale::Quick, 11, 4);
        let dash = fig.series_named("dash").unwrap();
        let graph_heal = fig.series_named("graph-heal").unwrap();
        // High-degree strategies pay more per ID change (Fig. 9b's story).
        let last = *Scale::Quick.degree_sizes().last().unwrap() as f64;
        assert!(dash.mean_at(last).unwrap() <= graph_heal.mean_at(last).unwrap());
    }
}

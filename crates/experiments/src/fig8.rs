//! Fig. 8 — maximum degree increase vs. graph size.
//!
//! Paper setup: Barabási–Albert graphs, NeighborOfMax attack (the paper
//! found it "consistently resulted in higher degree increase" than
//! MaxNode), delete until the graph is empty, average the maximum degree
//! increase over 30 random instances per size.
//!
//! Expected shape (from the paper's Fig. 8): DASH and SDASH grow like
//! `log n` and stay below `2 log₂ n`; GraphHeal and BinaryTreeHeal grow
//! much faster (polynomially), with GraphHeal worst.

use crate::config::{AttackKind, HealerKind, Scale};
use crate::runner::{extract, run_trials};
use selfheal_metrics::{Figure, Series, SeriesPoint};

/// Run the Fig. 8 experiment.
pub fn run(scale: Scale, base_seed: u64, threads: usize) -> Figure {
    let mut fig = Figure::new(
        "Fig 8: maximum degree increase (NeighborOfMax attack, BA graphs)",
        "n",
        "max degree increase",
    );
    for healer in HealerKind::figure_set() {
        let mut series = Series::new(healer.name());
        for &n in &scale.degree_sizes() {
            let stats = run_trials(
                n,
                healer,
                AttackKind::NeighborOfMax,
                base_seed,
                scale.trials(),
                threads,
            );
            series.push(SeriesPoint::from_trials(
                n as f64,
                &extract(&stats, |s| s.max_delta as f64),
            ));
        }
        fig.push(series);
    }
    // Reference curve: the proven DASH bound.
    let mut bound = Series::new("2*log2(n) bound");
    for &n in &scale.degree_sizes() {
        bound.push(SeriesPoint::from_trials(
            n as f64,
            &[2.0 * (n as f64).log2()],
        ));
    }
    fig.push(bound);
    fig
}

/// Render the figure as an ASCII table (rows = sizes, columns = healers).
pub fn render(fig: &Figure) -> String {
    crate::render::figure_table(fig)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_has_expected_shape() {
        let fig = run(Scale::Quick, 42, 4);
        assert_eq!(fig.series.len(), 6); // 5 healers + bound
        let dash = fig.series_named("dash").unwrap();
        let graph_heal = fig.series_named("graph-heal").unwrap();
        assert_eq!(dash.points.len(), Scale::Quick.degree_sizes().len());
        // The paper's headline: DASH beats the naive strategies.
        assert!(dash.dominated_by(graph_heal));
        // DASH respects its proven bound.
        let bound = fig.series_named("2*log2(n) bound").unwrap();
        assert!(dash.dominated_by(bound));
    }
}

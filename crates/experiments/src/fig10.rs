//! Fig. 10 — stretch vs. graph size.
//!
//! Paper setup: MaxNode attack (the paper found it most effective at
//! inflating stretch), BA graphs, healing with each strategy; stretch is
//! the max over surviving pairs of healed/original distance ratio.
//!
//! Expected shape: the naive degree-greedy strategies (GraphHeal,
//! BinaryTreeHeal) keep stretch low *by paying huge degrees*; DASH's
//! stretch is noticeably higher; SDASH keeps stretch close to the naive
//! strategies while retaining DASH-like degrees.
//!
//! Deviation from the paper: stretch is sampled every `n/16` deletions
//! (plus the final state) instead of after every deletion — an APSP per
//! deletion would be `O(n² m)` per trial. Sampling only *underestimates*
//! the max, uniformly across strategies, so the ordinal comparison the
//! figure makes is preserved.

use crate::config::{trial_seed, AttackKind, HealerKind, Scale, BA_ATTACHMENT};
use rand::rngs::StdRng;
use rand::SeedableRng;
use selfheal_core::scenario::ScenarioEngine;
use selfheal_core::state::HealingNetwork;
use selfheal_graph::generators::barabasi_albert;
use selfheal_metrics::{Figure, Series, SeriesPoint, StretchBaseline};

/// Max stretch observed over one sampled kill-sweep.
pub fn run_stretch_trial(n: usize, healer: HealerKind, seed: u64) -> f64 {
    let g = barabasi_albert(n, BA_ATTACHMENT, &mut StdRng::seed_from_u64(seed));
    let baseline = StretchBaseline::new(&g, 1);
    let net = HealingNetwork::new(g, seed);
    let mut engine = ScenarioEngine::new(net, healer.build(), AttackKind::MaxNode.build(seed));
    let sample_every = (n / 16).max(1) as u64;
    let mut max_stretch = 1.0f64;
    let mut rounds = 0u64;
    while let Some(_rec) = engine.step() {
        rounds += 1;
        if rounds.is_multiple_of(sample_every) && engine.net.graph().live_node_count() >= 2 {
            if let Some(r) = baseline.stretch_of(engine.net.graph(), 1) {
                max_stretch = max_stretch.max(r.stretch);
            }
        }
    }
    max_stretch
}

/// Run the Fig. 10 experiment.
pub fn run(scale: Scale, base_seed: u64, threads: usize) -> Figure {
    let mut fig = Figure::new(
        "Fig 10: stretch (MaxNode attack, BA graphs, sampled every n/16 deletions)",
        "n",
        "max stretch",
    );
    let trials = scale.trials();
    for healer in HealerKind::figure_set() {
        let mut series = Series::new(healer.name());
        for &n in &scale.stretch_sizes() {
            let workers = threads.max(1).min(trials.max(1));
            let mut pairs = selfheal_graph::parallel::parallel_fold(
                trials,
                workers,
                Vec::new,
                |mut acc, t| {
                    acc.push((t, run_stretch_trial(n, healer, trial_seed(base_seed, n, t))));
                    acc
                },
                |mut a, mut b| {
                    a.append(&mut b);
                    a
                },
            );
            pairs.sort_by_key(|&(t, _)| t);
            let values: Vec<f64> = pairs.into_iter().map(|(_, s)| s).collect();
            series.push(SeriesPoint::from_trials(n as f64, &values));
        }
        fig.push(series);
    }
    fig
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stretch_trial_is_finite_and_at_least_one() {
        let s = run_stretch_trial(48, HealerKind::Dash, 3);
        assert!(s.is_finite());
        assert!(s >= 1.0);
    }

    #[test]
    fn quick_figure_shape() {
        let fig = run(Scale::Quick, 5, 4);
        assert_eq!(fig.series.len(), 5);
        for s in &fig.series {
            assert_eq!(s.points.len(), Scale::Quick.stretch_sizes().len());
            for p in &s.points {
                assert!(p.mean >= 1.0, "{}: stretch below 1", s.name);
                assert!(p.mean.is_finite(), "{}: infinite stretch", s.name);
            }
        }
    }
}

//! # selfheal-experiments
//!
//! The harness that regenerates every table and figure in the paper's
//! evaluation (Section 4) plus validation experiments for both theorems:
//!
//! | experiment | paper artifact | module |
//! |---|---|---|
//! | E1 | Fig. 8 — max degree increase vs n | [`fig8`] |
//! | E2 | Fig. 9(a) — ID changes per node | [`fig9`] |
//! | E3 | Fig. 9(b) — messages per node | [`fig9`] |
//! | E4 | Fig. 10 — stretch vs n | [`fig10`] |
//! | E5 | Theorem 1 bound validation | [`theorem1`] |
//! | E6 | Theorem 2 LEVELATTACK lower bound | [`lowerbound`] |
//! | E7 | attack comparison (Section 4.2's narrative) | [`attacks`] |
//! | E8 | simultaneous deletions (footnote 1) | [`batchexp`] |
//! | E9 | parallel sweep fleet + theorem auditors | [`sweep`] |
//! | E10 | exhaustive prover + schedule explorer | [`verify`] |
//! | E11 | million-node healing throughput | [`scale`] |
//! | E12 | full healer registry ranked at equal budgets | [`familyrank`] |
//! | E13 | healing-as-a-service multi-tenant soak | [`servebench`] |
//!
//! Run them all with the `run-experiments` binary:
//!
//! ```text
//! run-experiments all --quick            # CI-sized
//! run-experiments fig8 --full --csv out/ # paper-sized + CSV dumps
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod attacks;
pub mod batchexp;
pub mod config;
pub mod familyrank;
pub mod fig10;
pub mod fig8;
pub mod fig9;
pub mod lowerbound;
pub mod observe;
pub mod render;
pub mod runner;
pub mod scale;
pub mod servebench;
pub mod specrun;
pub mod sweep;
pub mod theorem1;
pub mod verify;

pub use config::{AttackKind, HealerKind, Scale};

//! E7 — attack-strategy comparison (Section 4.2's narrative).
//!
//! The paper asserts two things about its adversaries without showing a
//! figure: that `NeighborOfMax` "consistently resulted in higher degree
//! increase" than `MaxNode` (so Fig. 8 only reports NMS), and that
//! `MaxNode` "is most effective for the adversary when trying to maximize
//! stretch" (so Fig. 10 uses it). This experiment regenerates the
//! evidence behind both choices, and adds this reproduction's extension
//! adversaries (`Random`, `MinDegree`, `CutVertex`) for context.

use crate::config::{AttackKind, HealerKind, Scale};
use crate::runner::{extract, run_trials};
use selfheal_metrics::{Figure, Series, SeriesPoint};

/// Degree-increase comparison across all attacks, for a fixed healer.
pub fn run_degree(scale: Scale, healer: HealerKind, base_seed: u64, threads: usize) -> Figure {
    let mut fig = Figure::new(
        format!(
            "E7: max degree increase per attack strategy (healer: {})",
            healer.name()
        ),
        "n",
        "max degree increase",
    );
    for attack in AttackKind::all() {
        let mut series = Series::new(attack.name());
        for &n in &scale.degree_sizes() {
            let stats = run_trials(n, healer, attack, base_seed, scale.trials(), threads);
            series.push(SeriesPoint::from_trials(
                n as f64,
                &extract(&stats, |s| s.max_delta as f64),
            ));
        }
        fig.push(series);
    }
    fig
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The justification for Fig. 8's attack choice: NMS hurts the naive
    /// strategies at least as much as MaxNode does (at the largest size,
    /// averaged over trials).
    #[test]
    fn nms_dominates_maxnode_for_naive_healers() {
        let fig = run_degree(Scale::Quick, HealerKind::GraphHeal, 31, 4);
        let nms = fig.series_named("neighbor-of-max").unwrap();
        let max_node = fig.series_named("max-node").unwrap();
        let last = *Scale::Quick.degree_sizes().last().unwrap() as f64;
        assert!(
            nms.mean_at(last).unwrap() >= max_node.mean_at(last).unwrap(),
            "NMS {} should be >= MaxNode {}",
            nms.mean_at(last).unwrap(),
            max_node.mean_at(last).unwrap()
        );
    }

    #[test]
    fn all_attacks_produce_points() {
        let fig = run_degree(Scale::Quick, HealerKind::Dash, 5, 4);
        assert_eq!(fig.series.len(), AttackKind::all().len());
        for s in &fig.series {
            assert_eq!(s.points.len(), Scale::Quick.degree_sizes().len());
        }
    }

    /// DASH's bound is attack-independent.
    #[test]
    fn dash_bounded_under_every_attack() {
        let fig = run_degree(Scale::Quick, HealerKind::Dash, 9, 4);
        for s in &fig.series {
            for p in &s.points {
                assert!(
                    p.max <= 2.0 * p.x.log2(),
                    "{} at n={}: {} exceeds bound",
                    s.name,
                    p.x,
                    p.max
                );
            }
        }
    }
}

//! Theorem 2 lower-bound experiment: LEVELATTACK on `(M+2)`-ary trees.
//!
//! For each M-degree-bounded healer, the adversary of Algorithm 2 must
//! force a degree increase of at least the tree depth `D = Θ(log n)` on
//! some node. The table reports observed maxima next to the floor `D` and
//! DASH's upper bound `2 log₂ n` — squeezing the implementation between
//! the paper's lower and upper bounds.

use crate::config::{HealerKind, Scale};
use selfheal_core::levelattack::{run_level_attack, LevelAttackResult};
use selfheal_metrics::Table;

/// Per-round degree bound `M` of each healer (net degree added to any
/// single node in one heal): used to size the `(M+2)`-ary tree.
/// SDASH is *not* M-bounded (surrogation is unbounded per round), which is
/// exactly why it evades the lower bound — it is included for contrast
/// with `m = 2`.
pub fn degree_bound_m(healer: HealerKind) -> usize {
    match healer {
        // Binary-tree internal node: +3 edges, -1 lost to the victim.
        HealerKind::Dash | HealerKind::BinaryTreeHeal | HealerKind::GraphHeal => 2,
        // Line interior node: +2 edges, -1 lost.
        HealerKind::LineHeal => 1,
        // Not M-bounded; attacked with the DASH tree for comparison.
        HealerKind::Sdash => 2,
        // Heir-rooted binary tree: same internal-node shape as DASH.
        HealerKind::ForgivingTree => 2,
        // Two cycle edges plus one chord per budget round.
        HealerKind::RingForgiving { budget } => 1 + budget,
        HealerKind::NoHeal => 0,
    }
}

/// Run LEVELATTACK for every bounded healer at every depth.
pub fn run(scale: Scale, base_seed: u64) -> Vec<LevelAttackResult> {
    let healers = [
        HealerKind::Dash,
        HealerKind::Sdash,
        HealerKind::BinaryTreeHeal,
        HealerKind::LineHeal,
    ];
    let mut results = Vec::new();
    for healer in healers {
        let m = degree_bound_m(healer);
        for &depth in &scale.lowerbound_depths() {
            // Keep the biggest trees manageable: (M+2)^depth nodes.
            let n = selfheal_graph::generators::KaryTree::size_for(m + 2, depth);
            if n > 100_000 {
                continue;
            }
            let mut boxed = healer.build();
            let result = run_level_attack_boxed(boxed.as_mut(), healer.name(), m, depth, base_seed);
            results.push(result);
        }
    }
    results
}

/// Object-safe wrapper: `run_level_attack` is generic, so re-dispatch
/// through a small adapter that forwards to the boxed healer.
fn run_level_attack_boxed(
    healer: &mut dyn selfheal_core::strategy::Healer,
    name: &'static str,
    m: usize,
    depth: u32,
    seed: u64,
) -> LevelAttackResult {
    struct Fwd<'a>(&'a mut dyn selfheal_core::strategy::Healer, &'static str);
    impl selfheal_core::strategy::Healer for Fwd<'_> {
        fn name(&self) -> &'static str {
            self.1
        }
        fn heal(
            &mut self,
            net: &mut selfheal_core::state::HealingNetwork,
            ctx: &selfheal_core::state::DeletionContext,
        ) -> selfheal_core::strategy::HealOutcome {
            self.0.heal(net, ctx)
        }
        fn preserves_forest(&self) -> bool {
            self.0.preserves_forest()
        }
    }
    run_level_attack(Fwd(healer, name), m, depth, seed)
}

/// Render the results table.
pub fn render(results: &[LevelAttackResult]) -> String {
    let mut t = Table::new([
        "healer",
        "M",
        "depth D",
        "n",
        "rounds",
        "max dδ",
        "leaf dδ",
        "floor D",
        "2log2 n",
        "floor met",
    ]);
    for r in results {
        t.row([
            r.healer.to_string(),
            r.m.to_string(),
            r.depth.to_string(),
            r.n.to_string(),
            r.rounds.to_string(),
            r.max_delta_ever.to_string(),
            r.max_leaf_delta_ever.to_string(),
            r.depth.to_string(),
            format!("{:.1}", 2.0 * (r.n as f64).log2()),
            if r.meets_lower_bound() {
                "yes".into()
            } else {
                "no".into()
            },
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounded_healers_meet_the_floor() {
        let results = run(Scale::Quick, 77);
        assert!(!results.is_empty());
        for r in results.iter().filter(|r| r.healer != "sdash") {
            assert!(
                r.meets_lower_bound(),
                "{} at depth {} only reached {}",
                r.healer,
                r.depth,
                r.max_delta_ever
            );
        }
        let rendered = render(&results);
        assert!(rendered.contains("dash"));
    }

    #[test]
    fn dash_stays_within_its_upper_bound_under_levelattack() {
        let results = run(Scale::Quick, 3);
        for r in results.iter().filter(|r| r.healer == "dash") {
            let upper = 2.0 * (r.n as f64).log2();
            assert!(
                (r.max_delta_ever as f64) <= upper,
                "dash exceeded its bound: {} > {upper}",
                r.max_delta_ever
            );
        }
    }
}

//! E12: family-rank — the whole healer registry, ranked.
//!
//! Fans **all eight** [`HealerSpec`] families over the full
//! [`SweepAdversary`] library at equal budgets (same graphs, same seeds,
//! same run counts — every family faces the identical schedules), folds
//! each family's five adversary aggregates into one, and renders a
//! single deterministic ranking table.
//!
//! Unlike the E9 sweep fleet, the audit tier is the engine's *cheap*
//! level, not Theorem 1: six of the eight families never claim the
//! theorem's numeric bounds, so a theorem-audited comparison would only
//! measure who gets disqualified. Cheap auditing records the structural
//! failures (disconnection, an unexpected `G'` cycle, a degree blow-up
//! past the Lemma 6 envelope) as findings, and the ranking places
//! **soundness before thrift**: fewest findings first, then worst degree
//! increase, worst half-life stretch, worst message total, and finally
//! the family name as the deterministic tie-break. `NoHeal` finishes
//! last by construction — disconnection findings dominate its count.
//! The cheap tier is deliberately stricter than any one family's
//! contract, so nonzero finding counts are *comparative* penalties, not
//! disqualifications: DASH and SDASH pick up transient `G'`-cycle
//! findings under simultaneous rack deletions (footnote 1's batch
//! artifact, waived by the theorem tier's per-event reconstruction
//! model), and the ring family exceeds the 2 log₂ n degree envelope it
//! never claimed (its own budget bound is what `verify` enforces).
//!
//! Everything derives from the base seed via
//! [`selfheal_core::sweep::run_seed`] mixing and the aggregates are
//! built from commutative-associative pieces, so the rendered table is
//! byte-identical for any worker count — `make family-rank-check` pins
//! that across 1/2/8 threads against a golden.

use crate::config::Scale;
use selfheal_core::spec::{AuditSpec, HealerSpec};
use selfheal_core::sweep::{run_sweep, SweepAdversary, SweepAggregate, SweepConfig};
use selfheal_metrics::Table;

/// Equal per-family budget at each scale: (graph size n, seeded runs
/// per adversary).
fn rank_shape(scale: Scale) -> (usize, u64) {
    match scale {
        Scale::Quick => (32, 12),
        Scale::Full => (64, 200),
    }
}

/// One family's merged result across the whole adversary library.
pub struct FamilyRow {
    /// The healer family.
    pub healer: HealerSpec,
    /// All five adversaries' aggregates folded into one.
    pub aggregate: SweepAggregate,
}

impl FamilyRow {
    /// The ranking key, ascending = better: structural findings first
    /// (soundness), then degree / stretch / message extremes (thrift),
    /// then the name so equal families order deterministically.
    fn key(&self) -> (usize, u64, u64, u64, String) {
        (
            self.aggregate.violations.len(),
            self.aggregate.worst_delta.value,
            self.aggregate.worst_stretch.value,
            self.aggregate.worst_messages.value,
            self.healer.to_string(),
        )
    }
}

/// Run every family × every library adversary at equal budgets and rank.
pub fn run(scale: Scale, base_seed: u64, threads: usize) -> Vec<FamilyRow> {
    let (n, runs) = rank_shape(scale);
    let mut rows: Vec<FamilyRow> = HealerSpec::ALL
        .into_iter()
        .map(|healer| {
            let mut aggregate = SweepAggregate::default();
            for adversary in SweepAdversary::ALL {
                let mut cfg = SweepConfig::sized(adversary, healer, n);
                cfg.spec.seed = base_seed;
                cfg.spec.audit = AuditSpec::Cheap;
                cfg.runs = runs;
                cfg.threads = threads;
                aggregate.merge(run_sweep(&cfg));
            }
            aggregate.finalize();
            FamilyRow { healer, aggregate }
        })
        .collect();
    rows.sort_by_key(|row| row.key());
    rows
}

/// Render the ranking table (rank 1 = best).
pub fn render(rows: &[FamilyRow]) -> String {
    let mut t = Table::new([
        "rank",
        "healer",
        "runs",
        "findings",
        "worst dδ",
        "worst stretch",
        "worst msgs",
        "mean msgs",
        "heal rounds",
    ]);
    for (i, row) in rows.iter().enumerate() {
        let a = &row.aggregate;
        t.row([
            (i + 1).to_string(),
            row.healer.to_string(),
            a.runs.to_string(),
            a.violations.len().to_string(),
            a.worst_delta.value.to_string(),
            format!("{:.1}", a.worst_stretch.value as f64 / 10.0),
            a.worst_messages.value.to_string(),
            format!("{:.0}", a.messages.mean()),
            a.rounds.to_string(),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_family_faces_the_same_budget_and_no_heal_ranks_last() {
        let rows = run(Scale::Quick, 20080124, 4);
        assert_eq!(rows.len(), HealerSpec::ALL.len());
        let runs = rows[0].aggregate.runs;
        assert_eq!(runs, 12 * SweepAdversary::ALL.len() as u64);
        assert!(rows.iter().all(|r| r.aggregate.runs == runs));
        // Soundness dominates the ranking: the do-nothing baseline
        // disconnects on nearly every run and must finish last, by a
        // margin no real healer approaches.
        assert_eq!(rows.last().unwrap().healer, HealerSpec::NoHeal);
        let no_heal = rows.last().unwrap().aggregate.violations.len();
        for row in &rows[..rows.len() - 1] {
            assert!(
                row.aggregate.violations.len() * 10 < no_heal,
                "{} has {} findings vs no-heal's {no_heal}",
                row.healer,
                row.aggregate.violations.len()
            );
        }
    }

    #[test]
    fn ranking_table_is_thread_count_invariant() {
        let a = render(&run(Scale::Quick, 7, 1));
        let b = render(&run(Scale::Quick, 7, 3));
        assert_eq!(a, b);
        assert!(a.contains("ftree") && a.contains("ring(2)"), "{a}");
    }
}

//! Observer-fed metric collection: plug a [`TimelineObserver`] into a
//! [`ScenarioEngine`](selfheal_core::scenario::ScenarioEngine) run and get
//! per-event [`Series`] out — the bridge between the core `Observer` hook
//! and the metrics layer's figure containers.

use selfheal_core::scenario::{EventRecord, Observer};
use selfheal_core::state::HealingNetwork;
use selfheal_metrics::{Figure, Series, SeriesPoint};

/// Collects one point per event for the quantities the paper's analysis
/// tracks round by round: reconstruction-set size, broadcast messages,
/// broadcast latency, and the RT max `δ` (when the event healed anything).
#[derive(Clone, Debug)]
pub struct TimelineObserver {
    /// RT size per event.
    pub rt_size: Series,
    /// ID-broadcast messages per event.
    pub messages: Series,
    /// ID-broadcast latency per event.
    pub latency: Series,
    /// Max `δ` over the event's RT members (skips no-op events/joins).
    pub max_delta: Series,
}

impl Default for TimelineObserver {
    fn default() -> Self {
        TimelineObserver {
            rt_size: Series::new("rt-size"),
            messages: Series::new("messages"),
            latency: Series::new("latency"),
            max_delta: Series::new("rt-max-delta"),
        }
    }
}

impl TimelineObserver {
    /// Fresh, empty timelines.
    pub fn new() -> Self {
        Self::default()
    }

    /// Package the timelines as one figure (x = event number).
    pub fn into_figure(self, title: impl Into<String>) -> Figure {
        let mut fig = Figure::new(title, "event", "per-event value");
        fig.push(self.rt_size);
        fig.push(self.messages);
        fig.push(self.latency);
        fig.push(self.max_delta);
        fig
    }
}

impl Observer for TimelineObserver {
    fn on_event(&mut self, _net: &HealingNetwork, rec: &EventRecord) {
        let x = rec.event as f64;
        self.rt_size
            .push(SeriesPoint::single(x, rec.rt_size as f64));
        self.messages
            .push(SeriesPoint::single(x, rec.propagation.messages as f64));
        self.latency
            .push(SeriesPoint::single(x, rec.propagation.latency as f64));
        if let Some(d) = rec.round_max_delta {
            self.max_delta.push(SeriesPoint::single(x, d as f64));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use selfheal_core::attack::MaxNode;
    use selfheal_core::dash::Dash;
    use selfheal_core::scenario::ScenarioEngine;
    use selfheal_graph::generators::barabasi_albert;

    #[test]
    fn timeline_tracks_every_event() {
        let n = 32;
        let g = barabasi_albert(n, 3, &mut StdRng::seed_from_u64(8));
        let net = HealingNetwork::new(g, 8);
        let mut engine = ScenarioEngine::new(net, Dash, MaxNode);
        let mut timeline = TimelineObserver::new();
        let report = engine.run_to_empty_with(&mut timeline);
        assert_eq!(timeline.rt_size.points.len(), report.events as usize);
        assert_eq!(timeline.messages.points.len(), report.events as usize);
        // Total messages across the timeline equals the report total.
        let sum: f64 = timeline.messages.points.iter().map(|p| p.mean).sum();
        assert_eq!(sum as u64, report.total_messages);
        let fig = timeline.into_figure("timeline");
        assert!(fig.series_named("rt-size").is_some());
        assert!(fig.series_named("rt-max-delta").is_some());
    }
}

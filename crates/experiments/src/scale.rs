//! E11 — million-node healing throughput (`run-experiments scale`).
//!
//! The scalability demonstration behind the pooled-adjacency refactor:
//! build a BA(10⁶, 3) network and heal it to empty with both paper
//! algorithms under two large-scale failure models —
//!
//! - `random-churn`: mixed joins and targeted hub-neighbor deletions
//!   (the live count is a downward-biased random walk, so the run
//!   terminates after ≈ 3n events);
//! - `rack-partition(8)`: coordinated batch kills of shuffled racks.
//!
//! Each configuration reports wall-clock events/sec, the process's peak
//! RSS (`VmHWM` from `/proc/self/status`; cumulative, hence monotone
//! across rows), and the heap-allocation count during the run (non-zero
//! only when the binary installs `selfheal_bench::alloc::CountingAlloc`,
//! which `run-experiments` does). Unlike E1–E9 this experiment is *not*
//! part of `run-experiments all` — a million-node sweep has no place in
//! `make figures` — it is dispatched explicitly, like `verify`.

use crate::config::Scale;
use rand::rngs::StdRng;
use rand::SeedableRng;
use selfheal_bench::alloc::total_allocations;
use selfheal_core::attack::RackPartition;
use selfheal_core::scenario::{RandomChurn, ScenarioEngine};
use selfheal_core::state::HealingNetwork;
use selfheal_core::strategy::Healer;
use selfheal_graph::generators::barabasi_albert;
use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// BA attachment parameter (the paper's experiments use m = 3).
const M: usize = 3;
/// Rack size for the partition adversary.
const RACK: usize = 8;

/// One (healer, adversary) configuration's measurements.
#[derive(Clone, Debug)]
pub struct ScaleRow {
    /// Healer name (`dash` / `sdash`).
    pub healer: &'static str,
    /// Adversary name (`random-churn` / `rack-partition`).
    pub adversary: &'static str,
    /// Initial node count.
    pub n: usize,
    /// Events consumed healing to empty (deletes, batches, joins).
    pub events: u64,
    /// Nodes joined mid-run (random-churn only).
    pub joins: u64,
    /// Wall-clock time for the run (graph build excluded).
    pub elapsed: Duration,
    /// Events per second of wall-clock.
    pub events_per_sec: f64,
    /// Peak RSS in kB after the run (`VmHWM`; process-wide, monotone).
    pub peak_rss_kb: Option<u64>,
    /// Heap allocations performed during the run (0 without the
    /// counting allocator installed).
    pub allocations: u64,
    /// Maximum degree increase ever observed (Theorem 1's quantity).
    pub max_delta: i64,
    /// Whether the network really reached zero live nodes.
    pub healed_to_empty: bool,
}

/// Peak resident set size in kB (`VmHWM`), when the platform exposes it.
pub fn peak_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            return rest.trim().trim_end_matches("kB").trim().parse().ok();
        }
    }
    None
}

fn run_one<H: Healer>(
    label: &'static str,
    healer: H,
    n: usize,
    seed: u64,
    churn: bool,
) -> ScaleRow {
    let g = barabasi_albert(n, M, &mut StdRng::seed_from_u64(seed));
    let net = HealingNetwork::new(g, seed);
    let allocs_before = total_allocations();
    let t0 = Instant::now();
    let (report, live, adversary) = if churn {
        let mut engine = ScenarioEngine::new(net, healer, RandomChurn::new(seed));
        let report = engine.run_to_empty();
        (report, engine.net.graph().live_node_count(), "random-churn")
    } else {
        let mut engine = ScenarioEngine::new(net, healer, RackPartition::new(seed, RACK));
        let report = engine.run_to_empty();
        (
            report,
            engine.net.graph().live_node_count(),
            "rack-partition",
        )
    };
    let elapsed = t0.elapsed();
    let allocations = total_allocations() - allocs_before;
    ScaleRow {
        healer: label,
        adversary,
        n,
        events: report.events,
        joins: report.joins,
        elapsed,
        events_per_sec: report.events as f64 / elapsed.as_secs_f64().max(1e-9),
        peak_rss_kb: peak_rss_kb(),
        allocations,
        max_delta: report.max_delta_ever,
        healed_to_empty: live == 0,
    }
}

/// Run E11 at `n` nodes: {dash, sdash} × {random-churn, rack-partition}.
pub fn run_with_size(n: usize, seed: u64) -> Vec<ScaleRow> {
    let mut rows = Vec::with_capacity(4);
    for churn in [true, false] {
        rows.push(run_one("dash", selfheal_core::dash::Dash, n, seed, churn));
        rows.push(run_one(
            "sdash",
            selfheal_core::sdash::Sdash,
            n,
            seed,
            churn,
        ));
    }
    rows
}

/// Run E11 at full scale: BA(10⁶, 3), or 2·10⁶ with `--full`.
pub fn run(scale: Scale, seed: u64) -> Vec<ScaleRow> {
    let n = match scale {
        Scale::Quick => 1_000_000,
        Scale::Full => 2_000_000,
    };
    run_with_size(n, seed)
}

/// Fixed-width table over the measured rows.
pub fn render(rows: &[ScaleRow]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<7} {:<15} {:>9} {:>10} {:>8} {:>9} {:>12} {:>12} {:>12} {:>6}",
        "healer",
        "adversary",
        "n",
        "events",
        "joins",
        "time_s",
        "events/sec",
        "peak_rss_kb",
        "allocations",
        "maxδ"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:<7} {:<15} {:>9} {:>10} {:>8} {:>9.2} {:>12.0} {:>12} {:>12} {:>6}{}",
            r.healer,
            r.adversary,
            r.n,
            r.events,
            r.joins,
            r.elapsed.as_secs_f64(),
            r.events_per_sec,
            r.peak_rss_kb
                .map(|kb| kb.to_string())
                .unwrap_or_else(|| "n/a".into()),
            r.allocations,
            r.max_delta,
            if r.healed_to_empty { "" } else { "  NOT EMPTY" }
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_scale_heals_to_empty_on_all_four_configs() {
        let rows = run_with_size(600, 7);
        assert_eq!(rows.len(), 4);
        for r in &rows {
            assert!(
                r.healed_to_empty,
                "{}/{} left survivors",
                r.healer, r.adversary
            );
            assert!(
                r.events >= 600 / 8,
                "{}/{}: too few events",
                r.healer,
                r.adversary
            );
            assert!(r.events_per_sec > 0.0);
        }
        // Both adversaries and both healers appear.
        assert!(rows
            .iter()
            .any(|r| r.adversary == "random-churn" && r.healer == "dash"));
        assert!(rows
            .iter()
            .any(|r| r.adversary == "rack-partition" && r.healer == "sdash"));
    }

    #[test]
    fn vmhwm_is_readable_on_linux() {
        if cfg!(target_os = "linux") {
            let kb = peak_rss_kb().expect("VmHWM present in /proc/self/status");
            assert!(kb > 0);
        }
    }

    #[test]
    fn render_includes_throughput_column() {
        let rows = run_with_size(200, 3);
        let table = render(&rows);
        assert!(table.contains("events/sec"));
        assert_eq!(table.lines().count(), 5);
    }
}

//! `run-experiments` — regenerate the paper's tables and figures, and
//! execute declarative scenario specs.
//!
//! ```text
//! run-experiments <fig8|fig9a|fig9b|fig10|theorem1|lowerbound|sweep|all>
//!                 [--quick|--full] [--seed N] [--threads N] [--csv DIR]
//!                 [--healer dash|sdash|both] [--parity]
//! run-experiments run --spec specs/rack_partition.scn [--events N]
//! ```

use selfheal_bench::alloc::CountingAlloc;
use selfheal_core::spec::HealerSpec;
use selfheal_experiments::{
    attacks, batchexp, config::HealerKind, config::Scale, familyrank, fig10, fig8, fig9,
    lowerbound, render, scale, servebench, specrun, sweep, theorem1, verify,
};
use selfheal_metrics::csv::write_figure_csv;
use selfheal_metrics::Figure;
use std::path::PathBuf;
use std::time::Instant;

/// Count heap allocations so the `scale` experiment can report total
/// allocator traffic; two relaxed atomics per allocation, negligible for
/// every other subcommand.
#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

struct Options {
    command: String,
    scale: Scale,
    seed: u64,
    threads: usize,
    csv_dir: Option<PathBuf>,
    chart: bool,
    healers: Vec<HealerSpec>,
    parity: bool,
    spec: Option<PathBuf>,
    events: Option<u64>,
}

fn usage() -> ! {
    eprintln!(
        "usage: run-experiments <fig8|fig9a|fig9b|fig10|theorem1|lowerbound|attacks|batch|sweep|all> \
         [--quick|--full] [--seed N] [--threads N] [--csv DIR] [--chart] \
         [--healer dash|sdash|both] [--parity]\n\
         \x20      run-experiments run --spec FILE.scn [--events N]\n\
         \x20      run-experiments verify [--full] [--threads N] [--seed N]\n\
         \x20      run-experiments scale [--full] [--seed N]\n\
         \x20      run-experiments family-rank [--full] [--seed N] [--threads N]\n\
         \x20      run-experiments serve-bench [--full] [--seed N] [--threads N]"
    );
    std::process::exit(2)
}

fn parse_args() -> Options {
    let mut args = std::env::args().skip(1);
    let mut opts = Options {
        command: String::new(),
        scale: Scale::Quick,
        seed: 20080124, // the paper's arXiv date
        threads: selfheal_graph::parallel::default_threads(),
        csv_dir: None,
        chart: false,
        healers: vec![HealerSpec::Dash],
        parity: false,
        spec: None,
        events: None,
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => opts.scale = Scale::Quick,
            "--full" => opts.scale = Scale::Full,
            "--chart" => opts.chart = true,
            "--parity" => opts.parity = true,
            "--healer" => {
                opts.healers = match args.next().as_deref() {
                    Some("both") => vec![HealerSpec::Dash, HealerSpec::Sdash],
                    // The sweep enforces Theorem 1 bounds, which only the
                    // paper's two algorithms satisfy — reject the naive
                    // baselines and the new families here (as the
                    // pre-spec CLI did) instead of burning a fleet run on
                    // a guaranteed failure. `family-rank` is the
                    // experiment that sweeps the full registry.
                    Some(name) => vec![HealerSpec::parse(name)
                        .filter(|h| matches!(h, HealerSpec::Dash | HealerSpec::Sdash))
                        .unwrap_or_else(|| usage())],
                    None => usage(),
                }
            }
            "--seed" => {
                opts.seed = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--threads" => {
                opts.threads = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--events" => {
                opts.events = Some(
                    args.next()
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| usage()),
                )
            }
            "--spec" => opts.spec = Some(PathBuf::from(args.next().unwrap_or_else(|| usage()))),
            "--csv" => opts.csv_dir = Some(PathBuf::from(args.next().unwrap_or_else(|| usage()))),
            "--help" | "-h" => usage(),
            cmd if opts.command.is_empty() && !cmd.starts_with('-') => {
                opts.command = cmd.to_string()
            }
            _ => usage(),
        }
    }
    if opts.command.is_empty() {
        opts.command = "all".to_string();
    }
    let known = [
        "fig8",
        "fig9a",
        "fig9b",
        "fig10",
        "theorem1",
        "lowerbound",
        "attacks",
        "batch",
        "sweep",
        "run",
        "verify",
        "scale",
        "family-rank",
        "serve-bench",
        "all",
    ];
    if !known.contains(&opts.command.as_str()) {
        usage();
    }
    opts
}

fn emit_figure(fig: &Figure, slug: &str, opts: &Options) {
    println!("{}", render::figure_table(fig));
    if opts.chart {
        println!(
            "{}",
            selfheal_metrics::plot::render(fig, selfheal_metrics::plot::PlotConfig::default())
        );
    }
    if let Some(dir) = &opts.csv_dir {
        std::fs::create_dir_all(dir).expect("create csv dir");
        let path = dir.join(format!("{slug}.csv"));
        write_figure_csv(fig, &path).expect("write csv");
        println!("wrote {}", path.display());
    }
}

/// The `run` subcommand: execute one declarative spec. Any invalid or
/// unparseable spec exits nonzero with a readable message (never a
/// panic); a valid run with violations also fails the process so specs
/// double as CI gates (`make spec-check`).
fn run_spec_command(opts: &Options) -> ! {
    let Some(path) = &opts.spec else {
        eprintln!("run-experiments run: missing --spec FILE.scn");
        std::process::exit(2);
    };
    match specrun::run_spec_file(path, opts.events) {
        Ok(summary) => {
            println!("# {}", path.display());
            print!("{}", summary.render());
            if summary.clean() {
                std::process::exit(0);
            }
            eprintln!("FAILED: spec run reported violations");
            std::process::exit(1);
        }
        Err(msg) => {
            eprintln!("error: {msg}");
            std::process::exit(1);
        }
    }
}

/// The `verify` subcommand (E10): the exhaustive small-world prover and
/// the interleaving schedule explorer as a CI gate. Quick runs the
/// universe to n <= 6; `--full` raises it to n <= 7. Any theorem or
/// parity violation fails the process.
fn verify_command(opts: &Options) -> ! {
    let t0 = Instant::now();
    let full = matches!(opts.scale, Scale::Full);
    println!(
        "# E10: exhaustive prover + schedule explorer — {}, seed {}, {} threads\n",
        if full {
            "full (n <= 7)"
        } else {
            "quick (n <= 6)"
        },
        opts.seed,
        opts.threads
    );
    let summary = verify::run(full, opts.threads, opts.seed);
    print!("{}", verify::render(&summary));
    println!("done in {:.1?}", t0.elapsed());
    if summary.clean() {
        std::process::exit(0);
    }
    eprintln!("FAILED: exhaustive verification reported violations");
    std::process::exit(1);
}

/// The `scale` subcommand (E11): million-node healing throughput.
/// Deliberately *not* part of `all` — `make figures` runs `all --quick`
/// and has no business healing 10⁶ nodes — so, like `run` and `verify`,
/// it dispatches before the figure cascade.
fn scale_command(opts: &Options) -> ! {
    let t0 = Instant::now();
    println!(
        "# E11: million-node healing throughput — {:?}, seed {}\n",
        opts.scale, opts.seed
    );
    let rows = scale::run(opts.scale, opts.seed);
    print!("{}", scale::render(&rows));
    println!("\ndone in {:.1?}", t0.elapsed());
    if rows.iter().all(|r| r.healed_to_empty) {
        std::process::exit(0);
    }
    eprintln!("FAILED: a configuration left live nodes behind");
    std::process::exit(1);
}

/// The `family-rank` subcommand (E12): every registered healer family ×
/// the full adversary library at equal budgets, folded into one
/// deterministic ranking table. The table goes to stdout byte-identically
/// for any `--threads` value (`make family-rank-check` pins this against
/// a golden); timing goes to stderr to keep the golden stable. Not part
/// of `all` — like `verify`, it sweeps healers the figure experiments
/// deliberately exclude.
fn family_rank_command(opts: &Options) -> ! {
    let t0 = Instant::now();
    println!(
        "# E12: healer family ranking — {:?}, seed {}\n",
        opts.scale, opts.seed
    );
    let rows = familyrank::run(opts.scale, opts.seed, opts.threads);
    print!("{}", familyrank::render(&rows));
    eprintln!("done in {:.1?}", t0.elapsed());
    std::process::exit(0);
}

/// The `serve-bench` subcommand (E13): the healing-as-a-service soak —
/// four tenant shards under deterministic churn streams with snapshot
/// readers hammering the lock-free slots throughout. The summary table
/// goes to stdout byte-identically for any `--threads` value (`make
/// serve-check` pins the quick tier against a golden at 1/2/8 workers);
/// throughput goes to stderr to keep the golden stable. Not part of
/// `all` — like `scale`, it measures a serving workload, not a paper
/// figure.
fn serve_bench_command(opts: &Options) -> ! {
    let t0 = Instant::now();
    println!(
        "# E13: healing-as-a-service soak — {:?}, seed {}\n",
        opts.scale, opts.seed
    );
    let soak = servebench::run(opts.scale, opts.seed, opts.threads);
    print!("{}", servebench::render(&soak.rows));
    let secs = t0.elapsed().as_secs_f64();
    for row in &soak.rows {
        eprintln!(
            "shard {}: {:.0} events/s",
            row.tenant,
            (row.stats.events + row.stats.skipped) as f64 / secs
        );
    }
    eprintln!(
        "snapshot reads under churn: {} ({:.0}/s)",
        soak.snapshot_reads,
        soak.snapshot_reads as f64 / secs
    );
    eprintln!("done in {:.1?}", t0.elapsed());
    let findings: usize = soak.rows.iter().map(|r| r.findings).sum();
    if findings == 0 {
        std::process::exit(0);
    }
    eprintln!("FAILED: the soak reported audit findings");
    std::process::exit(1);
}

fn main() {
    let opts = parse_args();
    if opts.command == "run" {
        run_spec_command(&opts);
    }
    if opts.command == "verify" {
        verify_command(&opts);
    }
    if opts.command == "scale" {
        scale_command(&opts);
    }
    if opts.command == "family-rank" {
        family_rank_command(&opts);
    }
    if opts.command == "serve-bench" {
        serve_bench_command(&opts);
    }
    let t0 = Instant::now();
    let run = |name: &str| opts.command == name || opts.command == "all";

    println!(
        "# self-healing experiment harness — scale {:?}, seed {}, {} threads\n",
        opts.scale, opts.seed, opts.threads
    );

    if run("fig8") {
        let fig = fig8::run(opts.scale, opts.seed, opts.threads);
        emit_figure(&fig, "fig8_degree_increase", &opts);
    }
    if run("fig9a") {
        let fig = fig9::run_id_changes(opts.scale, opts.seed, opts.threads);
        emit_figure(&fig, "fig9a_id_changes", &opts);
    }
    if run("fig9b") {
        let fig = fig9::run_messages(opts.scale, opts.seed, opts.threads);
        emit_figure(&fig, "fig9b_messages", &opts);
    }
    if run("fig10") {
        let fig = fig10::run(opts.scale, opts.seed, opts.threads);
        emit_figure(&fig, "fig10_stretch", &opts);
    }
    if run("theorem1") {
        let rows = theorem1::run(opts.scale, opts.seed, opts.threads);
        println!(
            "Theorem 1 validation (DASH, all attacks)\n{}",
            theorem1::render(&rows)
        );
        let violations = rows.iter().filter(|r| !r.all_ok).count();
        println!("bound violations: {violations}\n");
    }
    if run("lowerbound") {
        let results = lowerbound::run(opts.scale, opts.seed);
        println!(
            "Theorem 2 LEVELATTACK lower bound\n{}",
            lowerbound::render(&results)
        );
    }
    if run("attacks") {
        for healer in [HealerKind::Dash, HealerKind::GraphHeal] {
            let fig = attacks::run_degree(opts.scale, healer, opts.seed, opts.threads);
            emit_figure(&fig, &format!("e7_attacks_{}", healer.name()), &opts);
        }
    }
    if run("batch") {
        let rows = batchexp::run(opts.scale, opts.seed);
        println!(
            "E8: simultaneous (batch) deletions with DASH\n{}",
            batchexp::render(&rows)
        );
    }
    let mut sweep_violations = 0usize;
    if run("sweep") {
        let rows = sweep::run(
            opts.scale,
            opts.seed,
            opts.threads,
            &opts.healers,
            opts.parity,
        );
        println!(
            "E9: parallel sweep fleet (theorem auditors on)\n{}",
            sweep::render(&rows)
        );
        sweep_violations = rows.iter().map(|r| r.aggregate.violations.len()).sum();
    }

    println!("done in {:.1?}", t0.elapsed());
    if sweep_violations > 0 {
        // The sweep is a gate (`make sweep-check`): bound violations must
        // fail the process, not just print.
        eprintln!("FAILED: {sweep_violations} theorem-bound violations in the sweep fleet");
        std::process::exit(1);
    }
}

//! Theorem 1 validation table: every quantitative claim the paper proves
//! for DASH, checked against measured values across attacks and sizes.
//!
//! | claim | bound |
//! |---|---|
//! | degree increase | `δ(v) ≤ 2 log₂ n` |
//! | ID changes per node | `≤ 2 ln n` w.h.p. |
//! | messages per node | `≤ 2 (d + 2 log₂ n) ln n` w.h.p. |
//! | amortized broadcast latency | `O(log n)` |
//! | reconnection latency | O(1) — structural (one-hop), audited in sim |
//!
//! Note on the message bound: a node *sends* at most
//! `(ID changes) × (current degree) ≤ 2 ln n · (d + 2 log₂ n)` — that
//! side is rigorous per node and is what `all_ok` enforces. The *receive*
//! side of the paper's combined sent+received figure is amortized (a
//! node's neighbors turn over, so it can hear from more than
//! `d + 2 log n` distinct peers over a whole run); observed sent+received
//! is reported in the table for comparison but rare excursions above the
//! literal formula at large `n` are expected and not counted as
//! violations. See EXPERIMENTS.md (E5).

use crate::config::{trial_seed, AttackKind, HealerKind, Scale};
use crate::runner::run_trials;
use selfheal_metrics::{summarize, Table};

/// One row of the validation table.
#[derive(Clone, Debug)]
pub struct TheoremRow {
    /// Attack used.
    pub attack: &'static str,
    /// Graph size.
    pub n: usize,
    /// Mean (over trials) of the max degree increase.
    pub max_delta: f64,
    /// The `2 log₂ n` bound.
    pub delta_bound: f64,
    /// Mean of the max per-node ID changes.
    pub max_id_changes: f64,
    /// The `2 ln n` bound.
    pub id_bound: f64,
    /// Mean of the max per-node messages *sent* (the rigorous bound).
    pub max_sent: f64,
    /// Mean of the max per-node traffic (sent + received; informational).
    pub max_traffic: f64,
    /// The `2 (d_max + 2 log₂ n) ln n` bound.
    pub traffic_bound: f64,
    /// Mean amortized broadcast latency.
    pub amortized_latency: f64,
    /// The `log₂ n` reference.
    pub latency_ref: f64,
    /// Whether every bound held in every trial.
    pub all_ok: bool,
}

/// Run the Theorem 1 validation for DASH across all attacks.
pub fn run(scale: Scale, base_seed: u64, threads: usize) -> Vec<TheoremRow> {
    let attacks = [
        AttackKind::MaxNode,
        AttackKind::NeighborOfMax,
        AttackKind::Random,
        AttackKind::MinDegree,
    ];
    let mut rows = Vec::new();
    for attack in attacks {
        for &n in &scale.degree_sizes() {
            let stats = run_trials(
                n,
                HealerKind::Dash,
                attack,
                trial_seed(base_seed, n, 9999) ^ attack.name().len() as u64,
                scale.trials(),
                threads,
            );
            let nf = n as f64;
            let delta_bound = 2.0 * nf.log2();
            let id_bound = 2.0 * nf.ln();
            let mut all_ok = true;
            let mut traffic_bound_worst = 0.0f64;
            for s in &stats {
                let tb = 2.0 * (s.max_initial_degree as f64 + 2.0 * nf.log2()) * nf.ln();
                traffic_bound_worst = traffic_bound_worst.max(tb);
                // Enforce the rigorous claims: degree, ID changes, and
                // messages *sent*. Sent + received is reported but only
                // amortized by the paper (see module docs).
                if s.max_delta as f64 > delta_bound
                    || s.max_id_changes as f64 > id_bound
                    || s.max_msgs_sent as f64 > tb
                {
                    all_ok = false;
                }
            }
            rows.push(TheoremRow {
                attack: attack.name(),
                n,
                max_delta: summarize(stats.iter().map(|s| s.max_delta as f64)).mean,
                delta_bound,
                max_id_changes: summarize(stats.iter().map(|s| s.max_id_changes as f64)).mean,
                id_bound,
                max_sent: summarize(stats.iter().map(|s| s.max_msgs_sent as f64)).mean,
                max_traffic: summarize(stats.iter().map(|s| s.max_traffic as f64)).mean,
                traffic_bound: traffic_bound_worst,
                amortized_latency: summarize(stats.iter().map(|s| s.amortized_latency)).mean,
                latency_ref: nf.log2(),
                all_ok,
            });
        }
    }
    rows
}

/// Render the validation rows as a table.
pub fn render(rows: &[TheoremRow]) -> String {
    let mut t = Table::new([
        "attack",
        "n",
        "max dδ",
        "2log2 n",
        "max #id",
        "2 ln n",
        "max sent",
        "sent+recv",
        "msg bound",
        "amort lat",
        "log2 n",
        "ok",
    ]);
    for r in rows {
        t.row([
            r.attack.to_string(),
            r.n.to_string(),
            format!("{:.1}", r.max_delta),
            format!("{:.1}", r.delta_bound),
            format!("{:.1}", r.max_id_changes),
            format!("{:.1}", r.id_bound),
            format!("{:.0}", r.max_sent),
            format!("{:.0}", r.max_traffic),
            format!("{:.0}", r.traffic_bound),
            format!("{:.2}", r.amortized_latency),
            format!("{:.1}", r.latency_ref),
            if r.all_ok { "yes".into() } else { "NO".into() },
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_bounds_hold_at_quick_scale() {
        let rows = run(Scale::Quick, 123, 4);
        assert_eq!(rows.len(), 4 * Scale::Quick.degree_sizes().len());
        for r in &rows {
            assert!(r.all_ok, "bound violated: {r:?}");
            assert!(r.max_delta <= r.delta_bound);
            assert!(r.max_id_changes <= r.id_bound);
        }
        let rendered = render(&rows);
        assert!(rendered.contains("max-node"));
        assert!(rendered.contains("yes"));
    }
}

//! Shared trial machinery: run one (graph, healer, attack) kill-sweep and
//! collect the statistics every figure draws from; fan trials out over
//! threads.

use crate::config::{trial_seed, AttackKind, HealerKind, BA_ATTACHMENT};
use rand::rngs::StdRng;
use rand::SeedableRng;
use selfheal_core::scenario::ScenarioEngine;
use selfheal_core::state::HealingNetwork;
use selfheal_graph::generators::barabasi_albert;
use selfheal_graph::NodeId;

/// Statistics extracted from one full kill-sweep.
#[derive(Clone, Copy, Debug, Default)]
pub struct TrialStats {
    /// Initial graph size.
    pub n: usize,
    /// Rounds executed (== n for run-to-empty).
    pub rounds: u64,
    /// Maximum degree increase ever observed on any node.
    pub max_delta: i64,
    /// Maximum ID changes suffered by one node.
    pub max_id_changes: u32,
    /// Maximum ID-maintenance messages *sent* by one node (Fig. 9b).
    pub max_msgs_sent: u64,
    /// Maximum per-node traffic (sent + received; Theorem 1's bound).
    pub max_traffic: u64,
    /// Total ID-maintenance messages.
    pub total_messages: u64,
    /// Total healing edges added.
    pub total_edges: u64,
    /// Mean per-round ID-broadcast latency (Lemma 9's amortized figure).
    pub amortized_latency: f64,
    /// Maximum single-round broadcast latency.
    pub max_latency: u64,
    /// Maximum initial degree of the graph (enters the message bound).
    pub max_initial_degree: usize,
}

/// Run one complete kill-sweep on a fresh BA graph.
pub fn run_trial(n: usize, healer: HealerKind, attack: AttackKind, seed: u64) -> TrialStats {
    let g = barabasi_albert(n, BA_ATTACHMENT, &mut StdRng::seed_from_u64(seed));
    let max_initial_degree = selfheal_graph::properties::degree_stats(&g)
        .map(|s| s.max)
        .unwrap_or(0);
    let net = HealingNetwork::new(g, seed);
    let mut engine = ScenarioEngine::new(net, healer.build(), attack.build(seed ^ 0xA5A5));
    let report = engine.run_to_empty();
    let net = &engine.net;
    let mut max_msgs_sent = 0u64;
    for i in 0..net.graph().node_bound() {
        max_msgs_sent = max_msgs_sent.max(net.messages_sent(NodeId::from_index(i)));
    }
    TrialStats {
        n,
        rounds: report.rounds,
        max_delta: report.max_delta_ever,
        max_id_changes: report.max_id_changes,
        max_msgs_sent,
        max_traffic: report.max_traffic,
        total_messages: report.total_messages,
        total_edges: report.total_edges_added,
        amortized_latency: report.amortized_latency(),
        max_latency: report.max_propagation_latency,
        max_initial_degree,
    }
}

/// Run `trials` independent kill-sweeps of the same configuration in
/// parallel and return the per-trial stats in trial order.
pub fn run_trials(
    n: usize,
    healer: HealerKind,
    attack: AttackKind,
    base_seed: u64,
    trials: usize,
    threads: usize,
) -> Vec<TrialStats> {
    let threads = threads.max(1).min(trials.max(1));
    let mut pairs = selfheal_graph::parallel::parallel_fold(
        trials,
        threads,
        Vec::new,
        |mut acc, t| {
            acc.push((t, run_trial(n, healer, attack, trial_seed(base_seed, n, t))));
            acc
        },
        |mut a, mut b| {
            a.append(&mut b);
            a
        },
    );
    pairs.sort_by_key(|&(t, _)| t);
    pairs.into_iter().map(|(_, s)| s).collect()
}

/// Extract one field of a trial batch as `f64`s (for aggregation).
pub fn extract<F: Fn(&TrialStats) -> f64>(stats: &[TrialStats], f: F) -> Vec<f64> {
    stats.iter().map(f).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trial_runs_to_empty() {
        let s = run_trial(48, HealerKind::Dash, AttackKind::NeighborOfMax, 7);
        assert_eq!(s.rounds, 48);
        assert!(s.max_delta >= 1);
        assert!(s.total_edges > 0);
        assert!(s.max_traffic >= s.max_msgs_sent);
        assert!(s.max_initial_degree >= BA_ATTACHMENT);
    }

    #[test]
    fn trials_are_reproducible() {
        let a = run_trial(32, HealerKind::Sdash, AttackKind::MaxNode, 3);
        let b = run_trial(32, HealerKind::Sdash, AttackKind::MaxNode, 3);
        assert_eq!(a.max_delta, b.max_delta);
        assert_eq!(a.total_messages, b.total_messages);
    }

    #[test]
    fn parallel_trials_match_serial() {
        let par = run_trials(32, HealerKind::Dash, AttackKind::NeighborOfMax, 1, 4, 4);
        let ser = run_trials(32, HealerKind::Dash, AttackKind::NeighborOfMax, 1, 4, 1);
        assert_eq!(par.len(), 4);
        for (p, s) in par.iter().zip(&ser) {
            assert_eq!(p.max_delta, s.max_delta);
            assert_eq!(p.total_messages, s.total_messages);
        }
    }

    #[test]
    fn extract_pulls_fields() {
        let stats = run_trials(24, HealerKind::Dash, AttackKind::MaxNode, 5, 2, 2);
        let deltas = extract(&stats, |s| s.max_delta as f64);
        assert_eq!(deltas.len(), 2);
        assert!(deltas.iter().all(|&d| d >= 0.0));
    }
}

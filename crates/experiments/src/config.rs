//! Experiment configuration: scales, strategy/attack enumerations, seeds.

use selfheal_core::attack::{
    Adversary, CutVertex, MaxNode, MinDegree, NeighborOfMax, RandomAttack,
};
use selfheal_core::dash::Dash;
use selfheal_core::naive::{BinaryTreeHeal, GraphHeal, LineHeal, NoHeal};
use selfheal_core::sdash::Sdash;
use selfheal_core::strategy::Healer;

/// Preset sizes/trial-counts.
///
/// `Full` follows the paper's methodology (30 random graph instances per
/// size); `Quick` is a CI-sized smoke version of every experiment.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Small sizes, few trials — finishes in seconds.
    Quick,
    /// Paper-sized: 30 trials per configuration.
    Full,
}

impl Scale {
    /// Graph sizes for the degree/message experiments (Figs. 8 and 9).
    pub fn degree_sizes(self) -> Vec<usize> {
        match self {
            Scale::Quick => vec![64, 128, 256],
            Scale::Full => vec![64, 128, 256, 512, 1024, 2048, 4096],
        }
    }

    /// Graph sizes for the stretch experiment (Fig. 10; APSP-heavy).
    pub fn stretch_sizes(self) -> Vec<usize> {
        match self {
            Scale::Quick => vec![32, 64, 128],
            Scale::Full => vec![64, 128, 256, 512, 1024],
        }
    }

    /// Trials (random graph instances) per size.
    pub fn trials(self) -> usize {
        match self {
            Scale::Quick => 3,
            Scale::Full => 30,
        }
    }

    /// LEVELATTACK depths to sweep.
    pub fn lowerbound_depths(self) -> Vec<u32> {
        match self {
            Scale::Quick => vec![2, 3, 4],
            Scale::Full => vec![2, 3, 4, 5, 6],
        }
    }
}

/// The Barabási–Albert attachment parameter used throughout the paper's
/// experiments ("random power-law graphs by preferential attachment").
pub const BA_ATTACHMENT: usize = 3;

/// Healing strategies under comparison.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HealerKind {
    /// Algorithm 1.
    Dash,
    /// Algorithm 3.
    Sdash,
    /// Naive binary tree over all neighbors (cycles allowed).
    GraphHeal,
    /// Component-aware, degree-oblivious binary tree.
    BinaryTreeHeal,
    /// Component-aware line (the refs [5, 6] baseline).
    LineHeal,
    /// Control: no healing.
    NoHeal,
}

impl HealerKind {
    /// All strategies the paper's figures compare (everything but NoHeal).
    pub fn figure_set() -> [HealerKind; 5] {
        [
            HealerKind::Dash,
            HealerKind::Sdash,
            HealerKind::GraphHeal,
            HealerKind::BinaryTreeHeal,
            HealerKind::LineHeal,
        ]
    }

    /// Instantiate the strategy.
    pub fn build(self) -> Box<dyn Healer> {
        match self {
            HealerKind::Dash => Box::new(Dash),
            HealerKind::Sdash => Box::new(Sdash),
            HealerKind::GraphHeal => Box::new(GraphHeal),
            HealerKind::BinaryTreeHeal => Box::new(BinaryTreeHeal),
            HealerKind::LineHeal => Box::new(LineHeal),
            HealerKind::NoHeal => Box::new(NoHeal),
        }
    }

    /// Stable display name (matches `Healer::name`).
    pub fn name(self) -> &'static str {
        match self {
            HealerKind::Dash => "dash",
            HealerKind::Sdash => "sdash",
            HealerKind::GraphHeal => "graph-heal",
            HealerKind::BinaryTreeHeal => "bintree-heal",
            HealerKind::LineHeal => "line-heal",
            HealerKind::NoHeal => "no-heal",
        }
    }
}

/// Attack strategies.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AttackKind {
    /// Delete the maximum-degree node.
    MaxNode,
    /// Delete a random neighbor of the maximum-degree node (NMS).
    NeighborOfMax,
    /// Delete a uniformly random node.
    Random,
    /// Delete the minimum-degree node.
    MinDegree,
    /// Delete the highest-degree articulation point (extension attack).
    CutVertex,
}

impl AttackKind {
    /// The paper's two attacks plus this reproduction's extensions.
    pub fn all() -> [AttackKind; 5] {
        [
            AttackKind::MaxNode,
            AttackKind::NeighborOfMax,
            AttackKind::Random,
            AttackKind::MinDegree,
            AttackKind::CutVertex,
        ]
    }

    /// Instantiate with a seed (ignored by deterministic attacks).
    pub fn build(self, seed: u64) -> Box<dyn Adversary> {
        match self {
            AttackKind::MaxNode => Box::new(MaxNode),
            AttackKind::NeighborOfMax => Box::new(NeighborOfMax::new(seed)),
            AttackKind::Random => Box::new(RandomAttack::new(seed)),
            AttackKind::MinDegree => Box::new(MinDegree),
            AttackKind::CutVertex => Box::new(CutVertex),
        }
    }

    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            AttackKind::MaxNode => "max-node",
            AttackKind::NeighborOfMax => "neighbor-of-max",
            AttackKind::Random => "random",
            AttackKind::MinDegree => "min-degree",
            AttackKind::CutVertex => "cut-vertex",
        }
    }
}

/// Derive a per-trial seed from a base seed, size and trial index so each
/// trial is independent but the whole sweep is reproducible.
pub fn trial_seed(base: u64, n: usize, trial: usize) -> u64 {
    base.wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add((n as u64) << 20)
        .wrapping_add(trial as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_have_sane_shapes() {
        assert!(Scale::Quick.trials() < Scale::Full.trials());
        assert!(Scale::Quick.degree_sizes().len() < Scale::Full.degree_sizes().len());
        assert!(!Scale::Full.stretch_sizes().is_empty());
        assert!(!Scale::Quick.lowerbound_depths().is_empty());
    }

    #[test]
    fn healer_names_match_instances() {
        for kind in HealerKind::figure_set() {
            assert_eq!(kind.name(), kind.build().name());
        }
        assert_eq!(HealerKind::NoHeal.name(), HealerKind::NoHeal.build().name());
    }

    #[test]
    fn attack_names_match_instances() {
        for kind in AttackKind::all() {
            assert_eq!(kind.name(), kind.build(1).name());
        }
    }

    #[test]
    fn trial_seeds_differ() {
        let a = trial_seed(1, 64, 0);
        let b = trial_seed(1, 64, 1);
        let c = trial_seed(1, 128, 0);
        let d = trial_seed(2, 64, 0);
        assert!(a != b && a != c && a != d);
        assert_eq!(a, trial_seed(1, 64, 0));
    }
}

//! Experiment configuration: scales, strategy/attack enumerations, seeds.
//!
//! Since the spec-layer redesign the registries themselves live in
//! `core::spec` — [`HealerKind`] *is* [`selfheal_core::spec::HealerSpec`]
//! (re-exported under its historical name), and [`AttackKind`] defers
//! construction to [`AdversarySpec`] — so the experiment harness names
//! exactly the same strategies a `.scn` spec file does.

use selfheal_core::scenario::EventSource;
use selfheal_core::spec::AdversarySpec;

/// The canonical healer registry, under the name the experiment modules
/// have always used. Construction (`build`), display names (`name`) and
/// the figure set all come from the spec layer.
pub use selfheal_core::spec::HealerSpec as HealerKind;

/// Preset sizes/trial-counts.
///
/// `Full` follows the paper's methodology (30 random graph instances per
/// size); `Quick` is a CI-sized smoke version of every experiment.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Small sizes, few trials — finishes in seconds.
    Quick,
    /// Paper-sized: 30 trials per configuration.
    Full,
}

impl Scale {
    /// Graph sizes for the degree/message experiments (Figs. 8 and 9).
    pub fn degree_sizes(self) -> Vec<usize> {
        match self {
            Scale::Quick => vec![64, 128, 256],
            Scale::Full => vec![64, 128, 256, 512, 1024, 2048, 4096],
        }
    }

    /// Graph sizes for the stretch experiment (Fig. 10; APSP-heavy).
    pub fn stretch_sizes(self) -> Vec<usize> {
        match self {
            Scale::Quick => vec![32, 64, 128],
            Scale::Full => vec![64, 128, 256, 512, 1024],
        }
    }

    /// Trials (random graph instances) per size.
    pub fn trials(self) -> usize {
        match self {
            Scale::Quick => 3,
            Scale::Full => 30,
        }
    }

    /// LEVELATTACK depths to sweep.
    pub fn lowerbound_depths(self) -> Vec<u32> {
        match self {
            Scale::Quick => vec![2, 3, 4],
            Scale::Full => vec![2, 3, 4, 5, 6],
        }
    }
}

/// The Barabási–Albert attachment parameter used throughout the paper's
/// experiments ("random power-law graphs by preferential attachment").
pub const BA_ATTACHMENT: usize = 3;

/// Attack strategies (the paper's two plus this reproduction's
/// extensions). A thin curation layer over [`AdversarySpec`]: each kind
/// names one registry entry and defers construction to it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AttackKind {
    /// Delete the maximum-degree node.
    MaxNode,
    /// Delete a random neighbor of the maximum-degree node (NMS).
    NeighborOfMax,
    /// Delete a uniformly random node.
    Random,
    /// Delete the minimum-degree node.
    MinDegree,
    /// Delete the highest-degree articulation point (extension attack).
    CutVertex,
}

impl AttackKind {
    /// The paper's two attacks plus this reproduction's extensions.
    pub fn all() -> [AttackKind; 5] {
        [
            AttackKind::MaxNode,
            AttackKind::NeighborOfMax,
            AttackKind::Random,
            AttackKind::MinDegree,
            AttackKind::CutVertex,
        ]
    }

    /// The declarative adversary this kind names.
    pub fn spec(self) -> AdversarySpec {
        match self {
            AttackKind::MaxNode => AdversarySpec::MaxNode,
            AttackKind::NeighborOfMax => AdversarySpec::NeighborOfMax,
            AttackKind::Random => AdversarySpec::Random,
            AttackKind::MinDegree => AdversarySpec::MinDegree,
            AttackKind::CutVertex => AdversarySpec::CutVertex,
        }
    }

    /// Instantiate with a seed (ignored by deterministic attacks); the
    /// returned source drives [`ScenarioEngine`](selfheal_core::scenario::ScenarioEngine)
    /// directly via the `Box<dyn EventSource>` blanket impl.
    pub fn build(self, seed: u64) -> Box<dyn EventSource> {
        self.spec().build(seed)
    }

    /// Stable display name.
    pub fn name(self) -> &'static str {
        self.spec().name()
    }
}

/// Derive a per-trial seed from a base seed, size and trial index so each
/// trial is independent but the whole sweep is reproducible.
pub fn trial_seed(base: u64, n: usize, trial: usize) -> u64 {
    base.wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add((n as u64) << 20)
        .wrapping_add(trial as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_have_sane_shapes() {
        assert!(Scale::Quick.trials() < Scale::Full.trials());
        assert!(Scale::Quick.degree_sizes().len() < Scale::Full.degree_sizes().len());
        assert!(!Scale::Full.stretch_sizes().is_empty());
        assert!(!Scale::Quick.lowerbound_depths().is_empty());
    }

    #[test]
    fn healer_names_match_instances() {
        for kind in HealerKind::figure_set() {
            assert_eq!(kind.name(), kind.build().name());
        }
        assert_eq!(HealerKind::NoHeal.name(), HealerKind::NoHeal.build().name());
    }

    #[test]
    fn attack_names_match_instances() {
        for kind in AttackKind::all() {
            assert_eq!(kind.name(), kind.build(1).name());
        }
    }

    #[test]
    fn trial_seeds_differ() {
        let a = trial_seed(1, 64, 0);
        let b = trial_seed(1, 64, 1);
        let c = trial_seed(1, 128, 0);
        let d = trial_seed(2, 64, 0);
        assert!(a != b && a != c && a != d);
        assert_eq!(a, trial_seed(1, 64, 0));
    }
}

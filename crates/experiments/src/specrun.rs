//! `run-experiments run --spec <path>`: load a declarative `.scn`
//! scenario, validate it, execute it on its chosen backend, and render a
//! human-readable report.
//!
//! Every failure mode — unreadable file, parse error with its line
//! number, invalid parameters, a fabric-unsupported healer on a
//! distributed backend — comes back as a readable `Err(String)` so the
//! CLI can exit nonzero without panicking; invariant or parity
//! violations in a *valid* run are reported in the rendered text and
//! flagged via [`RunSummary::clean`].

use selfheal_core::spec::{RunOptions, ScenarioSpec, SpecOutcome};
use std::fmt::Write as _;
use std::path::Path;

/// What one spec run produced, ready for printing.
#[derive(Debug)]
pub struct RunSummary {
    /// The parsed (canonicalized) spec that ran.
    pub spec: ScenarioSpec,
    /// The run's outcome.
    pub outcome: SpecOutcome,
}

impl RunSummary {
    /// No violations from any checking layer.
    pub fn clean(&self) -> bool {
        self.outcome.is_clean()
    }

    /// Render the run block the CLI prints.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for line in self.spec.to_string().lines() {
            let _ = writeln!(out, "  {line}");
        }
        let r = &self.outcome.report;
        let _ = writeln!(
            out,
            "events {}  rounds {}  deletions {}  joins {}",
            r.events, r.rounds, r.deletions, r.joins
        );
        let _ = writeln!(
            out,
            "max degree increase {}  max id changes {}  max traffic {}",
            r.max_delta_ever, r.max_id_changes, r.max_traffic
        );
        let _ = writeln!(
            out,
            "messages {}  healing edges {}  amortized latency {:.2}",
            r.total_messages,
            r.total_edges_added,
            r.amortized_latency()
        );
        if let Some(s) = self.outcome.stretch_tenths {
            let _ = writeln!(out, "half-life stretch {:.1}", s as f64 / 10.0);
        }
        if let Some(d) = self.outcome.dist {
            let _ = writeln!(
                out,
                "fabric: messages {}  delivered {}  dropped {}",
                d.total_messages, d.total_delivered, d.total_dropped
            );
        }
        if let Some(u) = &self.outcome.universe {
            let _ = writeln!(
                out,
                "universe: graphs {}  healers {}  order runs {}  batch runs {}",
                u.graphs, u.healers, u.order_runs, u.batch_runs
            );
        }
        if let Some(x) = &self.outcome.explorer {
            let _ = writeln!(
                out,
                "explorer: batches {}  interleavings {}  classes {}  pruned {} ({:.2}%)  checked {}",
                x.batches,
                x.interleavings,
                x.classes,
                x.pruned(),
                100.0 * x.prune_ratio(),
                x.checked
            );
        }
        let findings = self.outcome.violations.len() + r.violations.len();
        let _ = writeln!(out, "violations {findings}");
        for v in r.violations.iter().chain(&self.outcome.violations) {
            let _ = writeln!(out, "  VIOLATION: {v}");
        }
        out
    }
}

/// Parse and run spec text (the file's contents), with an optional event
/// cap overriding the spec's own `max-events`.
pub fn run_spec_text(text: &str, max_events: Option<u64>) -> Result<RunSummary, String> {
    let mut spec = ScenarioSpec::parse(text).map_err(|e| e.to_string())?;
    if let Some(cap) = max_events {
        spec.max_events = cap;
    }
    spec.validate().map_err(|e| e.to_string())?;
    let outcome = spec
        .run_with(&RunOptions {
            measure_stretch: true,
            ..RunOptions::default()
        })
        .map_err(|e| e.to_string())?;
    Ok(RunSummary { spec, outcome })
}

/// Load, parse and run a `.scn` file.
pub fn run_spec_file(path: &Path, max_events: Option<u64>) -> Result<RunSummary, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read spec '{}': {e}", path.display()))?;
    run_spec_text(&text, max_events).map_err(|e| format!("{}: {e}", path.display()))
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOOD: &str = "graph = ba(24, 3)\nhealer = dash\n\
                        adversary = rack-partition(4)\nseed = 2008\naudit = theorems\n";

    #[test]
    fn good_spec_runs_clean_and_renders() {
        let summary = run_spec_text(GOOD, None).unwrap();
        assert!(summary.clean(), "{:?}", summary.outcome.violations);
        let text = summary.render();
        assert!(text.contains("rack-partition(4)"), "{text}");
        assert!(text.contains("violations 0"), "{text}");
    }

    #[test]
    fn event_cap_override_applies() {
        let summary = run_spec_text(GOOD, Some(2)).unwrap();
        assert_eq!(summary.outcome.report.events, 2);
    }

    #[test]
    fn parse_and_validation_errors_are_readable() {
        let err = run_spec_text("healer = dash\n", None).unwrap_err();
        assert!(err.contains("missing required key 'graph'"), "{err}");
        let err = run_spec_text(
            "graph = ba(9, 9)\nhealer = dash\nadversary = random\nseed = 1\n",
            None,
        )
        .unwrap_err();
        assert!(err.contains("ba(9, 9)"), "{err}");
        let err = run_spec_text(
            "graph = ba(24, 3)\nhealer = line-heal\nadversary = random\nseed = 1\nbackend = parity\n",
            None,
        )
        .unwrap_err();
        assert!(err.contains("no distributed-fabric"), "{err}");
    }

    #[test]
    fn missing_file_is_an_error_not_a_panic() {
        let err = run_spec_file(Path::new("/nonexistent/x.scn"), None).unwrap_err();
        assert!(err.contains("cannot read spec"), "{err}");
    }
}

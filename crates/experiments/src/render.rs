//! Render figures as ASCII tables (rows = x values, columns = series).

use selfheal_metrics::{table::fmt_f64, Figure, Table};

/// One table per figure: first column is `x`, one column per series mean.
pub fn figure_table(fig: &Figure) -> String {
    let mut xs: Vec<f64> = fig
        .series
        .iter()
        .flat_map(|s| s.points.iter().map(|p| p.x))
        .collect();
    // panic-ok: series x-coordinates are graph sizes, never NaN, so the
    // partial comparison always succeeds.
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    xs.dedup();
    let mut headers = vec![fig.x_label.clone()];
    headers.extend(fig.series.iter().map(|s| s.name.clone()));
    let mut t = Table::new(headers);
    for &x in &xs {
        let mut row = vec![fmt_f64(x)];
        for s in &fig.series {
            row.push(match s.mean_at(x) {
                Some(m) => fmt_f64(m),
                None => "-".to_string(),
            });
        }
        t.row(row);
    }
    format!(
        "{}\n({} -> {})\n{}",
        fig.title,
        fig.x_label,
        fig.y_label,
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use selfheal_metrics::{Series, SeriesPoint};

    #[test]
    fn renders_all_series_columns() {
        let mut fig = Figure::new("T", "n", "y");
        let mut a = Series::new("dash");
        a.push(SeriesPoint::from_trials(10.0, &[1.0]));
        a.push(SeriesPoint::from_trials(20.0, &[2.0]));
        let mut b = Series::new("line-heal");
        b.push(SeriesPoint::from_trials(10.0, &[4.0]));
        fig.push(a);
        fig.push(b);
        let s = figure_table(&fig);
        assert!(s.contains("dash"));
        assert!(s.contains("line-heal"));
        assert!(s.contains('-'), "missing point should render as dash");
        assert!(s.starts_with("T\n"));
    }
}

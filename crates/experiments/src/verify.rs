//! `run-experiments verify` (E10): the exhaustive small-world prover and
//! the interleaving schedule explorer as one CI gate.
//!
//! Two halves, mirroring the two ways a distributed self-healing claim
//! can fail:
//!
//! 1. **Universe** — [`run_universe`] enumerates every connected graph
//!    up to isomorphism (n ≤ 6 by default, n ≤ 7 under `--full`), every
//!    deletion order, and representative batch partitions, for every
//!    registered healer, auditing each run against its theorem profile.
//!    Zero violations *proves* the audited bounds outright on that
//!    universe — no sampling, no seeds to get lucky with.
//! 2. **Schedules** — [`explore_events`] replays fixed batch scenarios
//!    under every DPOR equivalence class of notification delivery
//!    orders, asserting the distributed fabric reproduces the
//!    centralized engine byte for byte under each one.

use selfheal_core::exhaustive::{run_universe, UniverseConfig, UniverseReport, MAX_NODES};
use selfheal_core::explore::{explore_events, ExplorerConfig, ExplorerReport};
use selfheal_core::scenario::NetworkEvent;
use selfheal_core::spec::HealerSpec;
use selfheal_graph::generators::cycle_graph;
use selfheal_graph::NodeId;
use std::fmt::Write as _;

/// One explored schedule scenario, labeled for the report.
#[derive(Debug)]
pub struct Exploration {
    /// Human-readable scenario name.
    pub label: String,
    /// Explorer outcome (absent when the exploration itself errored).
    pub report: Result<ExplorerReport, String>,
}

/// Everything `verify` produced.
#[derive(Debug)]
pub struct VerifySummary {
    /// The universe ceiling that ran (6 quick, 7 full).
    pub max_n: usize,
    /// Universe outcome (absent when enumeration itself errored).
    pub universe: Result<UniverseReport, String>,
    /// Schedule explorations, one per scenario × healer.
    pub explorations: Vec<Exploration>,
}

impl VerifySummary {
    /// Every half ran and reported zero violations.
    pub fn clean(&self) -> bool {
        matches!(&self.universe, Ok(u) if u.is_clean())
            && self
                .explorations
                .iter()
                .all(|e| matches!(&e.report, Ok(r) if r.is_clean()))
    }
}

/// The explorer's fixture: a cycle with one three-victim batch, a single
/// deletion, a two-victim batch far enough away to stay independent, and
/// a join — every event kind, two reordering points, 12 schedule
/// classes.
fn two_batch_scenario() -> (selfheal_graph::Graph, Vec<NetworkEvent>) {
    let g = cycle_graph(16);
    let events = vec![
        NetworkEvent::DeleteBatch(vec![NodeId(0), NodeId(2), NodeId(4)]),
        NetworkEvent::Delete(NodeId(8)),
        NetworkEvent::DeleteBatch(vec![NodeId(11), NodeId(13)]),
        NetworkEvent::Join {
            neighbors: vec![NodeId(5), NodeId(6)],
        },
    ];
    (g, events)
}

/// Run both halves. `full` raises the universe ceiling from 6 to
/// [`MAX_NODES`]; `threads` fans the universe out (0 = auto).
pub fn run(full: bool, threads: usize, seed: u64) -> VerifySummary {
    let max_n = if full { MAX_NODES } else { 6 };
    let cfg = UniverseConfig {
        max_n,
        threads,
        seed,
        ..UniverseConfig::default()
    };
    let universe = run_universe(&cfg).map_err(|e| e.to_string());

    let (g, events) = two_batch_scenario();
    let explorations = [
        HealerSpec::Dash,
        HealerSpec::Sdash,
        HealerSpec::ForgivingTree,
    ]
    .into_iter()
    .map(|healer| Exploration {
        label: format!("cycle(16) two-batch / {}", healer.name()),
        report: explore_events(&g, healer, seed, &events, &ExplorerConfig::default())
            .map_err(|e| e.to_string()),
    })
    .collect();

    VerifySummary {
        max_n,
        universe,
        explorations,
    }
}

/// Render the verification block the CLI prints.
pub fn render(summary: &VerifySummary) -> String {
    let mut out = String::new();
    match &summary.universe {
        Ok(u) => {
            let _ = writeln!(
                out,
                "universe n <= {}: {} graphs x {} healers — {} order runs, {} batch runs",
                summary.max_n, u.graphs, u.healers, u.order_runs, u.batch_runs
            );
            let _ = writeln!(out, "  theorem violations: {}", u.violation_count);
            for v in &u.violations {
                let _ = writeln!(out, "  VIOLATION: {v}");
            }
            if u.truncated {
                let _ = writeln!(out, "  (further findings truncated)");
            }
        }
        Err(e) => {
            let _ = writeln!(out, "universe: ERROR {e}");
        }
    }
    for exp in &summary.explorations {
        match &exp.report {
            Ok(r) => {
                let _ = writeln!(
                    out,
                    "explorer {}: {} interleavings -> {} classes ({} pruned, {:.2}%), {} checked",
                    exp.label,
                    r.interleavings,
                    r.classes,
                    r.pruned(),
                    100.0 * r.prune_ratio(),
                    r.checked
                );
                let _ = writeln!(out, "  parity violations: {}", r.violation_count);
                for v in &r.violations {
                    let _ = writeln!(out, "  VIOLATION: {v}");
                }
            }
            Err(e) => {
                let _ = writeln!(out, "explorer {}: ERROR {e}", exp.label);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_tier_is_clean_and_renders() {
        // n <= 5 keeps the debug-profile unit test affordable; the CLI's
        // quick tier (n <= 6) runs release-built in `make
        // verify-exhaustive`.
        let cfg = UniverseConfig {
            max_n: 5,
            ..UniverseConfig::default()
        };
        let universe = run_universe(&cfg).map_err(|e| e.to_string());
        let (g, events) = two_batch_scenario();
        let summary = VerifySummary {
            max_n: 5,
            universe,
            explorations: vec![Exploration {
                label: "cycle(16) two-batch / dash".to_string(),
                report: explore_events(
                    &g,
                    HealerSpec::Dash,
                    2008,
                    &events,
                    &ExplorerConfig::default(),
                )
                .map_err(|e| e.to_string()),
            }],
        };
        assert!(summary.clean(), "{summary:#?}");
        let text = render(&summary);
        assert!(text.contains("universe n <= 5"), "{text}");
        assert!(text.contains("classes"), "{text}");
        assert!(text.contains("violations: 0"), "{text}");
    }
}

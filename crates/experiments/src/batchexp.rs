//! E8 — simultaneous-deletion extension (paper footnote 1).
//!
//! DASH is claimed to handle any number of simultaneous deletions as long
//! as NoN knowledge suffices (an independent victim set). This experiment
//! sweeps the batch size `k` and verifies the two headline guarantees
//! survive batching: connectivity after every batch and `δ ≤ 2 log₂ n`.

use crate::config::{trial_seed, Scale, BA_ATTACHMENT};
use rand::rngs::StdRng;
use rand::SeedableRng;
use selfheal_core::dash::Dash;
use selfheal_core::scenario::{DegreeBatches, ScenarioEngine};
use selfheal_core::state::HealingNetwork;
use selfheal_graph::components::is_connected;
use selfheal_graph::generators::barabasi_albert;
use selfheal_metrics::{summarize, Table, TenantStats};

/// One row of the batch experiment.
#[derive(Clone, Debug)]
pub struct BatchRow {
    /// Batch size (victims per round).
    pub k: usize,
    /// Graph size.
    pub n: usize,
    /// Mean max degree increase over trials.
    pub max_delta: f64,
    /// The 2 log₂ n bound.
    pub bound: f64,
    /// Mean number of batches needed to empty the network.
    pub batches: f64,
    /// Whether connectivity held after every batch in every trial.
    pub connected_throughout: bool,
}

/// Run one batched kill-sweep; returns (max delta ever, batch count,
/// stayed connected). Driven by the unified [`ScenarioEngine`]: the
/// [`DegreeBatches`] source emits `DeleteBatch` events of up to `k`
/// independent victims until the network drains. Accumulation goes
/// through the shared [`TenantStats`] aggregate rather than ad-hoc
/// counters, so this trial reports the same quantities the serving
/// layer's per-tenant `stats` query does.
pub fn run_batch_trial(n: usize, k: usize, seed: u64) -> (i64, u64, bool) {
    let g = barabasi_albert(n, BA_ATTACHMENT, &mut StdRng::seed_from_u64(seed));
    let net = HealingNetwork::new(g, seed);
    let mut engine = ScenarioEngine::new(net, Dash, DegreeBatches::new(k));
    let mut stats = TenantStats::default();
    let mut connected = true;
    while let Some(rec) = engine.step() {
        stats.observe(rec.tenant_sample());
        if !is_connected(engine.net.graph()) {
            connected = false;
            break;
        }
    }
    (stats.max_delta, stats.events, connected)
}

/// Sweep batch sizes at every scale size.
pub fn run(scale: Scale, base_seed: u64) -> Vec<BatchRow> {
    let batch_sizes: &[usize] = match scale {
        Scale::Quick => &[1, 2, 4, 8],
        Scale::Full => &[1, 2, 4, 8, 16, 32],
    };
    let mut rows = Vec::new();
    for &n in &scale.degree_sizes() {
        for &k in batch_sizes {
            let mut deltas = Vec::new();
            let mut batch_counts = Vec::new();
            let mut connected = true;
            for t in 0..scale.trials() {
                let (d, b, c) = run_batch_trial(n, k, trial_seed(base_seed, n * 31 + k, t));
                deltas.push(d as f64);
                batch_counts.push(b as f64);
                connected &= c;
            }
            rows.push(BatchRow {
                k,
                n,
                max_delta: summarize(deltas.iter().copied()).mean,
                bound: 2.0 * (n as f64).log2(),
                batches: summarize(batch_counts.iter().copied()).mean,
                connected_throughout: connected,
            });
        }
    }
    rows
}

/// Render the batch table.
pub fn render(rows: &[BatchRow]) -> String {
    let mut t = Table::new(["n", "batch k", "max dδ", "2log2 n", "batches", "connected"]);
    for r in rows {
        t.row([
            r.n.to_string(),
            r.k.to_string(),
            format!("{:.1}", r.max_delta),
            format!("{:.1}", r.bound),
            format!("{:.1}", r.batches),
            if r.connected_throughout {
                "yes".into()
            } else {
                "NO".into()
            },
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batching_preserves_guarantees_at_quick_scale() {
        let rows = run(Scale::Quick, 55);
        assert!(!rows.is_empty());
        for r in &rows {
            assert!(
                r.connected_throughout,
                "k={} n={} broke connectivity",
                r.k, r.n
            );
            assert!(
                r.max_delta <= r.bound,
                "k={} n={}: {} > {}",
                r.k,
                r.n,
                r.max_delta,
                r.bound
            );
        }
    }

    #[test]
    fn bigger_batches_use_fewer_rounds() {
        let (_, b1, _) = run_batch_trial(128, 1, 3);
        let (_, b8, _) = run_batch_trial(128, 8, 3);
        assert!(
            b8 < b1,
            "batched sweep should need fewer rounds: {b8} vs {b1}"
        );
    }
}

//! E9: the parallel sweep fleet — theorem auditing at scale.
//!
//! Fans thousands of seeded scenarios per (adversary, healer)
//! configuration across worker threads (`core::sweep`), each run watched
//! by a [`TheoremAuditor`](selfheal_core::TheoremAuditor), and renders
//! the per-configuration aggregates: message / ID-change / degree-delta
//! / stretch histograms, worst seeds for replay, and any bound
//! violations with the exact seed that triggers them.
//!
//! Every configuration is a declarative [`ScenarioSpec`] template (the
//! same description a `.scn` file carries) fanned over a seed range —
//! `Quick` is CI-sized; `Full` is the acceptance sweep, 1000 seeds per
//! adversary per healer, every run audited, expected violation-free.

use crate::config::Scale;
use selfheal_core::spec::{BackendSpec, HealerSpec, ScenarioSpec};
use selfheal_core::sweep::{run_sweep, SweepAdversary, SweepAggregate, SweepConfig};

/// Size of one sweep at each scale.
fn sweep_shape(scale: Scale) -> (usize, u64) {
    match scale {
        // (graph size n, seeded runs per configuration)
        Scale::Quick => (32, 40),
        Scale::Full => (64, 1000),
    }
}

/// One configuration's aggregate, tagged for rendering.
pub struct SweepRow {
    /// The scenario template this row fanned out.
    pub spec: ScenarioSpec,
    /// Adversary swept.
    pub adversary: SweepAdversary,
    /// Healer under test.
    pub healer: HealerSpec,
    /// The finalized fleet aggregate.
    pub aggregate: SweepAggregate,
}

/// Run the fleet over every library adversary for the given healers.
///
/// `parity` additionally runs the distributed fabric twin on every run
/// and folds any divergence into the violation list (expensive — the
/// fabric re-executes each schedule as real message passing).
pub fn run(
    scale: Scale,
    base_seed: u64,
    threads: usize,
    healers: &[HealerSpec],
    parity: bool,
) -> Vec<SweepRow> {
    let (n, runs) = sweep_shape(scale);
    let mut rows = Vec::new();
    for &healer in healers {
        for adversary in SweepAdversary::ALL {
            let mut cfg = SweepConfig::sized(adversary, healer, n);
            cfg.spec.seed = base_seed;
            if parity {
                cfg.spec.backend = BackendSpec::Parity;
            }
            cfg.runs = runs;
            cfg.threads = threads;
            rows.push(SweepRow {
                spec: cfg.spec.clone(),
                adversary,
                healer,
                aggregate: run_sweep(&cfg),
            });
        }
    }
    rows
}

/// Render all rows as a report block.
pub fn render(rows: &[SweepRow]) -> String {
    let mut out = String::new();
    for row in rows {
        out.push_str(&format!(
            "[{} / {}]\n{}",
            row.healer.name(),
            row.adversary.name(),
            row.aggregate.render_summary()
        ));
    }
    let total_violations: usize = rows.iter().map(|r| r.aggregate.violations.len()).sum();
    let total_runs: u64 = rows.iter().map(|r| r.aggregate.runs).sum();
    out.push_str(&format!(
        "fleet total: {total_runs} runs, {total_violations} bound violations\n"
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_sweep_is_violation_free() {
        let rows = run(Scale::Quick, 20080124, 4, &[HealerSpec::Dash], false);
        assert_eq!(rows.len(), SweepAdversary::ALL.len());
        for row in &rows {
            assert_eq!(row.aggregate.runs, 40);
            assert!(
                row.aggregate.violations.is_empty(),
                "{}: {:?}",
                row.adversary.name(),
                row.aggregate.violations
            );
        }
        let text = render(&rows);
        assert!(text.contains("0 bound violations"), "{text}");
    }

    #[test]
    fn render_names_every_configuration() {
        let rows = run(Scale::Quick, 1, 2, &[HealerSpec::Sdash], false);
        let text = render(&rows);
        for adversary in SweepAdversary::ALL {
            assert!(text.contains(adversary.name()), "{text}");
        }
        assert!(text.contains("sdash"));
    }

    #[test]
    fn rows_carry_replayable_spec_templates() {
        let rows = run(Scale::Quick, 5, 2, &[HealerSpec::Dash], false);
        for row in &rows {
            // The template round-trips through the text format, so any
            // fleet row can be saved as a .scn file and replayed.
            let text = row.spec.to_string();
            assert_eq!(text.parse::<ScenarioSpec>().unwrap(), row.spec);
        }
    }
}

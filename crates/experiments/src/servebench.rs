//! E13: serve-bench — the healing-as-a-service soak.
//!
//! Serves the four servable specs in the checked-in corpus as four
//! tenant shards on one [`Cluster`] and drives each with its own
//! deterministic churn stream (single deletions and two-neighbor
//! joins, sampled from the tenant's *published* snapshots, with a
//! population band so the network neither empties nor explodes),
//! while dedicated threads hammer the lock-free snapshot readers the
//! whole time. The soak ends with `run_to_quiescence` and a full
//! finalize — end-of-run theorem checks included.
//!
//! Everything on stdout is deterministic in (specs, seed, scale): the
//! streams are derived from a SplitMix generator and snapshot states
//! that only change at tick barriers, ticks claim every shard exactly
//! once, and concurrent readers never mutate — so the summary table is
//! byte-identical for any worker count (`make serve-check` pins the
//! quick tier against `goldens/serve_bench_quick.txt` at 1, 2 and 8
//! threads). Timing — per-shard events/sec, snapshot-read throughput —
//! goes to stderr.

use crate::config::Scale;
use selfheal_core::scenario::NetworkEvent;
use selfheal_core::spec::ScenarioSpec;
use selfheal_metrics::{Table, TenantStats};
use selfheal_serve::Cluster;
use std::sync::atomic::{AtomicBool, Ordering};

/// The served corpus: the theorem-audited `backend = centralized`
/// specs, under stable tenant names. `churn-a`/`churn-b` serve the
/// *same* spec as two independent tenants with different streams —
/// multi-tenancy means isolation, not distinct configs — and the
/// theorem tier keeps the acceptance bar sharp: any nonzero findings
/// count is a real bound violation, not a comparative penalty (the
/// cheap-audited corpus members, e.g. `graph_heal_baseline`, rack up
/// envelope findings by design — E12's job, not a serving gate's).
const TENANTS: [(&str, &str); 4] = [
    ("churn-a", include_str!("../../../specs/random_churn.scn")),
    ("churn-b", include_str!("../../../specs/random_churn.scn")),
    (
        "epidemic",
        include_str!("../../../specs/epidemic_sdash.scn"),
    ),
    (
        "kill-sweep",
        include_str!("../../../specs/max_node_kill_sweep.scn"),
    ),
];

/// `(rounds, events per tenant per round)`. The full tier is the
/// acceptance soak: 4 shards × 400 × 64 = 102 400 events total.
fn soak_shape(scale: Scale) -> (usize, usize) {
    match scale {
        Scale::Quick => (64, 64),
        Scale::Full => (400, 64),
    }
}

/// One tenant's final accounting, read from its terminal snapshot.
pub struct SoakRow {
    /// Tenant name.
    pub tenant: String,
    /// The healer family its spec runs.
    pub healer: String,
    /// Per-tenant aggregate counters.
    pub stats: TenantStats,
    /// Live nodes at quiescence.
    pub live: usize,
    /// Broadcast component-ID entries at quiescence.
    pub components: usize,
    /// `G'` edge count at quiescence.
    pub gprime_edges: usize,
    /// Audit findings, end-of-run checks included.
    pub findings: usize,
}

/// The soak's outcome: deterministic rows plus the (timing-dependent)
/// count of snapshot reads completed while the soak churned.
pub struct Soak {
    /// Per-tenant rows, in serving order. Worker-count-invariant.
    pub rows: Vec<SoakRow>,
    /// Total snapshot reads by the concurrent reader threads. *Not*
    /// deterministic — report it on stderr only.
    pub snapshot_reads: u64,
}

fn splitmix(x: &mut u64) -> u64 {
    *x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Run the soak. The returned rows depend only on `(scale, base_seed)`.
pub fn run(scale: Scale, base_seed: u64, threads: usize) -> Soak {
    let (rounds, batch) = soak_shape(scale);
    let mut cluster = Cluster::new(threads);
    let mut healers = Vec::new();
    for (tenant, text) in TENANTS {
        // panic-ok: the specs are checked in and spec-check gates them.
        let spec = ScenarioSpec::parse(text).expect("embedded spec parses");
        // panic-ok: as above.
        spec.validate().expect("embedded spec validates");
        healers.push(spec.healer.to_string());
        // panic-ok: the corpus above is servable by construction.
        let added = cluster.add_spec(tenant, &spec);
        added.expect("embedded spec serves"); // panic-ok: as above.
    }

    // Per-tenant stream state: a SplitMix cursor and the population
    // band [3n₀/4, 5n₀/4] around the spec's initial live count.
    let mut streams: Vec<(u64, usize)> = TENANTS
        .iter()
        .enumerate()
        .map(|(i, (tenant, _))| {
            let seed = base_seed ^ (i as u64 + 1).wrapping_mul(0xA076_1D64_78BD_642F);
            // panic-ok: the tenant was just added.
            let reader = cluster.reader(tenant).expect("served tenant");
            (seed, reader.read(|snap| snap.state.live_count()).1)
        })
        .collect();

    let stop = AtomicBool::new(false);
    let mut snapshot_reads = 0u64;
    std::thread::scope(|s| {
        let handles: Vec<_> = TENANTS
            .iter()
            .map(|(tenant, _)| {
                // panic-ok: the tenant was just added.
                let reader = cluster.reader(tenant).expect("served tenant");
                let stop = &stop;
                s.spawn(move || {
                    let mut reads = 0u64;
                    while !stop.load(Ordering::Acquire) {
                        let (_, live) = reader.read(|snap| snap.state.live_count());
                        assert!(live > 0, "a soak tenant healed to extinction");
                        reads += 1;
                    }
                    reads
                })
            })
            .collect();

        for _ in 0..rounds {
            for (i, (tenant, _)) in TENANTS.iter().enumerate() {
                let (ref mut rng, n0) = streams[i];
                // panic-ok: the tenant was just added.
                let reader = cluster.reader(tenant).expect("served tenant");
                // Deterministic despite the concurrent readers: the
                // published snapshot only changes at tick barriers.
                let (_, live) = reader.read(|snap| snap.state.live.clone());
                // The population band below steers an *estimate* (est):
                // skipped joins and duplicate-victim deletes make it
                // drift from the true live count within a round, so it
                // is a heuristic, not a proof the set stays non-empty.
                // Fail readably here rather than as a `% 0` panic in
                // `pick` if the band is ever mistuned.
                assert!(
                    !live.is_empty(),
                    "serve-bench: tenant {tenant} has no live nodes at round start \
                     (population band drifted to extinction)"
                );
                let mut est = live.len();
                for _ in 0..batch {
                    let r = splitmix(rng);
                    let pick = |bits: u64| live[(bits % live.len() as u64) as usize];
                    let join = est < n0 * 3 / 4 || (est <= n0 * 5 / 4 && r & 1 == 0);
                    let event = if join {
                        est += 1;
                        NetworkEvent::Join {
                            neighbors: vec![pick(r >> 8), pick(r >> 32)],
                        }
                    } else {
                        est -= 1;
                        NetworkEvent::Delete(pick(r >> 16))
                    };
                    // panic-ok: ids come from the live list, in range.
                    cluster.submit(tenant, event).expect("valid soak event");
                }
            }
            cluster.tick();
        }
        cluster.run_to_quiescence();
        stop.store(true, Ordering::Release);
        for h in handles {
            // panic-ok: reader threads only stop when told to.
            snapshot_reads += h.join().expect("reader thread");
        }
    });

    // Finalize (runs the auditors' end-of-run checks and publishes the
    // terminal snapshots), then read each tenant's final accounting.
    let _ = cluster.finish();
    let rows = TENANTS
        .iter()
        .zip(healers)
        .map(|((tenant, _), healer)| {
            // panic-ok: the tenant was just added.
            let reader = cluster.reader(tenant).expect("served tenant");
            let (_, snap) = reader.get();
            SoakRow {
                tenant: (*tenant).to_string(),
                healer,
                stats: snap.stats,
                live: snap.state.live_count(),
                components: snap.state.components.len(),
                gprime_edges: snap.state.gprime_edges,
                findings: snap.violations,
            }
        })
        .collect();
    Soak {
        rows,
        snapshot_reads,
    }
}

/// Render the deterministic summary table plus the cluster-wide totals
/// line — the bytes `make serve-check` pins.
pub fn render(rows: &[SoakRow]) -> String {
    let mut t = Table::new([
        "tenant",
        "healer",
        "applied",
        "skipped",
        "deletions",
        "joins",
        "live",
        "components",
        "gprime edges",
        "max dδ",
        "messages",
        "healing edges",
        "findings",
    ]);
    for row in rows {
        let s = &row.stats;
        t.row([
            row.tenant.clone(),
            row.healer.clone(),
            s.events.to_string(),
            s.skipped.to_string(),
            s.deletions.to_string(),
            s.joins.to_string(),
            row.live.to_string(),
            row.components.to_string(),
            row.gprime_edges.to_string(),
            s.max_delta.to_string(),
            s.messages.to_string(),
            s.edges_added.to_string(),
            row.findings.to_string(),
        ]);
    }
    let applied: u64 = rows.iter().map(|r| r.stats.events).sum();
    let skipped: u64 = rows.iter().map(|r| r.stats.skipped).sum();
    let findings: usize = rows.iter().map(|r| r.findings).sum();
    format!(
        "{}\nquiescent: applied {applied}  skipped {skipped}  findings {findings}\n",
        t.render().trim_end()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_quick_soak_is_worker_count_invariant_and_audit_clean() {
        let one = run(Scale::Quick, 20080124, 1);
        let four = run(Scale::Quick, 20080124, 4);
        assert_eq!(render(&one.rows), render(&four.rows));
        assert_eq!(one.rows.len(), 4);
        for row in &one.rows {
            assert_eq!(row.findings, 0, "tenant {} has audit findings", row.tenant);
            assert!(row.stats.events > 0);
            assert!(row.live > 0);
        }
    }
}

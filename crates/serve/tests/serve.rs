//! Serving-layer integration tests: exact wire-form round-trips for the
//! line protocol (mirroring `tests/spec.rs`'s 256-case style), hostile
//! input handling with readable errors and no panics, and the
//! determinism contract — byte-identical final reports for any worker
//! count, under concurrent snapshot readers.

use proptest::prelude::*;
use selfheal_core::scenario::NetworkEvent;
use selfheal_core::spec::ScenarioSpec;
use selfheal_graph::NodeId;
use selfheal_serve::{parse_request, Cluster, Query, Request};

/// A deterministic event variant over the whole vocabulary.
fn event_variant(idx: usize, ids: &[u32]) -> NetworkEvent {
    match idx % 3 {
        0 => NetworkEvent::Delete(NodeId(ids[0])),
        1 => NetworkEvent::DeleteBatch(ids.iter().copied().map(NodeId).collect()),
        _ => NetworkEvent::Join {
            neighbors: ids.iter().copied().map(NodeId).collect(),
        },
    }
}

fn query_variant(idx: usize, id: u32) -> Query {
    match idx % 4 {
        0 => Query::Components,
        1 => Query::Degree(NodeId(id)),
        2 => Query::GprimeEdges,
        _ => Query::Stats,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Satellite: every request the API can express prints to a line
    /// that parses back to exactly itself — the wire form is lossless
    /// over events (all three kinds, empty lists included), queries,
    /// and ticks.
    #[test]
    fn request_wire_form_round_trips(
        kind in 0usize..5,
        ev in 0usize..3,
        qi in 0usize..4,
        id in 0u32..1_000_000,
        ids in proptest::collection::vec(0u32..1_000_000, 0..8),
        tenant_i in 0usize..4,
    ) {
        let tenant = ["alpha", "beta", "rack-7", "t_0"][tenant_i].to_string();
        let mut pool = ids.clone();
        pool.insert(0, id);
        let request = match kind {
            0 | 1 => Request::Event { tenant, event: event_variant(ev, &pool) },
            2 | 3 => Request::Query { tenant, query: query_variant(qi, id) },
            _ => Request::Tick,
        };
        let line = request.to_string();
        let back = parse_request(&line).unwrap().unwrap();
        prop_assert_eq!(back, request, "round trip through '{}'", line);
    }

    /// The event wire form alone round-trips too (the subset the
    /// `tenant-id <event>` lines carry).
    #[test]
    fn event_wire_form_round_trips(
        ev in 0usize..3,
        ids in proptest::collection::vec(0u32..u32::MAX, 1..10),
    ) {
        let event = event_variant(ev, &ids);
        let line = event.to_string();
        prop_assert_eq!(line.parse::<NetworkEvent>().unwrap(), event);
    }
}

const CHURN_SPEC: &str = include_str!("../../../specs/random_churn.scn");
const EPIDEMIC_SPEC: &str = include_str!("../../../specs/epidemic_sdash.scn");
const EXPLORER_SPEC: &str = include_str!("../../../specs/explorer_batch.scn");
const EXHAUSTIVE_SPEC: &str = include_str!("../../../specs/exhaustive_n6.scn");

fn spec(text: &str) -> ScenarioSpec {
    let s = ScenarioSpec::parse(text).expect("checked-in spec parses");
    s.validate().expect("checked-in spec validates");
    s
}

fn two_tenant_cluster(threads: usize) -> Cluster {
    let mut cluster = Cluster::new(threads);
    cluster.add_spec("churn", &spec(CHURN_SPEC)).unwrap();
    cluster.add_spec("epidemic", &spec(EPIDEMIC_SPEC)).unwrap();
    cluster
}

/// A deterministic adversarial stream: interleaved deletes, batches,
/// and joins against node ids sampled from the tenant's published live
/// list, so the stream stays meaningful as the network churns.
fn drive_stream(cluster: &Cluster, tenant: &str, rounds: usize, salt: u64) {
    let reader = cluster.reader(tenant).unwrap();
    let mut x = salt | 1;
    for round in 0..rounds {
        let (_, live) = reader.read(|snap| snap.state.live.clone());
        if live.len() < 8 {
            break;
        }
        for k in 0..6usize {
            // SplitMix-ish scramble, fixed per (salt, round, k).
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let pick = |i: u64| live[(i % live.len() as u64) as usize];
            let event = match k % 3 {
                0 => NetworkEvent::Delete(pick(x)),
                1 => NetworkEvent::Delete(pick(x >> 17)),
                _ => NetworkEvent::Join {
                    neighbors: vec![pick(x >> 7), pick(x >> 29)],
                },
            };
            cluster.submit(tenant, event).unwrap();
        }
        cluster.tick();
        let _ = round;
    }
}

#[test]
fn final_reports_are_byte_identical_across_worker_counts() {
    let mut outputs = Vec::new();
    for threads in [1usize, 2, 8] {
        let cluster = two_tenant_cluster(threads);
        drive_stream(&cluster, "churn", 6, 0xA5);
        drive_stream(&cluster, "epidemic", 6, 0x5A);
        cluster.run_to_quiescence();
        outputs.push(cluster.finish());
    }
    assert_eq!(outputs[0], outputs[1], "1-thread vs 2-thread reports");
    assert_eq!(outputs[0], outputs[2], "1-thread vs 8-thread reports");
    assert!(outputs[0].contains("tenant churn:"));
    assert!(outputs[0].contains("tenant epidemic:"));
    assert!(
        outputs[0].contains("audit findings 0"),
        "theorem audit must stay clean:\n{}",
        outputs[0]
    );
}

#[test]
fn concurrent_snapshot_readers_never_block_or_tear_during_a_soak() {
    let cluster = two_tenant_cluster(4);
    let stop = std::sync::atomic::AtomicBool::new(false);
    std::thread::scope(|s| {
        for tenant in ["churn", "epidemic"] {
            let reader = cluster.reader(tenant).unwrap();
            let stop = &stop;
            s.spawn(move || {
                let mut reads = 0u64;
                let mut last_epoch = 0;
                while !stop.load(std::sync::atomic::Ordering::Acquire) {
                    let (epoch, (live, degree_slots, components_total)) = reader.read(|snap| {
                        (
                            snap.state.live_count(),
                            snap.state.degrees.len(),
                            snap.state.components.iter().map(|&(_, n)| n).sum::<usize>(),
                        )
                    });
                    // Internal consistency: component membership counts
                    // exactly the live set, degrees cover every slot.
                    assert_eq!(components_total, live, "torn snapshot at epoch {epoch}");
                    assert!(degree_slots >= live);
                    assert!(epoch >= last_epoch, "epoch went backwards");
                    last_epoch = epoch;
                    reads += 1;
                }
                assert!(reads > 0);
            });
        }
        drive_stream(&cluster, "churn", 8, 0x11);
        drive_stream(&cluster, "epidemic", 8, 0x22);
        cluster.run_to_quiescence();
        stop.store(true, std::sync::atomic::Ordering::Release);
    });
    let report = cluster.finish();
    assert!(report.contains("audit findings 0"), "{report}");
}

#[test]
fn hostile_input_gets_readable_errors_and_never_panics() {
    let cluster = two_tenant_cluster(2);

    let err = cluster
        .submit("nobody", NetworkEvent::Delete(NodeId(0)))
        .unwrap_err();
    assert!(err.contains("unknown tenant 'nobody'"), "{err}");
    assert!(err.contains("churn"), "error should list served tenants");

    let err = cluster
        .submit("churn", NetworkEvent::Delete(NodeId(40_000)))
        .unwrap_err();
    assert!(err.contains("out of range"), "{err}");

    let oversized = NetworkEvent::DeleteBatch(vec![NodeId(1); 5_000]);
    let err = cluster.submit("churn", oversized).unwrap_err();
    assert!(err.contains("exceeds"), "{err}");

    let err = cluster
        .submit(
            "churn",
            NetworkEvent::Join {
                neighbors: vec![NodeId(2); 5_000],
            },
        )
        .unwrap_err();
    assert!(err.contains("exceeds"), "{err}");

    for line in [
        "explode 5",
        "churn delete",
        "churn delete x",
        "query churn degree",
        "query churn nonsense",
        "query nobody stats",
        "tick now",
        "bare-tenant",
    ] {
        let response = cluster.handle_line(line).unwrap_or_default();
        assert!(
            response.starts_with("error:"),
            "'{line}' should produce a readable error, got '{response}'"
        );
    }
    assert!(cluster.handle_line("").is_none());
    assert!(cluster.handle_line("# comment").is_none());
}

#[test]
fn a_flood_of_dead_victims_is_skipped_not_panicked() {
    // 5000 consecutive no-progress events would trip the engine's
    // NO_PROGRESS_LIMIT panic if they reached it; the shard's
    // pre-validation must absorb them as skips.
    let cluster = two_tenant_cluster(1);
    cluster
        .submit("churn", NetworkEvent::Delete(NodeId(3)))
        .unwrap();
    cluster.tick();
    for _ in 0..5_000 {
        cluster
            .submit("churn", NetworkEvent::Delete(NodeId(3)))
            .unwrap();
    }
    let (applied, skipped) = cluster.run_to_quiescence();
    assert_eq!(applied, 0);
    assert_eq!(skipped, 5_000);
    let (_, out) = cluster
        .reader("churn")
        .unwrap()
        .read(|snap| (snap.stats.events, snap.stats.skipped));
    assert_eq!(out, (1, 5_000));
}

#[test]
fn unservable_specs_are_rejected_with_readable_reasons() {
    let mut cluster = Cluster::new(1);
    let err = cluster
        .add_spec("explorer", &spec(EXPLORER_SPEC))
        .unwrap_err();
    assert!(err.contains("backend 'explorer'"), "{err}");
    assert!(err.contains("not servable"), "{err}");

    let err = cluster
        .add_spec("universe", &spec(EXHAUSTIVE_SPEC))
        .unwrap_err();
    assert!(err.contains("exhaustive"), "{err}");

    let err = cluster.add_spec("tick", &spec(CHURN_SPEC)).unwrap_err();
    assert!(err.contains("protocol keyword"), "{err}");

    cluster.add_spec("a", &spec(CHURN_SPEC)).unwrap();
    let err = cluster.add_spec("a", &spec(CHURN_SPEC)).unwrap_err();
    assert!(err.contains("already being served"), "{err}");
}

#[test]
fn load_dir_serves_the_servable_subset_with_notices() {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../specs");
    let mut cluster = Cluster::new(2);
    let notices = cluster.load_dir(&dir, None).unwrap();
    assert!(
        cluster.tenants().iter().any(|t| t == "random_churn"),
        "servable specs load: {:?}",
        cluster.tenants()
    );
    assert!(
        notices.iter().any(|n| n.contains("exhaustive_n6.scn")),
        "exhaustive spec must be skipped with a notice: {notices:?}"
    );
    assert!(
        notices.iter().any(|n| n.contains("explorer_batch.scn")),
        "explorer spec must be skipped with a notice: {notices:?}"
    );
    // Every tenant answers a stats query immediately (the load-time
    // snapshot is published as epoch 1).
    for tenant in cluster.tenants() {
        let line = cluster
            .handle_line(&format!("query {tenant} stats"))
            .unwrap();
        assert!(line.starts_with("epoch 1 stats "), "{line}");
    }
}

//! Exhaustive interleaving checks for the serving layer's snapshot
//! protocol (`serve::snapshot`), run via `make loom-check`
//! (`RUSTFLAGS="--cfg loom" cargo test -p selfheal-serve --test loom`).
//!
//! The `SnapSlot` double buffer claims that readers never observe a
//! torn buffer, never return data older than the published epoch at
//! the start of the read, and never deadlock the writer's
//! wait-for-unpin. Plain memory writes are invisible to the vendored
//! model (only mock-atomic operations are scheduling decisions), so
//! the buffer under test holds *mock atomics*: every word the fill
//! closure writes and the read closure loads is a schedule point, and
//! a protocol bug that let a reader dereference a buffer mid-fill
//! would surface as a mixed `(a, b)` pair in some interleaving.
//!
//! Each published buffer holds its own epoch number in both words, so
//! one assertion catches both failure modes: `a != b` is a torn fill,
//! `a != epoch` is a buffer/state-word mismatch (reading the wrong
//! buffer, or one overwritten while pinned).
//!
//! Scope: the vendored model explores every *sequentially consistent*
//! interleaving; it does not simulate weak-memory store→load
//! reordering. The protocol's defence against that (the SeqCst
//! publish/pin handshake) is argued in `serve::snapshot`'s
//! memory-ordering docs, not provable here.
#![cfg(loom)]

use loom::sync::atomic::{AtomicUsize, Ordering};
use selfheal_serve::slot_pair;

/// Two words the writer always fills with the same value. The fill is
/// two separate mock stores, so the model can (and does) preempt the
/// writer between them — only the pin protocol keeps readers out.
#[derive(Default)]
struct Pair {
    a: AtomicUsize,
    b: AtomicUsize,
}

fn fill(p: &Pair, v: usize) {
    p.a.store(v, Ordering::SeqCst);
    p.b.store(v, Ordering::SeqCst);
}

fn read_pair(p: &Pair) -> (usize, usize) {
    (p.a.load(Ordering::SeqCst), p.b.load(Ordering::SeqCst))
}

/// One reader races two publishes: every interleaving of pin /
/// validate / fill / swap, including the one where the second publish
/// must wait for the reader's pin on the buffer it wants to refill
/// (the `wait_until` readiness path — a protocol that never released
/// the pin would be reported by the model as a deadlock).
#[test]
fn a_read_racing_two_publishes_is_never_torn_and_never_stale() {
    let report = loom::model(|| {
        let (mut w, r) = slot_pair(Pair::default(), Pair::default());
        let reader = r.clone();
        let t = loom::thread::spawn(move || {
            let before = reader.epoch();
            let (epoch, (a, b)) = reader.read(read_pair);
            assert_eq!(a, b, "torn fill observed at epoch {epoch}");
            assert_eq!(a, epoch, "buffer does not match its epoch stamp");
            assert!(
                epoch >= before,
                "read returned epoch {epoch} after observing epoch {before}"
            );
            epoch
        });
        for i in 1..=2usize {
            w.publish(|p| fill(p, i));
        }
        let epoch = t.join().unwrap();
        assert!(epoch <= 2, "epoch {epoch} from only two publishes");
        assert_eq!(w.epoch(), 2);
    });
    println!(
        "loom snapshot protocol (1 reader / 2 publishes): {} interleavings \
         explored, {} pruned, max depth {}",
        report.schedules, report.pruned, report.max_depth
    );
    assert!(
        report.schedules > 1,
        "the read must actually race the publishes"
    );
}

/// Full tier: two independent readers race the same two publishes, so
/// both buffers can be pinned at once and pins can straddle both
/// swaps. Larger state space — opt in via `make loom-check-full`
/// (`LOOM_FULL=1`).
#[test]
fn two_readers_racing_two_publishes_stay_coherent() {
    if std::env::var_os("LOOM_FULL").is_none() {
        eprintln!(
            "skipped: full-tier loom config (opt in with LOOM_FULL=1 / make loom-check-full)"
        );
        return;
    }
    let report = loom::model(|| {
        let (mut w, r) = slot_pair(Pair::default(), Pair::default());
        let readers: Vec<_> = (0..2)
            .map(|_| {
                let reader = r.clone();
                loom::thread::spawn(move || {
                    let (epoch, (a, b)) = reader.read(read_pair);
                    assert_eq!(a, b, "torn fill observed at epoch {epoch}");
                    assert_eq!(a, epoch, "buffer does not match its epoch stamp");
                })
            })
            .collect();
        for i in 1..=2usize {
            w.publish(|p| fill(p, i));
        }
        for t in readers {
            t.join().unwrap();
        }
        assert_eq!(w.epoch(), 2);
    });
    println!(
        "loom snapshot protocol (2 readers / 2 publishes): {} interleavings \
         explored, {} pruned, max depth {}",
        report.schedules, report.pruned, report.max_depth
    );
    assert!(report.schedules > 1);
}

//! The lock-free snapshot slot: an epoch-stamped double buffer that
//! decouples healing (one writer per shard) from topology queries (any
//! number of readers).
//!
//! # Protocol
//!
//! A [`SnapSlot`] owns two buffers, a per-buffer reader pin count, and
//! one state word packing `(epoch << 1) | active_index`:
//!
//! - **Readers** ([`SnapshotReader::read`]): load the state word, pin
//!   the active buffer (`fetch_add` its count), then *re-validate* the
//!   state word. Unchanged ⇒ the pinned buffer is still the published
//!   one, read it and unpin. Changed ⇒ unpin **without touching the
//!   buffer** and retry. No locks, no blocking: a reader retries only
//!   if a publish landed between load and pin, and the epoch in the
//!   state word makes the check ABA-proof (the same buffer index never
//!   reappears with the same word).
//! - **The writer** ([`SnapshotWriter::publish`], unique by
//!   construction — the handle is not `Clone` and `publish` takes
//!   `&mut self`): wait until the *inactive* buffer's pin count drains
//!   to zero, refill it in place (allocations are reused — the fill
//!   closure gets `&mut T`), then swap by storing
//!   `((epoch + 1) << 1) | inactive`.
//!
//! A straggling reader may transiently pin the buffer the writer wants
//! (pinned under a stale state word), but its validation is then
//! guaranteed to fail and it unpins without dereferencing — so the
//! writer's wait is bounded by reader critical sections, and readers
//! never observe a torn buffer. While a reader holds a buffer, the
//! *next* publish targets that buffer and blocks, so data handed out is
//! never more than one epoch behind the published state.
//!
//! # Memory ordering
//!
//! The publish/pin handshake is a Dekker-style store→load pattern on
//! two different atomics: the writer *stores* the state word and, on
//! its next publish, *loads* the other buffer's pin count; a reader
//! *stores* (increments) a pin count and then *loads* the state word
//! back. Acquire/release alone does not forbid the outcome where both
//! loads miss the other side's store — store→load reordering across
//! distinct locations is allowed even on x86-TSO — which would let the
//! writer see a pin count of zero while the reader's re-validation
//! still sees the stale state word: the writer refills the buffer the
//! reader is dereferencing. The four accesses on that path (the
//! publish store, the writer's pin-count wait load, the reader's pin
//! `fetch_add`, and the reader's re-validation load) are therefore
//! `SeqCst`: the single total order over them forces either the
//! reader's pin before the writer's wait load (the writer blocks) or
//! the publish store before the re-validation (the reader unpins and
//! retries). Everything else needs only acquire/release.
//!
//! `crates/serve/tests/loom.rs` model-checks this file's protocol
//! (torn reads, staleness bound, writer starvation) across every
//! *sequentially consistent* interleaving via the `--cfg loom` type
//! swap below. The vendored model does not simulate weak-memory
//! reordering, so it cannot vouch for the ordering choice above — the
//! SeqCst handshake is load-bearing precisely because the model only
//! covers the SC subset.

use std::cell::UnsafeCell;
use std::sync::Arc;

#[cfg(loom)]
use loom::sync::atomic::{AtomicUsize, Ordering};
#[cfg(not(loom))]
use std::sync::atomic::{AtomicUsize, Ordering};

/// Block until `a` reads zero. Under the model this is one schedule
/// point with a readiness predicate (no spin-loop state-space blowup);
/// outside it, a yielding spin — publishes are long compared to reads,
/// so the wait is almost always already satisfied. The load is SeqCst:
/// it is the writer-side load of the Dekker handshake (see the module
/// docs) and must be totally ordered against the readers' pins.
fn wait_zero(a: &AtomicUsize) {
    #[cfg(loom)]
    a.wait_until(|v| v == 0);
    #[cfg(not(loom))]
    while a.load(Ordering::SeqCst) != 0 {
        std::thread::yield_now();
    }
}

/// The shared double buffer. Use [`slot_pair`] to create one and split
/// it into its writer and reader handles.
pub struct SnapSlot<T> {
    bufs: [UnsafeCell<T>; 2],
    readers: [AtomicUsize; 2],
    /// `(epoch << 1) | active_index`.
    state: AtomicUsize,
}

// SAFETY: the epoch/pin protocol documented on the module makes every
// `&mut` access to a buffer exclusive (writer fills only the inactive
// buffer after its pin count drains, readers only dereference a buffer
// they pinned *and* re-validated as active). The SC interleavings of
// the protocol are model-checked by crates/serve/tests/loom.rs;
// weak-memory store→load reorderings are excluded by the SeqCst
// publish/pin handshake (module docs, "Memory ordering").
unsafe impl<T: Send + Sync> Sync for SnapSlot<T> {}
// SAFETY: the slot owns its buffers; moving it moves plain owned data.
unsafe impl<T: Send> Send for SnapSlot<T> {}

impl<T> SnapSlot<T> {
    /// The epoch of the currently published buffer (starts at 0,
    /// increments once per publish).
    pub fn epoch(&self) -> usize {
        self.state.load(Ordering::Acquire) >> 1
    }
}

/// Create a slot from two initial buffer values (buffer 0 is published
/// first) and split it into the unique writer and a cloneable reader.
pub fn slot_pair<T>(active: T, spare: T) -> (SnapshotWriter<T>, SnapshotReader<T>) {
    let slot = Arc::new(SnapSlot {
        bufs: [UnsafeCell::new(active), UnsafeCell::new(spare)],
        readers: [AtomicUsize::new(0), AtomicUsize::new(0)],
        state: AtomicUsize::new(0),
    });
    (
        SnapshotWriter { slot: slot.clone() },
        SnapshotReader { slot },
    )
}

/// The unique publishing handle for one [`SnapSlot`]. Deliberately not
/// `Clone`, and [`publish`](SnapshotWriter::publish) takes `&mut self`:
/// the single-writer requirement of the protocol is enforced by the
/// type system, not by convention.
pub struct SnapshotWriter<T> {
    slot: Arc<SnapSlot<T>>,
}

impl<T> SnapshotWriter<T> {
    /// Refill the spare buffer via `fill` (which receives the previous
    /// contents — reuse its allocations) and atomically publish it,
    /// advancing the epoch by one. Blocks only while a reader still
    /// pins the spare buffer, which the protocol bounds to one read
    /// critical section.
    pub fn publish(&mut self, fill: impl FnOnce(&mut T)) {
        let slot = &*self.slot;
        let state = slot.state.load(Ordering::Acquire);
        let inactive = (state & 1) ^ 1;
        wait_zero(&slot.readers[inactive]);
        // SAFETY: we are the unique writer (`&mut self` on a non-Clone
        // handle) and no reader can dereference `bufs[inactive]` from
        // here to the store below: dereferencing requires pin +
        // re-validation against the *current* state word, whose active
        // index is `inactive ^ 1` and which only we can change. Pins
        // taken under an older state word fail validation and release
        // without touching the buffer — and the SeqCst handshake
        // (module docs) guarantees any pin our wait_zero missed has its
        // re-validation ordered after our previous publish store, so it
        // does fail.
        fill(unsafe { &mut *slot.bufs[inactive].get() });
        let next = ((state & !1usize).wrapping_add(2)) | inactive;
        // SeqCst, not Release: this store is the writer's side of the
        // Dekker handshake with the readers' pin/re-validate sequence.
        slot.state.store(next, Ordering::SeqCst);
    }

    /// The published epoch (see [`SnapSlot::epoch`]).
    pub fn epoch(&self) -> usize {
        self.slot.epoch()
    }
}

/// A cloneable, lock-free reading handle for one [`SnapSlot`].
pub struct SnapshotReader<T> {
    slot: Arc<SnapSlot<T>>,
}

impl<T> Clone for SnapshotReader<T> {
    fn clone(&self) -> Self {
        SnapshotReader {
            slot: self.slot.clone(),
        }
    }
}

impl<T> SnapshotReader<T> {
    /// Run `f` against the currently published snapshot, returning its
    /// result tagged with the snapshot's epoch. Never blocks the
    /// writer's heal path and never observes a torn buffer; retries
    /// (only when a publish raced the pin) are bounded by publish
    /// frequency.
    pub fn read<R>(&self, f: impl FnOnce(&T) -> R) -> (usize, R) {
        let slot = &*self.slot;
        loop {
            let state = slot.state.load(Ordering::Acquire);
            let idx = state & 1;
            // dispatch-ok: reader pin count, not an index dispenser; the
            // increment publishes nothing by itself — it only holds the
            // writer out of this buffer until the matching fetch_sub.
            // SeqCst: the pin and the re-validation below are the reader
            // side of the Dekker handshake (module docs) and must be
            // totally ordered against the writer's store/wait pair.
            // SC interleavings model-checked by crates/serve/tests/loom.rs.
            slot.readers[idx].fetch_add(1, Ordering::SeqCst);
            if slot.state.load(Ordering::SeqCst) == state {
                // SAFETY: the pin was taken *and* the state word
                // re-validated (both SeqCst — see the module's memory-
                // ordering section), so `bufs[idx]` is the published
                // buffer and the writer will not touch it until the pin
                // below is released (its publish waits for this count).
                let out = f(unsafe { &*slot.bufs[idx].get() });
                slot.readers[idx].fetch_sub(1, Ordering::Release);
                return (state >> 1, out);
            }
            // A publish landed between load and pin: release without
            // dereferencing and retry against the new state word.
            slot.readers[idx].fetch_sub(1, Ordering::Release);
        }
    }

    /// Clone out the published snapshot (convenience over
    /// [`read`](SnapshotReader::read)).
    pub fn get(&self) -> (usize, T)
    where
        T: Clone,
    {
        self.read(T::clone)
    }

    /// The published epoch (see [`SnapSlot::epoch`]).
    pub fn epoch(&self) -> usize {
        self.slot.epoch()
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;

    #[test]
    fn publish_advances_the_epoch_and_readers_see_the_latest_value() {
        let (mut w, r) = slot_pair(0u64, 0u64);
        assert_eq!(r.get(), (0, 0));
        for i in 1..=5u64 {
            w.publish(|buf| *buf = i);
            assert_eq!(r.epoch(), i as usize);
            assert_eq!(r.get(), (i as usize, i));
        }
    }

    #[test]
    fn fill_receives_the_stale_buffer_for_allocation_reuse() {
        let (mut w, r) = slot_pair(vec![0u32; 4], vec![0u32; 4]);
        let spare_cap = 4;
        w.publish(|buf| {
            assert_eq!(buf.capacity(), spare_cap, "spare buffer handed back");
            buf.clear();
            buf.extend([1, 2]);
        });
        assert_eq!(r.get().1, vec![1, 2]);
        // The next publish gets the *other* buffer (the original
        // active one), also with its allocation intact.
        w.publish(|buf| {
            assert_eq!(buf.capacity(), spare_cap);
            buf.clear();
            buf.push(9);
        });
        assert_eq!(r.get(), (2, vec![9]));
    }

    #[test]
    fn concurrent_readers_never_observe_a_torn_pair() {
        // Publish (i, i) pairs under churn; any mixed pair is a torn
        // read. A stress test, not a proof — the proof is the loom
        // model in tests/loom.rs.
        let (mut w, r) = slot_pair((0u64, 0u64), (0u64, 0u64));
        let stop = std::sync::atomic::AtomicBool::new(false);
        std::thread::scope(|s| {
            for _ in 0..4 {
                let r = r.clone();
                let stop = &stop;
                s.spawn(move || {
                    let mut last_epoch = 0;
                    while !stop.load(std::sync::atomic::Ordering::Acquire) {
                        let (epoch, (a, b)) = r.get();
                        assert_eq!(a, b, "torn read at epoch {epoch}");
                        assert!(epoch >= last_epoch, "epoch went backwards");
                        last_epoch = epoch;
                    }
                });
            }
            for i in 1..=20_000u64 {
                w.publish(|buf| *buf = (i, i));
            }
            stop.store(true, std::sync::atomic::Ordering::Release);
        });
        assert_eq!(w.epoch(), 20_000);
    }
}

//! One tenant's shard: a spec-built healing engine, its pending event
//! queue, per-tenant metrics, the optional theorem auditor, and the
//! snapshot writer that publishes queryable state after every tick.
//!
//! The shard keeps the request path panic-free by construction:
//! hostile input is rejected at [`Shard::submit`] with a readable
//! error (oversized batches, out-of-range ids), and events the engine
//! would treat as no-ops are counted and skipped *before* they reach
//! [`ScenarioEngine::apply_with`] — so the engine's
//! `NO_PROGRESS_LIMIT` stuck-source panic is unreachable no matter
//! what a client streams at us.

use crate::snapshot::{slot_pair, SnapshotReader, SnapshotWriter};
use selfheal_core::scenario::{NetworkEvent, NullObserver, Observer};
use selfheal_core::snapshot::StateSnapshot;
use selfheal_core::spec::{AuditSpec, BackendSpec, DynScenarioEngine, ScenarioSpec};
use selfheal_core::TheoremAuditor;
use selfheal_graph::NodeId;
use selfheal_metrics::TenantStats;
use std::collections::VecDeque;
use std::fmt::Write as _;

/// Hard cap on victims per `delete-batch` and targets per `join` — a
/// hostile stream cannot make one event arbitrarily expensive.
pub const MAX_BATCH: usize = 1024;

/// What queries read: the engine-state snapshot plus the per-tenant
/// aggregate and audit counters, published as one atomic unit.
#[derive(Clone, Debug, Default)]
pub struct ShardSnapshot {
    /// Topology summary (live set, components, degrees, deltas, `G'`).
    pub state: StateSnapshot,
    /// Per-tenant aggregate metrics.
    pub stats: TenantStats,
    /// Findings so far (theorem auditor + engine-level audit).
    pub violations: usize,
    /// Events queued but not yet applied when this epoch published.
    pub pending: usize,
}

/// One tenant's engine plus serving state. Created from a `.scn` spec
/// via [`Shard::from_spec`]; driven by [`Shard::submit`] +
/// [`Shard::tick`]; torn down by [`Shard::finish`].
pub struct Shard {
    tenant: String,
    engine: DynScenarioEngine,
    /// Run-level theorem auditing (`audit = theorems` specs). The
    /// engine's embedded audit level is `Off` for those specs, so the
    /// shard must carry the observer itself — same wiring as
    /// `ScenarioSpec::run_with`.
    auditor: Option<TheoremAuditor>,
    stats: TenantStats,
    queue: VecDeque<NetworkEvent>,
    writer: SnapshotWriter<ShardSnapshot>,
    reader: SnapshotReader<ShardSnapshot>,
}

impl Shard {
    /// Build a shard from a parsed spec. Specs whose execution model is
    /// not an incrementally drivable centralized engine — `distributed`
    /// / `parity` / `explorer` backends, `exhaustive` audits — are
    /// rejected with a readable reason (the serving loop applies
    /// *client* events; those specs replay whole schedules or
    /// universes on their own).
    pub fn from_spec(tenant: &str, spec: &ScenarioSpec) -> Result<Shard, String> {
        if spec.backend != BackendSpec::Centralized {
            return Err(format!(
                "tenant '{tenant}': backend '{}' is not servable — \
                 selfheal-serve drives the centralized engine only",
                spec.backend
            ));
        }
        if spec.audit == AuditSpec::Exhaustive {
            return Err(format!(
                "tenant '{tenant}': audit 'exhaustive' replays whole graph \
                 universes and cannot be driven by a client event stream"
            ));
        }
        let engine = spec
            .build_engine()
            .map_err(|e| format!("tenant '{tenant}': {e}"))?;
        let auditor = (spec.audit == AuditSpec::Theorems)
            .then(|| TheoremAuditor::new(spec.healer.build().preserves_forest()));
        let (writer, reader) = slot_pair(ShardSnapshot::default(), ShardSnapshot::default());
        let mut shard = Shard {
            tenant: tenant.to_string(),
            engine,
            auditor,
            stats: TenantStats::default(),
            queue: VecDeque::new(),
            writer,
            reader,
        };
        shard.publish();
        Ok(shard)
    }

    /// The tenant this shard serves.
    pub fn tenant(&self) -> &str {
        &self.tenant
    }

    /// A cloneable lock-free query handle for this shard.
    pub fn reader(&self) -> SnapshotReader<ShardSnapshot> {
        self.reader.clone()
    }

    /// Validate and enqueue one event. Errors (oversized events,
    /// out-of-range ids) leave the shard untouched; harmless-but-stale
    /// references (dead victims) are accepted and later counted as
    /// skips, mirroring the engine's own sanitization contract.
    pub fn submit(&mut self, event: NetworkEvent) -> Result<(), String> {
        self.validate(&event)?;
        self.queue.push_back(event);
        Ok(())
    }

    /// Events queued and not yet applied.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    fn validate(&self, event: &NetworkEvent) -> Result<(), String> {
        let (ids, what): (&[NodeId], _) = match event {
            NetworkEvent::Delete(v) => (std::slice::from_ref(v), "victim"),
            NetworkEvent::DeleteBatch(vs) => {
                if vs.len() > MAX_BATCH {
                    return Err(format!(
                        "tenant '{}': batch of {} victims exceeds the \
                         {MAX_BATCH}-victim cap",
                        self.tenant,
                        vs.len()
                    ));
                }
                (vs, "victim")
            }
            NetworkEvent::Join { neighbors } => {
                if neighbors.len() > MAX_BATCH {
                    return Err(format!(
                        "tenant '{}': join with {} targets exceeds the \
                         {MAX_BATCH}-target cap",
                        self.tenant,
                        neighbors.len()
                    ));
                }
                (neighbors, "join target")
            }
        };
        let bound = self.engine.net.graph().node_bound();
        for v in ids {
            if v.index() >= bound {
                return Err(format!(
                    "tenant '{}': {what} id {} out of range (network has \
                     {bound} node slots)",
                    self.tenant, v.0
                ));
            }
        }
        Ok(())
    }

    /// Would the engine make progress on this event? Mirrors the
    /// engine's sanitization: a dead single victim, an all-dead batch,
    /// or a join whose non-empty target list is all dead are no-ops
    /// (an explicitly empty join creates an isolated node and *does*
    /// progress).
    fn would_progress(&self, event: &NetworkEvent) -> bool {
        let net = &self.engine.net;
        match event {
            NetworkEvent::Delete(v) => net.is_alive(*v),
            NetworkEvent::DeleteBatch(vs) => vs.iter().any(|&v| net.is_alive(v)),
            NetworkEvent::Join { neighbors } => {
                neighbors.is_empty() || neighbors.iter().any(|&v| net.is_alive(v))
            }
        }
    }

    /// Drain the pending queue through the engine, then publish a fresh
    /// snapshot. Returns `(applied, skipped)` event counts for this
    /// tick. Deterministic: the outcome depends only on the queue
    /// contents and prior shard state, never on who calls it.
    pub fn tick(&mut self) -> (u64, u64) {
        let (mut applied, mut skipped) = (0u64, 0u64);
        let mut null = NullObserver;
        while let Some(event) = self.queue.pop_front() {
            if !self.would_progress(&event) {
                self.stats.observe_skipped();
                skipped += 1;
                continue;
            }
            let observer: &mut dyn Observer = match self.auditor.as_mut() {
                Some(a) => a,
                None => &mut null,
            };
            let record = self.engine.apply_with(event, observer);
            self.stats.observe(record.tenant_sample());
            applied += 1;
        }
        self.publish();
        (applied, skipped)
    }

    /// Current finding count: run-level theorem findings plus whatever
    /// the engine-embedded audit has accumulated in its report.
    fn violation_count(&self) -> usize {
        self.auditor.as_ref().map_or(0, |a| a.violations.len())
            + self.engine.report().violations.len()
    }

    fn publish(&mut self) {
        let engine = &self.engine;
        let stats = self.stats;
        let violations = self.violation_count();
        let pending = self.queue.len();
        self.writer.publish(|snap| {
            snap.state.capture(&engine.net);
            snap.stats = stats;
            snap.violations = violations;
            snap.pending = pending;
        });
    }

    /// Finalize: drain any stragglers, run the auditor's end-of-run
    /// checks (amortized latency), publish the terminal snapshot, and
    /// render the deterministic per-tenant report block.
    pub fn finish(&mut self) -> String {
        self.tick();
        let report = self.engine.finish();
        if let Some(auditor) = self.auditor.as_mut() {
            auditor.finish(&self.engine.net, &report);
        }
        self.publish();
        let (_, snap) = self.reader.get();
        let mut out = String::new();
        let _ = writeln!(
            out,
            "tenant {}: healer {}  audit findings {}",
            self.tenant,
            self.engine.healer_name(),
            snap.violations
        );
        let s = &snap.stats;
        let _ = writeln!(
            out,
            "  events {}  skipped {}  deletions {}  joins {}",
            s.events, s.skipped, s.deletions, s.joins
        );
        let _ = writeln!(
            out,
            "  live {}  components {}  gprime-edges {}  max-delta {}",
            snap.state.live_count(),
            snap.state.components.len(),
            snap.state.gprime_edges,
            s.max_delta
        );
        let _ = writeln!(
            out,
            "  messages {}  healing-edges {}  amortized-latency {:.2}",
            s.messages,
            s.edges_added,
            s.amortized_latency()
        );
        if let Some(auditor) = &self.auditor {
            for v in &auditor.violations {
                let _ = writeln!(out, "  VIOLATION: {v}");
            }
            if auditor.truncated {
                let _ = writeln!(out, "  audit: further findings truncated");
            }
        }
        for v in &self.engine.report().violations {
            let _ = writeln!(out, "  VIOLATION: {v}");
        }
        out
    }
}

//! # selfheal-serve
//!
//! Healing-as-a-service: many independent spec-built healing engines —
//! one shard per tenant — behind a sharded scheduler, ingesting failure
//! events over a line protocol and answering topology queries from
//! lock-free snapshots while heals proceed.
//!
//! The paper's model is a batch event loop; the ROADMAP north star is a
//! long-lived, multi-tenant service. This crate is that serving layer:
//!
//! - [`snapshot`] — the headline mechanism: an epoch-stamped,
//!   double-buffered [`SnapSlot`](snapshot::SnapSlot) published with
//!   atomic swaps, so reads never lock and never block a heal (the
//!   publish/read protocol is model-checked in `tests/loom.rs`);
//! - [`shard`] — one tenant's engine + queue + metrics + auditor, with
//!   a panic-free request path (hostile streams are rejected or
//!   skipped, never fed to the engine's no-progress panic);
//! - [`cluster`] — the scheduler: every tick claims each shard exactly
//!   once on `graph::parallel`'s pool, so final reports are
//!   byte-identical for any worker count;
//! - [`proto`] — the `tenant-id <event>` line protocol and the query
//!   vocabulary (`components`, `degree`, `gprime-edges`, `stats`).
//!
//! The `selfheal-serve` binary serves a directory of `.scn` specs and
//! drives the cluster from stdin or a replay file; the library API is
//! driven directly by `tests/serve.rs` and experiment E13
//! (`run-experiments serve-bench`).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cluster;
pub mod proto;
pub mod shard;
pub mod snapshot;

pub use cluster::Cluster;
pub use proto::{answer, parse_request, Query, Request};
pub use shard::{Shard, ShardSnapshot, MAX_BATCH};
pub use snapshot::{slot_pair, SnapSlot, SnapshotReader, SnapshotWriter};

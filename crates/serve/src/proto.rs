//! The line protocol: hand-rolled parse/format in the same style as
//! `core::spec`, one request per line.
//!
//! ```text
//! <tenant> <event>            # e.g.  alpha delete 5
//!                             #       alpha delete-batch 1 2 3
//!                             #       alpha join 4 5   (bare `join` = isolated node)
//! query <tenant> components
//! query <tenant> degree <id>
//! query <tenant> gprime-edges
//! query <tenant> stats
//! tick                        # apply queued events, publish snapshots
//! ```
//!
//! Blank lines and `#` comments are ignored. The event wire form is
//! `NetworkEvent`'s `Display`/`FromStr` pair (defined in `core`), so
//! `parse` and `Display` here round-trip exactly — pinned by the
//! proptests in `tests/serve.rs`. Tenant names therefore must not be
//! the keywords `query` or `tick`; spec-file stems never are.
//!
//! Every parse error is a complete sentence naming the offending token
//! — the serving loop reports it to the client verbatim and carries on.

use crate::shard::ShardSnapshot;
use selfheal_core::scenario::NetworkEvent;
use selfheal_graph::NodeId;
use std::fmt;
use std::fmt::Write as _;

/// A read-only query against one tenant's published snapshot.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Query {
    /// Broadcast component IDs with member counts.
    Components,
    /// One node's degree in the healed graph `G'`.
    Degree(NodeId),
    /// Edge count of `G'`.
    GprimeEdges,
    /// The per-tenant aggregate counters.
    Stats,
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Query::Components => f.write_str("components"),
            Query::Degree(v) => write!(f, "degree {}", v.0),
            Query::GprimeEdges => f.write_str("gprime-edges"),
            Query::Stats => f.write_str("stats"),
        }
    }
}

/// One parsed protocol line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// Enqueue an event for a tenant's shard.
    Event {
        /// Target tenant.
        tenant: String,
        /// The event, in `NetworkEvent` wire form.
        event: NetworkEvent,
    },
    /// Read a tenant's published snapshot.
    Query {
        /// Target tenant.
        tenant: String,
        /// What to read.
        query: Query,
    },
    /// Apply every queued event and publish fresh snapshots.
    Tick,
}

impl fmt::Display for Request {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Request::Event { tenant, event } => write!(f, "{tenant} {event}"),
            Request::Query { tenant, query } => write!(f, "query {tenant} {query}"),
            Request::Tick => f.write_str("tick"),
        }
    }
}

/// Parse one line. `Ok(None)` for blank lines and `#` comments.
pub fn parse_request(line: &str) -> Result<Option<Request>, String> {
    let line = line.trim();
    if line.is_empty() || line.starts_with('#') {
        return Ok(None);
    }
    let mut words = line.splitn(2, char::is_whitespace);
    let head = words.next().unwrap_or_default();
    let rest = words.next().unwrap_or("").trim();
    match head {
        "tick" => {
            if rest.is_empty() {
                Ok(Some(Request::Tick))
            } else {
                Err(format!("'tick' takes no arguments, got '{rest}'"))
            }
        }
        "query" => {
            let mut words = rest.splitn(2, char::is_whitespace);
            let tenant = words.next().unwrap_or_default();
            if tenant.is_empty() {
                return Err("'query' needs a tenant and a query kind".to_string());
            }
            let q = words.next().unwrap_or("").trim();
            let query = parse_query(q)?;
            Ok(Some(Request::Query {
                tenant: tenant.to_string(),
                query,
            }))
        }
        tenant => {
            if rest.is_empty() {
                return Err(format!(
                    "expected '<tenant> <event>', 'query ...' or 'tick', got \
                     bare '{tenant}'"
                ));
            }
            let event: NetworkEvent = rest.parse()?;
            Ok(Some(Request::Event {
                tenant: tenant.to_string(),
                event,
            }))
        }
    }
}

fn parse_query(q: &str) -> Result<Query, String> {
    let mut words = q.split_whitespace();
    let kind = words.next().unwrap_or_default();
    let args: Vec<&str> = words.collect();
    match (kind, args.as_slice()) {
        ("components", []) => Ok(Query::Components),
        ("gprime-edges", []) => Ok(Query::GprimeEdges),
        ("stats", []) => Ok(Query::Stats),
        ("degree", [id]) => id
            .parse::<u32>()
            .map(|v| Query::Degree(NodeId(v)))
            .map_err(|_| format!("invalid node id '{id}'")),
        ("degree", _) => Err("'degree' takes exactly one node id".to_string()),
        ("", _) => Err("'query' needs a query kind".to_string()),
        (other, _) => Err(format!(
            "unknown query '{other}' (expected components, degree, \
             gprime-edges, or stats)"
        )),
    }
}

/// Render a query's answer from a published snapshot, tagged with the
/// epoch it was read at (so clients can tell how fresh the data is).
#[must_use]
pub fn answer(query: Query, epoch: usize, snap: &ShardSnapshot) -> String {
    format!("epoch {epoch} {}", answer_body(query, snap))
}

/// The answer text without the epoch prefix — what a lock-free read
/// closure renders before the validated epoch is known.
#[must_use]
pub fn answer_body(query: Query, snap: &ShardSnapshot) -> String {
    let mut out = String::new();
    match query {
        Query::Components => {
            let _ = write!(out, "components {}:", snap.state.components.len());
            for &(id, size) in &snap.state.components {
                let _ = write!(out, " {id}:{size}");
            }
        }
        Query::Degree(v) => match snap.state.degree_of(v) {
            Some(d) => {
                let _ = write!(out, "degree {} {d}", v.0);
            }
            None => {
                let _ = write!(
                    out,
                    "degree {} unknown (node id out of range, {} slots)",
                    v.0,
                    snap.state.degrees.len()
                );
            }
        },
        Query::GprimeEdges => {
            let _ = write!(out, "gprime-edges {}", snap.state.gprime_edges);
        }
        Query::Stats => {
            let s = &snap.stats;
            let _ = write!(
                out,
                "stats events {} skipped {} deletions {} joins {} live {} \
                 max-delta {} messages {} healing-edges {} violations {} \
                 pending {}",
                s.events,
                s.skipped,
                s.deletions,
                s.joins,
                snap.state.live_count(),
                s.max_delta,
                s.messages,
                s.edges_added,
                snap.violations,
                snap.pending
            );
        }
    }
    out
}

//! The sharded scheduler: one [`Shard`] per tenant, ticked in parallel
//! over `graph::parallel`'s dynamically load-balanced pool, with
//! per-tenant lock-free query handles.
//!
//! # Determinism contract
//!
//! Each tick claims every shard index exactly once (the pool's atomic
//! dispatch counter), and a shard's tick drains its whole queue — so a
//! shard's evolution depends only on *its own* event sequence, never on
//! which worker ran it or how shards interleaved. Given the same specs
//! and the same per-tenant event streams, the final per-tenant reports
//! ([`Cluster::finish`]) are byte-identical for any worker count —
//! pinned by `tests/serve.rs` and the `make serve-check` smoke gate.

use crate::proto::{answer_body, parse_request, Query, Request};
use crate::shard::{Shard, ShardSnapshot};
use crate::snapshot::SnapshotReader;
use parking_lot::Mutex;
use selfheal_core::scenario::NetworkEvent;
use selfheal_core::spec::ScenarioSpec;
use selfheal_graph::parallel::parallel_fold;
use std::path::Path;

/// A set of tenant shards behind one scheduler.
pub struct Cluster {
    shards: Vec<Mutex<Shard>>,
    tenants: Vec<String>,
    /// Query handles, index-parallel to `shards`: reads never lock.
    readers: Vec<SnapshotReader<ShardSnapshot>>,
    threads: usize,
}

impl Cluster {
    /// An empty cluster ticking on `threads` workers (min 1).
    #[must_use]
    pub fn new(threads: usize) -> Cluster {
        Cluster {
            shards: Vec::new(),
            tenants: Vec::new(),
            readers: Vec::new(),
            threads: threads.max(1),
        }
    }

    /// Add one tenant backed by `spec`. Errors on duplicate tenant
    /// names, reserved names, and unservable specs (see
    /// [`Shard::from_spec`]).
    pub fn add_spec(&mut self, tenant: &str, spec: &ScenarioSpec) -> Result<(), String> {
        if tenant == "query" || tenant == "tick" {
            return Err(format!(
                "tenant name '{tenant}' is a protocol keyword and cannot be \
                 served"
            ));
        }
        if self.tenants.iter().any(|t| t == tenant) {
            return Err(format!("tenant '{tenant}' is already being served"));
        }
        let shard = Shard::from_spec(tenant, spec)?;
        self.readers.push(shard.reader());
        self.shards.push(Mutex::new(shard));
        self.tenants.push(tenant.to_string());
        Ok(())
    }

    /// Load `.scn` specs from a directory, one tenant per file (the
    /// tenant is the file stem), in sorted filename order.
    ///
    /// With `tenants` given, exactly those stems are loaded, in the
    /// given order, and any failure is an error. Without it, every
    /// `.scn` file is tried and unservable or unparsable specs are
    /// *skipped*, each with a readable notice in the returned list —
    /// so a mixed corpus (parity specs, explorer specs) serves its
    /// servable subset.
    pub fn load_dir(
        &mut self,
        dir: &Path,
        tenants: Option<&[&str]>,
    ) -> Result<Vec<String>, String> {
        let entries = std::fs::read_dir(dir)
            .map_err(|e| format!("cannot read spec directory '{}': {e}", dir.display()))?;
        let mut stems: Vec<String> = Vec::new();
        for entry in entries {
            let entry = entry.map_err(|e| format!("cannot list '{}': {e}", dir.display()))?;
            let path = entry.path();
            if path.extension().and_then(|e| e.to_str()) == Some("scn") {
                if let Some(stem) = path.file_stem().and_then(|s| s.to_str()) {
                    stems.push(stem.to_string());
                }
            }
        }
        stems.sort();
        let mut notices = Vec::new();
        match tenants {
            Some(wanted) => {
                for &name in wanted {
                    if !stems.iter().any(|s| s == name) {
                        return Err(format!(
                            "no spec '{name}.scn' in '{}' (available: {})",
                            dir.display(),
                            stems.join(", ")
                        ));
                    }
                    let spec = load_spec(dir, name)?;
                    self.add_spec(name, &spec)?;
                }
            }
            None => {
                for name in &stems {
                    match load_spec(dir, name).and_then(|spec| self.add_spec(name, &spec)) {
                        Ok(()) => {}
                        Err(reason) => notices.push(format!("skipping {name}.scn: {reason}")),
                    }
                }
            }
        }
        Ok(notices)
    }

    /// The served tenants, in serving order.
    #[must_use]
    pub fn tenants(&self) -> &[String] {
        &self.tenants
    }

    fn index_of(&self, tenant: &str) -> Result<usize, String> {
        self.tenants
            .iter()
            .position(|t| t == tenant)
            .ok_or_else(|| {
                format!(
                    "unknown tenant '{tenant}' (serving: {})",
                    self.tenants.join(", ")
                )
            })
    }

    /// Enqueue one event on a tenant's shard.
    pub fn submit(&self, tenant: &str, event: NetworkEvent) -> Result<(), String> {
        let i = self.index_of(tenant)?;
        self.shards[i].lock().submit(event)
    }

    /// A lock-free query handle for one tenant — cloneable and usable
    /// from any thread while ticks run.
    pub fn reader(&self, tenant: &str) -> Result<SnapshotReader<ShardSnapshot>, String> {
        Ok(self.readers[self.index_of(tenant)?].clone())
    }

    /// Answer a query from the tenant's *published* snapshot (never
    /// blocks a heal; at most one epoch stale).
    pub fn query(&self, tenant: &str, query: Query) -> Result<String, String> {
        let i = self.index_of(tenant)?;
        let (epoch, body) = self.readers[i].read(|snap| answer_body(query, snap));
        Ok(format!("epoch {epoch} {body}"))
    }

    /// Apply every queued event on every shard (each shard claimed
    /// exactly once, drained fully) and publish fresh snapshots.
    /// Returns the cluster-wide `(applied, skipped)` counts — a
    /// commutative reduction, so they too are worker-count-invariant.
    pub fn tick(&self) -> (u64, u64) {
        parallel_fold(
            self.shards.len(),
            self.threads,
            || (0u64, 0u64),
            |acc, i| {
                let (a, s) = self.shards[i].lock().tick();
                (acc.0 + a, acc.1 + s)
            },
            |x, y| (x.0 + y.0, x.1 + y.1),
        )
    }

    /// Total events queued and not yet applied, across all shards.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.shards.iter().map(|s| s.lock().pending()).sum()
    }

    /// Tick until no shard has pending events. Returns the total
    /// `(applied, skipped)` counts.
    pub fn run_to_quiescence(&self) -> (u64, u64) {
        let (mut applied, mut skipped) = (0u64, 0u64);
        loop {
            let (a, s) = self.tick();
            applied += a;
            skipped += s;
            if self.pending() == 0 {
                return (applied, skipped);
            }
        }
    }

    /// Finalize every shard (in serving order) and concatenate the
    /// deterministic per-tenant report blocks — the byte-identical
    /// artifact of the determinism contract.
    #[must_use]
    pub fn finish(&self) -> String {
        let mut out = String::new();
        for shard in &self.shards {
            out.push_str(&shard.lock().finish());
        }
        out
    }

    /// Execute one protocol line end to end: parse, dispatch, and
    /// render. Returns the line to print, if any (event submissions are
    /// silent on success; every error becomes a printable
    /// `error: ...` line rather than a failure).
    pub fn handle_line(&self, line: &str) -> Option<String> {
        let request = match parse_request(line) {
            Ok(None) => return None,
            Ok(Some(r)) => r,
            Err(e) => return Some(format!("error: {e}")),
        };
        match request {
            Request::Event { tenant, event } => match self.submit(&tenant, event) {
                Ok(()) => None,
                Err(e) => Some(format!("error: {e}")),
            },
            Request::Query { tenant, query } => match self.query(&tenant, query) {
                Ok(text) => Some(text),
                Err(e) => Some(format!("error: {e}")),
            },
            Request::Tick => {
                let (applied, skipped) = self.tick();
                Some(format!("tick applied {applied} skipped {skipped}"))
            }
        }
    }
}

fn load_spec(dir: &Path, stem: &str) -> Result<ScenarioSpec, String> {
    let path = dir.join(format!("{stem}.scn"));
    let text = std::fs::read_to_string(&path)
        .map_err(|e| format!("cannot read spec '{}': {e}", path.display()))?;
    let spec = ScenarioSpec::parse(&text).map_err(|e| e.to_string())?;
    spec.validate().map_err(|e| e.to_string())?;
    Ok(spec)
}

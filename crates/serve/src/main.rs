//! `selfheal-serve` — serve a directory of `.scn` specs as healing
//! shards and drive them from stdin or a replay file.
//!
//! ```text
//! selfheal-serve --specs <dir> [--tenants a,b] [--threads N] [--replay <file>]
//! ```
//!
//! Protocol lines arrive one per line (see `proto`); responses and the
//! final per-tenant reports go to stdout. Everything printed is
//! deterministic in (specs, input stream) — worker count changes
//! nothing — so a replay's output can be pinned as a golden file.

use selfheal_serve::Cluster;
use std::io::BufRead;
use std::path::PathBuf;
use std::process::ExitCode;

struct Options {
    specs: PathBuf,
    tenants: Vec<String>,
    threads: usize,
    replay: Option<PathBuf>,
}

const USAGE: &str =
    "usage: selfheal-serve --specs <dir> [--tenants a,b] [--threads N] [--replay <file>]";

fn parse_args() -> Result<Options, String> {
    let mut specs: Option<PathBuf> = None;
    let mut tenants = Vec::new();
    let mut threads = selfheal_graph::parallel::default_threads();
    let mut replay = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .ok_or_else(|| format!("{name} needs a value\n{USAGE}"))
        };
        match arg.as_str() {
            "--specs" => specs = Some(PathBuf::from(value("--specs")?)),
            "--tenants" => {
                tenants = value("--tenants")?
                    .split(',')
                    .map(|t| t.trim().to_string())
                    .filter(|t| !t.is_empty())
                    .collect();
            }
            "--threads" => {
                let v = value("--threads")?;
                threads = v
                    .parse()
                    .map_err(|_| format!("invalid --threads '{v}'\n{USAGE}"))?;
            }
            "--replay" => replay = Some(PathBuf::from(value("--replay")?)),
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown argument '{other}'\n{USAGE}")),
        }
    }
    Ok(Options {
        specs: specs.ok_or_else(|| format!("--specs is required\n{USAGE}"))?,
        tenants,
        threads,
        replay,
    })
}

fn run(opts: &Options) -> Result<(), String> {
    let mut cluster = Cluster::new(opts.threads);
    let filter: Vec<&str> = opts.tenants.iter().map(String::as_str).collect();
    let notices = cluster.load_dir(
        &opts.specs,
        if filter.is_empty() {
            None
        } else {
            Some(&filter)
        },
    )?;
    if cluster.tenants().is_empty() {
        return Err(format!(
            "no servable specs in '{}'{}",
            opts.specs.display(),
            if notices.is_empty() {
                String::new()
            } else {
                format!("\n{}", notices.join("\n"))
            }
        ));
    }
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    let emit = |out: &mut dyn std::io::Write, line: &str| {
        // A broken pipe downstream is not our error; stop quietly.
        writeln!(out, "{line}").map_err(|_| "stdout closed".to_string())
    };
    for notice in &notices {
        emit(&mut out, &format!("notice: {notice}"))?;
    }
    emit(
        &mut out,
        &format!("serving {}", cluster.tenants().join(" ")),
    )?;

    let drive = |cluster: &Cluster,
                 out: &mut dyn std::io::Write,
                 lines: &mut dyn Iterator<Item = std::io::Result<String>>|
     -> Result<(), String> {
        for line in lines {
            let line = line.map_err(|e| format!("input error: {e}"))?;
            if let Some(response) = cluster.handle_line(&line) {
                emit(out, &response)?;
            }
        }
        Ok(())
    };
    match &opts.replay {
        Some(path) => {
            let file = std::fs::File::open(path)
                .map_err(|e| format!("cannot open replay '{}': {e}", path.display()))?;
            drive(
                &cluster,
                &mut out,
                &mut std::io::BufReader::new(file).lines(),
            )?;
        }
        None => {
            let stdin = std::io::stdin();
            drive(&cluster, &mut out, &mut stdin.lock().lines())?;
        }
    }

    let (applied, skipped) = cluster.run_to_quiescence();
    emit(
        &mut out,
        &format!("quiescent applied {applied} skipped {skipped}"),
    )?;
    let report = cluster.finish();
    emit(&mut out, report.trim_end())?;
    Ok(())
}

fn main() -> ExitCode {
    match parse_args().and_then(|opts| run(&opts)) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::from(2)
        }
    }
}

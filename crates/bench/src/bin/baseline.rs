//! Perf-baseline tool for the recorded benchmark trajectory.
//!
//! Two subcommands, driven by the `bench-baseline` / `bench-regress`
//! make targets:
//!
//! ```text
//! baseline emit <export.jsonl> <out.json>      # record a new baseline
//! baseline compare <baseline.json> <export.jsonl>
//! ```
//!
//! `emit` merges a criterion export (see `CRITERION_EXPORT` in the
//! vendored criterion) into a sorted, byte-stable JSON baseline —
//! checked in at the repo root as `BENCH_<pr>.json`, one file per PR
//! that moved performance, forming the repo's recorded perf trajectory.
//!
//! `compare` gates a fresh export against a baseline: exit 1 if any
//! benchmark's median regressed beyond 10% plus a 3-MAD noise slack.
//! Benches missing from the current run (renames, removals) warn but do
//! not fail; new benches are listed for the next baseline.

use selfheal_bench::baseline::{compare, parse_export, to_json, Verdict};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.as_slice() {
        [cmd, export, out] if cmd == "emit" => emit(export, out),
        [cmd, baseline, export] if cmd == "compare" => run_compare(baseline, export),
        _ => {
            eprintln!("usage: baseline emit <export.jsonl> <out.json>");
            eprintln!("       baseline compare <baseline.json> <export.jsonl>");
            ExitCode::from(2)
        }
    }
}

fn read(path: &str) -> Option<String> {
    match std::fs::read_to_string(path) {
        Ok(s) => Some(s),
        Err(e) => {
            eprintln!("baseline: cannot read {path}: {e}");
            None
        }
    }
}

fn emit(export: &str, out: &str) -> ExitCode {
    let Some(text) = read(export) else {
        return ExitCode::FAILURE;
    };
    let records = parse_export(&text);
    if records.is_empty() {
        eprintln!("baseline: no benchmark records in {export} (was CRITERION_EXPORT set?)");
        return ExitCode::FAILURE;
    }
    if let Err(e) = std::fs::write(out, to_json(&records)) {
        eprintln!("baseline: cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    println!("baseline: wrote {} benchmarks to {out}", records.len());
    ExitCode::SUCCESS
}

fn run_compare(baseline_path: &str, export: &str) -> ExitCode {
    let (Some(base_text), Some(cur_text)) = (read(baseline_path), read(export)) else {
        return ExitCode::FAILURE;
    };
    let base = parse_export(&base_text);
    let current = parse_export(&cur_text);
    if base.is_empty() {
        eprintln!("baseline: {baseline_path} holds no records");
        return ExitCode::FAILURE;
    }
    let mut regressions = 0usize;
    for c in compare(&base, &current) {
        match c.verdict {
            Verdict::Regressed => {
                regressions += 1;
                println!(
                    "REGRESSED  {:<48} {:>12} ns -> {:>12} ns ({:+.1}%)",
                    c.key,
                    c.baseline_ns,
                    c.current_ns,
                    pct(c.baseline_ns, c.current_ns)
                );
            }
            Verdict::Improved => println!(
                "improved   {:<48} {:>12} ns -> {:>12} ns ({:+.1}%)",
                c.key,
                c.baseline_ns,
                c.current_ns,
                pct(c.baseline_ns, c.current_ns)
            ),
            Verdict::Ok => println!(
                "ok         {:<48} {:>12} ns -> {:>12} ns",
                c.key, c.baseline_ns, c.current_ns
            ),
            Verdict::Missing => println!(
                "WARN       {:<48} in baseline but not in this run (rename? removal?)",
                c.key
            ),
            Verdict::New => println!(
                "new        {:<48} {:>12} ns (not in baseline yet)",
                c.key, c.current_ns
            ),
        }
    }
    if regressions > 0 {
        eprintln!("baseline: {regressions} benchmark(s) regressed beyond 10% + 3 MAD");
        return ExitCode::FAILURE;
    }
    println!("baseline: no regressions against {baseline_path}");
    ExitCode::SUCCESS
}

fn pct(base: u64, cur: u64) -> f64 {
    if base == 0 {
        return 0.0;
    }
    (cur as f64 - base as f64) / base as f64 * 100.0
}

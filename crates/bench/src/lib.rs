//! Support library for the benchmark suite.
//!
//! Two std-only modules back the perf-trajectory tooling:
//!
//! - [`alloc`]: a counting [`GlobalAlloc`](std::alloc::GlobalAlloc)
//!   wrapper used by the zero-allocation steady-state test and by the
//!   million-node scale experiment's allocation accounting.
//! - [`baseline`]: parse/merge/compare logic for the `BENCH_<pr>.json`
//!   perf baselines recorded at the repo root (see the `baseline` binary
//!   and the `bench-baseline` / `bench-regress` make targets).
//!
//! The benchmarks themselves live in `benches/`.

pub mod alloc {
    //! Allocation counting via a wrapping global allocator.
    //!
    //! Install [`CountingAlloc`] with `#[global_allocator]` in a test or
    //! binary, then read [`thread_allocations`] deltas around the region
    //! of interest. Counters are kept twice: a per-thread cell (exact
    //! attribution for single-threaded hot loops, immune to other
    //! threads' noise) and a process-wide atomic (whole-run totals for
    //! experiment reports).

    use std::alloc::{GlobalAlloc, Layout, System};
    use std::cell::Cell;

    // Under `--cfg loom` the totals become the model checker's mock
    // atomics so `crates/bench/tests/loom.rs` can explore the counter
    // protocol; CountingAlloc must NOT be installed as the global
    // allocator in such a build (mock ops inside `alloc` would recurse).
    #[cfg(loom)]
    use loom::sync::atomic::{AtomicU64, Ordering};
    #[cfg(not(loom))]
    use std::sync::atomic::{AtomicU64, Ordering};

    static TOTAL_ALLOCATIONS: AtomicU64 = AtomicU64::new(0);
    static TOTAL_BYTES: AtomicU64 = AtomicU64::new(0);

    thread_local! {
        // const-initialized so reading the counter never itself allocates
        // (a lazily-initialized TLS slot could recurse into the allocator).
        static THREAD_ALLOCATIONS: Cell<u64> = const { Cell::new(0) };
    }

    /// System allocator wrapper that counts every allocation.
    pub struct CountingAlloc;

    // SAFETY: defers entirely to `System`; the wrapper only bumps counters.
    unsafe impl GlobalAlloc for CountingAlloc {
        // SAFETY: same contract as `System::alloc` — the caller's layout
        // obligations pass through unchanged; counting never allocates.
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            record(layout.size());
            System.alloc(layout)
        }

        // SAFETY: delegation only — `ptr`/`layout` obligations are
        // exactly `System::dealloc`'s.
        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            System.dealloc(ptr, layout)
        }

        // SAFETY: same contract as `System::realloc`; the counter bump
        // touches no memory the contract governs.
        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            record(new_size);
            System.realloc(ptr, layout, new_size)
        }

        // SAFETY: same contract as `System::alloc_zeroed`.
        unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
            record(layout.size());
            System.alloc_zeroed(layout)
        }
    }

    fn record(bytes: usize) {
        // dispatch-ok: commutative statistics counters, not a work queue
        // — no claimed index feeds back into control flow.
        // relaxed-ok: counter bumps commute and nothing is ordered after
        // them; totals are read after the threads of interest join.
        // Exactness under contention is proven by
        // `crates/bench/tests/loom.rs` (`make loom-check`).
        TOTAL_ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        // dispatch-ok: as above — a byte-total accumulator.
        // relaxed-ok: as above; fetch_add never loses updates.
        TOTAL_BYTES.fetch_add(bytes as u64, Ordering::Relaxed);
        THREAD_ALLOCATIONS.with(|c| c.set(c.get() + 1));
    }

    /// Model-checker entry to the exact counter path `GlobalAlloc`
    /// takes, minus the real allocation: lets the loom test drive
    /// `record` from competing threads without installing the
    /// allocator.
    #[cfg(loom)]
    pub fn record_event(bytes: usize) {
        record(bytes);
    }

    /// Allocations made by the calling thread since it started.
    ///
    /// Take a reading before and after a region; the difference is the
    /// region's allocation count (0 when [`CountingAlloc`] is not the
    /// global allocator).
    pub fn thread_allocations() -> u64 {
        THREAD_ALLOCATIONS.with(Cell::get)
    }

    /// Process-wide allocation count across all threads.
    pub fn total_allocations() -> u64 {
        // relaxed-ok: monotonic counter read for reporting; readers
        // tolerate a stale value and exactness-after-join is covered by
        // the loom test.
        TOTAL_ALLOCATIONS.load(Ordering::Relaxed)
    }

    /// Process-wide allocated-byte total (sum of requested sizes; frees
    /// are not subtracted — this measures allocator traffic, not live
    /// heap).
    pub fn total_bytes_allocated() -> u64 {
        // relaxed-ok: same reporting-read contract as
        // [`total_allocations`].
        TOTAL_BYTES.load(Ordering::Relaxed)
    }
}

pub mod baseline {
    //! Benchmark baseline records and the regression gate.
    //!
    //! The vendored criterion stand-in appends one JSONL record per
    //! benchmark when `CRITERION_EXPORT` is set. This module parses those
    //! exports, merges them (bench targets are separate processes, last
    //! record wins), serializes the merged set as the checked-in
    //! `BENCH_<pr>.json` baseline, and compares a fresh export against a
    //! baseline with a median + MAD tolerance. Everything is hand-rolled
    //! over the flat record grammar — no serde, keeping the bench crate
    //! dependency-free.

    use std::collections::BTreeMap;
    use std::fmt::Write as _;

    /// One benchmark's summarized timing.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct BenchRecord {
        /// Criterion group name ("" for ungrouped benches).
        pub group: String,
        /// Benchmark id within the group.
        pub bench: String,
        /// Median per-iteration wall time, nanoseconds.
        pub median_ns: u64,
        /// Median absolute deviation of the samples, nanoseconds.
        pub mad_ns: u64,
        /// Number of timed samples behind the summary.
        pub samples: u64,
    }

    impl BenchRecord {
        /// `group/bench` — the key records are merged and compared under.
        pub fn key(&self) -> String {
            format!("{}/{}", self.group, self.bench)
        }
    }

    /// Outcome of comparing one benchmark against its baseline.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub enum Verdict {
        /// Within tolerance.
        Ok,
        /// Median improved by more than the tolerance (informational).
        Improved,
        /// Median regressed beyond 10% plus the MAD slack.
        Regressed,
        /// Present in the baseline but missing from the current run
        /// (warn: a renamed or removed bench, not a perf failure).
        Missing,
        /// Present in the current run but not in the baseline.
        New,
    }

    /// Result row of [`compare`].
    #[derive(Clone, Debug)]
    pub struct Comparison {
        /// `group/bench` key.
        pub key: String,
        /// Baseline median (0 when [`Verdict::New`]).
        pub baseline_ns: u64,
        /// Current median (0 when [`Verdict::Missing`]).
        pub current_ns: u64,
        /// Classification under the regression gate.
        pub verdict: Verdict,
    }

    /// Parse one flat JSON record (`{"group":"..","median_ns":123,..}`).
    ///
    /// Supports exactly the grammar the exporter emits: string values
    /// with `\"`/`\\` escapes and unsigned integer values.
    pub fn parse_record(line: &str) -> Option<BenchRecord> {
        let mut strings: BTreeMap<String, String> = BTreeMap::new();
        let mut numbers: BTreeMap<String, u64> = BTreeMap::new();
        let body = line.trim().strip_prefix('{')?.strip_suffix('}')?;
        let mut chars = body.chars().peekable();
        loop {
            // Key.
            while matches!(chars.peek(), Some(c) if c.is_whitespace() || *c == ',') {
                chars.next();
            }
            if chars.peek().is_none() {
                break;
            }
            if chars.next()? != '"' {
                return None;
            }
            let key = read_string(&mut chars)?;
            while matches!(chars.peek(), Some(c) if c.is_whitespace()) {
                chars.next();
            }
            if chars.next()? != ':' {
                return None;
            }
            while matches!(chars.peek(), Some(c) if c.is_whitespace()) {
                chars.next();
            }
            match chars.peek()? {
                '"' => {
                    chars.next();
                    strings.insert(key, read_string(&mut chars)?);
                }
                c if c.is_ascii_digit() => {
                    let mut n = 0u64;
                    while matches!(chars.peek(), Some(c) if c.is_ascii_digit()) {
                        n = n
                            .checked_mul(10)?
                            .checked_add(chars.next()? as u64 - '0' as u64)?;
                    }
                    numbers.insert(key, n);
                }
                _ => return None,
            }
        }
        Some(BenchRecord {
            group: strings.remove("group")?,
            bench: strings.remove("bench")?,
            median_ns: numbers.remove("median_ns")?,
            mad_ns: numbers.remove("mad_ns")?,
            samples: numbers.remove("samples")?,
        })
    }

    fn read_string(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Option<String> {
        let mut s = String::new();
        loop {
            match chars.next()? {
                '"' => return Some(s),
                '\\' => s.push(chars.next()?),
                c => s.push(c),
            }
        }
    }

    /// Parse a whole export (JSONL or the checked-in JSON array — the
    /// array form is one record per line plus brackets, so line-wise
    /// parsing covers both). Duplicate keys keep the *last* record: a
    /// re-run bench within one `cargo bench` invocation supersedes its
    /// earlier appearance.
    pub fn parse_export(text: &str) -> Vec<BenchRecord> {
        let mut merged: BTreeMap<String, BenchRecord> = BTreeMap::new();
        for line in text.lines() {
            let line = line.trim().trim_end_matches(',');
            if let Some(rec) = parse_record(line) {
                merged.insert(rec.key(), rec);
            }
        }
        merged.into_values().collect()
    }

    /// Serialize records as the checked-in baseline: a JSON array, one
    /// record per line, sorted by key, trailing newline — so diffs are
    /// line-per-bench and re-emits are byte-stable.
    pub fn to_json(records: &[BenchRecord]) -> String {
        let mut sorted: Vec<&BenchRecord> = records.iter().collect();
        sorted.sort_by_key(|r| r.key());
        let mut out = String::from("[\n");
        for (i, r) in sorted.iter().enumerate() {
            let esc = |s: &str| s.replace('\\', "\\\\").replace('"', "\\\"");
            let _ = write!(
                out,
                "{{\"group\":\"{}\",\"bench\":\"{}\",\"median_ns\":{},\"mad_ns\":{},\"samples\":{}}}",
                esc(&r.group),
                esc(&r.bench),
                r.median_ns,
                r.mad_ns,
                r.samples
            );
            out.push_str(if i + 1 < sorted.len() { ",\n" } else { "\n" });
        }
        out.push_str("]\n");
        out
    }

    /// Regression gate: a bench regresses when its current median exceeds
    /// the baseline median by more than 10% *and* by more than a noise
    /// slack of three combined MADs. The MAD term keeps sub-microsecond
    /// benches (where 10% is a handful of nanoseconds) from flaking;
    /// the 10% term keeps slow benches honest even when their MAD is
    /// large.
    pub fn compare(baseline: &[BenchRecord], current: &[BenchRecord]) -> Vec<Comparison> {
        let cur: BTreeMap<String, &BenchRecord> = current.iter().map(|r| (r.key(), r)).collect();
        let base: BTreeMap<String, &BenchRecord> = baseline.iter().map(|r| (r.key(), r)).collect();
        let mut out = Vec::new();
        for (key, b) in &base {
            let Some(c) = cur.get(key) else {
                out.push(Comparison {
                    key: key.clone(),
                    baseline_ns: b.median_ns,
                    current_ns: 0,
                    verdict: Verdict::Missing,
                });
                continue;
            };
            let slack = 3 * (b.mad_ns + c.mad_ns);
            let threshold = b.median_ns + b.median_ns / 10 + slack;
            let floor = b.median_ns.saturating_sub(b.median_ns / 10 + slack);
            let verdict = if c.median_ns > threshold {
                Verdict::Regressed
            } else if c.median_ns < floor {
                Verdict::Improved
            } else {
                Verdict::Ok
            };
            out.push(Comparison {
                key: key.clone(),
                baseline_ns: b.median_ns,
                current_ns: c.median_ns,
                verdict,
            });
        }
        for (key, c) in &cur {
            if !base.contains_key(key) {
                out.push(Comparison {
                    key: key.clone(),
                    baseline_ns: 0,
                    current_ns: c.median_ns,
                    verdict: Verdict::New,
                });
            }
        }
        out
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        fn rec(group: &str, bench: &str, median: u64, mad: u64) -> BenchRecord {
            BenchRecord {
                group: group.into(),
                bench: bench.into(),
                median_ns: median,
                mad_ns: mad,
                samples: 10,
            }
        }

        #[test]
        fn record_round_trips_through_json() {
            let records = vec![rec("heal", "dash/4096", 1234, 56), rec("", "solo", 7, 1)];
            let json = to_json(&records);
            let back = parse_export(&json);
            let mut expect = records.clone();
            expect.sort_by_key(|r| r.key());
            assert_eq!(back, expect);
            // Byte-stable re-emit.
            assert_eq!(to_json(&back), json);
        }

        #[test]
        fn parse_handles_escapes_and_rejects_garbage() {
            let r = parse_record(
                "{\"group\":\"a\\\"b\",\"bench\":\"x\\\\y\",\"median_ns\":5,\"mad_ns\":0,\"samples\":3}",
            )
            .unwrap();
            assert_eq!(r.group, "a\"b");
            assert_eq!(r.bench, "x\\y");
            assert!(parse_record("not json").is_none());
            assert!(parse_record("{\"group\":\"g\"}").is_none());
        }

        #[test]
        fn duplicate_keys_keep_the_last_record() {
            let text = format!(
                "{}\n{}\n",
                "{\"group\":\"g\",\"bench\":\"b\",\"median_ns\":1,\"mad_ns\":0,\"samples\":3}",
                "{\"group\":\"g\",\"bench\":\"b\",\"median_ns\":2,\"mad_ns\":0,\"samples\":3}"
            );
            let merged = parse_export(&text);
            assert_eq!(merged.len(), 1);
            assert_eq!(merged[0].median_ns, 2);
        }

        #[test]
        fn regression_gate_needs_both_percent_and_mad_excess() {
            let base = vec![rec("g", "fast", 100, 40), rec("g", "slow", 1_000_000, 10)];
            // fast: +50% but within 3*(40+40) MAD slack -> Ok.
            // slow: +20% and far past slack -> Regressed.
            let current = vec![rec("g", "fast", 150, 40), rec("g", "slow", 1_200_000, 10)];
            let cmp = compare(&base, &current);
            let by_key = |k: &str| cmp.iter().find(|c| c.key == k).unwrap().verdict.clone();
            assert_eq!(by_key("g/fast"), Verdict::Ok);
            assert_eq!(by_key("g/slow"), Verdict::Regressed);
        }

        #[test]
        fn missing_and_new_benches_are_flagged_not_failed() {
            let base = vec![rec("g", "gone", 10, 1)];
            let current = vec![rec("g", "fresh", 10, 1)];
            let cmp = compare(&base, &current);
            assert!(cmp
                .iter()
                .any(|c| c.key == "g/gone" && c.verdict == Verdict::Missing));
            assert!(cmp
                .iter()
                .any(|c| c.key == "g/fresh" && c.verdict == Verdict::New));
        }

        #[test]
        fn improvement_is_reported() {
            let base = vec![rec("g", "b", 1_000_000, 100)];
            let current = vec![rec("g", "b", 500_000, 100)];
            assert_eq!(compare(&base, &current)[0].verdict, Verdict::Improved);
        }
    }
}

//! Large-n healing throughput over the pooled-adjacency store.
//!
//! This target is the recorded perf trajectory's anchor (exported into
//! `BENCH_<pr>.json` by `make bench-baseline`): full DASH sweeps at
//! n ∈ {4096, 16384}, plus microbenches isolating the three structures
//! the million-node experiment leans on — chunk-pool edge churn,
//! degree-bucket extreme queries, and Fenwick live-rank sampling.
//!
//! Every benchmark asserts its structural expectations, so the target
//! also runs under `make bench-check` as a smoke gate.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use selfheal_core::attack::MaxNode;
use selfheal_core::dash::Dash;
use selfheal_core::scenario::ScenarioEngine;
use selfheal_core::state::HealingNetwork;
use selfheal_graph::generators::barabasi_albert;
use selfheal_graph::NodeId;
use std::hint::black_box;

fn bench_heal_sweeps(c: &mut Criterion) {
    let mut group = c.benchmark_group("scale_throughput");
    group.sample_size(10);
    for n in [4096usize, 16384] {
        group.bench_with_input(BenchmarkId::new("dash_full_sweep", n), &n, |b, &n| {
            b.iter_with_setup(
                || {
                    let g = barabasi_albert(n, 3, &mut StdRng::seed_from_u64(20080124));
                    HealingNetwork::new(g, 20080124)
                },
                |net| {
                    let mut engine = ScenarioEngine::new(net, Dash, MaxNode);
                    let report = engine.run_to_empty();
                    assert_eq!(report.rounds, n as u64, "sweep must heal to empty");
                    black_box(report.total_messages)
                },
            );
        });
    }
    group.finish();
}

/// Edge churn straight on the pooled store: remove and re-insert every
/// edge of a BA graph. Chunk frees and reuses dominate; no arena growth
/// happens after the first pass, so this times the free-list hot path.
fn bench_edge_churn(c: &mut Criterion) {
    let mut group = c.benchmark_group("scale_throughput");
    group.sample_size(10);
    let n = 16384usize;
    let g = barabasi_albert(n, 3, &mut StdRng::seed_from_u64(5));
    let edges: Vec<(NodeId, NodeId)> = g.edges().map(|e| (e.lo(), e.hi())).collect();
    let mut g = g;
    let expected = edges.len();
    group.bench_function(BenchmarkId::new("edge_churn", n), |b| {
        b.iter(|| {
            for &(u, v) in &edges {
                g.remove_edge(u, v).expect("edge present before churn");
            }
            assert_eq!(g.edge_count(), 0);
            for &(u, v) in &edges {
                g.add_edge(u, v).expect("edge absent after removal");
            }
            assert_eq!(g.edge_count(), expected);
            black_box(g.degree_sum())
        });
    });
    group.finish();
}

/// Degree extremes and live-rank sampling under deletions — the two
/// former O(n)-per-event scans, now a bucket-hint repair and a Fenwick
/// descent.
fn bench_queries_under_churn(c: &mut Criterion) {
    let mut group = c.benchmark_group("scale_throughput");
    group.sample_size(10);
    let n = 16384usize;

    group.bench_function(BenchmarkId::new("degree_extremes", n), |b| {
        b.iter_with_setup(
            || barabasi_albert(n, 3, &mut StdRng::seed_from_u64(9)),
            |mut g| {
                let mut acc = 0u64;
                while g.live_node_count() > 1 {
                    let hi = g.max_degree_node().unwrap();
                    let lo = g.min_degree_node().unwrap();
                    assert!(g.degree(hi) >= g.degree(lo));
                    acc += hi.0 as u64 + lo.0 as u64;
                    g.remove_node(hi).unwrap();
                }
                black_box(acc)
            },
        );
    });

    group.bench_function(BenchmarkId::new("nth_live_sampling", n), |b| {
        b.iter_with_setup(
            || barabasi_albert(n, 3, &mut StdRng::seed_from_u64(13)),
            |mut g| {
                let mut acc = 0u64;
                let mut k = 0usize;
                while g.live_node_count() > 0 {
                    let live = g.live_node_count();
                    let v = g.nth_live(k % live).expect("rank < live count");
                    acc += v.0 as u64;
                    g.remove_node(v).unwrap();
                    k = k.wrapping_mul(6364136223846793005).wrapping_add(1);
                }
                black_box(acc)
            },
        );
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_heal_sweeps,
    bench_edge_churn,
    bench_queries_under_churn
);
criterion_main!(benches);

//! Bench for experiment E4 / Fig. 10: stretch under the MaxNode attack.
//!
//! Prints the figure's row at the benched size, then times the sampled
//! stretch kill-sweep per strategy.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use selfheal_experiments::config::HealerKind;
use selfheal_experiments::fig10::run_stretch_trial;
use std::hint::black_box;

const N: usize = 96;
const SEED: u64 = 20080124;

fn bench_fig10(c: &mut Criterion) {
    println!("\nFig 10 row @ n = {N} (max stretch, MaxNode attack):");
    for healer in HealerKind::figure_set() {
        let s = run_stretch_trial(N, healer, SEED);
        println!("  {:>14}: {s:.2}", healer.name());
    }
    println!();

    let mut group = c.benchmark_group("fig10_stretch_sweep");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for healer in HealerKind::figure_set() {
        group.bench_with_input(BenchmarkId::new(healer.name(), N), &healer, |b, &h| {
            b.iter(|| black_box(run_stretch_trial(N, h, SEED)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig10);
criterion_main!(benches);

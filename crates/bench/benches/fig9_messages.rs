//! Bench for experiments E2/E3 / Fig. 9: component-ID maintenance costs.
//!
//! Prints the Fig. 9(a) (max ID changes) and Fig. 9(b) (max messages
//! sent) rows at the benched size, then times the dominant kernel — the
//! min-ID broadcast — in isolation on a worst-case topology (a long
//! healing path, which maximizes propagation distance).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use selfheal_core::state::HealingNetwork;
use selfheal_experiments::config::{AttackKind, HealerKind};
use selfheal_experiments::runner::run_trial;
use selfheal_graph::generators::path_graph;
use selfheal_graph::NodeId;
use std::hint::black_box;

const N: usize = 256;
const SEED: u64 = 20080124;

fn bench_fig9(c: &mut Criterion) {
    println!("\nFig 9 rows @ n = {N} (NeighborOfMax attack):");
    println!("  {:>14}  {:>10}  {:>12}", "healer", "max #id", "max msgs");
    for healer in HealerKind::figure_set() {
        let stats = run_trial(N, healer, AttackKind::NeighborOfMax, SEED);
        println!(
            "  {:>14}  {:>10}  {:>12}",
            healer.name(),
            stats.max_id_changes,
            stats.max_msgs_sent
        );
    }
    println!("  2*ln(n) bound: {:.1}\n", 2.0 * (N as f64).ln());

    let mut group = c.benchmark_group("fig9_id_broadcast");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for size in [64usize, 256, 1024] {
        group.bench_with_input(BenchmarkId::new("propagate_path", size), &size, |b, &n| {
            b.iter_with_setup(
                || {
                    // A healing path of n nodes where the far end holds the
                    // minimum: the broadcast must walk the whole path.
                    let mut net = HealingNetwork::new(path_graph(n), 1);
                    for i in 1..n {
                        net.add_heal_edge(NodeId::from_index(i - 1), NodeId::from_index(i))
                            .unwrap();
                    }
                    net
                },
                |mut net| {
                    black_box(net.propagate_min_id(&[NodeId(0)]));
                },
            );
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig9);
criterion_main!(benches);

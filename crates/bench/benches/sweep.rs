//! Sweep-fleet throughput: the same seeded fleet at 1 worker thread vs
//! the default pool, demonstrating the fan-out's speedup while
//! *asserting* the aggregates stay byte-identical (the determinism
//! contract the fleet is built on — a data race or order dependence in
//! aggregation would fail here before any timing is reported).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use selfheal_core::spec::HealerSpec;
use selfheal_core::sweep::{run_sweep, SweepAdversary, SweepConfig};
use selfheal_graph::parallel::default_threads;
use std::hint::black_box;

fn fleet_cfg(threads: usize) -> SweepConfig {
    let mut cfg = SweepConfig::sized(SweepAdversary::Epidemic, HealerSpec::Dash, 48);
    cfg.runs = 64;
    cfg.threads = threads;
    cfg
}

fn bench_sweep_threads(c: &mut Criterion) {
    // On multicore hosts this is the real pool; floor of 2 so the
    // threaded path (workers + channel fan-in) is always exercised even
    // on single-core CI runners.
    let parallel = default_threads().max(2);
    // Structural self-check before timing: N threads must reproduce the
    // 1-thread aggregate byte-for-byte, and the audited fleet must be
    // violation-free.
    let one = run_sweep(&fleet_cfg(1));
    assert!(one.violations.is_empty(), "{:?}", one.violations);
    let many = run_sweep(&fleet_cfg(parallel));
    assert_eq!(
        one.render_canonical(),
        many.render_canonical(),
        "thread-count changed the aggregate"
    );

    let mut group = c.benchmark_group("sweep");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(2));
    for threads in [1usize, parallel] {
        group.bench_with_input(
            BenchmarkId::new("epidemic_64_runs_audited", threads),
            &threads,
            |b, &threads| {
                let cfg = fleet_cfg(threads);
                b.iter(|| {
                    let agg = run_sweep(black_box(&cfg));
                    assert_eq!(agg.runs, 64);
                    black_box(agg.events)
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_sweep_threads);
criterion_main!(benches);

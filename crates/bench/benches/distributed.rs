//! Distributed-fabric throughput: events/sec for the
//! `DistributedScenarioRunner` consuming mixed Delete/DeleteBatch/Join
//! schedules as real unit-latency messages, versus the centralized
//! `ScenarioEngine`'s modeled accounting on the same schedule.
//!
//! Every benchmark asserts its structural expectations — exact
//! distributed-vs-centralized message-count agreement and non-empty
//! survivor sets — so `make sim-parity` doubles as a smoke gate for the
//! fabric's hot path (event-queue pushes/pops, interleaved batch
//! notifications, quiescence-barrier heals).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use selfheal_core::dash::Dash;
use selfheal_core::distributed::HealMode;
use selfheal_core::distributed_runner::DistributedScenarioRunner;
use selfheal_core::scenario::{NetworkEvent, ScenarioEngine, ScriptedEvents};
use selfheal_core::state::HealingNetwork;
use selfheal_graph::generators::barabasi_albert;
use selfheal_graph::{Graph, NodeId};
use selfheal_sim::SplitMix64;
use std::hint::black_box;

/// A mixed churn schedule: rack-style batches, joins, targeted deletes,
/// with stale references left in for the sanitizer.
fn churn_schedule(n: usize, events: usize, seed: u64) -> Vec<NetworkEvent> {
    let mut rng = SplitMix64::new(seed);
    let mut created = n as u64;
    let mut schedule = Vec::with_capacity(events);
    for i in 0..events {
        match i % 4 {
            0 | 2 => {
                let k = 3 + rng.gen_range(5) as usize;
                let victims = (0..k)
                    .map(|_| NodeId(rng.gen_range(created) as u32))
                    .collect();
                schedule.push(NetworkEvent::DeleteBatch(victims));
            }
            1 => {
                let k = 1 + rng.gen_range(3) as usize;
                let neighbors = (0..k)
                    .map(|_| NodeId(rng.gen_range(created) as u32))
                    .collect();
                schedule.push(NetworkEvent::Join { neighbors });
                created += 1;
            }
            _ => schedule.push(NetworkEvent::Delete(NodeId(rng.gen_range(created) as u32))),
        }
    }
    schedule
}

fn setup(n: usize, seed: u64) -> (Graph, Vec<NetworkEvent>) {
    let g = barabasi_albert(n, 3, &mut StdRng::seed_from_u64(seed));
    let schedule = churn_schedule(n, n / 2, seed);
    (g, schedule)
}

fn bench_distributed_churn(c: &mut Criterion) {
    let mut group = c.benchmark_group("distributed");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));

    for n in [512usize, 2048] {
        let (g, schedule) = setup(n, 13);

        // Self-check once per size: the fabric must reproduce the
        // centralized engine's per-event message counts exactly.
        let mut runner = DistributedScenarioRunner::with_mode(HealMode::Dash, &g, 13);
        let records = runner.run_schedule(&schedule);
        let mut engine = ScenarioEngine::new(
            HealingNetwork::new(g.clone(), 13),
            Dash,
            ScriptedEvents::new(schedule.clone()),
        );
        let mut idx = 0usize;
        let central = engine.run_to_empty_with(
            &mut |_net: &HealingNetwork, rec: &selfheal_core::scenario::EventRecord| {
                assert_eq!(
                    rec.propagation.messages, records[idx].messages,
                    "event {idx}: modeled vs fabric message count"
                );
                idx += 1;
            },
        );
        assert_eq!(idx, records.len(), "event counts diverged");
        assert_eq!(central.total_messages, runner.report().total_messages);
        assert!(
            runner.topology().live_count() > 0,
            "schedule must leave survivors"
        );

        group.bench_with_input(BenchmarkId::new("fabric_churn_schedule", n), &n, |b, &n| {
            b.iter_with_setup(
                || setup(n, 13),
                |(g, schedule)| {
                    let mut runner = DistributedScenarioRunner::with_mode(HealMode::Dash, &g, 13);
                    runner.run_schedule(&schedule);
                    black_box(runner.report().total_delivered)
                },
            );
        });
        group.bench_with_input(BenchmarkId::new("engine_churn_schedule", n), &n, |b, &n| {
            b.iter_with_setup(
                || setup(n, 13),
                |(g, schedule)| {
                    let mut engine = ScenarioEngine::new(
                        HealingNetwork::new(g, 13),
                        Dash,
                        ScriptedEvents::new(schedule),
                    );
                    black_box(engine.run_to_empty().total_messages)
                },
            );
        });
    }
    group.finish();
}

criterion_group!(benches, bench_distributed_churn);
criterion_main!(benches);

//! Generator throughput: the experiments build thousands of graphs, so
//! generation must stay cheap relative to the sweeps themselves.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use selfheal_graph::generators;
use std::hint::black_box;

fn bench_generators(c: &mut Criterion) {
    let mut group = c.benchmark_group("generators");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for n in [256usize, 1024, 4096] {
        group.bench_with_input(BenchmarkId::new("barabasi_albert_m3", n), &n, |b, &n| {
            let mut rng = StdRng::seed_from_u64(1);
            b.iter(|| black_box(generators::barabasi_albert(n, 3, &mut rng)));
        });
    }
    group.bench_function("erdos_renyi_gnm_1024_3072", |b| {
        let mut rng = StdRng::seed_from_u64(2);
        b.iter(|| black_box(generators::erdos_renyi_gnm(1024, 3072, &mut rng)));
    });
    group.bench_function("watts_strogatz_1024", |b| {
        let mut rng = StdRng::seed_from_u64(3);
        b.iter(|| black_box(generators::watts_strogatz(1024, 6, 0.1, &mut rng)));
    });
    group.bench_function("kary_tree_4ary_depth5", |b| {
        b.iter(|| black_box(generators::KaryTree::new(4, 5)));
    });
    group.bench_function("powerlaw_config_1024", |b| {
        let mut rng = StdRng::seed_from_u64(4);
        b.iter(|| {
            black_box(generators::powerlaw_configuration(
                1024, 2.5, 1, 64, &mut rng,
            ))
        });
    });
    group.finish();
}

criterion_group!(benches, bench_generators);
criterion_main!(benches);

//! Bench for experiment E6 / Theorem 2: the LEVELATTACK adversary.
//!
//! Prints the lower-bound table rows for DASH, then times the attack at
//! each depth (its cost is dominated by the healing rounds the Prune
//! operation triggers).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use selfheal_core::dash::Dash;
use selfheal_core::levelattack::run_level_attack;
use std::hint::black_box;

const SEED: u64 = 20080124;

fn bench_lower_bound(c: &mut Criterion) {
    println!("\nTheorem 2 rows (DASH, M = 2, 4-ary trees):");
    println!(
        "  {:>6}  {:>6}  {:>9}  {:>8}",
        "depth", "n", "forced dδ", "floor D"
    );
    for depth in 2..=5u32 {
        let r = run_level_attack(Dash, 2, depth, SEED);
        println!(
            "  {:>6}  {:>6}  {:>9}  {:>8}",
            depth, r.n, r.max_delta_ever, depth
        );
    }
    println!();

    let mut group = c.benchmark_group("levelattack_dash");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for depth in [2u32, 3, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(depth), &depth, |b, &d| {
            b.iter(|| black_box(run_level_attack(Dash, 2, d, SEED)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_lower_bound);
criterion_main!(benches);

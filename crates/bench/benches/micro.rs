//! Micro-benchmarks of the healing hot path: reconstruction-set
//! computation, binary-tree wiring, deletion, and the graph substrate
//! operations underneath them.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use selfheal_core::rt;
use selfheal_core::state::HealingNetwork;
use selfheal_graph::components::UnionFind;
use selfheal_graph::generators::{barabasi_albert, star_graph};
use selfheal_graph::{Csr, NodeId};
use std::hint::black_box;

fn bench_rt_machinery(c: &mut Criterion) {
    let mut group = c.benchmark_group("rt");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for spokes in [8usize, 64, 512] {
        // Deleting the hub of a star produces an RT of `spokes` singleton
        // components — the worst case for reconstruction-set size.
        group.bench_with_input(
            BenchmarkId::new("hub_deletion_heal", spokes),
            &spokes,
            |b, &k| {
                b.iter_with_setup(
                    || {
                        let mut net = HealingNetwork::new(star_graph(k + 1), 1);
                        let ctx = net.delete_node(NodeId(0)).unwrap();
                        (net, ctx)
                    },
                    |(mut net, ctx)| {
                        let members = rt::reconstruction_set(&net, &ctx);
                        let ordered = rt::order_by_delta(&net, &members);
                        black_box(rt::connect_binary_tree(&mut net, &ordered));
                    },
                );
            },
        );
    }
    group.finish();
}

fn bench_graph_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("graph");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    let g = barabasi_albert(4096, 3, &mut StdRng::seed_from_u64(2));
    group.bench_function("csr_snapshot_4096", |b| {
        b.iter(|| black_box(Csr::from_graph(&g)));
    });
    let csr = Csr::from_graph(&g);
    group.bench_function("bfs_4096", |b| {
        let mut dist = Vec::new();
        let mut queue = Vec::new();
        b.iter(|| {
            csr.bfs_into(0, &mut dist, &mut queue);
            black_box(dist.len());
        });
    });
    group.bench_function("remove_node_hub", |b| {
        b.iter_with_setup(
            || {
                let g = barabasi_albert(1024, 3, &mut StdRng::seed_from_u64(3));
                let hub = g.max_degree_node().unwrap();
                (g, hub)
            },
            |(mut g, hub)| {
                black_box(g.remove_node(hub).unwrap());
            },
        );
    });
    group.bench_function("union_find_65536", |b| {
        b.iter(|| {
            let mut uf = UnionFind::new(65536);
            for i in 0..65535usize {
                uf.union(i, i + 1);
            }
            black_box(uf.find(0))
        });
    });
    group.finish();
}

fn bench_full_round(c: &mut Criterion) {
    let mut group = c.benchmark_group("round");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for n in [256usize, 1024] {
        group.bench_with_input(BenchmarkId::new("dash_one_round", n), &n, |b, &n| {
            b.iter_with_setup(
                || {
                    let g = barabasi_albert(n, 3, &mut StdRng::seed_from_u64(5));
                    let net = HealingNetwork::new(g, 5);
                    let hub = net.graph().max_degree_node().unwrap();
                    (net, hub)
                },
                |(mut net, hub)| {
                    let ctx = net.delete_node(hub).unwrap();
                    let mut dash = selfheal_core::dash::Dash;
                    use selfheal_core::strategy::Healer;
                    let outcome = dash.heal(&mut net, &ctx);
                    black_box(net.propagate_min_id(&outcome.rt_members));
                },
            );
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_rt_machinery,
    bench_graph_ops,
    bench_full_round
);
criterion_main!(benches);

//! Ablation benches (experiment A1/A2 in DESIGN.md).
//!
//! A1 — what each DASH design choice buys: component filtering
//! (DASH/BinaryTreeHeal vs GraphHeal) and δ-ordering (DASH vs
//! BinaryTreeHeal). The printed table reports max degree increase and
//! total healing edges; the timings show the naive strategies also *run*
//! slower because their graphs bloat.
//!
//! A2 — serial vs. parallel APSP (the stretch metric's kernel).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use selfheal_experiments::config::{AttackKind, HealerKind};
use selfheal_experiments::runner::run_trial;
use selfheal_graph::generators::barabasi_albert;
use selfheal_graph::parallel::parallel_apsp;
use selfheal_graph::Csr;
use std::hint::black_box;

const N: usize = 256;
const SEED: u64 = 20080124;

fn bench_design_ablation(c: &mut Criterion) {
    println!("\nA1 ablation @ n = {N} (NeighborOfMax attack):");
    println!(
        "  {:>14}  {:>10}  {:>12}  design point",
        "healer", "max dδ", "heal edges"
    );
    let points = [
        (HealerKind::Dash, "components + δ-ordering"),
        (HealerKind::BinaryTreeHeal, "components only"),
        (HealerKind::GraphHeal, "neither"),
    ];
    for (healer, what) in points {
        let stats = run_trial(N, healer, AttackKind::NeighborOfMax, SEED);
        println!(
            "  {:>14}  {:>10}  {:>12}  {what}",
            healer.name(),
            stats.max_delta,
            stats.total_edges
        );
    }
    println!();

    let mut group = c.benchmark_group("ablation_design");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for (healer, _) in points {
        group.bench_with_input(BenchmarkId::new(healer.name(), N), &healer, |b, &h| {
            b.iter(|| black_box(run_trial(N, h, AttackKind::NeighborOfMax, SEED)));
        });
    }
    group.finish();
}

fn bench_apsp_ablation(c: &mut Criterion) {
    let g = barabasi_albert(1024, 3, &mut StdRng::seed_from_u64(9));
    let csr = Csr::from_graph(&g);
    let mut group = c.benchmark_group("ablation_apsp_1024");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for threads in [1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::new("threads", threads), &threads, |b, &t| {
            b.iter(|| black_box(parallel_apsp(&csr, t)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_design_ablation, bench_apsp_ablation);
criterion_main!(benches);

//! Serving-layer throughput: lock-free snapshot reads under publish
//! churn (the headline claim of `serve::snapshot` — queries never block
//! a heal) against a mutex-guarded baseline, plus end-to-end cluster
//! ticking with two tenant shards.
//!
//! Every benchmark asserts its structural expectations (no torn pairs,
//! exact per-tick event accounting), so `make bench` doubles as a smoke
//! gate for the serving crate.

use criterion::{criterion_group, criterion_main, Criterion};
use parking_lot::Mutex;
use selfheal_core::scenario::NetworkEvent;
use selfheal_core::spec::ScenarioSpec;
use selfheal_serve::{slot_pair, Cluster};
use std::hint::black_box;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Snapshot-read cost while a publisher churns as fast as it can: the
/// epoch-validated double-buffer read versus taking a mutex around the
/// same pair. The assert catches torn reads, so this is also a stress
/// test of the protocol the loom model proves.
fn bench_snapshot_reads(c: &mut Criterion) {
    let mut group = c.benchmark_group("serve");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(2));

    {
        let (mut writer, reader) = slot_pair((0u64, 0u64), (0u64, 0u64));
        let stop = Arc::new(AtomicBool::new(false));
        let flag = stop.clone();
        let publisher = std::thread::spawn(move || {
            let mut i = 0u64;
            while !flag.load(Ordering::Acquire) {
                i += 1;
                writer.publish(|buf| *buf = (i, i));
            }
        });
        group.bench_function("snapshot_read_under_churn", |b| {
            b.iter(|| {
                let (epoch, (x, y)) = reader.read(|pair| *pair);
                assert_eq!(x, y, "torn read at epoch {epoch}");
                black_box(epoch)
            })
        });
        stop.store(true, Ordering::Release);
        let _ = publisher.join();
    }

    {
        let shared = Arc::new(Mutex::new((0u64, 0u64)));
        let stop = Arc::new(AtomicBool::new(false));
        let (pair, flag) = (shared.clone(), stop.clone());
        let publisher = std::thread::spawn(move || {
            let mut i = 0u64;
            while !flag.load(Ordering::Acquire) {
                i += 1;
                *pair.lock() = (i, i);
            }
        });
        group.bench_function("mutex_read_under_churn", |b| {
            b.iter(|| {
                let (x, y) = *shared.lock();
                assert_eq!(x, y);
                black_box(x)
            })
        });
        stop.store(true, Ordering::Release);
        let _ = publisher.join();
    }

    group.finish();
}

const CHURN_SPEC: &str = include_str!("../../../specs/random_churn.scn");
const EPIDEMIC_SPEC: &str = include_str!("../../../specs/epidemic_sdash.scn");

fn served_spec(text: &str) -> ScenarioSpec {
    let spec = ScenarioSpec::parse(text).expect("checked-in spec parses");
    spec.validate().expect("checked-in spec validates");
    spec
}

/// End-to-end cluster ticking: 64 events per tenant per tick (an even
/// delete/join mix drawn from the published live set, so the networks
/// stay in a stable population band across iterations).
fn bench_cluster_tick(c: &mut Criterion) {
    let mut group = c.benchmark_group("serve");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(2));

    let mut cluster = Cluster::new(2);
    cluster
        .add_spec("churn", &served_spec(CHURN_SPEC))
        .expect("servable spec");
    cluster
        .add_spec("epidemic", &served_spec(EPIDEMIC_SPEC))
        .expect("servable spec");
    let mut salt = 0x5EED_u64;
    group.bench_function("two_tenant_tick_128_events", |b| {
        b.iter(|| {
            for tenant in ["churn", "epidemic"] {
                let reader = cluster.reader(tenant).expect("served tenant");
                let (_, live) = reader.read(|snap| snap.state.live.clone());
                for k in 0..64usize {
                    salt = salt
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    let pick = live[(salt % live.len() as u64) as usize];
                    let event = if k % 2 == 0 {
                        NetworkEvent::Delete(pick)
                    } else {
                        NetworkEvent::Join {
                            neighbors: vec![pick],
                        }
                    };
                    cluster.submit(tenant, event).expect("valid event");
                }
            }
            let (applied, skipped) = cluster.tick();
            assert_eq!(applied + skipped, 128, "every submitted event accounted");
            black_box(applied)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_snapshot_reads, bench_cluster_tick);
criterion_main!(benches);

//! Bench for experiment E1 / Fig. 8: full kill-sweep per healing strategy
//! under the NeighborOfMax attack.
//!
//! Before timing, prints the figure's row at the benched size so a
//! `cargo bench` run regenerates the paper's numbers alongside the
//! timings.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use selfheal_experiments::config::{AttackKind, HealerKind};
use selfheal_experiments::runner::run_trial;
use std::hint::black_box;

const N: usize = 256;
const SEED: u64 = 20080124;

fn bench_fig8(c: &mut Criterion) {
    println!("\nFig 8 row @ n = {N} (max degree increase, NeighborOfMax):");
    for healer in HealerKind::figure_set() {
        let stats = run_trial(N, healer, AttackKind::NeighborOfMax, SEED);
        println!("  {:>14}: {}", healer.name(), stats.max_delta);
    }
    println!("  2*log2(n) bound: {:.1}\n", 2.0 * (N as f64).log2());

    let mut group = c.benchmark_group("fig8_kill_sweep");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for healer in HealerKind::figure_set() {
        group.bench_with_input(BenchmarkId::new(healer.name(), N), &healer, |b, &h| {
            b.iter(|| {
                black_box(run_trial(N, h, AttackKind::NeighborOfMax, SEED));
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig8);
criterion_main!(benches);

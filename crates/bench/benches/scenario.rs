//! Scenario-engine throughput: run-to-empty rounds/sec for DASH under
//! MaxNode at n ∈ {1024, 4096}, pinning the allocation-free hot loop's
//! win in numbers.
//!
//! The `propagation` group isolates the structural change: the
//! epoch-stamped scratch-buffer BFS inside
//! `HealingNetwork::propagate_min_id` versus a baseline replicating the
//! pre-refactor pattern (a fresh `depth` vector of size `node_bound`, a
//! fresh `VecDeque`, and a fresh `reached` vector allocated every round —
//! O(n²) allocation traffic over a run-to-empty).
//!
//! Every benchmark asserts its structural expectations (round counts,
//! identical BFS reach), so `make bench-check` doubles as a smoke gate.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use selfheal_core::attack::MaxNode;
use selfheal_core::dash::Dash;
use selfheal_core::scenario::ScenarioEngine;
use selfheal_core::state::HealingNetwork;
use selfheal_graph::generators::barabasi_albert;
use selfheal_graph::NodeId;
use std::collections::VecDeque;
use std::hint::black_box;

fn bench_run_to_empty(c: &mut Criterion) {
    let mut group = c.benchmark_group("scenario");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for n in [1024usize, 4096] {
        group.bench_with_input(
            BenchmarkId::new("dash_maxnode_run_to_empty", n),
            &n,
            |b, &n| {
                b.iter_with_setup(
                    || {
                        let g = barabasi_albert(n, 3, &mut StdRng::seed_from_u64(7));
                        HealingNetwork::new(g, 7)
                    },
                    |net| {
                        let mut engine = ScenarioEngine::new(net, Dash, MaxNode);
                        let report = engine.run_to_empty();
                        assert_eq!(report.rounds, n as u64, "sweep must run to empty");
                        black_box(report.total_messages)
                    },
                );
            },
        );
    }
    group.finish();
}

/// The pre-refactor broadcast round: fresh `depth`/queue/`reached`
/// allocations every call, then the same min-ID scan the real method
/// performs. At steady state (IDs converged) no ID changes, so repeated
/// calls do identical work — exactly what `propagate_min_id` does then,
/// minus the reused buffers.
fn alloc_propagate_round(net: &HealingNetwork, seeds: &[NodeId]) -> (usize, u64) {
    let gp = net.healing_graph();
    let mut depth = vec![u32::MAX; gp.node_bound()];
    let mut queue = VecDeque::new();
    let mut reached: Vec<NodeId> = Vec::new();
    for &s in seeds {
        if gp.is_alive(s) && depth[s.index()] == u32::MAX {
            depth[s.index()] = 0;
            queue.push_back(s);
        }
    }
    while let Some(v) = queue.pop_front() {
        reached.push(v);
        for &u in gp.neighbors(v) {
            if depth[u.index()] == u32::MAX {
                depth[u.index()] = depth[v.index()] + 1;
                queue.push_back(u);
            }
        }
    }
    let min_id = reached.iter().map(|&v| net.comp_id(v)).min().unwrap();
    let changed = reached.iter().filter(|&&v| net.comp_id(v) > min_id).count();
    (changed, min_id)
}

fn bench_propagation(c: &mut Criterion) {
    let mut group = c.benchmark_group("propagation");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));

    // A steady-state network: half the sweep done, so G' carries a large
    // healing forest and broadcasts traverse real components.
    let n = 4096usize;
    let g = barabasi_albert(n, 3, &mut StdRng::seed_from_u64(11));
    let mut engine = ScenarioEngine::new(HealingNetwork::new(g, 11), Dash, MaxNode);
    engine.run_events(n as u64 / 2);
    let mut net = engine.net;
    let seeds: Vec<NodeId> = net.graph().live_nodes().take(8).collect();

    // Converge IDs once so both benches measure the broadcast machinery
    // at steady state (no further ID updates), and check agreement.
    net.propagate_min_id(&seeds);
    let (changed0, _) = alloc_propagate_round(&net, &seeds);
    assert_eq!(changed0, 0, "ids must already be converged");

    group.bench_function("scratch_propagate_giant_component_4096", |b| {
        b.iter(|| {
            let report = net.propagate_min_id(black_box(&seeds));
            assert_eq!(report.changed, 0, "steady state: ids already converged");
            black_box(report.messages)
        });
    });
    group.bench_function("alloc_propagate_giant_component_4096", |b| {
        b.iter(|| {
            let (changed, min_id) = alloc_propagate_round(black_box(&net), &seeds);
            assert_eq!(changed, 0, "baseline must agree at steady state");
            black_box(min_id)
        });
    });

    // The asymptotic win: a round whose reconstruction set sits in a tiny
    // G' component. The scratch path costs O(component); the old path
    // still allocated and memset an O(node_bound) depth vector — that is
    // the O(n²) allocation traffic a run-to-empty used to pay.
    let tiny_seed: Vec<NodeId> = net
        .graph()
        .live_nodes()
        .find(|&v| net.healing_graph().degree(v) == 0)
        .into_iter()
        .collect();
    assert!(
        !tiny_seed.is_empty(),
        "mid-sweep network must still have a G'-singleton node"
    );
    group.bench_function("scratch_propagate_tiny_component_4096", |b| {
        b.iter(|| {
            let report = net.propagate_min_id(black_box(&tiny_seed));
            black_box(report.messages)
        });
    });
    group.bench_function("alloc_propagate_tiny_component_4096", |b| {
        b.iter(|| {
            let (_, min_id) = alloc_propagate_round(black_box(&net), &tiny_seed);
            black_box(min_id)
        });
    });
    group.finish();
}

criterion_group!(benches, bench_run_to_empty, bench_propagation);
criterion_main!(benches);

//! Zero-allocation guarantee for the steady-state healing loop.
//!
//! The PR 7 hot-path refactor claims that once every scratch buffer has
//! grown to its working size, a healing event (delete → heal → broadcast
//! → account) performs **no heap allocations at all**: the pooled
//! adjacency store reuses freed chunks, the degree buckets and Fenwick
//! tree keep their capacity, the deletion context / reconstruction-set /
//! δ-order / BFS buffers round-trip through the network, and the
//! engine's `HealOutcome` is recycled.
//!
//! This test installs a counting global allocator and holds the loop to
//! that claim at n = 4096: after a warm-up phase, whole blocks of
//! healing events must allocate *nothing* on this thread.

use rand::rngs::StdRng;
use rand::SeedableRng;
use selfheal_bench::alloc::{thread_allocations, CountingAlloc};
use selfheal_core::attack::MaxNode;
use selfheal_core::dash::Dash;
use selfheal_core::scenario::ScenarioEngine;
use selfheal_core::state::HealingNetwork;
use selfheal_graph::generators::barabasi_albert;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

#[test]
fn steady_state_heal_loop_allocates_nothing() {
    let n = 4096usize;
    let g = barabasi_albert(n, 3, &mut StdRng::seed_from_u64(20080124));
    let mut engine = ScenarioEngine::new(HealingNetwork::new(g, 20080124), Dash, MaxNode);

    // Warm-up: let every reusable buffer reach its high-water mark — the
    // outcome vectors, the epoch-stamped BFS scratch, the heal scratch,
    // the degree buckets, and the chunk pool's arena (whose amortized
    // doubling legitimately allocates while capacity converges; with this
    // seed the last growth happens around event 1100). The warm-up itself
    // must stay amortized-cheap: a bounded trickle, not per-event churn.
    let warmup = 1280u64;
    let before_warmup = thread_allocations();
    engine.run_events(warmup);
    let warmup_allocs = thread_allocations() - before_warmup;
    assert!(
        warmup_allocs < warmup / 8,
        "warm-up phase allocated {warmup_allocs} times over {warmup} events — \
         growth is supposed to be amortized doubling"
    );

    // Steady state: drive the bulk of the sweep in blocks and demand a
    // zero allocation delta for each block. Asserting per block (rather
    // than per event) still catches a single stray allocation anywhere,
    // but reports with enough context to bisect.
    let mut remaining = (n as u64) - warmup - 64;
    let mut block_no = 0u32;
    while remaining > 0 {
        let block = remaining.min(512);
        let before = thread_allocations();
        for i in 0..block {
            let record = engine.step();
            assert!(
                record.is_some(),
                "sweep ended early at event {i} of block {block_no}"
            );
        }
        let after = thread_allocations();
        assert_eq!(
            after - before,
            0,
            "block {block_no}: {} allocation(s) during {} steady-state events",
            after - before,
            block
        );
        remaining -= block;
        block_no += 1;
    }

    // The loop really was healing: finish the sweep and check emptiness.
    while engine.step().is_some() {}
    assert_eq!(engine.net.graph().live_node_count(), 0);
}

//! Exhaustive interleaving check for the `CountingAlloc` counter
//! protocol (run via `make loom-check`): the process-wide relaxed
//! `fetch_add` totals must lose no update under any interleaving of
//! allocating threads, and the per-thread cells must attribute exactly.
//!
//! The test drives `record_event`, the loom-only entry to the same
//! counter path `GlobalAlloc::alloc` takes, because installing the
//! counting allocator globally in a loom build would route the mock
//! atomics' own bookkeeping through itself.
#![cfg(loom)]

use selfheal_bench::alloc::{
    record_event, thread_allocations, total_allocations, total_bytes_allocated,
};

#[test]
fn counter_totals_are_exact_under_any_interleaving() {
    let report = loom::model(|| {
        // The totals are process statics shared across model runs, so
        // assert on deltas from a base read at the start of each run.
        let base_allocs = total_allocations();
        let base_bytes = total_bytes_allocated();
        let handles: Vec<_> = [16usize, 64]
            .into_iter()
            .map(|bytes| {
                loom::thread::spawn(move || {
                    record_event(bytes);
                    // Fresh OS thread per run: its cell starts at zero
                    // and must see exactly its own event.
                    assert_eq!(thread_allocations(), 1);
                })
            })
            .collect();
        record_event(8);
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(total_allocations() - base_allocs, 3);
        assert_eq!(total_bytes_allocated() - base_bytes, 16 + 64 + 8);
        assert_eq!(thread_allocations(), 1, "main thread cell unpolluted");
    });
    println!(
        "loom CountingAlloc protocol: {} interleavings explored, {} pruned, max depth {}",
        report.schedules, report.pruned, report.max_depth
    );
    assert!(report.schedules > 1, "recorders must actually race");
}

#[test]
fn full_counter_totals_three_recorders() {
    // Opt-in wider tier, mirroring `verify --full`: `make loom-check-full`.
    if std::env::var_os("LOOM_FULL").is_none() {
        eprintln!(
            "skipped: full-tier loom config (opt in with LOOM_FULL=1 / make loom-check-full)"
        );
        return;
    }
    let report = loom::model(|| {
        let base_allocs = total_allocations();
        let base_bytes = total_bytes_allocated();
        let handles: Vec<_> = [16usize, 64, 256]
            .into_iter()
            .map(|bytes| {
                loom::thread::spawn(move || {
                    record_event(bytes);
                    assert_eq!(thread_allocations(), 1);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(total_allocations() - base_allocs, 3);
        assert_eq!(total_bytes_allocated() - base_bytes, 16 + 64 + 256);
    });
    println!(
        "loom CountingAlloc protocol (full, 3 recorders): {} interleavings explored, {} pruned, max depth {}",
        report.schedules, report.pruned, report.max_depth
    );
}

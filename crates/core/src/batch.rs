//! Simultaneous (batch) deletions — footnote 1 of the paper.
//!
//! The paper's exposition assumes one deletion per round but notes that
//! "DASH can easily handle the situation where any number of nodes are
//! removed, so long as the neighbor-of-neighbor graph remains connected".
//! The operational meaning of that condition: no two *adjacent* nodes die
//! at once (an **independent** victim set). Then every survivor adjacent
//! to a victim still knows, via NoN information, all of that victim's
//! other neighbors, and the per-victim reconstruction trees can be built
//! exactly as in the sequential algorithm.
//!
//! [`delete_independent_batch`] performs the simultaneous deletion
//! (rejecting dependent sets), and [`heal_batch`] runs the healer on each
//! victim's context in deterministic order. Because the victims are
//! pairwise non-adjacent, the contexts captured at deletion time are
//! exactly what each victim's neighbors would have observed under
//! simultaneous failure.

use crate::state::{DeletionContext, HealingNetwork, PropagationReport};
use crate::strategy::{HealOutcome, Healer};
use selfheal_graph::{GraphError, NodeId};
use std::fmt;

/// Errors from batch deletion.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BatchError {
    /// Two victims are adjacent: NoN knowledge would be insufficient.
    NotIndependent(NodeId, NodeId),
    /// A victim id is repeated in the batch.
    Duplicate(NodeId),
    /// Underlying graph error (dead or out-of-range victim).
    Graph(GraphError),
}

impl fmt::Display for BatchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BatchError::NotIndependent(u, v) => {
                write!(
                    f,
                    "victims {u} and {v} are adjacent; batch must be independent"
                )
            }
            BatchError::Duplicate(v) => write!(f, "victim {v} appears twice in the batch"),
            BatchError::Graph(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for BatchError {}

impl From<GraphError> for BatchError {
    fn from(e: GraphError) -> Self {
        BatchError::Graph(e)
    }
}

/// Delete an independent set of victims simultaneously.
///
/// Returns one [`DeletionContext`] per victim (in input order). Because
/// the set is independent, the neighbor lists captured per victim are
/// identical whether the deletions are applied one by one or atomically.
///
/// # Errors
/// Rejects batches with dead, duplicate or pairwise-adjacent victims
/// (checked *before* any mutation — the batch is all-or-nothing).
pub fn delete_independent_batch(
    net: &mut HealingNetwork,
    victims: &[NodeId],
) -> Result<Vec<DeletionContext>, BatchError> {
    // Validate first: all alive, pairwise distinct and non-adjacent.
    for (i, &v) in victims.iter().enumerate() {
        net.graph().check_alive(v)?;
        for &u in &victims[..i] {
            if u == v {
                return Err(BatchError::Duplicate(v));
            }
            if net.graph().has_edge(u, v) {
                return Err(BatchError::NotIndependent(u, v));
            }
        }
    }
    Ok(delete_validated_batch(net, victims))
}

/// Delete a batch the caller has already proven alive, distinct and
/// pairwise non-adjacent — [`delete_independent_batch`] after its
/// validation pass, and the scenario engine after sanitizing (which
/// establishes exactly the same property without a second O(k²) check).
pub(crate) fn delete_validated_batch(
    net: &mut HealingNetwork,
    victims: &[NodeId],
) -> Vec<DeletionContext> {
    let mut contexts = Vec::with_capacity(victims.len());
    for &v in victims {
        // panic-ok: crate-internal helper whose one contract (documented
        // above) is that every victim is live and distinct.
        contexts.push(net.delete_node(v).expect("caller guarantees live victims"));
    }
    contexts
}

/// Outcome of healing one batch.
#[derive(Clone, Debug, Default)]
pub struct BatchOutcome {
    /// Per-victim healing outcomes, in victim order.
    pub outcomes: Vec<HealOutcome>,
    /// Combined ID-propagation accounting for the batch.
    pub propagation: PropagationReport,
}

/// Heal after a batch deletion: run the healer on each context in victim
/// order, then broadcast IDs once per reconstruction set — unless the
/// healer opts out of ID propagation (oracle strategies), exactly as the
/// single-deletion path does.
///
/// Per-victim broadcasts belong to one healing round, so their accounting
/// folds via [`PropagationReport::merge`] (changed/messages add, latency
/// takes the max) — the same rule the scenario engine's `DeleteBatch` arm
/// uses, so batch and single-round paths can no longer diverge.
///
/// Broadcasts take the restricted fast path
/// ([`HealingNetwork::propagate_min_id_uniform`]): each heal connects its
/// reconstruction set before its broadcast seeds from exactly those
/// members, so every `G'` component is ID-uniform when each broadcast
/// starts and the fast path is exact.
pub fn heal_batch<H: Healer>(
    net: &mut HealingNetwork,
    healer: &mut H,
    contexts: &[DeletionContext],
) -> BatchOutcome {
    let mut outcomes = Vec::with_capacity(contexts.len());
    let mut propagation = PropagationReport::default();
    let broadcast = healer.needs_id_propagation();
    for ctx in contexts {
        let outcome = healer.heal(net, ctx);
        if broadcast {
            propagation.merge(net.propagate_min_id_uniform(&outcome.rt_members));
        }
        outcomes.push(outcome);
    }
    BatchOutcome {
        outcomes,
        propagation,
    }
}

/// Greedily pick up to `k` independent victims from the live graph using
/// the given ranking (highest first). Utility for batch adversaries.
pub fn independent_victims<F: FnMut(NodeId) -> i64>(
    net: &HealingNetwork,
    k: usize,
    mut rank: F,
) -> Vec<NodeId> {
    let g = net.graph();
    let mut candidates: Vec<NodeId> = g.live_nodes().collect();
    candidates.sort_by_key(|&v| (std::cmp::Reverse(rank(v)), v));
    let mut picked: Vec<NodeId> = Vec::with_capacity(k);
    for v in candidates {
        if picked.len() == k {
            break;
        }
        if picked.iter().all(|&u| !g.has_edge(u, v)) {
            picked.push(v);
        }
    }
    picked
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dash::Dash;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use selfheal_graph::components::is_connected;
    use selfheal_graph::forest::is_forest;
    use selfheal_graph::generators::{barabasi_albert, cycle_graph, path_graph};

    #[test]
    fn rejects_adjacent_victims() {
        let mut net = HealingNetwork::new(path_graph(4), 1);
        let err = delete_independent_batch(&mut net, &[NodeId(1), NodeId(2)]).unwrap_err();
        assert_eq!(err, BatchError::NotIndependent(NodeId(1), NodeId(2)));
        // All-or-nothing: nothing was deleted.
        assert_eq!(net.graph().live_node_count(), 4);
    }

    #[test]
    fn rejects_duplicates_and_dead() {
        let mut net = HealingNetwork::new(path_graph(5), 1);
        assert_eq!(
            delete_independent_batch(&mut net, &[NodeId(0), NodeId(0)]).unwrap_err(),
            BatchError::Duplicate(NodeId(0))
        );
        net.delete_node(NodeId(4)).unwrap();
        assert!(matches!(
            delete_independent_batch(&mut net, &[NodeId(4)]).unwrap_err(),
            BatchError::Graph(_)
        ));
    }

    #[test]
    fn batch_deletion_preserves_connectivity_with_dash() {
        // Delete alternating nodes of a cycle: a maximal independent set.
        let mut net = HealingNetwork::new(cycle_graph(10), 2);
        let victims: Vec<NodeId> = (0..10).step_by(2).map(NodeId).collect();
        let contexts = delete_independent_batch(&mut net, &victims).unwrap();
        assert_eq!(contexts.len(), 5);
        let mut dash = Dash;
        heal_batch(&mut net, &mut dash, &contexts);
        assert!(is_connected(net.graph()));
        assert!(is_forest(net.healing_graph()));
        assert_eq!(net.graph().live_node_count(), 5);
    }

    #[test]
    fn repeated_batches_on_ba_graph_hold_invariants() {
        let n = 60;
        let g = barabasi_albert(n, 3, &mut StdRng::seed_from_u64(7));
        let mut net = HealingNetwork::new(g, 7);
        let mut dash = Dash;
        while net.graph().live_node_count() > 0 {
            let victims = independent_victims(&net, 4, |v| net.graph().degree(v) as i64);
            if victims.is_empty() {
                break;
            }
            let contexts = delete_independent_batch(&mut net, &victims).unwrap();
            heal_batch(&mut net, &mut dash, &contexts);
            assert!(is_connected(net.graph()), "disconnected mid-batch-sweep");
            assert!(is_forest(net.healing_graph()));
        }
        assert_eq!(net.graph().live_node_count(), 0);
        // Degree bound still holds empirically under batching.
        // (max_delta_alive is 0 on the empty graph; checked during sweep
        // by the connectivity asserts plus the bound below on a fresh run.)
    }

    #[test]
    fn batch_degree_increase_stays_bounded() {
        let n = 96;
        let g = barabasi_albert(n, 3, &mut StdRng::seed_from_u64(9));
        let mut net = HealingNetwork::new(g, 9);
        let mut dash = Dash;
        let bound = 2.0 * (n as f64).log2();
        loop {
            let victims = independent_victims(&net, 3, |v| net.graph().degree(v) as i64);
            if victims.is_empty() {
                break;
            }
            let contexts = delete_independent_batch(&mut net, &victims).unwrap();
            heal_batch(&mut net, &mut dash, &contexts);
            let max = net.max_delta_alive();
            assert!((max as f64) <= bound, "batch sweep: {max} > {bound}");
        }
    }

    #[test]
    fn independent_victims_respect_k_and_independence() {
        let net = HealingNetwork::new(cycle_graph(8), 3);
        let picked = independent_victims(&net, 3, |v| v.0 as i64);
        assert_eq!(picked.len(), 3);
        for (i, &u) in picked.iter().enumerate() {
            for &w in &picked[..i] {
                assert!(!net.graph().has_edge(u, w));
            }
        }
        // Ranking by id prefers high ids first: 7, then 5, then 3.
        assert_eq!(picked, vec![NodeId(7), NodeId(5), NodeId(3)]);
    }

    #[test]
    fn empty_batch_is_fine() {
        let mut net = HealingNetwork::new(path_graph(3), 1);
        let contexts = delete_independent_batch(&mut net, &[]).unwrap();
        assert!(contexts.is_empty());
        let outcome = heal_batch(&mut net, &mut Dash, &contexts);
        assert!(outcome.outcomes.is_empty());
        assert_eq!(outcome.propagation, PropagationReport::default());
    }
}

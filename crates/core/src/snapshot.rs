//! Cheap, reusable extraction of queryable engine state.
//!
//! The serving layer ([`selfheal-serve`]) answers read-mostly topology
//! queries (`components`, `degree`, `gprime-edges`, `stats`) without
//! blocking heals, by republishing a [`StateSnapshot`] of each shard's
//! [`HealingNetwork`] every epoch into a lock-free double buffer. That
//! makes capture a hot path: [`StateSnapshot::capture`] therefore reuses
//! every internal allocation, so steady-state republishing is
//! allocation-free once the vectors have grown to the network's size
//! (mirroring the engine's own `DeletionContext` reuse).
//!
//! The snapshot is plain owned data — no references into the network —
//! so a reader thread can hold it while the shard mutates freely.
//!
//! [`selfheal-serve`]: ../../selfheal_serve/index.html

use crate::state::HealingNetwork;
use selfheal_graph::NodeId;

/// A point-in-time summary of one healing network: the live node set,
/// the broadcast component IDs (aggregated), per-slot `G'` degrees and
/// degree deltas, and scalar topology counters.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StateSnapshot {
    /// Live node ids, in increasing order.
    pub live: Vec<NodeId>,
    /// `(component id, member count)` pairs, sorted by component id.
    /// The component id is the *believed* one — the minimum initial ID
    /// each node has learned so far (`HealingNetwork::comp_id`), which
    /// starts as the node's own shuffled ID and converges downward as
    /// heal-triggered `propagate_min_id` broadcasts flood. The entry
    /// count therefore tracks broadcast convergence, not graph
    /// connectivity: it *shrinks toward* one entry per connected
    /// component as healing rounds accumulate.
    pub components: Vec<(u64, usize)>,
    /// Degree in the healed graph `G'`, indexed by slot
    /// ([`NodeId::index`]); dead slots report 0.
    pub degrees: Vec<u32>,
    /// Degree increase `delta(v)` over the original degree, indexed by
    /// slot; dead slots report 0.
    pub deltas: Vec<i64>,
    /// Maximum degree increase over live nodes (Theorem 1's bounded
    /// quantity).
    pub max_delta: i64,
    /// Edge count of the healed graph `G'`.
    pub gprime_edges: usize,
    /// Total deletions applied so far.
    pub deletions: u64,
    /// Scratch for component aggregation, kept to reuse its allocation.
    scratch: Vec<u64>,
}

impl StateSnapshot {
    /// Refill this snapshot from `net`, reusing all internal
    /// allocations. O(n + m) with no allocation at steady state.
    pub fn capture(&mut self, net: &HealingNetwork) {
        let g = net.healing_graph();
        g.live_nodes_into(&mut self.live);
        g.degrees_into(&mut self.degrees);
        self.deltas.clear();
        self.deltas.resize(g.node_bound(), 0);
        for &v in &self.live {
            self.deltas[v.index()] = net.delta(v);
        }
        self.max_delta = net.max_delta_alive();
        self.gprime_edges = g.edge_count();
        self.deletions = net.deletion_count();

        // Aggregate broadcast component ids by sort + run-length
        // encoding: deterministic and allocation-reusing, unlike a
        // per-capture map.
        self.scratch.clear();
        self.scratch
            .extend(self.live.iter().map(|&v| net.comp_id(v)));
        self.scratch.sort_unstable();
        self.components.clear();
        for &id in &self.scratch {
            match self.components.last_mut() {
                Some((last, n)) if *last == id => *n += 1,
                _ => self.components.push((id, 1)),
            }
        }
    }

    /// Number of live nodes.
    #[must_use]
    pub fn live_count(&self) -> usize {
        self.live.len()
    }

    /// `G'` degree of `v`, or `None` for ids outside the slot range
    /// (dead-but-allocated slots report `Some(0)`, matching
    /// `Graph::degree`).
    #[must_use]
    pub fn degree_of(&self, v: NodeId) -> Option<u32> {
        self.degrees.get(v.index()).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attack::MaxNode;
    use crate::scenario::ScenarioEngine;
    use crate::sdash::Sdash;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use selfheal_graph::generators::barabasi_albert;

    #[test]
    fn snapshot_matches_direct_network_queries() {
        let g = barabasi_albert(40, 3, &mut StdRng::seed_from_u64(9));
        let net = HealingNetwork::new(g, 9);
        let mut engine = ScenarioEngine::new(net, Sdash, MaxNode);
        for _ in 0..15 {
            engine.step();
        }

        let mut snap = StateSnapshot::default();
        snap.capture(&engine.net);

        assert_eq!(
            snap.live,
            engine.net.graph().live_nodes().collect::<Vec<_>>()
        );
        assert_eq!(snap.live_count(), engine.net.graph().live_node_count());
        assert_eq!(snap.gprime_edges, engine.net.healing_graph().edge_count());
        assert_eq!(snap.max_delta, engine.net.max_delta_alive());
        assert_eq!(snap.deletions, 15);
        for &v in &snap.live {
            assert_eq!(
                snap.degree_of(v),
                Some(engine.net.healing_graph().degree(v) as u32)
            );
            assert_eq!(snap.deltas[v.index()], engine.net.delta(v));
        }
        let total: usize = snap.components.iter().map(|&(_, n)| n).sum();
        assert_eq!(total, snap.live_count());
        assert!(snap.components.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn capture_reuses_allocations_at_steady_state() {
        let g = barabasi_albert(32, 3, &mut StdRng::seed_from_u64(4));
        let net = HealingNetwork::new(g, 4);
        let mut engine = ScenarioEngine::new(net, Sdash, MaxNode);
        let mut snap = StateSnapshot::default();
        snap.capture(&engine.net);
        let caps = (
            snap.live.capacity(),
            snap.degrees.capacity(),
            snap.deltas.capacity(),
            snap.components.capacity(),
            snap.scratch.capacity(),
        );
        for _ in 0..10 {
            engine.step();
            snap.capture(&engine.net);
        }
        // The network only shrinks under pure deletions, so every
        // buffer's first-capture capacity suffices from then on.
        assert_eq!(
            caps,
            (
                snap.live.capacity(),
                snap.degrees.capacity(),
                snap.deltas.capacity(),
                snap.components.capacity(),
                snap.scratch.capacity(),
            )
        );
    }
}

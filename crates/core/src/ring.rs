//! RingForgiving — cycle-plus-chords healing under a per-node budget
//! (after the ring-enhancement line of Hayashi et al., *Resource
//! Allocation for Self-Healing Networks*, adapted to this workspace's
//! reconstruction-set model).
//!
//! Where DASH rebuilds a binary *tree* over the reconstruction set,
//! RingForgiving rebuilds a **ring**: the victim's representatives are
//! wired into a single cycle (in initial-ID order), then `budget` rounds
//! of halving-stride chords are laid across it, shortening the ring the
//! way the resource-allocation papers add redundancy under a per-node
//! budget:
//!
//! - round `r` uses stride `s = ⌊m / 2^r⌋` and pairs members `j` and
//!   `j + s` for `j = 0, 2s, 4s, …` — the pairs are disjoint, so **each
//!   member takes at most one chord per round**;
//! - rounds stop when the stride falls below 2 (a chord of stride 1
//!   would duplicate a cycle edge).
//!
//! Each survivor therefore gains at most `2 + budget` edges per adjacent
//! deletion (two cycle edges plus one chord per round) — the family's
//! budget bound, enforced per event by
//! [`FamilyAuditor`](crate::invariants::FamilyAuditor) and proved
//! exhaustively for `n ≤ 6` by `run-experiments verify`. The cycle keeps
//! every fragment of the victim's neighborhood connected (the same
//! one-representative-per-component argument as DASH), but `G'`
//! deliberately stops being a forest — like
//! [`GraphHeal`](crate::naive::GraphHeal), the strategy trades Lemma 1
//! for redundancy, so [`Healer::preserves_forest`] is `false` and the
//! Theorem 1 weight/δ bounds are waived in its audit profile.
//!
//! RingForgiving is centralized-only: there is no message-passing
//! protocol for it, and
//! [`HealerSpec::heal_mode`](crate::spec::HealerSpec::heal_mode) reports
//! a documented [`FabricUnsupported`](crate::spec::SpecError) for every
//! sim backend.

use crate::rt;
use crate::state::{DeletionContext, HealingNetwork};
use crate::strategy::{HealOutcome, Healer};

/// The RingForgiving healing strategy: a cycle over the reconstruction
/// set plus up to `budget` halving-stride chords per member.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RingForgiving {
    /// Chord rounds per heal — the per-node resource budget: each member
    /// gains at most `2 + budget` edges per adjacent deletion.
    pub budget: usize,
}

impl RingForgiving {
    /// The registry's canonical budget.
    pub const DEFAULT_BUDGET: usize = 2;
}

impl Default for RingForgiving {
    fn default() -> Self {
        RingForgiving {
            budget: Self::DEFAULT_BUDGET,
        }
    }
}

/// The index pairs a heal over `m` members wires: the cycle (single edge
/// for `m = 2`, nothing for `m < 2`) followed by each chord round's
/// disjoint pairs. Exposed so tests can cross-check a heal against this
/// naive reference plan.
pub fn ring_plan(m: usize, budget: usize) -> Vec<(usize, usize)> {
    let mut plan = Vec::new();
    if m == 2 {
        plan.push((0, 1));
        return plan;
    }
    if m < 2 {
        return plan;
    }
    for i in 0..m {
        plan.push((i, (i + 1) % m));
    }
    for r in 1..=budget {
        let s = m >> r;
        if s < 2 {
            break;
        }
        let mut j = 0;
        while j + s < m {
            plan.push((j, j + s));
            j += 2 * s;
        }
    }
    plan
}

impl Healer for RingForgiving {
    fn name(&self) -> &'static str {
        "ring"
    }

    fn heal(&mut self, net: &mut HealingNetwork, ctx: &DeletionContext) -> HealOutcome {
        let mut out = HealOutcome::default();
        self.heal_into(net, ctx, &mut out);
        out
    }

    fn heal_into(
        &mut self,
        net: &mut HealingNetwork,
        ctx: &DeletionContext,
        out: &mut HealOutcome,
    ) {
        out.clear();
        let mut scratch = net.take_heal_scratch();
        rt::reconstruction_set_into(net, ctx, &mut scratch.tagged, &mut out.rt_members);
        scratch.ordered.clear();
        scratch.ordered.extend_from_slice(&out.rt_members);
        scratch.ordered.sort_unstable_by_key(|&v| net.initial_id(v));
        for (i, j) in ring_plan(scratch.ordered.len(), self.budget) {
            let (a, b) = (scratch.ordered[i], scratch.ordered[j]);
            let (_, new_gp) = net
                .add_heal_edge(a, b)
                // panic-ok: the plan only pairs reconstruction-set
                // members, all of which survived the deletion.
                .expect("ring endpoints must be alive");
            if new_gp {
                out.edges_added.push((a, b));
            }
        }
        net.put_heal_scratch(scratch);
    }

    /// The cycle is a cycle: `G'` is deliberately not a forest.
    fn preserves_forest(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use selfheal_graph::components::is_connected;
    use selfheal_graph::generators::{path_graph, star_graph};
    use selfheal_graph::NodeId;

    #[test]
    fn ring_plan_is_cycle_plus_disjoint_chord_rounds() {
        assert!(ring_plan(0, 3).is_empty());
        assert!(ring_plan(1, 3).is_empty());
        assert_eq!(ring_plan(2, 3), vec![(0, 1)]);
        // m = 8, budget = 2: cycle of 8, stride-4 pairs (0,4), stride-2
        // pairs (0,2), (4,6).
        let plan = ring_plan(8, 2);
        assert_eq!(plan.len(), 8 + 1 + 2);
        assert!(plan.contains(&(0, 4)));
        assert!(plan.contains(&(0, 2)) && plan.contains(&(4, 6)));
        // Per-member incidence per chord round is at most 1.
        for r in 1..=2usize {
            let s = 8 >> r;
            let mut seen = [0u32; 8];
            for &(i, j) in plan.iter().filter(|&&(i, j)| j > i && j - i == s) {
                seen[i] += 1;
                seen[j] += 1;
            }
            assert!(seen.iter().all(|&c| c <= 1), "round {r} doubles a member");
        }
    }

    #[test]
    fn budget_caps_per_member_degree_gain() {
        for budget in 0..4usize {
            let mut net = HealingNetwork::new(star_graph(12), 9);
            let before: Vec<usize> = (0..12).map(|v| net.graph().degree(NodeId(v))).collect();
            let ctx = net.delete_node(NodeId(0)).unwrap();
            let outcome = RingForgiving { budget }.heal(&mut net, &ctx);
            for &m in &outcome.rt_members {
                let gained = net.graph().degree(m) + 1 - before[m.index()];
                assert!(
                    gained <= 2 + budget,
                    "budget {budget}: member {m} gained {gained}"
                );
            }
            assert!(is_connected(net.graph()));
        }
    }

    #[test]
    fn two_member_heal_adds_a_single_edge() {
        let mut net = HealingNetwork::new(path_graph(3), 4);
        let ctx = net.delete_node(NodeId(1)).unwrap();
        let outcome = RingForgiving::default().heal(&mut net, &ctx);
        assert_eq!(outcome.rt_members.len(), 2);
        assert_eq!(outcome.edges_added.len(), 1);
        assert!(is_connected(net.graph()));
    }

    #[test]
    fn full_kill_sweep_stays_connected() {
        let mut net = HealingNetwork::new(star_graph(10), 6);
        let mut healer = RingForgiving::default();
        for v in 0..10u32 {
            let ctx = net.delete_node(NodeId(v)).unwrap();
            let outcome = healer.heal(&mut net, &ctx);
            net.propagate_min_id(&outcome.rt_members);
            assert!(is_connected(net.graph()), "disconnected after {v}");
        }
    }
}

//! Reconstruction-tree (RT) machinery shared by the healing strategies.
//!
//! When node `v` is deleted, DASH reconnects the set
//! `UN(v, G) ∪ N(v, G')` (Algorithm 1):
//!
//! - `N(v, G')` — all of `v`'s neighbors in the healing forest; removing
//!   `v` split its `G'` tree into fragments and each fragment contains
//!   exactly one such neighbor, so including all of them re-merges `v`'s
//!   old tree.
//! - `UN(v, G)` — *unique neighbors*: the remaining `G`-neighbors of `v`
//!   are partitioned by their current component ID (nodes with the same
//!   ID are in the same `G'` tree) and each partition contributes its
//!   lowest-initial-ID member. Neighbors that carry `v`'s own component
//!   ID are excluded — their fragment is already represented by a
//!   `N(v, G')` member.
//!
//! Using one representative per component is what keeps the number of new
//! edges (and hence degree increase) low; see Section 3.1 of the paper
//! for why component tracking is necessary.

use crate::state::{DeletionContext, HealingNetwork};
use selfheal_graph::NodeId;

/// Compute `UN(v, G)`: one representative (lowest initial ID) per distinct
/// component ID among `v`'s `G`-neighbors, excluding `v`'s own component.
pub fn unique_neighbors(net: &HealingNetwork, ctx: &DeletionContext) -> Vec<NodeId> {
    let mut tagged = Vec::new();
    let mut reps = Vec::new();
    unique_neighbors_into(net, ctx, &mut tagged, &mut reps);
    reps
}

/// [`unique_neighbors`] on caller-owned buffers (both cleared first):
/// `tagged` is the sort scratch, `out` receives the representatives. The
/// hot heal path reuses both across rounds via
/// [`HealingNetwork::take_heal_scratch`], so steady-state heals allocate
/// nothing here.
pub fn unique_neighbors_into(
    net: &HealingNetwork,
    ctx: &DeletionContext,
    tagged: &mut Vec<(u64, u64, NodeId)>,
    out: &mut Vec<NodeId>,
) {
    // (comp_id, initial_id, node): pick min initial_id per comp_id.
    tagged.clear();
    out.clear();
    tagged.extend(
        ctx.g_neighbors
            .iter()
            .copied()
            .filter(|&u| net.comp_id(u) != ctx.deleted_comp_id)
            .map(|u| (net.comp_id(u), net.initial_id(u), u)),
    );
    tagged.sort_unstable();
    let mut last_comp: Option<u64> = None;
    for &(comp, _, node) in tagged.iter() {
        if last_comp != Some(comp) {
            out.push(node);
            last_comp = Some(comp);
        }
    }
}

/// The full reconstruction set `UN(v, G) ∪ N(v, G')`, sorted by node id.
///
/// The two sets are disjoint by construction (`N(v, G')` members carry
/// `v`'s component ID, which `UN` excludes).
pub fn reconstruction_set(net: &HealingNetwork, ctx: &DeletionContext) -> Vec<NodeId> {
    let mut tagged = Vec::new();
    let mut members = Vec::new();
    reconstruction_set_into(net, ctx, &mut tagged, &mut members);
    members
}

/// [`reconstruction_set`] on caller-owned buffers (cleared first);
/// `tagged` is the unique-neighbor sort scratch, `out` receives the
/// sorted member set.
pub fn reconstruction_set_into(
    net: &HealingNetwork,
    ctx: &DeletionContext,
    tagged: &mut Vec<(u64, u64, NodeId)>,
    out: &mut Vec<NodeId>,
) {
    unique_neighbors_into(net, ctx, tagged, out);
    out.extend_from_slice(&ctx.gprime_neighbors);
    out.sort_unstable();
    out.dedup();
}

/// Order RT members for the complete binary tree: increasing `δ`, ties by
/// initial ID. Algorithm 1 maps this order "left to right, top down", so
/// the lowest-δ node becomes the root and the highest-δ nodes become
/// leaves (which gain at most one edge).
pub fn order_by_delta(net: &HealingNetwork, members: &[NodeId]) -> Vec<NodeId> {
    let mut ordered = Vec::new();
    order_by_delta_into(net, members, &mut ordered);
    ordered
}

/// [`order_by_delta`] into a caller-owned buffer (cleared first). The
/// `(δ, initial_id)` keys are distinct per node (initial IDs are unique),
/// so the unstable sort is deterministic.
pub fn order_by_delta_into(net: &HealingNetwork, members: &[NodeId], out: &mut Vec<NodeId>) {
    out.clear();
    out.extend_from_slice(members);
    out.sort_unstable_by_key(|&v| (net.delta(v), net.initial_id(v)));
}

/// Wire `ordered` into a complete binary tree, adding each edge to both
/// `G` and `G'`. Returns the edges added to `G'`.
pub fn connect_binary_tree(net: &mut HealingNetwork, ordered: &[NodeId]) -> Vec<(NodeId, NodeId)> {
    let mut added = Vec::with_capacity(ordered.len().saturating_sub(1));
    connect_binary_tree_into(net, ordered, &mut added);
    added
}

/// [`connect_binary_tree`] appending the `G'`-new edges to a caller-owned
/// buffer (NOT cleared — SDASH's fallback arm appends after its star
/// attempt). The parent of position `i` in the complete binary tree is
/// `(i - 1) / 2`, matching
/// [`selfheal_graph::forest::complete_binary_tree_edges`] edge for edge
/// without materializing the edge list.
pub fn connect_binary_tree_into(
    net: &mut HealingNetwork,
    ordered: &[NodeId],
    added: &mut Vec<(NodeId, NodeId)>,
) {
    for i in 1..ordered.len() {
        let (a, b) = (ordered[(i - 1) / 2], ordered[i]);
        // panic-ok: `ordered` holds reconstruction-set members, all of
        // which survived the deletion that triggered this heal.
        let (_, new_gp) = net.add_heal_edge(a, b).expect("RT endpoints must be alive");
        if new_gp {
            added.push((a, b));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use selfheal_graph::generators::star_graph;
    use selfheal_graph::Graph;

    /// A star with hub 0 and 6 spokes; delete the hub.
    fn star_deletion() -> (HealingNetwork, DeletionContext) {
        let mut net = HealingNetwork::new(star_graph(7), 7);
        let ctx = net.delete_node(NodeId(0)).unwrap();
        (net, ctx)
    }

    #[test]
    fn all_singleton_components_are_unique_neighbors() {
        let (net, ctx) = star_deletion();
        // No healing edges yet: every spoke is its own component.
        let un = unique_neighbors(&net, &ctx);
        assert_eq!(un.len(), 6);
        let rt = reconstruction_set(&net, &ctx);
        assert_eq!(rt.len(), 6);
    }

    #[test]
    fn same_component_collapses_to_lowest_initial_id() {
        let mut net = HealingNetwork::new(star_graph(5), 3);
        // Join spokes 1 and 2 in G' and give them a common component id.
        net.add_heal_edge(NodeId(1), NodeId(2)).unwrap();
        net.propagate_min_id(&[NodeId(1), NodeId(2)]);
        let ctx = net.delete_node(NodeId(0)).unwrap();
        let un = unique_neighbors(&net, &ctx);
        assert_eq!(un.len(), 3, "spokes 1,2 should share one representative");
        let rep = if net.initial_id(NodeId(1)) < net.initial_id(NodeId(2)) {
            NodeId(1)
        } else {
            NodeId(2)
        };
        assert!(un.contains(&rep));
        assert!(un.contains(&NodeId(3)));
        assert!(un.contains(&NodeId(4)));
    }

    #[test]
    fn gprime_neighbors_excluded_from_un_but_in_rt() {
        let mut net = HealingNetwork::new(star_graph(5), 9);
        net.add_heal_edge(NodeId(0), NodeId(1)).unwrap();
        net.propagate_min_id(&[NodeId(0), NodeId(1)]);
        let ctx = net.delete_node(NodeId(0)).unwrap();
        assert_eq!(ctx.gprime_neighbors, vec![NodeId(1)]);
        let un = unique_neighbors(&net, &ctx);
        assert!(
            !un.contains(&NodeId(1)),
            "node 1 shares the deleted node's comp id"
        );
        let rt = reconstruction_set(&net, &ctx);
        assert!(rt.contains(&NodeId(1)));
        assert_eq!(rt.len(), 4);
    }

    #[test]
    fn order_by_delta_puts_high_delta_last() {
        let mut net = HealingNetwork::new(star_graph(6), 11);
        // Bump δ of node 3 by healing two extra edges onto it.
        net.add_heal_edge(NodeId(3), NodeId(4)).unwrap();
        net.add_heal_edge(NodeId(3), NodeId(5)).unwrap();
        let members = vec![NodeId(1), NodeId(2), NodeId(3)];
        let ordered = order_by_delta(&net, &members);
        assert_eq!(*ordered.last().unwrap(), NodeId(3));
        // δ ties between 1 and 2 are broken by initial id.
        let first_two: Vec<u64> = ordered[..2].iter().map(|&v| net.initial_id(v)).collect();
        assert!(first_two[0] < first_two[1]);
    }

    #[test]
    fn connect_binary_tree_builds_tree_in_gprime() {
        let mut net = HealingNetwork::new(Graph::new(7), 1);
        let nodes: Vec<NodeId> = (0..7).map(NodeId).collect();
        let added = connect_binary_tree(&mut net, &nodes);
        assert_eq!(added.len(), 6);
        assert!(selfheal_graph::forest::is_tree(net.healing_graph()));
        // Max degree 3 in a complete binary tree.
        assert!(nodes.iter().all(|&v| net.healing_graph().degree(v) <= 3));
        // G mirrors G'.
        assert_eq!(net.graph().edge_count(), 6);
    }

    #[test]
    fn connect_binary_tree_trivial_sizes() {
        let mut net = HealingNetwork::new(Graph::new(2), 1);
        assert!(connect_binary_tree(&mut net, &[]).is_empty());
        assert!(connect_binary_tree(&mut net, &[NodeId(0)]).is_empty());
        let added = connect_binary_tree(&mut net, &[NodeId(0), NodeId(1)]);
        assert_eq!(added, vec![(NodeId(0), NodeId(1))]);
    }
}

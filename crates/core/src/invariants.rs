//! Proofs-as-checks: executable versions of the paper's lemmas.
//!
//! Every guarantee the paper proves about DASH is implemented here as a
//! runtime check so tests (and the engine's audit mode) can validate the
//! implementation against the theory after every round:
//!
//! - Theorem 1 / connectivity — `G` stays connected,
//! - Lemma 1 — `G'` is a forest,
//! - Lemma 4 — the potential `rem(v) ≥ 2^{δ(v)/2}`,
//! - Lemma 5 — `rem(v) ≤ n`,
//! - Lemma 6 — `δ(v) ≤ 2 log₂ n`,
//! - weight conservation — `W* + lost = n` (used by Lemma 5's proof).
//!
//! The function-level checks are composed two ways: [`check_all`] (one
//! state, all lemmas) and [`TheoremAuditor`] — an
//! [`Observer`](crate::scenario::Observer) enforcing the *whole* of
//! Theorem 1 (including the per-node ID-change, message and amortized
//! latency bounds that previously lived only in the integration tests)
//! after every event of a run, so a sweep over thousands of seeds can
//! report the exact seed and event of any bound violation.

use crate::scenario::{EventKind, EventRecord, Observer, ScenarioReport};
use crate::state::HealingNetwork;
use selfheal_graph::components::is_connected;
use selfheal_graph::forest::is_forest;
use selfheal_graph::NodeId;

/// Whether the real network `G` is connected (the paper's core guarantee).
pub fn connectivity_ok(net: &HealingNetwork) -> bool {
    is_connected(net.graph())
}

/// Whether the healing graph `G'` is a forest (Lemma 1).
pub fn forest_ok(net: &HealingNetwork) -> bool {
    is_forest(net.healing_graph())
}

/// Result of checking the Lemma 6 degree bound.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DeltaBound {
    /// Maximum observed `δ(v)` over live nodes.
    pub max_delta: i64,
    /// The theoretical bound `2 log₂ n` for the initial `n`.
    pub bound: f64,
    /// Whether the bound holds.
    pub ok: bool,
}

/// Check `δ(v) ≤ 2 log₂ n` for every live node (Lemma 6).
///
/// `n` is the total number of nodes ever created, so the bound remains
/// meaningful under churn (joins).
pub fn delta_bound(net: &HealingNetwork) -> DeltaBound {
    let n = net.total_created().max(1) as f64;
    let bound = 2.0 * n.log2();
    let max_delta = net.max_delta_alive();
    DeltaBound {
        max_delta,
        bound,
        ok: (max_delta as f64) <= bound + 1e-9,
    }
}

/// Total weight of the `G'` tree containing `u` when `v` is removed:
/// `W(T(u, v))` in the paper's notation. Returns 0 if `u` is dead.
pub fn subtree_weight(net: &HealingNetwork, u: NodeId, v: NodeId) -> u64 {
    if !net.is_alive(u) || u == v {
        return 0;
    }
    let gp = net.healing_graph();
    let mut seen = vec![false; gp.node_bound()];
    seen[u.index()] = true;
    if v.index() < seen.len() {
        seen[v.index()] = true; // exclude v from the traversal
    }
    let mut stack = vec![u];
    let mut total = 0u64;
    while let Some(x) = stack.pop() {
        total += net.weight(x);
        for &y in gp.neighbors(x) {
            if !seen[y.index()] {
                seen[y.index()] = true;
                stack.push(y);
            }
        }
    }
    total
}

/// The paper's potential function:
/// `rem(v) = Σ_u W(T(u,v)) − max_u W(T(u,v)) + w(v)` over
/// `u ∈ N(v, G')`. Intuitively: the weight that would remain attached to
/// `v`'s share if its heaviest branch were cut away.
pub fn rem(net: &HealingNetwork, v: NodeId) -> u64 {
    let gp = net.healing_graph();
    let mut sum = 0u64;
    let mut max = 0u64;
    for &u in gp.neighbors(v) {
        let w = subtree_weight(net, u, v);
        sum += w;
        max = max.max(w);
    }
    sum - max + net.weight(v)
}

/// Check Lemma 4 (`rem(v) ≥ 2^{δ(v)/2}`) and Lemma 5 (`rem(v) ≤ n`) for
/// every live node. O(n²) in the worst case — intended for tests and
/// audit runs, not hot loops.
pub fn rem_potential_ok(net: &HealingNetwork) -> bool {
    let n = net.total_created() as u64;
    net.graph().live_nodes().all(|v| {
        let r = rem(net, v);
        let needed = 2f64.powf(net.delta(v) as f64 / 2.0);
        r as f64 + 1e-9 >= needed && r <= n
    })
}

/// Check weight conservation: live weight plus recorded losses equals the
/// number of nodes ever created (each node is born with weight 1).
pub fn weight_conservation_ok(net: &HealingNetwork) -> bool {
    let live: u64 = net.graph().live_nodes().map(|v| net.weight(v)).sum();
    live + net.weight_lost() == net.total_created() as u64
}

/// Outcome of running every check at once.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct InvariantReport {
    /// Human-readable descriptions of each violated invariant.
    pub violations: Vec<String>,
}

impl InvariantReport {
    /// Whether all checked invariants held.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Run all checks applicable to the given strategy.
///
/// `expect_forest` should be false for GraphHeal (which deliberately
/// allows cycles in `G'`); `check_rem` enables the O(n²) potential check.
pub fn check_all(net: &HealingNetwork, expect_forest: bool, check_rem: bool) -> InvariantReport {
    let mut violations = Vec::new();
    if !connectivity_ok(net) {
        violations.push("G is disconnected".to_string());
    }
    if expect_forest && !forest_ok(net) {
        violations.push("G' contains a cycle".to_string());
    }
    let db = delta_bound(net);
    if !db.ok {
        violations.push(format!(
            "max delta {} exceeds 2 log2 n = {:.2}",
            db.max_delta, db.bound
        ));
    }
    if !weight_conservation_ok(net) {
        violations.push("weight not conserved".to_string());
    }
    if check_rem && !rem_potential_ok(net) {
        violations.push("rem potential below 2^(delta/2) or above n".to_string());
    }
    InvariantReport { violations }
}

/// The numeric constants of Theorem 1's four bullets, expressed as
/// multiplicative factors so a caller can tighten or relax individual
/// bounds (e.g. give a with-high-probability claim slack on tiny
/// networks).
///
/// With the default factors the auditor checks exactly what the paper
/// states and the integration tests pin:
///
/// - `δ(v) ≤ 2 log₂ n` (Lemma 6 / bullet 1) — deterministic,
/// - ID changes per node `≤ 2 ln n` (bullet 2) — w.h.p.,
/// - messages sent per node `≤ 2 (d + 2 log₂ n) ln n` (bullet 3, the
///   rigorous sent side) and traffic `≤ 2×` that (the amortized received
///   side),
/// - amortized ID-propagation latency `≤ log₂ n` over the run's healing
///   rounds (bullet 4), checked at [`TheoremAuditor::finish`] once the
///   run has amortized over enough rounds,
///
/// where `n` counts nodes *ever created*, so the bounds stay meaningful
/// under churn.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TheoremBounds {
    /// Factor on `log₂ n` for the degree bound (paper: 2).
    pub delta_factor: f64,
    /// Factor on `ln n` for per-node ID changes (paper: 2, w.h.p.).
    pub id_change_factor: f64,
    /// Factor on `(d + 2 log₂ n) ln n` for per-node sent messages
    /// (paper: 2).
    pub message_factor: f64,
    /// Factor on the sent-message bound for total traffic (received is
    /// amortized in the paper, hence the 2× allowance).
    pub traffic_factor: f64,
    /// Factor on `log₂ n` for amortized propagation latency (paper: O(·);
    /// 1 matches the integration tests).
    pub latency_factor: f64,
    /// Healing rounds a run must complete before the amortized latency
    /// claim is checked (amortization needs Θ(n) deletions to kick in).
    pub latency_min_rounds: u64,
}

impl Default for TheoremBounds {
    fn default() -> Self {
        TheoremBounds {
            delta_factor: 2.0,
            id_change_factor: 2.0,
            message_factor: 2.0,
            traffic_factor: 2.0,
            latency_factor: 1.0,
            latency_min_rounds: 8,
        }
    }
}

/// Cap on collected violations per auditor: a broken invariant usually
/// re-fires every subsequent event, and the first few findings (with
/// their event numbers) are what a replay needs.
const MAX_VIOLATIONS: usize = 16;

/// Theorem 1 as an [`Observer`]: every bound of the paper's headline
/// theorem, enforced after every event of a scenario run.
///
/// The structural invariants (connectivity, `G'` forest, weight
/// conservation, Lemma 6's degree bound) come from [`check_all`]; on top
/// of that the auditor scans every node slot for the per-node ID-change
/// and message bounds — the assertions that previously lived only in
/// `tests/theorems.rs` — and [`TheoremAuditor::finish`] closes the run
/// with the amortized latency claim. Each violation records the event
/// number, so together with the run seed it pinpoints an exact replay.
#[derive(Clone, Debug)]
pub struct TheoremAuditor {
    bounds: TheoremBounds,
    expect_forest: bool,
    /// Set once a multi-victim batch lands: Lemma 1's forest claim is
    /// made for *sequential* deletions only — a batch killing several
    /// victims of one component can legitimately cycle `G'` (the known
    /// batch-model caveat, shared byte-for-byte by the distributed
    /// runner) — so from that point the forest check is waived while
    /// every other bound stays enforced.
    forest_waived: bool,
    check_rem: bool,
    /// Connectivity is checked by default; healers that make no
    /// connectivity claim at all (`no-heal`, the do-nothing baseline the
    /// exhaustive prover audits for weight conservation only) opt out via
    /// [`with_connectivity_check`](Self::with_connectivity_check).
    check_connectivity: bool,
    /// Violations found, prefixed with the event number (capped at
    /// [`MAX_VIOLATIONS`]; `truncated` records overflow).
    pub violations: Vec<String>,
    /// Whether findings were dropped after the cap.
    pub truncated: bool,
}

impl TheoremAuditor {
    /// Auditor with the paper's default bounds. `expect_forest` mirrors
    /// [`Healer::preserves_forest`](crate::strategy::Healer) for the
    /// strategy under test.
    pub fn new(expect_forest: bool) -> Self {
        TheoremAuditor {
            bounds: TheoremBounds::default(),
            expect_forest,
            forest_waived: false,
            check_rem: false,
            check_connectivity: true,
            violations: Vec::new(),
            truncated: false,
        }
    }

    /// Override the bound constants.
    pub fn with_bounds(mut self, bounds: TheoremBounds) -> Self {
        self.bounds = bounds;
        self
    }

    /// Enable or disable the per-event connectivity check (on by
    /// default). Only healers that never claim to reconnect the graph —
    /// the `no-heal` baseline — should turn it off.
    pub fn with_connectivity_check(mut self, on: bool) -> Self {
        self.check_connectivity = on;
        self
    }

    /// Also check the O(n²) `rem` potential of Lemmas 4–5 every event.
    pub fn with_rem_check(mut self) -> Self {
        self.check_rem = true;
        self
    }

    /// Whether every checked bound held so far.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }

    fn record(&mut self, label: &str, finding: String) {
        if self.violations.len() < MAX_VIOLATIONS {
            self.violations.push(format!("{label}: {finding}"));
        } else {
            self.truncated = true;
        }
    }

    /// End-of-run checks: Theorem 1 bullet 4 (amortized ID-propagation
    /// latency over the run's healing rounds). Call once after the run;
    /// per-event checks alone never see the amortized quantity.
    pub fn finish(&mut self, net: &HealingNetwork, report: &ScenarioReport) {
        if report.rounds < self.bounds.latency_min_rounds {
            return;
        }
        let n = net.total_created().max(2) as f64;
        let bound = self.bounds.latency_factor * n.log2();
        let amortized = report.amortized_latency();
        if amortized > bound + 1e-9 {
            self.record(
                "finish",
                format!("amortized latency {amortized:.3} exceeds {bound:.3} (theorem 1.4)"),
            );
        }
    }
}

impl Observer for TheoremAuditor {
    fn on_event(&mut self, net: &HealingNetwork, record: &EventRecord) {
        let label = if record.kind != EventKind::Join && record.victims > 0 {
            format!("event {} (round {})", record.event, record.round)
        } else {
            format!("event {}", record.event)
        };
        if record.kind == EventKind::DeleteBatch && record.victims > 1 {
            self.forest_waived = true;
        }
        // Structural lemmas, invoked individually (not via `check_all`)
        // because the degree bound below carries a configurable factor.
        if self.check_connectivity && !connectivity_ok(net) {
            self.record(&label, "G is disconnected".to_string());
        }
        if self.expect_forest && !self.forest_waived && !forest_ok(net) {
            self.record(&label, "G' contains a cycle".to_string());
        }
        if !weight_conservation_ok(net) {
            self.record(&label, "weight not conserved".to_string());
        }
        if self.check_rem && !rem_potential_ok(net) {
            self.record(
                &label,
                "rem potential below 2^(delta/2) or above n".to_string(),
            );
        }
        let n = net.total_created().max(2) as f64;
        let delta_bound = self.bounds.delta_factor * n.log2();
        let max_delta = net.max_delta_alive();
        if (max_delta as f64) > delta_bound + 1e-9 {
            self.record(
                &label,
                format!("max delta {max_delta} exceeds {delta_bound:.2} (theorem 1.1)"),
            );
        }
        // Per-node bounds over every slot ever created: dead nodes'
        // counters froze at death and must also satisfy the bounds.
        let id_bound = self.bounds.id_change_factor * n.ln();
        let lnn = n.ln();
        let two_logn = 2.0 * n.log2();
        for i in 0..net.graph().node_bound() {
            let v = NodeId::from_index(i);
            let changes = net.id_changes(v) as f64;
            if changes > id_bound + 1e-9 {
                self.record(
                    &label,
                    format!("node {v}: {changes} id changes exceed {id_bound:.2} (theorem 1.2)"),
                );
                break; // one offender per event is enough for replay
            }
            let msg_bound =
                self.bounds.message_factor * (net.initial_degree(v) as f64 + two_logn) * lnn;
            let sent = net.messages_sent(v) as f64;
            if sent > msg_bound + 1e-9 {
                self.record(
                    &label,
                    format!("node {v}: sent {sent} messages, bound {msg_bound:.2} (theorem 1.3)"),
                );
                break;
            }
            let traffic = net.traffic(v) as f64;
            let traffic_bound = self.bounds.traffic_factor * msg_bound;
            if traffic > traffic_bound + 1e-9 {
                self.record(
                    &label,
                    format!("node {v}: traffic {traffic} exceeds {traffic_bound:.2} (theorem 1.3)"),
                );
                break;
            }
        }
    }
}

/// Per-family bound profile for [`FamilyAuditor`]: how many edges a
/// survivor may gain per adjacent victim, and whether the family also
/// promises logarithmic stretch across each victim's former neighbors.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct FamilyBounds {
    /// Healer name, used in violation messages.
    family: &'static str,
    /// Maximum degree gain per adjacent victim (ForgivingTree: 3 — one
    /// parent plus two children; RingForgiving: 2 + budget — two cycle
    /// edges plus one chord per round).
    gain_per_victim: usize,
    /// Whether each pair of a victim's surviving former neighbors must
    /// stay within `2 log₂ n` hops of each other (ForgivingTree's
    /// stretch claim; implies they stay connected at all).
    check_stretch: bool,
}

/// The new healer families' *own* theorems as an
/// [`Observer`](crate::scenario::Observer), complementing
/// [`TheoremAuditor`] (whose numeric bounds are Theorem 1's and are
/// waived for families that legitimately break them):
///
/// - **degree**: after every deletion event, each survivor's degree gain
///   is at most `gain_per_victim ×` the number of victims it was
///   adjacent to (ForgivingTree promises ≤ 3 per victim, RingForgiving
///   ≤ 2 + budget);
/// - **stretch** (ForgivingTree only): every pair of a victim's
///   surviving former neighbors remains connected within
///   `2 log₂ n` hops, `n` counting nodes ever created.
///
/// The auditor keeps a clone of the pre-event graph, so the bounds
/// compose over multi-victim batches (a survivor adjacent to `k` victims
/// may gain up to `k ×` the per-victim allowance) without needing victim
/// identities in the [`EventRecord`].
#[derive(Clone, Debug)]
pub struct FamilyAuditor {
    bounds: FamilyBounds,
    /// The graph as of *before* the event being observed.
    prev: selfheal_graph::Graph,
    /// Violations found, prefixed with the event number (capped at
    /// [`MAX_VIOLATIONS`]; `truncated` records overflow).
    pub violations: Vec<String>,
    /// Whether findings were dropped after the cap.
    pub truncated: bool,
}

impl FamilyAuditor {
    /// Auditor for [`ForgivingTree`](crate::ftree::ForgivingTree):
    /// degree gain ≤ 3 per adjacent victim, stretch ≤ `2 log₂ n` across
    /// each victim's former neighbors.
    pub fn forgiving_tree(net: &HealingNetwork) -> Self {
        FamilyAuditor {
            bounds: FamilyBounds {
                family: "ftree",
                gain_per_victim: 3,
                check_stretch: true,
            },
            prev: net.graph().clone(),
            violations: Vec::new(),
            truncated: false,
        }
    }

    /// Auditor for [`RingForgiving`](crate::ring::RingForgiving): degree
    /// gain ≤ `2 + budget` per adjacent victim (no stretch claim).
    pub fn ring(net: &HealingNetwork, budget: usize) -> Self {
        FamilyAuditor {
            bounds: FamilyBounds {
                family: "ring",
                gain_per_victim: 2 + budget,
                check_stretch: false,
            },
            prev: net.graph().clone(),
            violations: Vec::new(),
            truncated: false,
        }
    }

    /// Whether every checked family bound held so far.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }

    fn record(&mut self, label: &str, finding: String) {
        if self.violations.len() < MAX_VIOLATIONS {
            self.violations
                .push(format!("{label} [{}]: {finding}", self.bounds.family));
        } else {
            self.truncated = true;
        }
    }
}

impl Observer for FamilyAuditor {
    fn on_event(&mut self, net: &HealingNetwork, record: &EventRecord) {
        if record.kind == EventKind::Join {
            self.prev = net.graph().clone();
            return;
        }
        let label = format!("event {} (round {})", record.event, record.round);
        // Victims: alive before the event, dead after it.
        let victims: Vec<NodeId> = self
            .prev
            .live_nodes()
            .filter(|&v| !net.is_alive(v))
            .collect();
        let n = net.total_created().max(2) as f64;
        let stretch_bound = (2.0 * n.log2()).floor() as u32;
        let survivors: Vec<NodeId> = self
            .prev
            .live_nodes()
            .filter(|&u| net.is_alive(u))
            .collect();
        for u in survivors {
            // Edges `u` lost to the victims; the family bound allows
            // `gain_per_victim` replacements for each.
            let lost = self
                .prev
                .neighbors(u)
                .iter()
                .filter(|v| victims.contains(v))
                .count();
            let added = (net.graph().degree(u) + lost).saturating_sub(self.prev.degree(u));
            if added > self.bounds.gain_per_victim * lost {
                self.record(
                    &label,
                    format!(
                        "survivor {u} gained {added} edges, allowed {} ({} per victim x {lost})",
                        self.bounds.gain_per_victim * lost,
                        self.bounds.gain_per_victim
                    ),
                );
            }
        }
        if self.bounds.check_stretch {
            // Every pair of a victim's surviving former neighbors must
            // stay within 2 log₂ n hops (and, a fortiori, connected).
            'victims: for &v in &victims {
                let nbrs: Vec<NodeId> = self
                    .prev
                    .neighbors(v)
                    .iter()
                    .copied()
                    .filter(|&u| net.is_alive(u))
                    .collect();
                for (i, &a) in nbrs.iter().enumerate() {
                    for &b in &nbrs[i + 1..] {
                        match selfheal_graph::paths::distance(net.graph(), a, b) {
                            Some(d) if d <= stretch_bound => {}
                            Some(d) => {
                                self.record(
                                    &label,
                                    format!(
                                        "former neighbors {a},{b} of victim {v} are {d} apart, \
                                         stretch bound {stretch_bound}"
                                    ),
                                );
                                break 'victims;
                            }
                            None => {
                                self.record(
                                    &label,
                                    format!("former neighbors {a},{b} of victim {v} disconnected"),
                                );
                                break 'victims;
                            }
                        }
                    }
                }
            }
        }
        self.prev = net.graph().clone();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dash::Dash;
    use crate::strategy::Healer;
    use selfheal_graph::generators::{path_graph, star_graph};

    #[test]
    fn fresh_network_passes_everything() {
        let net = HealingNetwork::new(path_graph(10), 0);
        let report = check_all(&net, true, true);
        assert!(report.ok(), "{:?}", report.violations);
    }

    #[test]
    fn rem_of_isolated_gprime_node_is_own_weight() {
        let net = HealingNetwork::new(path_graph(4), 0);
        for v in 0..4u32 {
            assert_eq!(rem(&net, NodeId(v)), 1);
        }
    }

    #[test]
    fn subtree_weight_partitions_the_tree() {
        let mut net = HealingNetwork::new(star_graph(5), 1);
        // Build G' = star around node 1: edges (1,2), (1,3), (1,4).
        for v in 2..5u32 {
            net.add_heal_edge(NodeId(1), NodeId(v)).unwrap();
        }
        // From node 2's perspective, removing node 1 isolates it.
        assert_eq!(subtree_weight(&net, NodeId(2), NodeId(1)), 1);
        // From node 1's side each branch weighs 1.
        assert_eq!(subtree_weight(&net, NodeId(2), NodeId::MAX), 4); // whole tree
        assert_eq!(rem(&net, NodeId(1)), 3 - 1 + 1);
        // rem(2) = sum - max + w(2) over the single branch T(1,2): 3 - 3 + 1.
        assert_eq!(rem(&net, NodeId(2)), 1);
    }

    #[test]
    fn rem_grows_with_dash_healing() {
        let mut net = HealingNetwork::new(star_graph(8), 3);
        let ctx = net.delete_node(NodeId(0)).unwrap();
        let outcome = Dash.heal(&mut net, &ctx);
        net.propagate_min_id(&outcome.rt_members);
        assert!(rem_potential_ok(&net));
        // The RT root gained degree 2, so its rem must be >= 2.
        let root = net
            .graph()
            .live_nodes()
            .max_by_key(|&v| net.delta(v))
            .unwrap();
        assert!(rem(&net, root) as f64 >= 2f64.powf(net.delta(root) as f64 / 2.0));
    }

    #[test]
    fn delta_bound_flags_violations() {
        let net = HealingNetwork::new(path_graph(4), 0);
        let db = delta_bound(&net);
        assert!(db.ok);
        assert_eq!(db.max_delta, 0);
        assert!((db.bound - 4.0).abs() < 1e-9);
    }

    #[test]
    fn disconnection_is_reported() {
        let mut net = HealingNetwork::new(star_graph(4), 0);
        net.delete_node(NodeId(0)).unwrap();
        let report = check_all(&net, true, false);
        assert!(!report.ok());
        assert!(report.violations[0].contains("disconnected"));
    }

    #[test]
    fn theorem_auditor_is_clean_on_a_dash_sweep() {
        use crate::attack::MaxNode;
        use crate::scenario::ScenarioEngine;
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let g = selfheal_graph::generators::barabasi_albert(48, 3, &mut StdRng::seed_from_u64(5));
        let mut auditor = TheoremAuditor::new(Dash.preserves_forest()).with_rem_check();
        let mut engine = ScenarioEngine::new(HealingNetwork::new(g, 5), Dash, MaxNode);
        let report = engine.run_to_empty_with(&mut auditor);
        auditor.finish(&engine.net, &report);
        assert!(auditor.ok(), "{:?}", auditor.violations);
        assert!(!auditor.truncated);
    }

    #[test]
    fn theorem_auditor_flags_no_heal_and_caps_findings() {
        use crate::attack::MaxNode;
        use crate::naive::NoHeal;
        use crate::scenario::ScenarioEngine;
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let g = selfheal_graph::generators::barabasi_albert(40, 3, &mut StdRng::seed_from_u64(3));
        let mut auditor = TheoremAuditor::new(false);
        let mut engine = ScenarioEngine::new(HealingNetwork::new(g, 3), NoHeal, MaxNode);
        engine.run_to_empty_with(&mut auditor);
        assert!(!auditor.ok(), "NoHeal must break connectivity");
        assert!(auditor.violations.len() <= super::MAX_VIOLATIONS);
        assert!(auditor.truncated, "disconnection re-fires every event");
        assert!(auditor.violations[0].contains("disconnected"));
        assert!(auditor.violations[0].contains("event"));
    }

    #[test]
    fn connectivity_check_can_be_waived_for_no_heal() {
        use crate::attack::MaxNode;
        use crate::naive::NoHeal;
        use crate::scenario::ScenarioEngine;
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let g = selfheal_graph::generators::barabasi_albert(40, 3, &mut StdRng::seed_from_u64(3));
        // Same sweep as `theorem_auditor_flags_no_heal_and_caps_findings`,
        // but with the connectivity check (and all numeric bounds the
        // baseline makes no claim about) turned off: only the weight
        // ledger is audited, and NoHeal keeps that one.
        let unbounded = TheoremBounds {
            delta_factor: f64::INFINITY,
            id_change_factor: f64::INFINITY,
            message_factor: f64::INFINITY,
            traffic_factor: f64::INFINITY,
            latency_factor: f64::INFINITY,
            latency_min_rounds: u64::MAX,
        };
        let mut auditor = TheoremAuditor::new(false)
            .with_connectivity_check(false)
            .with_bounds(unbounded);
        let mut engine = ScenarioEngine::new(HealingNetwork::new(g, 3), NoHeal, MaxNode);
        engine.run_to_empty_with(&mut auditor);
        assert!(auditor.ok(), "{:?}", auditor.violations);
    }

    #[test]
    fn theorem_auditor_honors_custom_bounds() {
        use crate::attack::MaxNode;
        use crate::scenario::ScenarioEngine;
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let g = selfheal_graph::generators::barabasi_albert(32, 3, &mut StdRng::seed_from_u64(9));
        // An absurdly tight degree bound must flag even correct DASH.
        let bounds = TheoremBounds {
            delta_factor: 0.0,
            ..TheoremBounds::default()
        };
        let mut auditor = TheoremAuditor::new(true).with_bounds(bounds);
        let mut engine = ScenarioEngine::new(HealingNetwork::new(g, 9), Dash, MaxNode);
        engine.run_to_empty_with(&mut auditor);
        assert!(
            auditor.violations.iter().any(|v| v.contains("theorem 1.1")),
            "{:?}",
            auditor.violations
        );
    }

    #[test]
    fn family_auditor_is_clean_on_ftree_and_ring_sweeps() {
        use crate::attack::MaxNode;
        use crate::ftree::ForgivingTree;
        use crate::ring::RingForgiving;
        use crate::scenario::ScenarioEngine;
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let g = selfheal_graph::generators::barabasi_albert(40, 3, &mut StdRng::seed_from_u64(7));
        let net = HealingNetwork::new(g.clone(), 7);
        let mut auditor = FamilyAuditor::forgiving_tree(&net);
        let mut engine = ScenarioEngine::new(net, ForgivingTree, MaxNode);
        engine.run_to_empty_with(&mut auditor);
        assert!(auditor.ok(), "{:?}", auditor.violations);

        let net = HealingNetwork::new(g, 7);
        let mut auditor = FamilyAuditor::ring(&net, 2);
        let mut engine = ScenarioEngine::new(net, RingForgiving { budget: 2 }, MaxNode);
        engine.run_to_empty_with(&mut auditor);
        assert!(auditor.ok(), "{:?}", auditor.violations);
    }

    #[test]
    fn family_auditor_flags_overbudget_degree_gain() {
        use crate::state::PropagationReport;
        // Kill the hub of star(8) and "heal" by wiring a star over spoke
        // 1: six replacement edges for the single edge it lost — past
        // both ftree's 3-per-victim and ring(2)'s 4-per-victim allowance.
        let mut net = HealingNetwork::new(star_graph(8), 1);
        let mut ftree = FamilyAuditor::forgiving_tree(&net);
        let mut ringa = FamilyAuditor::ring(&net, 2);
        net.delete_node(NodeId(0)).unwrap();
        for v in 2..8u32 {
            net.add_heal_edge(NodeId(1), NodeId(v)).unwrap();
        }
        let record = EventRecord {
            event: 1,
            round: 1,
            kind: EventKind::Delete,
            deleted: Some(NodeId(0)),
            victims: 1,
            joined: None,
            rt_size: 7,
            edges_added: 6,
            surrogate: None,
            propagation: PropagationReport::default(),
            round_max_delta: None,
        };
        ftree.on_event(&net, &record);
        ringa.on_event(&net, &record);
        for auditor in [&ftree, &ringa] {
            assert!(!auditor.ok());
            assert!(
                auditor.violations[0].contains("gained 6 edges"),
                "{:?}",
                auditor.violations
            );
        }
        assert!(ftree.violations[0].contains("[ftree]"));
        assert!(ringa.violations[0].contains("allowed 4"));
    }

    #[test]
    fn family_auditor_flags_disconnection_as_infinite_stretch() {
        use crate::naive::NoHeal;
        use crate::scenario::{ScenarioEngine, ScriptedEvents};
        let net = HealingNetwork::new(star_graph(5), 2);
        let mut auditor = FamilyAuditor::forgiving_tree(&net);
        let script = ScriptedEvents::new(vec![crate::scenario::NetworkEvent::Delete(NodeId(0))]);
        let mut engine = ScenarioEngine::new(net, NoHeal, script);
        engine.run_events_with(1, &mut auditor);
        assert!(
            auditor
                .violations
                .iter()
                .any(|v| v.contains("disconnected")),
            "{:?}",
            auditor.violations
        );
    }

    #[test]
    fn weight_conservation_holds_through_deletions() {
        let mut net = HealingNetwork::new(path_graph(5), 0);
        for v in [1u32, 3, 0, 2, 4] {
            net.delete_node(NodeId(v)).unwrap();
            assert!(weight_conservation_ok(&net));
        }
        assert_eq!(net.weight_lost(), 5);
    }
}

//! Proofs-as-checks: executable versions of the paper's lemmas.
//!
//! Every guarantee the paper proves about DASH is implemented here as a
//! runtime check so tests (and the engine's audit mode) can validate the
//! implementation against the theory after every round:
//!
//! - Theorem 1 / connectivity — `G` stays connected,
//! - Lemma 1 — `G'` is a forest,
//! - Lemma 4 — the potential `rem(v) ≥ 2^{δ(v)/2}`,
//! - Lemma 5 — `rem(v) ≤ n`,
//! - Lemma 6 — `δ(v) ≤ 2 log₂ n`,
//! - weight conservation — `W* + lost = n` (used by Lemma 5's proof).

use crate::state::HealingNetwork;
use selfheal_graph::components::is_connected;
use selfheal_graph::forest::is_forest;
use selfheal_graph::NodeId;

/// Whether the real network `G` is connected (the paper's core guarantee).
pub fn connectivity_ok(net: &HealingNetwork) -> bool {
    is_connected(net.graph())
}

/// Whether the healing graph `G'` is a forest (Lemma 1).
pub fn forest_ok(net: &HealingNetwork) -> bool {
    is_forest(net.healing_graph())
}

/// Result of checking the Lemma 6 degree bound.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DeltaBound {
    /// Maximum observed `δ(v)` over live nodes.
    pub max_delta: i64,
    /// The theoretical bound `2 log₂ n` for the initial `n`.
    pub bound: f64,
    /// Whether the bound holds.
    pub ok: bool,
}

/// Check `δ(v) ≤ 2 log₂ n` for every live node (Lemma 6).
///
/// `n` is the total number of nodes ever created, so the bound remains
/// meaningful under churn (joins).
pub fn delta_bound(net: &HealingNetwork) -> DeltaBound {
    let n = net.total_created().max(1) as f64;
    let bound = 2.0 * n.log2();
    let max_delta = net.max_delta_alive();
    DeltaBound {
        max_delta,
        bound,
        ok: (max_delta as f64) <= bound + 1e-9,
    }
}

/// Total weight of the `G'` tree containing `u` when `v` is removed:
/// `W(T(u, v))` in the paper's notation. Returns 0 if `u` is dead.
pub fn subtree_weight(net: &HealingNetwork, u: NodeId, v: NodeId) -> u64 {
    if !net.is_alive(u) || u == v {
        return 0;
    }
    let gp = net.healing_graph();
    let mut seen = vec![false; gp.node_bound()];
    seen[u.index()] = true;
    if v.index() < seen.len() {
        seen[v.index()] = true; // exclude v from the traversal
    }
    let mut stack = vec![u];
    let mut total = 0u64;
    while let Some(x) = stack.pop() {
        total += net.weight(x);
        for &y in gp.neighbors(x) {
            if !seen[y.index()] {
                seen[y.index()] = true;
                stack.push(y);
            }
        }
    }
    total
}

/// The paper's potential function:
/// `rem(v) = Σ_u W(T(u,v)) − max_u W(T(u,v)) + w(v)` over
/// `u ∈ N(v, G')`. Intuitively: the weight that would remain attached to
/// `v`'s share if its heaviest branch were cut away.
pub fn rem(net: &HealingNetwork, v: NodeId) -> u64 {
    let gp = net.healing_graph();
    let mut sum = 0u64;
    let mut max = 0u64;
    for &u in gp.neighbors(v) {
        let w = subtree_weight(net, u, v);
        sum += w;
        max = max.max(w);
    }
    sum - max + net.weight(v)
}

/// Check Lemma 4 (`rem(v) ≥ 2^{δ(v)/2}`) and Lemma 5 (`rem(v) ≤ n`) for
/// every live node. O(n²) in the worst case — intended for tests and
/// audit runs, not hot loops.
pub fn rem_potential_ok(net: &HealingNetwork) -> bool {
    let n = net.total_created() as u64;
    net.graph().live_nodes().all(|v| {
        let r = rem(net, v);
        let needed = 2f64.powf(net.delta(v) as f64 / 2.0);
        r as f64 + 1e-9 >= needed && r <= n
    })
}

/// Check weight conservation: live weight plus recorded losses equals the
/// number of nodes ever created (each node is born with weight 1).
pub fn weight_conservation_ok(net: &HealingNetwork) -> bool {
    let live: u64 = net.graph().live_nodes().map(|v| net.weight(v)).sum();
    live + net.weight_lost() == net.total_created() as u64
}

/// Outcome of running every check at once.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct InvariantReport {
    /// Human-readable descriptions of each violated invariant.
    pub violations: Vec<String>,
}

impl InvariantReport {
    /// Whether all checked invariants held.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Run all checks applicable to the given strategy.
///
/// `expect_forest` should be false for GraphHeal (which deliberately
/// allows cycles in `G'`); `check_rem` enables the O(n²) potential check.
pub fn check_all(net: &HealingNetwork, expect_forest: bool, check_rem: bool) -> InvariantReport {
    let mut violations = Vec::new();
    if !connectivity_ok(net) {
        violations.push("G is disconnected".to_string());
    }
    if expect_forest && !forest_ok(net) {
        violations.push("G' contains a cycle".to_string());
    }
    let db = delta_bound(net);
    if !db.ok {
        violations.push(format!(
            "max delta {} exceeds 2 log2 n = {:.2}",
            db.max_delta, db.bound
        ));
    }
    if !weight_conservation_ok(net) {
        violations.push("weight not conserved".to_string());
    }
    if check_rem && !rem_potential_ok(net) {
        violations.push("rem potential below 2^(delta/2) or above n".to_string());
    }
    InvariantReport { violations }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dash::Dash;
    use crate::strategy::Healer;
    use selfheal_graph::generators::{path_graph, star_graph};

    #[test]
    fn fresh_network_passes_everything() {
        let net = HealingNetwork::new(path_graph(10), 0);
        let report = check_all(&net, true, true);
        assert!(report.ok(), "{:?}", report.violations);
    }

    #[test]
    fn rem_of_isolated_gprime_node_is_own_weight() {
        let net = HealingNetwork::new(path_graph(4), 0);
        for v in 0..4u32 {
            assert_eq!(rem(&net, NodeId(v)), 1);
        }
    }

    #[test]
    fn subtree_weight_partitions_the_tree() {
        let mut net = HealingNetwork::new(star_graph(5), 1);
        // Build G' = star around node 1: edges (1,2), (1,3), (1,4).
        for v in 2..5u32 {
            net.add_heal_edge(NodeId(1), NodeId(v)).unwrap();
        }
        // From node 2's perspective, removing node 1 isolates it.
        assert_eq!(subtree_weight(&net, NodeId(2), NodeId(1)), 1);
        // From node 1's side each branch weighs 1.
        assert_eq!(subtree_weight(&net, NodeId(2), NodeId::MAX), 4); // whole tree
        assert_eq!(rem(&net, NodeId(1)), 3 - 1 + 1);
        // rem(2) = sum - max + w(2) over the single branch T(1,2): 3 - 3 + 1.
        assert_eq!(rem(&net, NodeId(2)), 1);
    }

    #[test]
    fn rem_grows_with_dash_healing() {
        let mut net = HealingNetwork::new(star_graph(8), 3);
        let ctx = net.delete_node(NodeId(0)).unwrap();
        let outcome = Dash.heal(&mut net, &ctx);
        net.propagate_min_id(&outcome.rt_members);
        assert!(rem_potential_ok(&net));
        // The RT root gained degree 2, so its rem must be >= 2.
        let root = net
            .graph()
            .live_nodes()
            .max_by_key(|&v| net.delta(v))
            .unwrap();
        assert!(rem(&net, root) as f64 >= 2f64.powf(net.delta(root) as f64 / 2.0));
    }

    #[test]
    fn delta_bound_flags_violations() {
        let net = HealingNetwork::new(path_graph(4), 0);
        let db = delta_bound(&net);
        assert!(db.ok);
        assert_eq!(db.max_delta, 0);
        assert!((db.bound - 4.0).abs() < 1e-9);
    }

    #[test]
    fn disconnection_is_reported() {
        let mut net = HealingNetwork::new(star_graph(4), 0);
        net.delete_node(NodeId(0)).unwrap();
        let report = check_all(&net, true, false);
        assert!(!report.ok());
        assert!(report.violations[0].contains("disconnected"));
    }

    #[test]
    fn weight_conservation_holds_through_deletions() {
        let mut net = HealingNetwork::new(path_graph(5), 0);
        for v in [1u32, 3, 0, 2, 4] {
            net.delete_node(NodeId(v)).unwrap();
            assert!(weight_conservation_ok(&net));
        }
        assert_eq!(net.weight_lost(), 5);
    }
}

//! Exhaustive small-world prover: Theorem 1 on *every* tiny instance.
//!
//! The sweep fleet validates the Saia–Trehan bounds statistically over
//! sampled seeds; this module turns the test suite into a prover on the
//! universe it can afford to exhaust. For `n ≤ 7` it enumerates
//!
//! 1. **every connected graph up to isomorphism** (canonical-form dedup,
//!    see [`connected_graphs`]),
//! 2. **every deletion order** (all `n!` kill sweeps per graph), plus
//!    representative *batch partitions* (greedy maximal-independent-set
//!    sweeps at two batch widths),
//! 3. for **every registered healer**, with a per-healer audit profile,
//!
//! and runs the [`TheoremAuditor`] over each run. A clean
//! [`UniverseReport`] is a proof-by-exhaustion that the checked bounds
//! hold on that universe — not a sample.
//!
//! ## What "proved" means here
//!
//! The degree bound (Theorem 1.1, `δ(v) ≤ 2·log₂ n`) and the weight /
//! connectivity / forest lemmas are deterministic claims and are checked
//! at the paper's exact constants. The ID-change and message bounds
//! (Theorem 1.2/1.3) are *with-high-probability* claims over random ID
//! assignments at large `n`; an exhaustive universe deliberately contains
//! the adversarial deletion orders those claims exclude (killing current
//! minimum-ID nodes first forces up to `n − 1` ID changes, while
//! `2·ln 6 ≈ 3.6`). For those two, the prover therefore checks the
//! corresponding **deterministic ceilings** — at most one ID change and
//! one `O(d + log n)` broadcast per node per healing wave, i.e. factor
//! `n / ln n` instead of `2` — which is the strongest statement that is
//! actually true universally at tiny `n`. Graph labels double as ID
//! patterns: each isomorphism class meets `n!` distinct (order, ID)
//! combinations under the fixed run seed.
//!
//! The enumeration is by canonical augmentation: every connected graph
//! on `n` nodes contains a non-cut vertex, so it arises from a connected
//! graph on `n − 1` nodes by attaching one new node to a non-empty
//! neighbor subset. Candidates are deduplicated by their canonical form
//! (minimum edge bitmask over all `n!` relabelings — affordable because
//! `7! = 5040`). The known census 1, 1, 2, 6, 21, 112, 853 for
//! `n = 1..7` ([`CONNECTED_COUNTS`]) is asserted as an oracle on every
//! run, so an enumeration bug can never silently shrink the universe.

use crate::invariants::{FamilyAuditor, TheoremAuditor, TheoremBounds};
use crate::scenario::{DegreeBatches, NetworkEvent, Observer, ScenarioEngine, ScriptedEvents};
use crate::spec::{HealerSpec, SpecError};
use crate::state::HealingNetwork;
use selfheal_graph::parallel::{default_threads, parallel_fold};
use selfheal_graph::{Graph, NodeId};
use std::collections::BTreeSet;

/// Largest universe the prover accepts (`7! = 5040` relabelings per
/// canonicalization is the feasibility edge).
pub const MAX_NODES: usize = 7;

/// Number of connected graphs on `n = 1..=7` unlabeled nodes (OEIS
/// A001349) — the oracle the enumeration is checked against.
pub const CONNECTED_COUNTS: [u64; MAX_NODES] = [1, 1, 2, 6, 21, 112, 853];

/// Findings kept verbatim in a [`UniverseReport`]; the full count is
/// always exact in `violation_count`.
const MAX_KEPT: usize = 16;

/// A connected graph on `n ≤ 7` nodes in canonical form: the edge
/// `{i, j}` (`i < j`) is present iff bit `pair_bit(i, j)` of `mask` is
/// set, and `mask` is minimal over all relabelings.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SmallGraph {
    /// Number of nodes.
    pub n: usize,
    /// Triangular edge bitmask (21 bits suffice for `n = 7`).
    pub mask: u32,
}

/// Bit position of edge `{i, j}` with `i < j` in the triangular mask.
fn pair_bit(i: usize, j: usize) -> u32 {
    debug_assert!(i < j);
    (j * (j - 1) / 2 + i) as u32
}

impl SmallGraph {
    /// The edge list encoded by the mask.
    pub fn edges(&self) -> Vec<(usize, usize)> {
        let mut edges = Vec::new();
        for j in 1..self.n {
            for i in 0..j {
                if self.mask & (1 << pair_bit(i, j)) != 0 {
                    edges.push((i, j));
                }
            }
        }
        edges
    }

    /// Materialize as a [`Graph`].
    pub fn to_graph(&self) -> Graph {
        let mut g = Graph::new(self.n);
        for (i, j) in self.edges() {
            g.add_edge(NodeId(i as u32), NodeId(j as u32))
                // panic-ok: `edges()` only yields pairs below `self.n`,
                // which is exactly the node range `Graph::new(n)` allots.
                .expect("mask edges are in range");
        }
        g
    }
}

/// All permutations of `0..k` (Heap's algorithm; `k ≤ 7` keeps this at
/// 5040 entries). Shared by the enumeration (canonical forms), the
/// deletion-order sweeps, and the schedule explorer's victim orders.
pub fn permutations(k: usize) -> Vec<Vec<usize>> {
    let mut items: Vec<usize> = (0..k).collect();
    let mut out = vec![items.clone()];
    let mut c = vec![0usize; k];
    let mut i = 0;
    while i < k {
        if c[i] < i {
            if i % 2 == 0 {
                items.swap(0, i);
            } else {
                items.swap(c[i], i);
            }
            out.push(items.clone());
            c[i] += 1;
            i = 0;
        } else {
            c[i] = 0;
            i += 1;
        }
    }
    out
}

/// Relabel `mask` by permutation `p` (node `i` becomes `p[i]`).
fn relabel(n: usize, mask: u32, p: &[usize]) -> u32 {
    let mut out = 0;
    for j in 1..n {
        for i in 0..j {
            if mask & (1 << pair_bit(i, j)) != 0 {
                let (a, b) = if p[i] < p[j] {
                    (p[i], p[j])
                } else {
                    (p[j], p[i])
                };
                out |= 1 << pair_bit(a, b);
            }
        }
    }
    out
}

/// Canonical form: the minimum mask over all relabelings.
fn canonical(n: usize, mask: u32, perms: &[Vec<usize>]) -> u32 {
    perms.iter().map(|p| relabel(n, mask, p)).min().unwrap_or(0)
}

/// Every connected graph on exactly `n` nodes, one canonical
/// representative per isomorphism class, sorted by mask.
///
/// # Panics
/// Panics if `n` is 0 or exceeds [`MAX_NODES`].
pub fn connected_graphs(n: usize) -> Vec<SmallGraph> {
    // panic-ok: documented in the `# Panics` section above — `n` out of
    // `1..=MAX_NODES` is a caller bug, not a recoverable state.
    assert!((1..=MAX_NODES).contains(&n), "n must be in 1..={MAX_NODES}");
    // panic-ok: `enumerate_levels(n)` always returns `n` levels and the
    // assert above pins `n >= 1`.
    enumerate_levels(n).pop().expect("levels are non-empty")
}

/// Levels `1..=max_n` of the universe, built by canonical augmentation:
/// attach a fresh last node to every non-empty neighbor subset of every
/// canonical graph one size down, then dedup by canonical form. Every
/// connected graph has a non-cut vertex, so every isomorphism class is
/// reached.
fn enumerate_levels(max_n: usize) -> Vec<Vec<SmallGraph>> {
    let mut levels: Vec<Vec<SmallGraph>> = vec![vec![SmallGraph { n: 1, mask: 0 }]];
    for n in 2..=max_n {
        let perms = permutations(n);
        let mut seen: BTreeSet<u32> = BTreeSet::new();
        for parent in &levels[n - 2] {
            for subset in 1u32..(1 << (n - 1)) {
                let mut mask = parent.mask;
                for i in 0..n - 1 {
                    if subset & (1 << i) != 0 {
                        mask |= 1 << pair_bit(i, n - 1);
                    }
                }
                seen.insert(canonical(n, mask, &perms));
            }
        }
        // BTreeSet iterates in ascending mask order, so the level is
        // already sorted — no post-sort needed.
        let level: Vec<SmallGraph> = seen
            .into_iter()
            .map(|mask| SmallGraph { n, mask })
            .collect();
        levels.push(level);
    }
    levels
}

/// Configuration of one exhaustive proving run.
#[derive(Clone, Debug)]
pub struct UniverseConfig {
    /// Exhaust all connected graphs with up to this many nodes
    /// (`2..=`[`MAX_NODES`]).
    pub max_n: usize,
    /// Healers to audit (each with its own audit profile).
    pub healers: Vec<HealerSpec>,
    /// Worker threads for the graph×healer fan-out (0 = auto).
    pub threads: usize,
    /// Run seed: fixes the initial-ID permutation per graph.
    pub seed: u64,
    /// Also run greedy maximal-independent-set batch sweeps (widths 2
    /// and 3) per graph, exercising the batch healing path.
    pub batch_partitions: bool,
}

impl Default for UniverseConfig {
    fn default() -> Self {
        UniverseConfig {
            max_n: 6,
            healers: HealerSpec::ALL.to_vec(),
            threads: 0,
            seed: 2008,
            batch_partitions: true,
        }
    }
}

/// Outcome of an exhaustive proving run. Counts are exact; at most
/// [`MAX_KEPT`] violation messages are kept verbatim.
#[derive(Clone, Debug, Default)]
pub struct UniverseReport {
    /// Distinct canonical connected graphs exhausted (all `n ≤ max_n`).
    pub graphs: u64,
    /// Healers audited.
    pub healers: u64,
    /// Full deletion-order kill sweeps executed (Σ per-graph `n!`, per
    /// healer).
    pub order_runs: u64,
    /// Greedy batch-partition sweeps executed.
    pub batch_runs: u64,
    /// Exact number of bound violations across all runs.
    pub violation_count: u64,
    /// Up to [`MAX_KEPT`] violation messages, each naming graph, order
    /// and healer for replay.
    pub violations: Vec<String>,
    /// Whether violation messages were dropped after the cap.
    pub truncated: bool,
}

impl UniverseReport {
    /// Total runs audited.
    pub fn runs(&self) -> u64 {
        self.order_runs + self.batch_runs
    }

    /// Whether every audited run satisfied every checked bound.
    pub fn is_clean(&self) -> bool {
        self.violation_count == 0
    }

    fn absorb(&mut self, finding: String) {
        self.violation_count += 1;
        if self.violations.len() < MAX_KEPT {
            self.violations.push(finding);
        } else {
            self.truncated = true;
        }
    }

    fn merge(mut self, other: UniverseReport) -> UniverseReport {
        self.order_runs += other.order_runs;
        self.batch_runs += other.batch_runs;
        self.violation_count += other.violation_count;
        for v in other.violations {
            if self.violations.len() < MAX_KEPT {
                self.violations.push(v);
            } else {
                self.truncated = true;
            }
        }
        self.truncated |= other.truncated;
        self
    }
}

/// The per-healer audit profile: (expect G' forest, check connectivity,
/// bound constants). DASH/SDASH get the full Theorem 1 suite (degree
/// bound at the paper's factor 2, probabilistic bounds at their
/// deterministic ceilings — see the module docs); the naive baselines
/// are audited only for the claims they actually make.
fn audit_profile(healer: HealerSpec, n: usize) -> (bool, bool, bool, TheoremBounds) {
    let unbounded = TheoremBounds {
        delta_factor: f64::INFINITY,
        id_change_factor: f64::INFINITY,
        message_factor: f64::INFINITY,
        traffic_factor: f64::INFINITY,
        latency_factor: f64::INFINITY,
        latency_min_rounds: u64::MAX,
    };
    match healer {
        HealerSpec::Dash | HealerSpec::Sdash => {
            // Deterministic ceiling for the w.h.p. bounds: one ID change
            // / one broadcast per healing wave, ≤ n waves per run.
            let ceiling = n as f64 / (n as f64).ln().max(f64::MIN_POSITIVE);
            let bounds = TheoremBounds {
                id_change_factor: ceiling,
                message_factor: ceiling,
                ..TheoremBounds::default()
            };
            (true, true, true, bounds)
        }
        // The rem potential (rem(v) >= 2^(delta(v)/2)) is DASH's own
        // structural invariant; the baselines legitimately break it, so
        // only the paper's two algorithms carry the check.
        HealerSpec::GraphHeal => (false, true, false, unbounded),
        HealerSpec::BinaryTreeHeal | HealerSpec::LineHeal => (true, true, false, unbounded),
        HealerSpec::NoHeal => (false, false, false, unbounded),
        // The new families keep the structural claims (connectivity;
        // ForgivingTree also keeps G' a forest) but make none of
        // Theorem 1's numeric promises — their own degree/stretch/budget
        // bounds are enforced by the [`FamilyAuditor`] composed in
        // `audit_run`. RingForgiving deliberately cycles G'.
        HealerSpec::ForgivingTree => (true, true, false, unbounded),
        HealerSpec::RingForgiving { .. } => (false, true, false, unbounded),
    }
}

/// The per-family auditor (degree-gain / stretch / budget bounds) for
/// healers that carry one; `None` for the six Theorem 1 healers.
fn family_auditor(healer: HealerSpec, net: &HealingNetwork) -> Option<FamilyAuditor> {
    match healer {
        HealerSpec::ForgivingTree => Some(FamilyAuditor::forgiving_tree(net)),
        HealerSpec::RingForgiving { budget } => Some(FamilyAuditor::ring(net, budget)),
        _ => None,
    }
}

/// Audit one scripted run of `healer` on `graph`, appending any findings
/// (prefixed with a replay label) to `report`.
fn audit_run(
    graph: &SmallGraph,
    healer: HealerSpec,
    seed: u64,
    order: Option<&[usize]>,
    batch_k: Option<usize>,
    report: &mut UniverseReport,
) {
    let (expect_forest, connectivity, rem, bounds) = audit_profile(healer, graph.n);
    let mut auditor = TheoremAuditor::new(expect_forest)
        .with_bounds(bounds)
        .with_connectivity_check(connectivity);
    if rem {
        auditor = auditor.with_rem_check();
    }
    let net = HealingNetwork::new(graph.to_graph(), seed);
    let mut family = family_auditor(healer, &net);
    // Compose the Theorem 1 auditor with the family's own bounds: both
    // observe every event (the `FnMut` blanket impl turns the closure
    // into an `Observer`).
    let mut observer = |net: &HealingNetwork, rec: &crate::scenario::EventRecord| {
        Observer::on_event(&mut auditor, net, rec);
        if let Some(f) = family.as_mut() {
            Observer::on_event(f, net, rec);
        }
    };
    let scenario_report = match (order, batch_k) {
        (Some(order), _) => {
            let events: Vec<NetworkEvent> = order
                .iter()
                .map(|&v| NetworkEvent::Delete(NodeId(v as u32)))
                .collect();
            let mut engine = ScenarioEngine::new(net, healer.build(), ScriptedEvents::new(events));
            let report = engine.run_to_empty_with(&mut observer);
            auditor.finish(&engine.net, &report);
            report
        }
        (None, Some(k)) => {
            let mut engine = ScenarioEngine::new(net, healer.build(), DegreeBatches::new(k));
            let report = engine.run_to_empty_with(&mut observer);
            auditor.finish(&engine.net, &report);
            report
        }
        (None, None) => unreachable!("a run is either an order sweep or a batch sweep"),
    };
    let _ = scenario_report;
    let family_violations = family.map(|f| (f.violations, f.truncated));
    if !auditor.ok()
        || family_violations
            .as_ref()
            .is_some_and(|(v, _)| !v.is_empty())
    {
        let shape = match (order, batch_k) {
            (Some(order), _) => format!("order={order:?}"),
            (_, Some(k)) => format!("batch-k={k}"),
            _ => unreachable!(),
        };
        let family_findings = family_violations
            .as_ref()
            .map(|(v, _)| v.as_slice())
            .unwrap_or(&[]);
        for finding in auditor.violations.iter().chain(family_findings) {
            report.absorb(format!(
                "n={} graph=0x{:x} healer={} {shape}: {finding}",
                graph.n,
                graph.mask,
                healer.name()
            ));
        }
        if auditor.truncated || family_violations.is_some_and(|(_, t)| t) {
            report.truncated = true;
        }
    }
}

/// Run the exhaustive prover: every connected graph up to `cfg.max_n`
/// nodes × every deletion order (plus batch partitions) × every
/// requested healer, fanned across threads with [`parallel_fold`].
///
/// # Errors
/// Rejects an empty healer list, `max_n` outside `2..=`[`MAX_NODES`],
/// and an enumeration that disagrees with [`CONNECTED_COUNTS`] (which
/// would mean the universe is silently incomplete).
pub fn run_universe(cfg: &UniverseConfig) -> Result<UniverseReport, SpecError> {
    if cfg.max_n < 2 || cfg.max_n > MAX_NODES {
        return Err(SpecError::Invalid(format!(
            "exhaustive universe needs 2 <= n <= {MAX_NODES}, got {}",
            cfg.max_n
        )));
    }
    if cfg.healers.is_empty() {
        return Err(SpecError::Invalid(
            "exhaustive universe needs at least one healer".to_string(),
        ));
    }
    let levels = enumerate_levels(cfg.max_n);
    for (i, level) in levels.iter().enumerate() {
        if level.len() as u64 != CONNECTED_COUNTS[i] {
            return Err(SpecError::Invalid(format!(
                "enumeration produced {} connected graphs on {} nodes, census says {}",
                level.len(),
                i + 1,
                CONNECTED_COUNTS[i]
            )));
        }
    }
    // One work item per (graph, healer): the per-item cost is dominated
    // by the n! order sweeps, so this granularity load-balances well
    // under parallel_fold's work stealing.
    let graphs: Vec<SmallGraph> = levels.into_iter().flatten().collect();
    let items: Vec<(SmallGraph, HealerSpec)> = graphs
        .iter()
        .flat_map(|&g| cfg.healers.iter().map(move |&h| (g, h)))
        .collect();
    let perms_by_n: Vec<Vec<Vec<usize>>> = (0..=cfg.max_n).map(permutations).collect();
    let threads = if cfg.threads == 0 {
        default_threads()
    } else {
        cfg.threads
    };
    let merged = parallel_fold(
        items.len(),
        threads,
        UniverseReport::default,
        |mut acc: UniverseReport, idx| {
            let (graph, healer) = items[idx];
            for order in &perms_by_n[graph.n] {
                audit_run(&graph, healer, cfg.seed, Some(order), None, &mut acc);
                acc.order_runs += 1;
            }
            if cfg.batch_partitions {
                for k in [2usize, 3] {
                    audit_run(&graph, healer, cfg.seed, None, Some(k), &mut acc);
                    acc.batch_runs += 1;
                }
            }
            acc
        },
        UniverseReport::merge,
    );
    Ok(UniverseReport {
        graphs: graphs.len() as u64,
        healers: cfg.healers.len() as u64,
        ..merged
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn census_matches_up_to_six_nodes() {
        for n in 1..=6 {
            assert_eq!(
                connected_graphs(n).len() as u64,
                CONNECTED_COUNTS[n - 1],
                "connected graph count diverges at n={n}"
            );
        }
    }

    #[test]
    fn enumerated_graphs_are_connected_canonical_and_distinct() {
        use selfheal_graph::components::is_connected;
        for n in 2..=5 {
            let perms = permutations(n);
            let level = connected_graphs(n);
            let mut seen = BTreeSet::new();
            for sg in &level {
                assert!(is_connected(&sg.to_graph()), "0x{:x} disconnected", sg.mask);
                assert_eq!(
                    canonical(n, sg.mask, &perms),
                    sg.mask,
                    "0x{:x} is not canonical",
                    sg.mask
                );
                assert!(seen.insert(sg.mask), "0x{:x} repeated", sg.mask);
            }
        }
    }

    #[test]
    fn permutations_enumerate_k_factorial_distinct_orders() {
        for (k, count) in [(0usize, 1usize), (1, 1), (3, 6), (5, 120)] {
            let perms = permutations(k);
            assert_eq!(perms.len(), count);
            let distinct: BTreeSet<Vec<usize>> = perms.into_iter().collect();
            assert_eq!(distinct.len(), count);
        }
    }

    #[test]
    fn tiny_universe_is_clean_for_every_healer() {
        // n <= 4: 10 graphs x 8 healers, 159 orders each way — fast
        // enough for the debug-profile unit suite. The full n <= 6 tier
        // runs in `make verify-exhaustive` / `run-experiments verify`.
        let cfg = UniverseConfig {
            max_n: 4,
            ..UniverseConfig::default()
        };
        let report = run_universe(&cfg).unwrap();
        assert_eq!(report.graphs, 10);
        assert_eq!(report.healers, 8);
        // Σ n! over graphs: 1·1! + 1·2! + 2·3! + 6·4! = 159 per healer.
        assert_eq!(report.order_runs, 159 * 8);
        assert_eq!(report.batch_runs, 10 * 2 * 8);
        assert!(report.is_clean(), "{:#?}", report.violations);
    }

    /// Locked documentation (the PR 6 `AuditSpec::Exhaustive` precedent)
    /// for why `audit_profile` hands the new families unbounded
    /// Theorem 1 constants instead of DASH's.
    ///
    /// **ForgivingTree vs Lemma 6**: the heir ordering reads current
    /// degrees and initial IDs, never δ, so a targeted adversary can
    /// park one node in an internal tree slot event after event and push
    /// its δ past `2 log₂ n` — while the family's *own* bounds (≤ 3
    /// edges per adjacent victim, logarithmic stretch — the
    /// [`FamilyAuditor`] profile the prover enforces instead) keep
    /// holding. The scenario is a "broom": hub `x` adjacent to victims
    /// `1..=K`, each victim carrying four fresh leaves. Every deletion
    /// rebuilds `{x, 4 leaves}`; whenever `x`'s initial ID ranks below
    /// the three non-heir leaves it takes the internal slot (+3 edges
    /// for the 1 it lost, δ += 2). Seeds where `x` draws a small initial
    /// ID cross the bound well before the sweep ends.
    ///
    /// **RingForgiving vs Lemma 1**: a single heal already closes a
    /// cycle in `G'` — by design — so its profile sets
    /// `expect_forest = false` (the same waiver GraphHeal gets).
    #[test]
    fn new_family_profiles_waive_exactly_what_the_families_break() {
        const K: u32 = 12;
        let mut g = Graph::new(1 + K as usize * 5);
        for v in 1..=K {
            g.add_edge(NodeId(0), NodeId(v)).unwrap();
            for l in 0..4u32 {
                g.add_edge(NodeId(v), NodeId(K + 4 * (v - 1) + l + 1))
                    .unwrap();
            }
        }
        let events: Vec<NetworkEvent> = (1..=K).map(|v| NetworkEvent::Delete(NodeId(v))).collect();
        let mut lemma6_broken = false;
        for seed in 0..200u64 {
            let net = HealingNetwork::new(g.clone(), seed);
            let mut theorem = TheoremAuditor::new(true);
            let mut family = FamilyAuditor::forgiving_tree(&net);
            let mut obs = |n: &HealingNetwork, r: &crate::scenario::EventRecord| {
                Observer::on_event(&mut theorem, n, r);
                Observer::on_event(&mut family, n, r);
            };
            let mut engine = ScenarioEngine::new(
                net,
                HealerSpec::ForgivingTree.build(),
                ScriptedEvents::new(events.clone()),
            );
            engine.run_events_with(K as u64, &mut obs);
            assert!(family.ok(), "seed {seed}: {:?}", family.violations);
            // Everything *except* the δ bound must still hold: the
            // family keeps connectivity, the G' forest and the weight
            // ledger.
            assert!(
                theorem.violations.iter().all(|v| v.contains("theorem 1.1")),
                "seed {seed}: {:?}",
                theorem.violations
            );
            lemma6_broken |= !theorem.violations.is_empty();
        }
        assert!(
            lemma6_broken,
            "some broom seed must push ftree's delta past Lemma 6"
        );

        let net = HealingNetwork::new(selfheal_graph::generators::star_graph(5), 1);
        let mut family = FamilyAuditor::ring(&net, 2);
        let mut engine = ScenarioEngine::new(
            net,
            HealerSpec::RingForgiving { budget: 2 }.build(),
            ScriptedEvents::new(vec![NetworkEvent::Delete(NodeId(0))]),
        );
        engine.run_events_with(1, &mut family);
        assert!(
            !crate::invariants::forest_ok(&engine.net),
            "a 4-member ring heal must cycle G'"
        );
        assert!(family.ok(), "{:?}", family.violations);
    }

    #[test]
    fn no_heal_violates_when_audited_at_full_strength() {
        // Sanity that the prover can fail: audit no-heal with the
        // dash profile by requesting connectivity on a star deletion.
        let star = SmallGraph {
            n: 4,
            mask: (1 << pair_bit(0, 1)) | (1 << pair_bit(0, 2)) | (1 << pair_bit(0, 3)),
        };
        let mut report = UniverseReport::default();
        let mut auditor = TheoremAuditor::new(false).with_connectivity_check(true);
        let net = HealingNetwork::new(star.to_graph(), 1);
        let mut engine = ScenarioEngine::new(
            net,
            HealerSpec::NoHeal.build(),
            ScriptedEvents::new(vec![NetworkEvent::Delete(NodeId(0))]),
        );
        engine.run_to_empty_with(&mut auditor);
        assert!(!auditor.ok(), "deleting a star hub must disconnect no-heal");
        for v in auditor.violations {
            report.absorb(v);
        }
        assert!(!report.is_clean());
    }

    #[test]
    fn rejects_oversized_universe_and_empty_healers() {
        let mut cfg = UniverseConfig {
            max_n: 8,
            ..UniverseConfig::default()
        };
        assert!(run_universe(&cfg).is_err());
        cfg.max_n = 4;
        cfg.healers.clear();
        assert!(run_universe(&cfg).is_err());
    }
}

//! The healing-strategy interface.

use crate::state::{DeletionContext, HealingNetwork};
use selfheal_graph::NodeId;

/// What a healing strategy did in one round.
#[derive(Clone, Debug, Default)]
pub struct HealOutcome {
    /// The nodes the strategy chose to reconnect (the reconstruction set).
    /// ID propagation is seeded from these.
    pub rt_members: Vec<NodeId>,
    /// Edges newly added to the healing graph `G'` this round.
    pub edges_added: Vec<(NodeId, NodeId)>,
    /// The surrogate node, when the strategy surrogated (SDASH only).
    pub surrogate: Option<NodeId>,
}

impl HealOutcome {
    /// Reset to the empty outcome, keeping the vectors' capacity — the
    /// engine reuses one outcome across rounds via
    /// [`Healer::heal_into`].
    pub fn clear(&mut self) {
        self.rt_members.clear();
        self.edges_added.clear();
        self.surrogate = None;
    }
}

/// A locality-aware healing strategy.
///
/// The engine calls [`Healer::heal`] immediately after each deletion with
/// the [`DeletionContext`]; the strategy may add edges **only among the
/// former neighbors of the deleted node** (the locality contract of the
/// paper's model — verified by the engine's audit mode).
///
/// `Send` is a supertrait so boxed healers (and the engines holding
/// them) can migrate across the serving layer's worker threads; every
/// strategy is plain owned data, so the bound costs nothing.
pub trait Healer: Send {
    /// Short stable name used in tables and benchmarks.
    fn name(&self) -> &'static str;

    /// React to a deletion by adding edges via
    /// [`HealingNetwork::add_heal_edge`].
    fn heal(&mut self, net: &mut HealingNetwork, ctx: &DeletionContext) -> HealOutcome;

    /// [`Healer::heal`] writing into a caller-owned outcome (cleared
    /// first), so steady-state heal loops reuse the outcome's buffers.
    /// The default delegates to [`Healer::heal`]; allocation-free
    /// strategies (DASH, SDASH) override it to work entirely on reused
    /// buffers.
    fn heal_into(
        &mut self,
        net: &mut HealingNetwork,
        ctx: &DeletionContext,
        out: &mut HealOutcome,
    ) {
        *out = self.heal(net, ctx);
    }

    /// Whether this strategy guarantees the healing graph `G'` remains a
    /// forest (Lemma 1 holds for DASH/SDASH and the component-aware
    /// naive strategies, but not for GraphHeal).
    fn preserves_forest(&self) -> bool {
        true
    }

    /// Whether the engine should broadcast minimum component IDs after
    /// each heal (Algorithm 1, step 5). Strategies with their own
    /// component oracle (see `crate::oracle`) opt out.
    fn needs_id_propagation(&self) -> bool {
        true
    }
}

impl<H: Healer + ?Sized> Healer for Box<H> {
    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn heal(&mut self, net: &mut HealingNetwork, ctx: &DeletionContext) -> HealOutcome {
        (**self).heal(net, ctx)
    }

    fn heal_into(
        &mut self,
        net: &mut HealingNetwork,
        ctx: &DeletionContext,
        out: &mut HealOutcome,
    ) {
        (**self).heal_into(net, ctx, out)
    }

    fn preserves_forest(&self) -> bool {
        (**self).preserves_forest()
    }

    fn needs_id_propagation(&self) -> bool {
        (**self).needs_id_propagation()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Nop;
    impl Healer for Nop {
        fn name(&self) -> &'static str {
            "nop"
        }
        fn heal(&mut self, _: &mut HealingNetwork, _: &DeletionContext) -> HealOutcome {
            HealOutcome::default()
        }
    }

    #[test]
    fn default_outcome_is_empty() {
        let o = HealOutcome::default();
        assert!(o.rt_members.is_empty());
        assert!(o.edges_added.is_empty());
        assert!(o.surrogate.is_none());
        assert!(Nop.preserves_forest());
        assert_eq!(Nop.name(), "nop");
    }
}

//! The declarative scenario layer: one spec, one registry, any backend.
//!
//! Every layer of this workspace consumes the same four ingredients — a
//! starting graph, a healing strategy, an adversarial event source, and
//! an execution backend — but before this module each layer named them
//! its own way (`experiments::config::HealerKind`, `core::sweep`'s
//! healer enum, `core::distributed::HealMode`, hand-wired constructors in
//! every example and test). [`ScenarioSpec`] is the single front door:
//!
//! - [`GraphSpec`] — the generator registry (`ba(64, 3)`, `gnm(50, 120)`,
//!   `ws(64, 4, 0.1)`, `path`/`cycle`/`star`/`complete`/`grid`);
//! - [`HealerSpec`] — the canonical healer registry (all eight
//!   strategies; [`HealerSpec::build`] constructs,
//!   [`HealerSpec::heal_mode`] maps the fabric-capable strategies onto
//!   [`HealMode`](crate::distributed::HealMode) and reports
//!   [`SpecError::FabricUnsupported`] — naming both the healer and the
//!   requested backend — for the rest);
//! - [`AdversarySpec`] — every event source in [`crate::attack`] and
//!   [`crate::scenario`], plus the [`CuratedSchedule`] registry of
//!   hand-curated mixed schedules the parity suites replay;
//! - [`BackendSpec`] — centralized [`ScenarioEngine`], the distributed
//!   fabric ([`DistributedScenarioRunner`]), or the paired parity twin;
//! - [`AuditSpec`] — per-event invariant checking up to the full
//!   [`TheoremAuditor`].
//!
//! Specs have a stable, line-oriented `key = value` text form (the
//! vendored serde is a no-op stub, so the format is hand-rolled on
//! purpose): [`ScenarioSpec::parse`] and [`Display`](fmt::Display)
//! round-trip exactly — `parse(to_string(spec)) == spec` is
//! property-tested over the whole registry product — and the checked-in
//! `specs/*.scn` files are parsed, validated and quick-run by
//! `make spec-check`. One seed parameterizes everything (graph
//! generation, ID permutation, adversary streams); sources derive
//! private tagged RNG streams, so a spec plus its seed *is* the run.
//!
//! ```text
//! # specs/rack_partition.scn
//! graph = ba(64, 3)
//! healer = dash
//! adversary = rack-partition(4)
//! seed = 2008
//! audit = theorems
//! backend = parity
//! max-events = 0
//! ```
//!
//! ```
//! use selfheal_core::spec::ScenarioSpec;
//!
//! let spec: ScenarioSpec = "graph = ba(32, 3)\nhealer = sdash\n\
//!                           adversary = epidemic-churn(0.25)\nseed = 7"
//!     .parse()
//!     .unwrap();
//! assert_eq!(spec.to_string().parse::<ScenarioSpec>().unwrap(), spec);
//! let outcome = spec.run().unwrap();
//! assert!(outcome.is_clean(), "{:?}", outcome.violations);
//! ```

use crate::distributed::HealMode;
use crate::distributed_runner::{DistEventRecord, DistScenarioReport, DistributedScenarioRunner};
use crate::explore::{explore_events, ExplorerConfig};
use crate::invariants::TheoremAuditor;
use crate::scenario::{
    AuditLevel, EventRecord, EventSource, NetworkEvent, RecordLog, ScenarioEngine, ScenarioReport,
    ScriptedEvents,
};
use crate::state::HealingNetwork;
use crate::strategy::Healer;
use rand::rngs::StdRng;
use rand::SeedableRng;
use selfheal_graph::{generators, Graph, NodeId};
use selfheal_metrics::StretchBaseline;
use std::fmt;
use std::str::FromStr;

/// A fully dynamic engine — registry-built boxed healer driving a
/// registry-built boxed event source (what [`ScenarioSpec::build_engine`]
/// returns).
pub type DynScenarioEngine = ScenarioEngine<Box<dyn Healer>, Box<dyn EventSource>>;

/// Everything that can go wrong turning a spec into a run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SpecError {
    /// A line of spec text could not be parsed.
    Parse {
        /// 1-based line number in the spec text.
        line: usize,
        /// What was wrong with it.
        msg: String,
    },
    /// A required key was never given.
    MissingKey(&'static str),
    /// The spec parsed but names an impossible configuration.
    Invalid(String),
    /// The named healer has no distributed-fabric implementation, so it
    /// cannot drive the `distributed`, `parity` or `explorer` backends.
    FabricUnsupported {
        /// The healer's stable name.
        healer: &'static str,
        /// The requested backend's stable name.
        backend: &'static str,
    },
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::Parse { line, msg } => write!(f, "spec line {line}: {msg}"),
            SpecError::MissingKey(key) => write!(f, "spec is missing required key '{key}'"),
            SpecError::Invalid(msg) => write!(f, "invalid spec: {msg}"),
            SpecError::FabricUnsupported { healer, backend } => write!(
                f,
                "healer '{healer}' has no distributed-fabric implementation \
                 (backend = {backend} unsupported; only dash, sdash and ftree \
                 run on the sim backend); use backend = centralized"
            ),
        }
    }
}

impl std::error::Error for SpecError {}

/// Split a `name` or `name(arg, arg, ...)` value into its parts.
fn parse_call(value: &str) -> Result<(&str, Vec<&str>), String> {
    let value = value.trim();
    let Some(open) = value.find('(') else {
        if value.contains(')') {
            return Err(format!("unbalanced ')' in '{value}'"));
        }
        return Ok((value, Vec::new()));
    };
    let name = value[..open].trim();
    let rest = &value[open + 1..];
    let Some(close) = rest.rfind(')') else {
        return Err(format!("missing ')' in '{value}'"));
    };
    if !rest[close + 1..].trim().is_empty() {
        return Err(format!("trailing text after ')' in '{value}'"));
    }
    let inner = rest[..close].trim();
    if inner.is_empty() {
        return Err(format!("'{name}()' has an empty argument list"));
    }
    Ok((name, inner.split(',').map(str::trim).collect()))
}

fn expect_args(name: &str, args: &[&str], want: usize) -> Result<(), String> {
    if args.len() == want {
        Ok(())
    } else {
        Err(format!(
            "'{name}' takes {want} argument(s), got {}",
            args.len()
        ))
    }
}

fn arg_usize(name: &str, what: &str, arg: &str) -> Result<usize, String> {
    arg.parse()
        .map_err(|_| format!("'{name}': {what} must be an unsigned integer, got '{arg}'"))
}

fn arg_f64(name: &str, what: &str, arg: &str) -> Result<f64, String> {
    arg.parse()
        .map_err(|_| format!("'{name}': {what} must be a number, got '{arg}'"))
}

/// The initial-graph registry. Random generators consume the scenario
/// seed through their own `StdRng`, so a spec plus a seed pins the exact
/// starting topology.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum GraphSpec {
    /// `ba(n, m)` — Barabási–Albert preferential attachment (the paper's
    /// experiment workload).
    BarabasiAlbert {
        /// Nodes.
        n: usize,
        /// Edges per arriving node.
        m: usize,
    },
    /// `gnm(n, m)` — Erdős–Rényi with exactly `m` uniform edges.
    ErdosRenyiGnm {
        /// Nodes.
        n: usize,
        /// Edges.
        m: usize,
    },
    /// `ws(n, k, beta)` — Watts–Strogatz small world.
    WattsStrogatz {
        /// Nodes.
        n: usize,
        /// Nearest-neighbor ring degree (even).
        k: usize,
        /// Rewiring probability.
        beta: f64,
    },
    /// `path(n)`.
    Path {
        /// Nodes.
        n: usize,
    },
    /// `cycle(n)`.
    Cycle {
        /// Nodes.
        n: usize,
    },
    /// `star(n)` — node 0 is the hub.
    Star {
        /// Nodes (hub + `n - 1` spokes).
        n: usize,
    },
    /// `complete(n)`.
    Complete {
        /// Nodes.
        n: usize,
    },
    /// `grid(rows, cols)`.
    Grid {
        /// Rows.
        rows: usize,
        /// Columns.
        cols: usize,
    },
}

impl GraphSpec {
    /// Number of nodes the built graph will have.
    pub fn node_count(&self) -> usize {
        match *self {
            GraphSpec::BarabasiAlbert { n, .. }
            | GraphSpec::ErdosRenyiGnm { n, .. }
            | GraphSpec::WattsStrogatz { n, .. }
            | GraphSpec::Path { n }
            | GraphSpec::Cycle { n }
            | GraphSpec::Star { n }
            | GraphSpec::Complete { n } => n,
            GraphSpec::Grid { rows, cols } => rows * cols,
        }
    }

    /// Check the generator's own parameter preconditions, so building a
    /// validated spec can never panic inside a generator.
    pub fn validate(&self) -> Result<(), SpecError> {
        let fail = |msg: String| Err(SpecError::Invalid(msg));
        match *self {
            GraphSpec::BarabasiAlbert { n, m } => {
                if m < 1 || n <= m {
                    return fail(format!("ba({n}, {m}) needs m >= 1 and n > m"));
                }
            }
            GraphSpec::ErdosRenyiGnm { n, m } => {
                let possible = n.saturating_mul(n.saturating_sub(1)) / 2;
                if n == 0 || m > possible {
                    return fail(format!(
                        "gnm({n}, {m}) needs n >= 1 and at most {possible} edges"
                    ));
                }
            }
            GraphSpec::WattsStrogatz { n, k, beta } => {
                if k % 2 != 0 || k >= n || !(0.0..=1.0).contains(&beta) {
                    return fail(format!(
                        "ws({n}, {k}, {beta}) needs even k < n and beta in [0, 1]"
                    ));
                }
            }
            GraphSpec::Grid { rows, cols } => {
                if rows == 0 || cols == 0 {
                    return fail(format!("grid({rows}, {cols}) must be non-empty"));
                }
            }
            GraphSpec::Path { n }
            | GraphSpec::Cycle { n }
            | GraphSpec::Star { n }
            | GraphSpec::Complete { n } => {
                if n == 0 {
                    return fail("graph must have at least one node".to_string());
                }
            }
        }
        Ok(())
    }

    /// Build the initial graph for `seed`.
    pub fn build(&self, seed: u64) -> Graph {
        let mut rng = StdRng::seed_from_u64(seed);
        match *self {
            GraphSpec::BarabasiAlbert { n, m } => generators::barabasi_albert(n, m, &mut rng),
            GraphSpec::ErdosRenyiGnm { n, m } => generators::erdos_renyi_gnm(n, m, &mut rng),
            GraphSpec::WattsStrogatz { n, k, beta } => {
                generators::watts_strogatz(n, k, beta, &mut rng)
            }
            GraphSpec::Path { n } => generators::path_graph(n),
            GraphSpec::Cycle { n } => generators::cycle_graph(n),
            GraphSpec::Star { n } => generators::star_graph(n),
            GraphSpec::Complete { n } => generators::complete_graph(n),
            GraphSpec::Grid { rows, cols } => generators::grid_graph(rows, cols),
        }
    }

    /// Parse the `name(args)` form (the inverse of [`Display`](fmt::Display)).
    pub fn parse(value: &str) -> Result<GraphSpec, String> {
        let (name, args) = parse_call(value)?;
        match name {
            "ba" => {
                expect_args(name, &args, 2)?;
                Ok(GraphSpec::BarabasiAlbert {
                    n: arg_usize(name, "n", args[0])?,
                    m: arg_usize(name, "m", args[1])?,
                })
            }
            "gnm" => {
                expect_args(name, &args, 2)?;
                Ok(GraphSpec::ErdosRenyiGnm {
                    n: arg_usize(name, "n", args[0])?,
                    m: arg_usize(name, "m", args[1])?,
                })
            }
            "ws" => {
                expect_args(name, &args, 3)?;
                Ok(GraphSpec::WattsStrogatz {
                    n: arg_usize(name, "n", args[0])?,
                    k: arg_usize(name, "k", args[1])?,
                    beta: arg_f64(name, "beta", args[2])?,
                })
            }
            "path" | "cycle" | "star" | "complete" => {
                expect_args(name, &args, 1)?;
                let n = arg_usize(name, "n", args[0])?;
                Ok(match name {
                    "path" => GraphSpec::Path { n },
                    "cycle" => GraphSpec::Cycle { n },
                    "star" => GraphSpec::Star { n },
                    _ => GraphSpec::Complete { n },
                })
            }
            "grid" => {
                expect_args(name, &args, 2)?;
                Ok(GraphSpec::Grid {
                    rows: arg_usize(name, "rows", args[0])?,
                    cols: arg_usize(name, "cols", args[1])?,
                })
            }
            other => Err(format!("unknown graph generator '{other}'")),
        }
    }
}

impl fmt::Display for GraphSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            GraphSpec::BarabasiAlbert { n, m } => write!(f, "ba({n}, {m})"),
            GraphSpec::ErdosRenyiGnm { n, m } => write!(f, "gnm({n}, {m})"),
            GraphSpec::WattsStrogatz { n, k, beta } => write!(f, "ws({n}, {k}, {beta})"),
            GraphSpec::Path { n } => write!(f, "path({n})"),
            GraphSpec::Cycle { n } => write!(f, "cycle({n})"),
            GraphSpec::Star { n } => write!(f, "star({n})"),
            GraphSpec::Complete { n } => write!(f, "complete({n})"),
            GraphSpec::Grid { rows, cols } => write!(f, "grid({rows}, {cols})"),
        }
    }
}

/// The canonical healer registry — the *one* place a strategy name maps
/// to a constructor. `experiments::config::HealerKind` is a re-export of
/// this type, and the sweep fleet consumes it directly.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HealerSpec {
    /// Algorithm 1 (Degree-Based Self-Healing).
    Dash,
    /// Algorithm 3 (surrogation).
    Sdash,
    /// Naive binary tree over all neighbors (cycles allowed).
    GraphHeal,
    /// Component-aware, degree-oblivious binary tree.
    BinaryTreeHeal,
    /// Component-aware line (the refs [5, 6] baseline).
    LineHeal,
    /// Control: no healing.
    NoHeal,
    /// Heir-rooted reconnection trees (Trehan's dissertation, Ch. 4):
    /// ≤ 3 new edges per survivor per adjacent deletion, O(log n)
    /// stretch. Fabric-capable.
    ForgivingTree,
    /// `ring(budget)` — cycle plus halving-stride chords under a
    /// per-node budget (the Hayashi-style ring-enhancement family).
    /// Centralized-only.
    RingForgiving {
        /// Chord rounds per heal (≤ `2 + budget` new edges per survivor
        /// per adjacent deletion).
        budget: usize,
    },
}

impl HealerSpec {
    /// Every healer, in registry order. The parameterized
    /// [`RingForgiving`](HealerSpec::RingForgiving) entry carries its
    /// canonical default budget.
    pub const ALL: [HealerSpec; 8] = [
        HealerSpec::Dash,
        HealerSpec::Sdash,
        HealerSpec::GraphHeal,
        HealerSpec::BinaryTreeHeal,
        HealerSpec::LineHeal,
        HealerSpec::NoHeal,
        HealerSpec::ForgivingTree,
        HealerSpec::RingForgiving {
            budget: crate::ring::RingForgiving::DEFAULT_BUDGET,
        },
    ];

    /// The strategies the paper's figures compare (everything but NoHeal).
    pub fn figure_set() -> [HealerSpec; 5] {
        [
            HealerSpec::Dash,
            HealerSpec::Sdash,
            HealerSpec::GraphHeal,
            HealerSpec::BinaryTreeHeal,
            HealerSpec::LineHeal,
        ]
    }

    /// Stable display name (matches [`Healer::name`]).
    pub fn name(self) -> &'static str {
        match self {
            HealerSpec::Dash => "dash",
            HealerSpec::Sdash => "sdash",
            HealerSpec::GraphHeal => "graph-heal",
            HealerSpec::BinaryTreeHeal => "bintree-heal",
            HealerSpec::LineHeal => "line-heal",
            HealerSpec::NoHeal => "no-heal",
            HealerSpec::ForgivingTree => "ftree",
            HealerSpec::RingForgiving { .. } => "ring",
        }
    }

    /// Parse a display name (or the `ring(budget)` call form; a bare
    /// `ring` resolves to the registry's canonical default budget).
    pub fn parse(value: &str) -> Option<HealerSpec> {
        let (name, args) = parse_call(value).ok()?;
        match (name, args.as_slice()) {
            ("ring", [budget]) => budget
                .parse()
                .ok()
                .map(|budget| HealerSpec::RingForgiving { budget }),
            (_, []) => HealerSpec::ALL.into_iter().find(|h| h.name() == name),
            _ => None,
        }
    }

    /// Instantiate the strategy.
    pub fn build(self) -> Box<dyn Healer> {
        match self {
            HealerSpec::Dash => Box::new(crate::dash::Dash),
            HealerSpec::Sdash => Box::new(crate::sdash::Sdash),
            HealerSpec::GraphHeal => Box::new(crate::naive::GraphHeal),
            HealerSpec::BinaryTreeHeal => Box::new(crate::naive::BinaryTreeHeal),
            HealerSpec::LineHeal => Box::new(crate::naive::LineHeal),
            HealerSpec::NoHeal => Box::new(crate::naive::NoHeal),
            HealerSpec::ForgivingTree => Box::new(crate::ftree::ForgivingTree),
            HealerSpec::RingForgiving { budget } => Box::new(crate::ring::RingForgiving { budget }),
        }
    }

    /// The distributed-fabric mode for this healer on the given backend.
    /// Only DASH, SDASH and ForgivingTree exist as message-passing
    /// protocols; every other strategy is centralized-only and reports
    /// [`SpecError::FabricUnsupported`], naming both the healer and the
    /// backend the caller asked for.
    pub fn heal_mode(self, backend: BackendSpec) -> Result<HealMode, SpecError> {
        match self {
            HealerSpec::Dash => Ok(HealMode::Dash),
            HealerSpec::Sdash => Ok(HealMode::Sdash),
            HealerSpec::ForgivingTree => Ok(HealMode::ForgivingTree),
            other => Err(SpecError::FabricUnsupported {
                healer: other.name(),
                backend: backend.name(),
            }),
        }
    }
}

impl fmt::Display for HealerSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            HealerSpec::RingForgiving { budget } => write!(f, "ring({budget})"),
            plain => f.write_str(plain.name()),
        }
    }
}

/// Hand-curated mixed schedules (simultaneous batches, joins, stale
/// references), promoted from the parity suites into the registry so a
/// spec can replay them by name.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CuratedSchedule {
    /// The parity acceptance schedule: two interleaved batches, joins in
    /// between, stale references throughout (sized for ~32 nodes).
    MixedAcceptance,
    /// Maximal-independent-set batches on a cycle, then churn (12 nodes).
    CycleBatches,
    /// Hub deletion + batches on a star — stresses surrogation (16 nodes).
    StarBatches,
    /// Eight join/delete pairs then one wide batch (24+ nodes).
    JoinChurn,
}

impl CuratedSchedule {
    /// Every curated schedule, in registry order.
    pub const ALL: [CuratedSchedule; 4] = [
        CuratedSchedule::MixedAcceptance,
        CuratedSchedule::CycleBatches,
        CuratedSchedule::StarBatches,
        CuratedSchedule::JoinChurn,
    ];

    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            CuratedSchedule::MixedAcceptance => "mixed-acceptance",
            CuratedSchedule::CycleBatches => "cycle-batches",
            CuratedSchedule::StarBatches => "star-batches",
            CuratedSchedule::JoinChurn => "join-churn",
        }
    }

    /// Parse a display name.
    pub fn parse(name: &str) -> Option<CuratedSchedule> {
        CuratedSchedule::ALL.into_iter().find(|c| c.name() == name)
    }

    /// The fixed event schedule (engine sanitization makes stale
    /// references harmless on undersized graphs).
    pub fn events(self) -> Vec<NetworkEvent> {
        let id = NodeId;
        match self {
            CuratedSchedule::MixedAcceptance => vec![
                NetworkEvent::DeleteBatch(vec![id(0), id(4), id(9), id(4)]),
                NetworkEvent::Join {
                    neighbors: vec![id(2), id(7), id(0)], // 0 is dead by now
                },
                NetworkEvent::Delete(id(11)),
                NetworkEvent::DeleteBatch(vec![id(2), id(6), id(13), id(9)]),
                NetworkEvent::Delete(id(0)), // stale: no-op on both sides
                NetworkEvent::Join {
                    neighbors: vec![id(3)],
                },
                NetworkEvent::DeleteBatch(vec![id(1), id(8)]),
            ],
            CuratedSchedule::CycleBatches => vec![
                NetworkEvent::DeleteBatch((0..12).step_by(2).map(NodeId).collect()),
                NetworkEvent::Join {
                    neighbors: vec![id(1), id(7)],
                },
                NetworkEvent::DeleteBatch(vec![id(1), id(5), id(9)]),
            ],
            CuratedSchedule::StarBatches => vec![
                NetworkEvent::Delete(id(0)),
                NetworkEvent::DeleteBatch(vec![id(3), id(5), id(11)]),
                NetworkEvent::Join {
                    neighbors: vec![id(1), id(2)],
                },
                NetworkEvent::DeleteBatch(vec![id(1), id(7)]),
            ],
            CuratedSchedule::JoinChurn => {
                let mut schedule = Vec::new();
                for i in 0..8u32 {
                    schedule.push(NetworkEvent::Join {
                        neighbors: vec![id(i), id(i + 2), id(i + 20)],
                    });
                    schedule.push(NetworkEvent::Delete(id(2 * i)));
                }
                schedule.push(NetworkEvent::DeleteBatch((24..36).map(NodeId).collect()));
                schedule
            }
        }
    }
}

impl fmt::Display for CuratedSchedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The adversary registry: every event source the workspace knows how to
/// build, from the paper's single-victim attacks through the structural
/// event-level library to curated replay schedules.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum AdversarySpec {
    /// Delete the current maximum-degree node.
    MaxNode,
    /// Delete a random neighbor of the maximum-degree node (NMS).
    NeighborOfMax,
    /// Delete a uniformly random live node.
    Random,
    /// Delete the current minimum-degree node.
    MinDegree,
    /// Delete the highest-degree articulation point.
    CutVertex,
    /// Mixed join/targeted-delete churn (`random-churn`).
    RandomChurn,
    /// `epidemic-churn(p)` — failures spread along edges with
    /// per-edge probability `p`.
    EpidemicChurn {
        /// Per-edge spread probability per event.
        p: f64,
    },
    /// `flash-crowd(joins, burst)` — join bursts onto the hub, hub kills
    /// between bursts, drain after the budget.
    FlashCrowd {
        /// Total join budget.
        joins: usize,
        /// Joins per burst.
        burst: usize,
    },
    /// `rack-partition(rack_size)` — coordinated batch kills of shuffled
    /// racks.
    RackPartition {
        /// Nodes per rack.
        rack_size: usize,
    },
    /// `degree-batches(k)` — batches of up to `k` independent victims by
    /// descending degree.
    DegreeBatches {
        /// Maximum victims per batch.
        k: usize,
    },
    /// `curated(name)` — replay a [`CuratedSchedule`] verbatim.
    Curated(CuratedSchedule),
}

impl AdversarySpec {
    /// Stable display name (matches the built source's name where the
    /// source has one).
    pub fn name(self) -> &'static str {
        match self {
            AdversarySpec::MaxNode => "max-node",
            AdversarySpec::NeighborOfMax => "neighbor-of-max",
            AdversarySpec::Random => "random",
            AdversarySpec::MinDegree => "min-degree",
            AdversarySpec::CutVertex => "cut-vertex",
            AdversarySpec::RandomChurn => "random-churn",
            AdversarySpec::EpidemicChurn { .. } => "epidemic-churn",
            AdversarySpec::FlashCrowd { .. } => "flash-crowd",
            AdversarySpec::RackPartition { .. } => "rack-partition",
            AdversarySpec::DegreeBatches { .. } => "degree-batches",
            AdversarySpec::Curated(_) => "curated",
        }
    }

    /// Check parameter sanity without building.
    pub fn validate(&self) -> Result<(), SpecError> {
        let fail = |msg: String| Err(SpecError::Invalid(msg));
        match *self {
            AdversarySpec::EpidemicChurn { p } if !(0.0..=1.0).contains(&p) => {
                fail(format!("epidemic-churn({p}): p must be in [0, 1]"))
            }
            AdversarySpec::FlashCrowd { burst: 0, .. } => {
                fail("flash-crowd: burst must be >= 1".to_string())
            }
            AdversarySpec::RackPartition { rack_size: 0 } => {
                fail("rack-partition: rack size must be >= 1".to_string())
            }
            AdversarySpec::DegreeBatches { k: 0 } => {
                fail("degree-batches: k must be >= 1".to_string())
            }
            _ => Ok(()),
        }
    }

    /// Build the event source. Stochastic sources derive their private
    /// tagged RNG stream from `seed` (see
    /// [`source_stream`](crate::scenario) notes in `core::scenario`), so
    /// the same seed replays the same schedule.
    pub fn build(self, seed: u64) -> Box<dyn EventSource> {
        match self {
            AdversarySpec::MaxNode => Box::new(crate::attack::MaxNode),
            AdversarySpec::NeighborOfMax => Box::new(crate::attack::NeighborOfMax::new(seed)),
            AdversarySpec::Random => Box::new(crate::attack::RandomAttack::new(seed)),
            AdversarySpec::MinDegree => Box::new(crate::attack::MinDegree),
            AdversarySpec::CutVertex => Box::new(crate::attack::CutVertex),
            AdversarySpec::RandomChurn => Box::new(crate::scenario::RandomChurn::new(seed)),
            AdversarySpec::EpidemicChurn { p } => {
                Box::new(crate::attack::EpidemicChurn::new(seed, p))
            }
            AdversarySpec::FlashCrowd { joins, burst } => {
                Box::new(crate::attack::FlashCrowd::new(seed, joins, burst))
            }
            AdversarySpec::RackPartition { rack_size } => {
                Box::new(crate::attack::RackPartition::new(seed, rack_size))
            }
            AdversarySpec::DegreeBatches { k } => Box::new(crate::scenario::DegreeBatches::new(k)),
            AdversarySpec::Curated(c) => Box::new(ScriptedEvents::new(c.events())),
        }
    }

    /// Parse the `name(args)` form (the inverse of [`Display`](fmt::Display)).
    pub fn parse(value: &str) -> Result<AdversarySpec, String> {
        let (name, args) = parse_call(value)?;
        match name {
            "max-node" | "neighbor-of-max" | "random" | "min-degree" | "cut-vertex"
            | "random-churn" => {
                expect_args(name, &args, 0)?;
                Ok(match name {
                    "max-node" => AdversarySpec::MaxNode,
                    "neighbor-of-max" => AdversarySpec::NeighborOfMax,
                    "random" => AdversarySpec::Random,
                    "min-degree" => AdversarySpec::MinDegree,
                    "cut-vertex" => AdversarySpec::CutVertex,
                    _ => AdversarySpec::RandomChurn,
                })
            }
            "epidemic-churn" => {
                expect_args(name, &args, 1)?;
                Ok(AdversarySpec::EpidemicChurn {
                    p: arg_f64(name, "p", args[0])?,
                })
            }
            "flash-crowd" => {
                expect_args(name, &args, 2)?;
                Ok(AdversarySpec::FlashCrowd {
                    joins: arg_usize(name, "joins", args[0])?,
                    burst: arg_usize(name, "burst", args[1])?,
                })
            }
            "rack-partition" => {
                expect_args(name, &args, 1)?;
                Ok(AdversarySpec::RackPartition {
                    rack_size: arg_usize(name, "rack size", args[0])?,
                })
            }
            "degree-batches" => {
                expect_args(name, &args, 1)?;
                Ok(AdversarySpec::DegreeBatches {
                    k: arg_usize(name, "k", args[0])?,
                })
            }
            "curated" => {
                expect_args(name, &args, 1)?;
                CuratedSchedule::parse(args[0])
                    .map(AdversarySpec::Curated)
                    .ok_or_else(|| format!("unknown curated schedule '{}'", args[0]))
            }
            other => Err(format!("unknown adversary '{other}'")),
        }
    }
}

impl fmt::Display for AdversarySpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            AdversarySpec::EpidemicChurn { p } => write!(f, "epidemic-churn({p})"),
            AdversarySpec::FlashCrowd { joins, burst } => {
                write!(f, "flash-crowd({joins}, {burst})")
            }
            AdversarySpec::RackPartition { rack_size } => write!(f, "rack-partition({rack_size})"),
            AdversarySpec::DegreeBatches { k } => write!(f, "degree-batches({k})"),
            AdversarySpec::Curated(c) => write!(f, "curated({c})"),
            plain => f.write_str(plain.name()),
        }
    }
}

/// What to check after every event.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum AuditSpec {
    /// No checking.
    Off,
    /// Engine-level invariant checks, O(n) per event
    /// ([`AuditLevel::Cheap`]).
    #[default]
    Cheap,
    /// Engine-level checks including the O(n²) `rem` potential
    /// ([`AuditLevel::Full`]).
    Full,
    /// The full [`TheoremAuditor`]: every Theorem 1 bound enforced per
    /// event plus the amortized-latency check at the end of the run.
    Theorems,
    /// The exhaustive small-world prover ([`run_universe`]): instead of
    /// playing the spec's adversary, sweep **every** connected graph up
    /// to the spec graph's node count under every deletion order (plus
    /// representative batch partitions), auditing each run with the
    /// per-healer theorem profile. Requires `node_count <= 7` and the
    /// centralized backend.
    Exhaustive,
}

impl AuditSpec {
    /// Every level, in registry order.
    pub const ALL: [AuditSpec; 5] = [
        AuditSpec::Off,
        AuditSpec::Cheap,
        AuditSpec::Full,
        AuditSpec::Theorems,
        AuditSpec::Exhaustive,
    ];

    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            AuditSpec::Off => "off",
            AuditSpec::Cheap => "cheap",
            AuditSpec::Full => "full",
            AuditSpec::Theorems => "theorems",
            AuditSpec::Exhaustive => "exhaustive",
        }
    }

    /// Parse a display name.
    pub fn parse(name: &str) -> Option<AuditSpec> {
        AuditSpec::ALL.into_iter().find(|a| a.name() == name)
    }

    /// The engine-embedded audit level this spec level maps to (the
    /// theorem auditor rides outside the engine as an observer).
    pub fn engine_level(self) -> AuditLevel {
        match self {
            AuditSpec::Cheap => AuditLevel::Cheap,
            AuditSpec::Full => AuditLevel::Full,
            // Theorem-level audits deliberately bypass the engine's
            // per-event checks: the engine audit insists G' is a forest
            // after *every* event, but a simultaneous batch can
            // legitimately cycle G' (the TheoremAuditor waives the
            // forest check exactly there), so the engine check would
            // report spurious violations. See the satellite test in
            // this module.
            AuditSpec::Off | AuditSpec::Theorems | AuditSpec::Exhaustive => AuditLevel::Off,
        }
    }
}

impl fmt::Display for AuditSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Which execution substrate runs the scenario.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum BackendSpec {
    /// The centralized [`ScenarioEngine`] with modeled accounting.
    #[default]
    Centralized,
    /// The distributed fabric ([`DistributedScenarioRunner`]): the same
    /// schedule executed as real message passing. The centralized engine
    /// still runs alongside to evolve the adversary's view (sources pick
    /// against the modeled network), but the reported numbers are the
    /// fabric's.
    Distributed,
    /// Both backends in lockstep with per-event and final-state byte
    /// parity enforced ([`parity_event`] / [`parity_final`]).
    Parity,
    /// The interleaving schedule explorer ([`explore_events`]): replay
    /// the adversary's events under every DPOR equivalence class of
    /// batch-notification delivery schedules, asserting centralized /
    /// distributed parity under each one. Requires a fabric-capable
    /// healer and `audit = off` (parity *is* the check, and the scenario
    /// is re-run once per class).
    Explorer,
}

impl BackendSpec {
    /// Every backend, in registry order.
    pub const ALL: [BackendSpec; 4] = [
        BackendSpec::Centralized,
        BackendSpec::Distributed,
        BackendSpec::Parity,
        BackendSpec::Explorer,
    ];

    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            BackendSpec::Centralized => "centralized",
            BackendSpec::Distributed => "distributed",
            BackendSpec::Parity => "parity",
            BackendSpec::Explorer => "explorer",
        }
    }

    /// Parse a display name.
    pub fn parse(name: &str) -> Option<BackendSpec> {
        BackendSpec::ALL.into_iter().find(|b| b.name() == name)
    }
}

impl fmt::Display for BackendSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One declarative, replayable scenario: the complete description of a
/// run, parseable from (and printable to) the `.scn` text form.
#[derive(Clone, Debug, PartialEq)]
pub struct ScenarioSpec {
    /// Initial graph.
    pub graph: GraphSpec,
    /// Healing strategy.
    pub healer: HealerSpec,
    /// Adversarial event source.
    pub adversary: AdversarySpec,
    /// The one seed parameterizing graph generation, the ID permutation,
    /// and every stochastic source's tagged stream.
    pub seed: u64,
    /// Per-event checking level.
    pub audit: AuditSpec,
    /// Execution backend.
    pub backend: BackendSpec,
    /// Event cap (0 = run to source exhaustion).
    pub max_events: u64,
}

impl ScenarioSpec {
    /// A minimal spec with defaults (`audit = cheap`,
    /// `backend = centralized`, `max-events = 0`).
    pub fn new(graph: GraphSpec, healer: HealerSpec, adversary: AdversarySpec, seed: u64) -> Self {
        ScenarioSpec {
            graph,
            healer,
            adversary,
            seed,
            audit: AuditSpec::default(),
            backend: BackendSpec::default(),
            max_events: 0,
        }
    }

    /// The same scenario under a different seed (how sweeps fan one
    /// template out over a seed range).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Check the whole configuration: graph and adversary parameters,
    /// and that the healer can actually drive the chosen backend.
    pub fn validate(&self) -> Result<(), SpecError> {
        self.graph.validate()?;
        self.adversary.validate()?;
        if self.backend != BackendSpec::Centralized {
            self.healer.heal_mode(self.backend)?;
        }
        if self.audit == AuditSpec::Exhaustive {
            if self.backend != BackendSpec::Centralized {
                return Err(SpecError::Invalid(
                    "audit = exhaustive sweeps its own universe on the centralized \
                     engine; set backend = centralized"
                        .to_string(),
                ));
            }
            let n = self.graph.node_count();
            if !(2..=crate::exhaustive::MAX_NODES).contains(&n) {
                return Err(SpecError::Invalid(format!(
                    "audit = exhaustive enumerates every connected graph up to the \
                     spec graph's size; needs 2 <= nodes <= {}, got {n}",
                    crate::exhaustive::MAX_NODES
                )));
            }
        }
        if self.backend == BackendSpec::Explorer && self.audit != AuditSpec::Off {
            return Err(SpecError::Invalid(
                "backend = explorer re-runs the scenario once per schedule class and \
                 parity is the check; set audit = off"
                    .to_string(),
            ));
        }
        Ok(())
    }

    /// Parse the line-oriented `key = value` text form. Blank lines and
    /// `#` comments are ignored; unknown, duplicate, or malformed keys
    /// are errors; `graph`, `healer`, `adversary` and `seed` are
    /// required.
    pub fn parse(text: &str) -> Result<ScenarioSpec, SpecError> {
        let mut graph: Option<GraphSpec> = None;
        let mut healer: Option<HealerSpec> = None;
        let mut adversary: Option<AdversarySpec> = None;
        let mut seed: Option<u64> = None;
        let mut audit: Option<AuditSpec> = None;
        let mut backend: Option<BackendSpec> = None;
        let mut max_events: Option<u64> = None;

        fn set_once<T>(
            slot: &mut Option<T>,
            value: T,
            key: &str,
            line: usize,
        ) -> Result<(), SpecError> {
            if slot.is_some() {
                return Err(SpecError::Parse {
                    line,
                    msg: format!("duplicate key '{key}'"),
                });
            }
            *slot = Some(value);
            Ok(())
        }

        for (i, raw) in text.lines().enumerate() {
            let line = i + 1;
            let at = |msg: String| SpecError::Parse { line, msg };
            let text = raw.trim();
            if text.is_empty() || text.starts_with('#') {
                continue;
            }
            let Some((key, value)) = text.split_once('=') else {
                return Err(at(format!("expected 'key = value', got '{text}'")));
            };
            let (key, value) = (key.trim(), value.trim());
            match key {
                "graph" => set_once(&mut graph, GraphSpec::parse(value).map_err(at)?, key, line)?,
                "healer" => set_once(
                    &mut healer,
                    HealerSpec::parse(value)
                        .ok_or_else(|| at(format!("unknown healer '{value}'")))?,
                    key,
                    line,
                )?,
                "adversary" => set_once(
                    &mut adversary,
                    AdversarySpec::parse(value).map_err(at)?,
                    key,
                    line,
                )?,
                "seed" => set_once(
                    &mut seed,
                    value
                        .parse()
                        .map_err(|_| at(format!("seed must be a u64, got '{value}'")))?,
                    key,
                    line,
                )?,
                "audit" => set_once(
                    &mut audit,
                    AuditSpec::parse(value)
                        .ok_or_else(|| at(format!("unknown audit level '{value}'")))?,
                    key,
                    line,
                )?,
                "backend" => set_once(
                    &mut backend,
                    BackendSpec::parse(value)
                        .ok_or_else(|| at(format!("unknown backend '{value}'")))?,
                    key,
                    line,
                )?,
                "max-events" => set_once(
                    &mut max_events,
                    value
                        .parse()
                        .map_err(|_| at(format!("max-events must be a u64, got '{value}'")))?,
                    key,
                    line,
                )?,
                other => return Err(at(format!("unknown key '{other}'"))),
            }
        }

        Ok(ScenarioSpec {
            graph: graph.ok_or(SpecError::MissingKey("graph"))?,
            healer: healer.ok_or(SpecError::MissingKey("healer"))?,
            adversary: adversary.ok_or(SpecError::MissingKey("adversary"))?,
            seed: seed.ok_or(SpecError::MissingKey("seed"))?,
            audit: audit.unwrap_or_default(),
            backend: backend.unwrap_or_default(),
            max_events: max_events.unwrap_or(0),
        })
    }

    /// Build a ready-to-drive centralized engine from the spec (healer
    /// and source as trait objects — the `Box<dyn EventSource>` blanket
    /// impl makes this a first-class engine instantiation). The audit
    /// level maps through [`AuditSpec::engine_level`]; theorem auditing
    /// is a run-level concern (see [`ScenarioSpec::run`]).
    pub fn build_engine(&self) -> Result<DynScenarioEngine, SpecError> {
        self.graph.validate()?;
        self.adversary.validate()?;
        let g = self.graph.build(self.seed);
        let source = self.adversary.build(self.seed);
        Ok(ScenarioEngine::new(
            HealingNetwork::new(g, self.seed),
            self.healer.build(),
            source,
        )
        .with_audit(self.audit.engine_level()))
    }

    /// Execute the spec with default options.
    pub fn run(&self) -> Result<SpecOutcome, SpecError> {
        self.run_with(&RunOptions::default())
    }

    /// Execute the spec: build everything, drive the event loop on the
    /// selected backend(s), collect the report(s) and any violations.
    ///
    /// The centralized engine always runs — adversaries observe the
    /// evolving modeled network — and under the `distributed`/`parity`
    /// backends the fabric twin replays each event as real message
    /// passing (with byte-parity enforced for `parity`).
    pub fn run_with(&self, opts: &RunOptions) -> Result<SpecOutcome, SpecError> {
        self.validate()?;
        if self.audit == AuditSpec::Exhaustive {
            return self.run_exhaustive();
        }
        if self.backend == BackendSpec::Explorer {
            return self.run_explorer();
        }
        let g = self.graph.build(self.seed);
        let initial_nodes = g.live_node_count() as u64;
        let baseline = opts.measure_stretch.then(|| StretchBaseline::new(&g, 1));
        let healer = self.healer.build();
        let mut auditor = (self.audit == AuditSpec::Theorems).then(|| {
            let a = TheoremAuditor::new(healer.preserves_forest());
            if opts.check_rem {
                a.with_rem_check()
            } else {
                a
            }
        });
        let mut source = self.adversary.build(self.seed);
        let mut twin = if self.backend == BackendSpec::Centralized {
            None
        } else {
            // validate() proved heal_mode() succeeds.
            Some(DistributedScenarioRunner::with_mode(
                self.healer.heal_mode(self.backend)?,
                &g,
                self.seed,
            ))
        };
        let mut engine = ScenarioEngine::new(
            HealingNetwork::new(g, self.seed),
            healer,
            ScriptedEvents::default(),
        )
        .with_audit(self.audit.engine_level());

        let mut log = opts.keep_log.then(RecordLog::default);
        let mut violations = Vec::new();
        let mut stretch_tenths = None;
        let half_life = initial_nodes.div_ceil(2);
        let mut events = 0u64;
        while self.max_events == 0 || events < self.max_events {
            let Some(event) = source.next_event(&engine.net) else {
                break;
            };
            events += 1;
            let record = if let Some(auditor) = auditor.as_mut() {
                engine.apply_with(event.clone(), auditor)
            } else {
                engine.apply(event.clone())
            };
            if let Some(log) = log.as_mut() {
                log.records.push(record);
            }
            if let Some(runner) = twin.as_mut() {
                let dist = runner.apply(&event);
                if self.backend == BackendSpec::Parity {
                    if let Err(e) = parity_event(&record, &dist) {
                        violations.push(format!("parity: {e}"));
                    }
                }
            }
            // Half-life measurement: the paper's stretch metric compares
            // survivors against the initial graph, so sample it while a
            // meaningful survivor population remains.
            if let Some(b) = baseline.as_ref() {
                if stretch_tenths.is_none() && engine.report().deletions >= half_life {
                    stretch_tenths = b
                        .stretch_of(engine.net.graph(), 1)
                        .map(|r| (r.stretch * 10.0).ceil() as u64);
                }
            }
        }
        let report = engine.finish();
        if let Some(auditor) = auditor.as_mut() {
            auditor.finish(&engine.net, &report);
            let truncated = auditor.truncated;
            violations.append(&mut auditor.violations);
            if truncated {
                // Keep the cap visible: 16 findings + this marker reads
                // differently from exactly 16 findings.
                violations.push("audit: further findings truncated".to_string());
            }
        }
        if self.backend == BackendSpec::Parity {
            if let Some(runner) = twin.as_ref() {
                if let Err(e) = parity_final(&engine.net, runner) {
                    violations.push(format!("parity (final): {e}"));
                }
            }
        }
        Ok(SpecOutcome {
            seed: self.seed,
            report,
            dist: twin.map(|r| r.report()),
            log,
            stretch_tenths,
            violations,
            universe: None,
            explorer: None,
        })
    }

    /// `audit = exhaustive`: the spec's graph fixes only the universe
    /// ceiling (its node count) and the healer under test; the adversary
    /// is ignored because the universe *is* every deletion order.
    fn run_exhaustive(&self) -> Result<SpecOutcome, SpecError> {
        let cfg = crate::exhaustive::UniverseConfig {
            max_n: self.graph.node_count(),
            healers: vec![self.healer],
            seed: self.seed,
            ..crate::exhaustive::UniverseConfig::default()
        };
        let universe = crate::exhaustive::run_universe(&cfg)?;
        let mut violations = universe.violations.clone();
        if universe.truncated {
            violations.push(format!(
                "exhaustive: {} further findings truncated",
                universe.violation_count - violations.len() as u64
            ));
        }
        Ok(SpecOutcome {
            seed: self.seed,
            report: ScenarioReport::default(),
            dist: None,
            log: None,
            stretch_tenths: None,
            violations,
            universe: Some(universe),
            explorer: None,
        })
    }

    /// `backend = explorer`: one audit-off centralized pass records the
    /// adversary's concrete events, then [`explore_events`] replays them
    /// under every DPOR schedule class with parity enforced.
    fn run_explorer(&self) -> Result<SpecOutcome, SpecError> {
        let g = self.graph.build(self.seed);
        let mut source = self.adversary.build(self.seed);
        let mut engine = ScenarioEngine::new(
            HealingNetwork::new(g.clone(), self.seed),
            self.healer.build(),
            ScriptedEvents::default(),
        );
        let mut events = Vec::new();
        while self.max_events == 0 || (events.len() as u64) < self.max_events {
            let Some(event) = source.next_event(&engine.net) else {
                break;
            };
            engine.apply(event.clone());
            events.push(event);
        }
        let report = engine.finish();
        let explorer = explore_events(
            &g,
            self.healer,
            self.seed,
            &events,
            &ExplorerConfig::default(),
        )?;
        let mut violations: Vec<String> = explorer
            .violations
            .iter()
            .map(|v| format!("explorer: {v}"))
            .collect();
        if explorer.truncated {
            violations.push(format!(
                "explorer: {} further findings truncated",
                explorer.violation_count - explorer.violations.len() as u64
            ));
        }
        Ok(SpecOutcome {
            seed: self.seed,
            report,
            dist: None,
            log: None,
            stretch_tenths: None,
            violations,
            universe: None,
            explorer: Some(explorer),
        })
    }
}

impl fmt::Display for ScenarioSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "graph = {}", self.graph)?;
        writeln!(f, "healer = {}", self.healer)?;
        writeln!(f, "adversary = {}", self.adversary)?;
        writeln!(f, "seed = {}", self.seed)?;
        writeln!(f, "audit = {}", self.audit)?;
        writeln!(f, "backend = {}", self.backend)?;
        writeln!(f, "max-events = {}", self.max_events)
    }
}

impl FromStr for ScenarioSpec {
    type Err = SpecError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        ScenarioSpec::parse(s)
    }
}

/// Knobs for [`ScenarioSpec::run_with`] that are about *observation*,
/// not about the scenario itself (so they live outside the spec text).
#[derive(Clone, Copy, Debug, Default)]
pub struct RunOptions {
    /// Keep the full per-event [`RecordLog`].
    pub keep_log: bool,
    /// Under `audit = theorems`, also check the O(n²) `rem` potential.
    pub check_rem: bool,
    /// Sample the half-life stretch against the initial graph.
    pub measure_stretch: bool,
}

/// Everything one spec run reports back.
#[derive(Clone, Debug)]
pub struct SpecOutcome {
    /// The seed the run used (replays it exactly).
    pub seed: u64,
    /// The centralized engine's report (always present; the engine
    /// drives event generation on every backend).
    pub report: ScenarioReport,
    /// The fabric twin's report (`distributed` and `parity` backends).
    pub dist: Option<DistScenarioReport>,
    /// The per-event record log, when requested.
    pub log: Option<RecordLog>,
    /// Half-life stretch vs the initial graph (×10, rounded up), when
    /// measured and enough baseline nodes survived.
    pub stretch_tenths: Option<u64>,
    /// Theorem-auditor and parity findings (engine-level audit findings
    /// live in [`ScenarioReport::violations`]).
    pub violations: Vec<String>,
    /// Exhaustive-universe report (`audit = exhaustive` runs only).
    pub universe: Option<crate::exhaustive::UniverseReport>,
    /// Schedule-explorer report (`backend = explorer` runs only).
    pub explorer: Option<crate::explore::ExplorerReport>,
}

impl SpecOutcome {
    /// No violations from any checking layer.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty() && self.report.violations.is_empty()
    }
}

/// Per-event parity between the modeled engine and the fabric twin:
/// kind, effective victim count, join identity, Lemma 8 message count.
///
/// This is *the* definition of per-event byte-identity — the parity
/// test-suites (`tests/distributed_parity.rs`, `tests/scenarios.rs`)
/// delegate to it, so the `parity` backend can never check less than the
/// tests do.
pub fn parity_event(central: &EventRecord, dist: &DistEventRecord) -> Result<(), String> {
    if central.kind != dist.kind {
        return Err(format!(
            "event {}: kind {:?} vs {:?}",
            central.event, central.kind, dist.kind
        ));
    }
    if central.victims != dist.victims {
        return Err(format!(
            "event {}: victims {} vs {}",
            central.event, central.victims, dist.victims
        ));
    }
    if central.joined.map(|v| v.0) != dist.joined {
        return Err(format!(
            "event {}: joined {:?} vs {:?}",
            central.event, central.joined, dist.joined
        ));
    }
    if central.propagation.messages != dist.messages {
        return Err(format!(
            "event {}: messages {} vs {}",
            central.event, central.propagation.messages, dist.messages
        ));
    }
    Ok(())
}

/// Final-state parity: per-slot liveness, adjacency in `G` and `G'`,
/// component IDs, initial IDs, ID-change counts and per-node message
/// counters — the single definition of final-state byte-identity, shared
/// with the parity test-suites.
pub fn parity_final(
    net: &HealingNetwork,
    runner: &DistributedScenarioRunner,
) -> Result<(), String> {
    if net.graph().node_bound() != runner.topology().len() {
        return Err(format!(
            "slot counts {} vs {}",
            net.graph().node_bound(),
            runner.topology().len()
        ));
    }
    for i in 0..net.graph().node_bound() {
        let v = NodeId::from_index(i);
        let u = i as u32;
        if net.is_alive(v) != runner.topology().is_alive(u) {
            return Err(format!("liveness of {v} diverged"));
        }
        if net.is_alive(v) {
            let central: Vec<u32> = net.graph().neighbors(v).iter().map(|x| x.0).collect();
            if central != runner.topology().neighbors(u) {
                return Err(format!(
                    "G adjacency of {v}: {central:?} vs {:?}",
                    runner.topology().neighbors(u)
                ));
            }
            let central_gp: Vec<u32> = net
                .healing_graph()
                .neighbors(v)
                .iter()
                .map(|x| x.0)
                .collect();
            let dist_gp: Vec<u32> = runner
                .protocol()
                .gprime_neighbors(u)
                .iter()
                .copied()
                .collect();
            if central_gp != dist_gp {
                return Err(format!(
                    "G' adjacency of {v}: {central_gp:?} vs {dist_gp:?}"
                ));
            }
            if net.comp_id(v) != runner.protocol().comp_id(u) {
                return Err(format!(
                    "component id of {v}: {} vs {}",
                    net.comp_id(v),
                    runner.protocol().comp_id(u)
                ));
            }
            if net.initial_id(v) != runner.protocol().initial_id(u) {
                return Err(format!(
                    "initial id of {v}: {} vs {}",
                    net.initial_id(v),
                    runner.protocol().initial_id(u)
                ));
            }
            if net.id_changes(v) != runner.protocol().id_changes(u) {
                return Err(format!(
                    "id changes of {v}: {} vs {}",
                    net.id_changes(v),
                    runner.protocol().id_changes(u)
                ));
            }
        }
        if net.messages_sent(v) != runner.metrics().sent(u) {
            return Err(format!(
                "sent count of {v}: {} vs {}",
                net.messages_sent(v),
                runner.metrics().sent(u)
            ));
        }
        if net.messages_received(v) != runner.metrics().received(u) {
            return Err(format!(
                "received count of {v}: {} vs {}",
                net.messages_received(v),
                runner.metrics().received(u)
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ScenarioSpec {
        ScenarioSpec::new(
            GraphSpec::BarabasiAlbert { n: 24, m: 3 },
            HealerSpec::Dash,
            AdversarySpec::RackPartition { rack_size: 4 },
            2008,
        )
    }

    #[test]
    fn display_parse_round_trip() {
        let spec = sample();
        let text = spec.to_string();
        assert_eq!(ScenarioSpec::parse(&text).unwrap(), spec);
    }

    #[test]
    fn parse_accepts_comments_defaults_and_whitespace() {
        let spec = ScenarioSpec::parse(
            "# a comment\n\n  graph= star(8) \nhealer =sdash\nadversary = max-node\nseed = 9\n",
        )
        .unwrap();
        assert_eq!(spec.graph, GraphSpec::Star { n: 8 });
        assert_eq!(spec.healer, HealerSpec::Sdash);
        assert_eq!(spec.audit, AuditSpec::Cheap);
        assert_eq!(spec.backend, BackendSpec::Centralized);
        assert_eq!(spec.max_events, 0);
    }

    #[test]
    fn parse_errors_are_located_and_readable() {
        let err = ScenarioSpec::parse("graph = ba(24, 3)\nbogus line").unwrap_err();
        assert_eq!(
            err,
            SpecError::Parse {
                line: 2,
                msg: "expected 'key = value', got 'bogus line'".to_string()
            }
        );
        let err = ScenarioSpec::parse("graph = ba(24)\n").unwrap_err();
        assert!(matches!(err, SpecError::Parse { line: 1, .. }), "{err}");
        let err = ScenarioSpec::parse("healer = dash\nhealer = sdash\n").unwrap_err();
        assert!(err.to_string().contains("duplicate key 'healer'"), "{err}");
        let err = ScenarioSpec::parse("graph = ba(24, 3)\nhealer = dash\nadversary = max-node\n")
            .unwrap_err();
        assert_eq!(err, SpecError::MissingKey("seed"));
    }

    #[test]
    fn fabric_unsupported_healers_fail_distributed_backends() {
        for healer in [
            HealerSpec::GraphHeal,
            HealerSpec::BinaryTreeHeal,
            HealerSpec::LineHeal,
            HealerSpec::NoHeal,
            HealerSpec::RingForgiving { budget: 2 },
        ] {
            assert_eq!(
                healer.heal_mode(BackendSpec::Parity),
                Err(SpecError::FabricUnsupported {
                    healer: healer.name(),
                    backend: "parity",
                })
            );
            let mut spec = sample();
            spec.healer = healer;
            spec.backend = BackendSpec::Parity;
            assert!(spec.validate().is_err(), "{healer} must not run on sim");
            spec.backend = BackendSpec::Centralized;
            assert!(spec.validate().is_ok());
        }
        assert_eq!(
            HealerSpec::Dash.heal_mode(BackendSpec::Distributed),
            Ok(HealMode::Dash)
        );
        assert_eq!(
            HealerSpec::Sdash.heal_mode(BackendSpec::Parity),
            Ok(HealMode::Sdash)
        );
        assert_eq!(
            HealerSpec::ForgivingTree.heal_mode(BackendSpec::Explorer),
            Ok(HealMode::ForgivingTree)
        );
    }

    /// Satellite: the `FabricUnsupported` message names both the healer
    /// and the requested backend (and keeps the long-standing
    /// "no distributed-fabric" phrasing the gates grep for), so a
    /// `run --spec` failure says exactly which combination was refused.
    #[test]
    fn fabric_unsupported_display_names_healer_and_backend() {
        let err = HealerSpec::RingForgiving { budget: 2 }
            .heal_mode(BackendSpec::Parity)
            .unwrap_err();
        assert_eq!(
            err.to_string(),
            "healer 'ring' has no distributed-fabric implementation \
             (backend = parity unsupported; only dash, sdash and ftree \
             run on the sim backend); use backend = centralized"
        );
        let err = HealerSpec::NoHeal
            .heal_mode(BackendSpec::Explorer)
            .unwrap_err();
        assert!(err.to_string().contains("backend = explorer unsupported"));
        assert!(err.to_string().contains("no distributed-fabric"));
    }

    #[test]
    fn ring_budget_parses_and_round_trips() {
        assert_eq!(
            HealerSpec::parse("ring"),
            Some(HealerSpec::RingForgiving { budget: 2 })
        );
        assert_eq!(
            HealerSpec::parse("ring(5)"),
            Some(HealerSpec::RingForgiving { budget: 5 })
        );
        assert_eq!(
            HealerSpec::RingForgiving { budget: 5 }.to_string(),
            "ring(5)"
        );
        assert_eq!(HealerSpec::parse("ring()"), None);
        assert_eq!(HealerSpec::parse("ring(x)"), None);
        assert_eq!(HealerSpec::parse("ftree"), Some(HealerSpec::ForgivingTree));
        let mut spec = sample();
        spec.healer = HealerSpec::RingForgiving { budget: 3 };
        let text = spec.to_string();
        assert!(text.contains("healer = ring(3)"), "{text}");
        assert_eq!(ScenarioSpec::parse(&text).unwrap(), spec);
    }

    #[test]
    fn invalid_parameters_are_caught_by_validate() {
        let mut spec = sample();
        spec.graph = GraphSpec::BarabasiAlbert { n: 3, m: 3 };
        assert!(matches!(spec.validate(), Err(SpecError::Invalid(_))));
        spec.graph = GraphSpec::WattsStrogatz {
            n: 10,
            k: 3,
            beta: 0.1,
        };
        assert!(spec.validate().is_err());
        spec.graph = GraphSpec::BarabasiAlbert { n: 24, m: 3 };
        spec.adversary = AdversarySpec::EpidemicChurn { p: 1.5 };
        assert!(spec.validate().is_err());
        spec.adversary = AdversarySpec::RackPartition { rack_size: 0 };
        assert!(spec.validate().is_err());
    }

    #[test]
    fn healer_names_match_built_instances() {
        for healer in HealerSpec::ALL {
            assert_eq!(healer.name(), healer.build().name());
        }
    }

    #[test]
    fn adversary_names_match_built_sources() {
        for spec in [
            AdversarySpec::MaxNode,
            AdversarySpec::NeighborOfMax,
            AdversarySpec::Random,
            AdversarySpec::MinDegree,
            AdversarySpec::CutVertex,
            AdversarySpec::RandomChurn,
            AdversarySpec::EpidemicChurn { p: 0.25 },
            AdversarySpec::FlashCrowd { joins: 4, burst: 2 },
            AdversarySpec::RackPartition { rack_size: 4 },
            AdversarySpec::DegreeBatches { k: 3 },
        ] {
            assert_eq!(spec.name(), spec.build(1).name());
        }
        // Curated schedules replay through ScriptedEvents.
        assert_eq!(
            AdversarySpec::Curated(CuratedSchedule::CycleBatches)
                .build(1)
                .name(),
            "scripted-events"
        );
    }

    #[test]
    fn curated_schedules_are_nonempty_and_named() {
        for c in CuratedSchedule::ALL {
            assert!(!c.events().is_empty(), "{c} has no events");
            assert_eq!(CuratedSchedule::parse(c.name()), Some(c));
        }
    }

    #[test]
    fn build_engine_runs_a_kill_sweep() {
        let spec = ScenarioSpec::new(
            GraphSpec::BarabasiAlbert { n: 16, m: 3 },
            HealerSpec::Dash,
            AdversarySpec::MaxNode,
            5,
        );
        let mut engine = spec.build_engine().unwrap();
        let report = engine.run_to_empty();
        assert_eq!(report.deletions, 16);
        assert!(report.violations.is_empty(), "{:?}", report.violations);
    }

    #[test]
    fn run_covers_all_three_backends() {
        let mut spec = sample();
        spec.audit = AuditSpec::Theorems;
        let central = spec.run().unwrap();
        assert!(central.is_clean(), "{:?}", central.violations);
        assert!(central.dist.is_none());
        assert!(central.report.deletions > 0);

        spec.backend = BackendSpec::Distributed;
        let dist = spec.run().unwrap();
        let fabric = dist.dist.expect("distributed backend reports the fabric");
        assert_eq!(fabric.deletions, dist.report.deletions);

        spec.backend = BackendSpec::Parity;
        let parity = spec.run().unwrap();
        assert!(parity.is_clean(), "{:?}", parity.violations);
        assert_eq!(
            parity.dist.unwrap().total_messages,
            parity.report.total_messages
        );
    }

    #[test]
    fn run_honors_max_events_and_keep_log() {
        let mut spec = sample();
        spec.adversary = AdversarySpec::MaxNode;
        spec.max_events = 5;
        let out = spec
            .run_with(&RunOptions {
                keep_log: true,
                ..RunOptions::default()
            })
            .unwrap();
        assert_eq!(out.report.events, 5);
        assert_eq!(out.log.unwrap().records.len(), 5);
    }

    /// Satellite: `theorems` (and `exhaustive`) deliberately map to
    /// [`AuditLevel::Off`] at the engine. The engine's embedded audit
    /// insists G' stays a forest after **every** event, but a
    /// simultaneous deletion batch can legitimately leave a cycle in G'
    /// (the [`TheoremAuditor`] waives the forest check exactly on
    /// multi-victim batches). Running both would report spurious
    /// violations on correct healers — demonstrated here: the same
    /// batch-heavy scenario is clean under `theorems` yet flagged by the
    /// engine's `cheap` forest check.
    #[test]
    fn theorem_audit_bypasses_engine_checks_because_batches_may_cycle_gprime() {
        assert_eq!(AuditSpec::Off.engine_level(), AuditLevel::Off);
        assert_eq!(AuditSpec::Cheap.engine_level(), AuditLevel::Cheap);
        assert_eq!(AuditSpec::Full.engine_level(), AuditLevel::Full);
        assert_eq!(AuditSpec::Theorems.engine_level(), AuditLevel::Off);
        assert_eq!(AuditSpec::Exhaustive.engine_level(), AuditLevel::Off);

        // Simultaneous deletions snapshot each victim's G'-neighbors at
        // deletion time and rebuild RT from the snapshot, so one batch
        // member's heal can re-link survivors a sibling's heal already
        // connected — a legitimate G' cycle. This workload produces one.
        let mut spec = sample();
        spec.adversary = AdversarySpec::DegreeBatches { k: 2 };
        spec.seed = 3;
        spec.audit = AuditSpec::Theorems;
        let theorems = spec.run().unwrap();
        assert!(theorems.is_clean(), "{:?}", theorems.violations);

        spec.audit = AuditSpec::Cheap;
        let cheap = spec.run().unwrap();
        assert!(
            cheap
                .report
                .violations
                .iter()
                .any(|v| v.contains("cycle") || v.contains("forest")),
            "expected a spurious engine-level forest finding, got {:?}",
            cheap.report.violations
        );
    }

    #[test]
    fn exhaustive_audit_entry_round_trips_validates_and_runs() {
        let mut spec = sample();
        spec.graph = GraphSpec::Complete { n: 4 };
        spec.audit = AuditSpec::Exhaustive;
        let text = spec.to_string();
        assert!(text.contains("audit = exhaustive"), "{text}");
        assert_eq!(ScenarioSpec::parse(&text).unwrap(), spec);

        spec.backend = BackendSpec::Parity;
        assert!(spec.validate().is_err(), "exhaustive is centralized-only");
        spec.backend = BackendSpec::Centralized;
        spec.graph = GraphSpec::BarabasiAlbert { n: 24, m: 3 };
        assert!(spec.validate().is_err(), "n = 24 is beyond the universe");

        spec.graph = GraphSpec::Complete { n: 4 };
        let out = spec.run().unwrap();
        let universe = out
            .universe
            .as_ref()
            .expect("exhaustive runs report the universe");
        assert_eq!(universe.graphs, 10, "connected graphs with n <= 4");
        assert!(universe.order_runs > 0 && universe.batch_runs > 0);
        assert!(out.is_clean(), "{:?}", out.violations);
    }

    #[test]
    fn explorer_backend_entry_round_trips_validates_and_runs() {
        let mut spec = sample();
        spec.graph = GraphSpec::BarabasiAlbert { n: 12, m: 3 };
        spec.adversary = AdversarySpec::DegreeBatches { k: 2 };
        spec.healer = HealerSpec::Sdash;
        spec.backend = BackendSpec::Explorer;
        spec.max_events = 2;
        assert!(spec.validate().is_err(), "explorer requires audit = off");
        spec.audit = AuditSpec::Off;
        let text = spec.to_string();
        assert!(text.contains("backend = explorer"), "{text}");
        assert_eq!(ScenarioSpec::parse(&text).unwrap(), spec);

        let out = spec.run().unwrap();
        let explorer = out
            .explorer
            .as_ref()
            .expect("explorer runs report the exploration");
        assert!(explorer.batches >= 1, "{explorer:#?}");
        assert!(explorer.classes >= 2);
        assert_eq!(explorer.checked, 2 * explorer.classes);
        assert!(explorer.pruned() > 0);
        assert!(out.is_clean(), "{:?}", out.violations);
    }
}

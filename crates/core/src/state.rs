//! Shared state of a self-healing run: the actual network `G`, the healing
//! graph `G'`, and all per-node bookkeeping the paper's analysis uses.
//!
//! Notation from the paper (Section 2):
//! - `G(V, E)` — the real network at the current time step,
//! - `G' = (V, E')` — only the *healing* edges added by the algorithm
//!   (`E' ⊆ E`); Lemma 1 shows DASH keeps `G'` a forest,
//! - `δ(v)` — degree increase of `v` relative to its initial degree,
//! - `w(v)` — analysis weight, starts at 1; on deletion it transfers to a
//!   surviving `G'` neighbor,
//! - IDs — every node starts with a distinct random ID; all nodes of a
//!   `G'` component carry the component's minimum ID, maintained by
//!   broadcast after each healing round.
//!
//! IDs here are ranks `0..n` in a seeded random permutation rather than
//! reals in `[0, 1]`: a random permutation gives exactly the distinct
//! uniform ranks the record-breaking argument (Lemma 8) needs, with no
//! floating-point ties.

use selfheal_graph::{Graph, GraphError, NodeId};
use selfheal_sim::SplitMix64;

/// Everything the healing strategies learn when a node is deleted.
#[derive(Clone, Debug)]
pub struct DeletionContext {
    /// The deleted node.
    pub deleted: NodeId,
    /// Component ID of the deleted node at deletion time.
    pub deleted_comp_id: u64,
    /// `N(v, G)`: neighbors in the real network at deletion time (sorted).
    pub g_neighbors: Vec<NodeId>,
    /// `N(v, G')`: neighbors in the healing graph at deletion time (sorted).
    pub gprime_neighbors: Vec<NodeId>,
}

impl Default for DeletionContext {
    /// An empty context suitable as a reusable buffer for
    /// [`HealingNetwork::delete_node_into`]; fields are meaningless until
    /// a deletion fills them.
    fn default() -> Self {
        DeletionContext {
            deleted: NodeId(u32::MAX),
            deleted_comp_id: u64::MAX,
            g_neighbors: Vec::new(),
            gprime_neighbors: Vec::new(),
        }
    }
}

/// Outcome of one ID-propagation broadcast (Algorithm 1, step 5).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PropagationReport {
    /// Nodes whose component ID decreased.
    pub changed: u64,
    /// Messages sent (each changed node notifies all of its `G` neighbors).
    pub messages: u64,
    /// Hops of broadcast latency (max `G'` BFS depth at which a change
    /// happened; 0 when nothing changed).
    pub latency: u64,
}

impl PropagationReport {
    /// Fold another broadcast of the **same healing round** into this one.
    ///
    /// Semantics (shared by the engine's batch arm and
    /// [`crate::batch::heal_batch`]): broadcasts triggered by one round
    /// proceed in parallel, so `changed` and `messages` add while
    /// `latency` takes the maximum. Latencies of *different* rounds are
    /// sequential and are summed by the run report
    /// (`total_propagation_latency`), never merged here.
    pub fn merge(&mut self, other: PropagationReport) {
        self.changed += other.changed;
        self.messages += other.messages;
        self.latency = self.latency.max(other.latency);
    }
}

/// Reusable buffers for [`HealingNetwork::propagate_min_id`]'s multi-source
/// BFS. `stamp[v] == epoch` marks `v` as visited in the current broadcast,
/// so nothing is cleared between rounds — a fresh epoch invalidates every
/// old entry in O(1), and the vectors/queue keep their capacity. This is
/// what makes steady-state broadcast rounds allocation-free.
#[derive(Clone, Debug, Default)]
struct PropagationScratch {
    epoch: u32,
    stamp: Vec<u32>,
    depth: Vec<u32>,
    queue: std::collections::VecDeque<NodeId>,
    reached: Vec<NodeId>,
}

impl PropagationScratch {
    /// Start a new broadcast: grow to `n` slots if the network gained
    /// nodes, advance the epoch (recycling stamps on the rare wrap), and
    /// clear the queue/reached buffers without releasing capacity.
    fn begin(&mut self, n: usize) -> u32 {
        if self.stamp.len() < n {
            self.stamp.resize(n, 0);
            self.depth.resize(n, 0);
        }
        self.epoch = match self.epoch.checked_add(1) {
            Some(e) => e,
            None => {
                self.stamp.fill(0);
                1
            }
        };
        self.queue.clear();
        self.reached.clear();
        self.epoch
    }
}

/// Reusable buffers for the healers' allocation-free heal path
/// ([`crate::strategy::Healer::heal_into`]). One instance lives inside
/// the [`HealingNetwork`]; healers borrow it for the duration of a heal
/// via [`HealingNetwork::take_heal_scratch`] /
/// [`HealingNetwork::put_heal_scratch`] (a `mem::take` round-trip, so
/// the buffers keep their capacity across rounds and a default-built
/// replacement never allocates).
#[derive(Clone, Debug, Default)]
pub struct HealScratch {
    /// `(comp_id, initial_id, node)` tags for unique-neighbor selection.
    pub tagged: Vec<(u64, u64, NodeId)>,
    /// δ-ordered reconstruction-set members for binary-tree wiring.
    pub ordered: Vec<NodeId>,
}

/// The mutable state of a self-healing simulation.
///
/// Strategies mutate it only through [`HealingNetwork::delete_node`],
/// [`HealingNetwork::add_heal_edge`] and
/// [`HealingNetwork::propagate_min_id`], which keep `G`, `G'` and the
/// bookkeeping consistent.
#[derive(Clone, Debug)]
pub struct HealingNetwork {
    g: Graph,
    gp: Graph,
    initial_degree: Vec<u32>,
    initial_id: Vec<u64>,
    comp_id: Vec<u64>,
    weight: Vec<u64>,
    n_initial: usize,
    total_created: usize,
    deletions: u64,
    weight_lost: u64,
    id_changes: Vec<u32>,
    msgs_sent: Vec<u64>,
    msgs_recv: Vec<u64>,
    prop_latency_total: u64,
    scratch: PropagationScratch,
    heal_scratch: HealScratch,
}

impl HealingNetwork {
    /// Wrap an initial network. All nodes must be alive; IDs are assigned
    /// from a random permutation seeded by `seed`.
    ///
    /// # Panics
    /// Panics if `graph` contains tombstoned nodes.
    pub fn new(graph: Graph, seed: u64) -> Self {
        let n = graph.node_bound();
        assert_eq!(
            graph.live_node_count(),
            n,
            "initial graph must have all nodes alive"
        );
        let mut ids: Vec<u64> = (0..n as u64).collect();
        SplitMix64::new(seed).shuffle(&mut ids);
        let initial_degree = (0..n)
            .map(|i| graph.degree(NodeId::from_index(i)) as u32)
            .collect();
        HealingNetwork {
            gp: Graph::new(n),
            g: graph,
            initial_degree,
            comp_id: ids.clone(),
            initial_id: ids,
            weight: vec![1; n],
            n_initial: n,
            total_created: n,
            deletions: 0,
            weight_lost: 0,
            id_changes: vec![0; n],
            msgs_sent: vec![0; n],
            msgs_recv: vec![0; n],
            prop_latency_total: 0,
            scratch: PropagationScratch::default(),
            heal_scratch: HealScratch::default(),
        }
    }

    /// Borrow the network's heal-scratch buffers by value (`mem::take`):
    /// the healer works on them while also mutating the network, then
    /// hands them back via [`HealingNetwork::put_heal_scratch`] so their
    /// capacity is reused next round.
    pub fn take_heal_scratch(&mut self) -> HealScratch {
        std::mem::take(&mut self.heal_scratch)
    }

    /// Return the buffers taken by [`HealingNetwork::take_heal_scratch`].
    pub fn put_heal_scratch(&mut self, scratch: HealScratch) {
        self.heal_scratch = scratch;
    }

    /// The real network `G`.
    pub fn graph(&self) -> &Graph {
        &self.g
    }

    /// The healing graph `G'` (only healing edges).
    pub fn healing_graph(&self) -> &Graph {
        &self.gp
    }

    /// Number of nodes the network started with.
    pub fn initial_node_count(&self) -> usize {
        self.n_initial
    }

    /// Total nodes ever created (initial plus joined).
    pub fn total_created(&self) -> usize {
        self.total_created
    }

    /// Churn support: a new node joins and connects to the given live
    /// nodes (a reconfigurable network gains members as well as losing
    /// them). The joiner gets a fresh ID *larger* than every existing ID,
    /// so it never becomes a component minimum until it adopts one —
    /// preserving the record-breaking structure of Lemma 8.
    ///
    /// # Errors
    /// Fails (without mutating) if any attachment target is dead or out
    /// of range, or if `neighbors` contains duplicates.
    pub fn join_node(&mut self, neighbors: &[NodeId]) -> Result<NodeId, GraphError> {
        for (i, &u) in neighbors.iter().enumerate() {
            self.g.check_alive(u)?;
            if neighbors[..i].contains(&u) {
                return Err(GraphError::EdgeExists(u, u));
            }
        }
        let v = self.g.add_node();
        let v2 = self.gp.add_node();
        debug_assert_eq!(v, v2);
        for &u in neighbors {
            // panic-ok: every `u` passed the liveness/duplication checks
            // at the top of this function before any mutation began.
            self.g.add_edge(v, u).expect("validated above");
        }
        let fresh_id = self.total_created as u64;
        self.total_created += 1;
        self.initial_degree.push(neighbors.len() as u32);
        self.initial_id.push(fresh_id);
        self.comp_id.push(fresh_id);
        self.weight.push(1);
        self.id_changes.push(0);
        self.msgs_sent.push(0);
        self.msgs_recv.push(0);
        Ok(v)
    }

    /// Deletions performed so far.
    pub fn deletion_count(&self) -> u64 {
        self.deletions
    }

    /// Whether `v` is alive.
    pub fn is_alive(&self, v: NodeId) -> bool {
        self.g.is_alive(v)
    }

    /// Initial degree of `v` in the starting network.
    pub fn initial_degree(&self, v: NodeId) -> u32 {
        self.initial_degree[v.index()]
    }

    /// Initial (immutable) random ID rank of `v`.
    pub fn initial_id(&self, v: NodeId) -> u64 {
        self.initial_id[v.index()]
    }

    /// Current component ID of `v` (minimum initial ID broadcast through
    /// its `G'` component).
    pub fn comp_id(&self, v: NodeId) -> u64 {
        self.comp_id[v.index()]
    }

    /// Degree increase `δ(v)` relative to the initial degree. Negative
    /// when `v` has lost more incident edges than healing re-added.
    pub fn delta(&self, v: NodeId) -> i64 {
        self.g.degree(v) as i64 - self.initial_degree[v.index()] as i64
    }

    /// Analysis weight `w(v)`.
    pub fn weight(&self, v: NodeId) -> u64 {
        self.weight[v.index()]
    }

    /// Total weight lost to deletions of fully isolated nodes (nodes with
    /// no surviving neighbor to inherit their weight).
    pub fn weight_lost(&self) -> u64 {
        self.weight_lost
    }

    /// Number of times `v`'s component ID decreased.
    pub fn id_changes(&self, v: NodeId) -> u32 {
        self.id_changes[v.index()]
    }

    /// ID-maintenance messages sent by `v` (Lemma 8 accounting: every ID
    /// change broadcasts to all current `G` neighbors).
    pub fn messages_sent(&self, v: NodeId) -> u64 {
        self.msgs_sent[v.index()]
    }

    /// ID-maintenance messages received by `v`.
    pub fn messages_received(&self, v: NodeId) -> u64 {
        self.msgs_recv[v.index()]
    }

    /// Sent + received for `v` — the quantity Theorem 1 bounds by
    /// `2 (d + 2 log n) ln n`.
    pub fn traffic(&self, v: NodeId) -> u64 {
        self.msgs_sent[v.index()] + self.msgs_recv[v.index()]
    }

    /// Total ID-propagation latency accumulated over all rounds (for the
    /// amortized O(log n) claim of Lemma 9).
    pub fn propagation_latency_total(&self) -> u64 {
        self.prop_latency_total
    }

    /// Maximum `δ(v)` over live nodes (0 for an empty network).
    pub fn max_delta_alive(&self) -> i64 {
        self.g
            .live_nodes()
            .map(|v| self.delta(v))
            .max()
            .unwrap_or(0)
    }

    /// Delete `v` from both `G` and `G'`, transfer its weight, and report
    /// what the healing strategy needs to know.
    ///
    /// Weight goes to the lowest-id `G'` neighbor if one exists (the
    /// paper's "arbitrarily chosen neighbor in G'"), otherwise to the
    /// lowest-id `G` neighbor, otherwise it is recorded as lost.
    ///
    /// # Errors
    /// Fails if `v` is dead or out of range.
    pub fn delete_node(&mut self, v: NodeId) -> Result<DeletionContext, GraphError> {
        let mut ctx = DeletionContext::default();
        self.delete_node_into(v, &mut ctx)?;
        Ok(ctx)
    }

    /// [`HealingNetwork::delete_node`] writing into a caller-owned
    /// [`DeletionContext`], reusing its neighbor buffers. The scenario
    /// engine keeps one context alive across rounds so steady-state
    /// deletions allocate nothing here.
    ///
    /// # Errors
    /// Fails (leaving the network untouched) if `v` is dead or out of
    /// range.
    pub fn delete_node_into(
        &mut self,
        v: NodeId,
        ctx: &mut DeletionContext,
    ) -> Result<(), GraphError> {
        self.g.check_alive(v)?;
        ctx.deleted = v;
        ctx.deleted_comp_id = self.comp_id[v.index()];
        self.gp.remove_node_into(v, &mut ctx.gprime_neighbors)?;
        self.g.remove_node_into(v, &mut ctx.g_neighbors)?;
        let heir = ctx
            .gprime_neighbors
            .first()
            .or_else(|| ctx.g_neighbors.first())
            .copied();
        let w = std::mem::take(&mut self.weight[v.index()]);
        match heir {
            Some(h) => self.weight[h.index()] += w,
            None => self.weight_lost += w,
        }
        self.deletions += 1;
        Ok(())
    }

    /// Add a healing edge: ensure it exists in `G` and record it in `G'`.
    ///
    /// Both endpoints must be alive. Already-present edges (in either
    /// graph) are tolerated — the naive GraphHeal strategy re-adds edges
    /// freely — and reported via the returned flags
    /// `(new_in_g, new_in_gprime)`.
    pub fn add_heal_edge(&mut self, u: NodeId, v: NodeId) -> Result<(bool, bool), GraphError> {
        let new_g = self.g.ensure_edge(u, v)?;
        let new_gp = self.gp.ensure_edge(u, v)?;
        Ok((new_g, new_gp))
    }

    /// Algorithm 1, step 5: broadcast the minimum component ID through the
    /// `G'` component(s) containing `seeds` (the reconstruction-tree
    /// members), updating every reached node whose ID is larger.
    ///
    /// Message accounting follows Lemma 8: each node whose ID changes
    /// sends one message to each of its current `G` neighbors (who each
    /// receive one). Latency is the maximum `G'` BFS depth at which a
    /// change occurred.
    pub fn propagate_min_id(&mut self, seeds: &[NodeId]) -> PropagationReport {
        let mut report = PropagationReport::default();
        // Multi-source BFS over G' from the reconstruction tree, on
        // epoch-stamped scratch buffers: zero heap allocation at steady
        // state (the buffers only grow when the network does).
        let scratch = &mut self.scratch;
        let epoch = scratch.begin(self.gp.node_bound());
        for &s in seeds {
            if self.gp.is_alive(s) && scratch.stamp[s.index()] != epoch {
                scratch.stamp[s.index()] = epoch;
                scratch.depth[s.index()] = 0;
                scratch.queue.push_back(s);
            }
        }
        if scratch.queue.is_empty() {
            return report;
        }
        while let Some(v) = scratch.queue.pop_front() {
            scratch.reached.push(v);
            for &u in self.gp.neighbors(v) {
                if scratch.stamp[u.index()] != epoch {
                    scratch.stamp[u.index()] = epoch;
                    scratch.depth[u.index()] = scratch.depth[v.index()] + 1;
                    scratch.queue.push_back(u);
                }
            }
        }
        let min_id = scratch
            .reached
            .iter()
            .map(|&v| self.comp_id[v.index()])
            .min()
            // panic-ok: the empty-reach case returned above, so the
            // minimum over a non-empty traversal exists.
            .unwrap();
        for &v in &scratch.reached {
            if self.comp_id[v.index()] > min_id {
                self.comp_id[v.index()] = min_id;
                self.id_changes[v.index()] += 1;
                report.changed += 1;
                report.latency = report.latency.max(scratch.depth[v.index()] as u64);
                let deg = self.g.degree(v) as u64;
                self.msgs_sent[v.index()] += deg;
                report.messages += deg;
                for &u in self.g.neighbors(v) {
                    self.msgs_recv[u.index()] += 1;
                }
            }
        }
        self.prop_latency_total += report.latency;
        report
    }

    /// [`HealingNetwork::propagate_min_id`] specialized to the state every
    /// healing flow actually maintains: **each `G'` component carries one
    /// uniform component ID when the broadcast starts**.
    ///
    /// That invariant holds after every engine- or `heal_batch`-driven
    /// round, because healers only add edges among the reconstruction-set
    /// members they then seed the broadcast from, and each broadcast
    /// re-uniformizes every component it touches. Under it the exact
    /// broadcast simplifies: the minimum over the reached set equals the
    /// minimum over the live seeds' component IDs, and the changed set is
    /// exactly the union of seed components whose ID is above that
    /// minimum — so the BFS can stop at the frontier of already-minimal
    /// nodes instead of flooding whole components. Total work becomes
    /// proportional to the number of *ID changes* (which Lemma 8 bounds by
    /// `O(ln n)` per node for the whole run), not component size — the
    /// difference between O(n²) and Õ(n) for a million-node kill sweep.
    ///
    /// Accounting (changed/messages/latency, per-node counters) is
    /// identical to the exact broadcast whenever the invariant holds;
    /// `tests/equivalence.rs` locks that across healers, adversaries and
    /// seeds. Callers that hand-wire `G'` edges without broadcasting onto
    /// them (leaving a component with mixed IDs) must use the exact
    /// [`HealingNetwork::propagate_min_id`] instead.
    pub fn propagate_min_id_uniform(&mut self, seeds: &[NodeId]) -> PropagationReport {
        let mut report = PropagationReport::default();
        let scratch = &mut self.scratch;
        let epoch = scratch.begin(self.gp.node_bound());
        let mut min_id = u64::MAX;
        let mut any_live = false;
        for &s in seeds {
            if self.gp.is_alive(s) {
                any_live = true;
                min_id = min_id.min(self.comp_id[s.index()]);
            }
        }
        if !any_live {
            return report;
        }
        // Restricted multi-source BFS: only through nodes still above the
        // minimum. Under the uniformity invariant this reaches exactly the
        // nodes the exact broadcast would change, at the same depths.
        for &s in seeds {
            if self.gp.is_alive(s)
                && self.comp_id[s.index()] > min_id
                && scratch.stamp[s.index()] != epoch
            {
                scratch.stamp[s.index()] = epoch;
                scratch.depth[s.index()] = 0;
                scratch.queue.push_back(s);
            }
        }
        while let Some(v) = scratch.queue.pop_front() {
            self.comp_id[v.index()] = min_id;
            self.id_changes[v.index()] += 1;
            report.changed += 1;
            report.latency = report.latency.max(scratch.depth[v.index()] as u64);
            let deg = self.g.degree(v) as u64;
            self.msgs_sent[v.index()] += deg;
            report.messages += deg;
            for &u in self.g.neighbors(v) {
                self.msgs_recv[u.index()] += 1;
            }
            for &u in self.gp.neighbors(v) {
                if scratch.stamp[u.index()] != epoch && self.comp_id[u.index()] > min_id {
                    scratch.stamp[u.index()] = epoch;
                    scratch.depth[u.index()] = scratch.depth[v.index()] + 1;
                    scratch.queue.push_back(u);
                }
            }
        }
        self.prop_latency_total += report.latency;
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use selfheal_graph::generators::path_graph;

    fn net_on_path(n: usize) -> HealingNetwork {
        HealingNetwork::new(path_graph(n), 42)
    }

    #[test]
    fn initial_state() {
        let net = net_on_path(5);
        assert_eq!(net.initial_node_count(), 5);
        assert_eq!(net.deletion_count(), 0);
        assert_eq!(net.initial_degree(NodeId(0)), 1);
        assert_eq!(net.initial_degree(NodeId(2)), 2);
        for v in 0..5u32 {
            assert_eq!(net.delta(NodeId(v)), 0);
            assert_eq!(net.weight(NodeId(v)), 1);
            // comp id starts as the node's own initial id
            assert_eq!(net.comp_id(NodeId(v)), net.initial_id(NodeId(v)));
        }
        // ids are a permutation of 0..5
        let mut ids: Vec<u64> = (0..5u32).map(|v| net.initial_id(NodeId(v))).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn ids_differ_across_seeds() {
        let a = HealingNetwork::new(path_graph(20), 1);
        let b = HealingNetwork::new(path_graph(20), 2);
        let ids = |net: &HealingNetwork| -> Vec<u64> {
            (0..20u32).map(|v| net.initial_id(NodeId(v))).collect()
        };
        assert_ne!(ids(&a), ids(&b));
        let c = HealingNetwork::new(path_graph(20), 1);
        assert_eq!(ids(&a), ids(&c));
    }

    #[test]
    fn delete_reports_both_neighbor_sets() {
        let mut net = net_on_path(4);
        net.add_heal_edge(NodeId(0), NodeId(2)).unwrap();
        let ctx = net.delete_node(NodeId(2)).unwrap();
        assert_eq!(ctx.deleted, NodeId(2));
        assert_eq!(ctx.g_neighbors, vec![NodeId(0), NodeId(1), NodeId(3)]);
        assert_eq!(ctx.gprime_neighbors, vec![NodeId(0)]);
        assert!(!net.is_alive(NodeId(2)));
        assert_eq!(net.deletion_count(), 1);
    }

    #[test]
    fn delta_tracks_losses_and_heals() {
        let mut net = net_on_path(4);
        net.delete_node(NodeId(1)).unwrap();
        assert_eq!(net.delta(NodeId(0)), -1);
        assert_eq!(net.delta(NodeId(2)), -1);
        net.add_heal_edge(NodeId(0), NodeId(2)).unwrap();
        assert_eq!(net.delta(NodeId(0)), 0);
        assert_eq!(net.delta(NodeId(2)), 0);
        net.add_heal_edge(NodeId(0), NodeId(3)).unwrap();
        assert_eq!(net.delta(NodeId(0)), 1);
        assert_eq!(net.max_delta_alive(), 1);
    }

    #[test]
    fn weight_transfers_prefer_gprime_heirs() {
        let mut net = net_on_path(4);
        net.add_heal_edge(NodeId(1), NodeId(3)).unwrap();
        // Node 1's G' neighbor is 3; weight goes there, not to G neighbor 0.
        net.delete_node(NodeId(1)).unwrap();
        assert_eq!(net.weight(NodeId(3)), 2);
        assert_eq!(net.weight(NodeId(0)), 1);
        assert_eq!(net.weight_lost(), 0);
    }

    #[test]
    fn weight_lost_only_when_fully_isolated() {
        let mut net = net_on_path(2);
        net.delete_node(NodeId(0)).unwrap();
        assert_eq!(net.weight(NodeId(1)), 2);
        net.delete_node(NodeId(1)).unwrap();
        assert_eq!(net.weight_lost(), 2);
    }

    #[test]
    fn heal_edge_flags_report_novelty() {
        let mut net = net_on_path(3);
        // (0,1) already exists in G, so only G' is new.
        assert_eq!(
            net.add_heal_edge(NodeId(0), NodeId(1)).unwrap(),
            (false, true)
        );
        // (0,2) is new in both.
        assert_eq!(
            net.add_heal_edge(NodeId(0), NodeId(2)).unwrap(),
            (true, true)
        );
        // Re-adding is tolerated and reported.
        assert_eq!(
            net.add_heal_edge(NodeId(0), NodeId(2)).unwrap(),
            (false, false)
        );
    }

    #[test]
    fn propagation_broadcasts_min_over_gprime() {
        let mut net = net_on_path(4);
        net.add_heal_edge(NodeId(0), NodeId(1)).unwrap();
        net.add_heal_edge(NodeId(1), NodeId(2)).unwrap();
        let ids: Vec<u64> = (0..4u32).map(|v| net.initial_id(NodeId(v))).collect();
        let min3 = ids[..3].iter().copied().min().unwrap();
        let report = net.propagate_min_id(&[NodeId(0), NodeId(1), NodeId(2)]);
        for v in 0..3u32 {
            assert_eq!(net.comp_id(NodeId(v)), min3);
        }
        // Node 3 has no healing edge: untouched.
        assert_eq!(net.comp_id(NodeId(3)), ids[3]);
        // Exactly the nodes with a larger id changed.
        let expected_changes = ids[..3].iter().filter(|&&x| x > min3).count() as u64;
        assert_eq!(report.changed, expected_changes);
    }

    #[test]
    fn propagation_counts_messages_by_g_degree() {
        let mut net = net_on_path(3);
        net.add_heal_edge(NodeId(0), NodeId(2)).unwrap();
        let id0 = net.initial_id(NodeId(0));
        let id2 = net.initial_id(NodeId(2));
        let report = net.propagate_min_id(&[NodeId(0), NodeId(2)]);
        let loser = if id0 > id2 { NodeId(0) } else { NodeId(2) };
        assert_eq!(report.changed, 1);
        // The loser's G degree is 2 (path neighbor + healing edge).
        assert_eq!(report.messages, 2);
        assert_eq!(net.messages_sent(loser), 2);
        assert_eq!(net.id_changes(loser), 1);
        assert_eq!(net.traffic(loser), 2 + net.messages_received(loser));
    }

    #[test]
    fn propagation_with_no_live_seeds_is_a_noop() {
        let mut net = net_on_path(3);
        net.delete_node(NodeId(1)).unwrap();
        let report = net.propagate_min_id(&[NodeId(1)]);
        assert_eq!(report, PropagationReport::default());
        assert_eq!(net.propagate_min_id(&[]), PropagationReport::default());
    }

    #[test]
    #[should_panic]
    fn rejects_graph_with_dead_nodes() {
        let mut g = path_graph(3);
        g.remove_node(NodeId(1)).unwrap();
        let _ = HealingNetwork::new(g, 0);
    }

    #[test]
    fn delete_dead_node_errors() {
        let mut net = net_on_path(3);
        net.delete_node(NodeId(0)).unwrap();
        assert!(net.delete_node(NodeId(0)).is_err());
    }

    #[test]
    fn join_node_attaches_and_gets_fresh_id() {
        let mut net = net_on_path(3);
        let v = net.join_node(&[NodeId(0), NodeId(2)]).unwrap();
        assert_eq!(v, NodeId(3));
        assert_eq!(net.total_created(), 4);
        assert_eq!(net.initial_node_count(), 3);
        assert_eq!(net.initial_degree(v), 2);
        assert_eq!(net.delta(v), 0);
        assert_eq!(net.weight(v), 1);
        // Fresh id is larger than every pre-existing id.
        assert_eq!(net.initial_id(v), 3);
        assert_eq!(net.comp_id(v), 3);
        assert!(net.graph().has_edge(v, NodeId(0)));
        assert!(net.graph().has_edge(v, NodeId(2)));
        // Healing graph untouched by a join.
        assert_eq!(net.healing_graph().degree(v), 0);
    }

    #[test]
    fn join_rejects_dead_targets_and_duplicates() {
        let mut net = net_on_path(3);
        net.delete_node(NodeId(1)).unwrap();
        assert!(net.join_node(&[NodeId(1)]).is_err());
        assert!(net.join_node(&[NodeId(0), NodeId(0)]).is_err());
        // Nothing was created by the failed attempts.
        assert_eq!(net.total_created(), 3);
        assert_eq!(net.graph().node_bound(), 3);
    }

    #[test]
    fn joined_node_participates_in_healing() {
        let mut net = net_on_path(3);
        let v = net.join_node(&[NodeId(1)]).unwrap();
        // Deleting node 1 must offer the joiner for reconnection.
        let ctx = net.delete_node(NodeId(1)).unwrap();
        assert!(ctx.g_neighbors.contains(&v));
    }

    #[test]
    fn uniform_propagation_matches_exact_when_components_are_uniform() {
        // Build the same healed state twice and broadcast once with each
        // algorithm: components were uniformized by all-seed broadcasts,
        // so the fast path must produce identical IDs and accounting.
        let build = || {
            let mut net = net_on_path(6);
            net.add_heal_edge(NodeId(0), NodeId(1)).unwrap();
            net.add_heal_edge(NodeId(1), NodeId(2)).unwrap();
            net.propagate_min_id(&[NodeId(0), NodeId(1), NodeId(2)]);
            net.add_heal_edge(NodeId(4), NodeId(5)).unwrap();
            net.propagate_min_id(&[NodeId(4), NodeId(5)]);
            // Merge the two uniform components plus singleton 3.
            net.add_heal_edge(NodeId(2), NodeId(3)).unwrap();
            net.add_heal_edge(NodeId(3), NodeId(4)).unwrap();
            net
        };
        let seeds = [NodeId(2), NodeId(3), NodeId(4)];
        let mut exact = build();
        let mut fast = build();
        let re = exact.propagate_min_id(&seeds);
        let rf = fast.propagate_min_id_uniform(&seeds);
        assert_eq!(re, rf);
        for v in 0..6u32 {
            assert_eq!(exact.comp_id(NodeId(v)), fast.comp_id(NodeId(v)));
            assert_eq!(exact.id_changes(NodeId(v)), fast.id_changes(NodeId(v)));
            assert_eq!(exact.traffic(NodeId(v)), fast.traffic(NodeId(v)));
        }
    }

    #[test]
    fn uniform_propagation_diverges_without_the_invariant() {
        // Hand-wire a G' path whose middle node holds the component
        // minimum without broadcasting: the component is NOT uniform, so
        // the fast path (correctly, per its contract) must not be used —
        // this test documents the divergence that makes the exact
        // algorithm the public default.
        let mut net = net_on_path(3);
        net.add_heal_edge(NodeId(0), NodeId(1)).unwrap();
        net.add_heal_edge(NodeId(1), NodeId(2)).unwrap();
        // Seed only from the endpoint holding the *largest* ID.
        let ids: Vec<u64> = (0..3u32).map(|v| net.initial_id(NodeId(v))).collect();
        let seed = (0..3u32).max_by_key(|&v| ids[v as usize]).unwrap();
        let mut exact = net.clone();
        let re = exact.propagate_min_id(&[NodeId(seed)]);
        let rf = net.propagate_min_id_uniform(&[NodeId(seed)]);
        // Exact floods the whole component and finds the true minimum;
        // the fast path trusts the seed's (stale) component ID.
        assert_eq!(re.changed, 2);
        assert_eq!(rf.changed, 0);
    }

    #[test]
    fn heal_scratch_round_trips_and_keeps_capacity() {
        let mut net = net_on_path(3);
        let mut s = net.take_heal_scratch();
        s.tagged.push((1, 2, NodeId(0)));
        s.ordered.reserve(64);
        let cap = s.ordered.capacity();
        net.put_heal_scratch(s);
        let s = net.take_heal_scratch();
        assert_eq!(s.tagged.len(), 1);
        assert!(s.ordered.capacity() >= cap);
    }

    #[test]
    fn isolated_join_is_allowed() {
        let mut net = net_on_path(2);
        let v = net.join_node(&[]).unwrap();
        assert_eq!(net.graph().degree(v), 0);
        assert_eq!(net.total_created(), 3);
    }
}
